#!/usr/bin/env bash
# Perf smoke: tier-1 tests plus the wall-clock executor microbenchmark
# at a reduced row count, the coupling pooling/caching ablation, and a
# reduced concurrent-serving run (throughput + parity at 1/4/8 workers).
# Intended for CI — fast enough to run on every change, still catches
# executor regressions an order of magnitude deep.
#
# Usage: scripts/perf_smoke.sh [rows]   (default: 10000)

set -euo pipefail

cd "$(dirname "$0")/.."
ROWS="${1:-10000}"

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== wall-clock executor microbenchmark (${ROWS} fact rows) =="
python benchmarks/bench_wallclock_executor.py --rows "$ROWS" \
    --prune-rows $((ROWS * 10)) --out BENCH_executor_smoke.json > /dev/null

python - <<'EOF'
import json

summary = json.load(open("BENCH_executor_smoke.json"))
assert summary["parity"], "row/batch/columnar parity violated"
assert summary["speedup"] >= 3.0, f"speedup {summary['speedup']}x < 3x"
pruning = summary["pruning"]
assert pruning["parity"], "pruning workload parity violated"
assert pruning["pruning_speedup"] >= 5.0, (
    f"pruning speedup {pruning['pruning_speedup']}x < 5x"
)
assert pruning["chunks_pruned"] > 0, "zone maps pruned no chunks"
assert all(s["parity"] for s in pruning["selectivity_sweep"])
print(f"OK: {summary['speedup']}x batch speedup, "
      f"{pruning['pruning_speedup']}x columnar pruning speedup, "
      f"{pruning['chunks_pruned']}/{pruning['chunks_scanned'] + pruning['chunks_pruned']}"
      " chunks pruned, parity holds")
EOF

echo "== coupling pooling/caching ablation =="
python benchmarks/bench_coupling_pooling.py --out BENCH_coupling.json

python - <<'EOF'
import json

summary = json.load(open("BENCH_coupling.json"))
assert summary["parity"], "ablation configs disagree on result rows"
assert summary["ranking_preserved"], "architecture ranking flipped"
for arch, factor in summary["start_share_reduction"].items():
    assert factor >= 2.0, f"{arch}: start-share reduced only {factor}x"
print("OK: start-share reductions",
      summary["start_share_reduction"], "- parity and ranking hold")
EOF

echo "== cost-based optimizer benchmark (reduced workload) =="
python benchmarks/bench_optimizer.py --remote-rows 5000 \
    --udtf-outer-rows 100 --out BENCH_optimizer_smoke.json > /dev/null

python - <<'EOF'
import json

summary = json.load(open("BENCH_optimizer_smoke.json"))
assert summary["rows_identical"], "cost-based plan changed result rows"
assert summary["speedup"] >= 3.0, f"speedup {summary['speedup']}x < 3x"
print(f"OK: {summary['speedup']}x optimizer speedup, rows identical")
EOF

echo "== concurrent serving smoke (reduced workload) =="
python benchmarks/bench_concurrency.py --sessions 4 --calls 4 \
    --out BENCH_concurrency_smoke.json > /dev/null

python - <<'EOF'
import json

summary = json.load(open("BENCH_concurrency_smoke.json"))
assert summary["single_session_parity"], "serving layer changed results"
assert summary["cross_worker_parity"], "worker count changed results"
assert all(r["throughput_calls_per_s"] > 0 for r in summary["runs"])
print("OK: concurrency parity holds at", len(summary["runs"]),
      "worker counts")
EOF
