#!/usr/bin/env bash
# Parity gate: one command proving that optimizations never change
# results or baseline timings.
#
#  1. row/batch executor parity suite (same rows either mode),
#  2. pooling/caching ablation parity tests (flags off => simulated
#     timings bit-identical to the calibrated anchors; flags on =>
#     same result rows, paper's architecture ranking preserved),
#  3. fault-harness parity (every site armed at probability 0 with
#     retries + forward recovery on => bit-identical to flags-off;
#     exception-safety regressions in cache/pool/RMI/WfMS),
#  4. concurrency parity (same seeded multi-session workload under 1
#     worker vs K workers => bit-identical per-session rows and
#     simulated times; serving layer == bare single-caller stack;
#     thread-safety regression suite),
#  5. process-sharded parity (same workload at 1/2/4 OS worker
#     processes => bit-identical per-session rows and simulated times
#     to the bare stack and to thread-mode serving; worker-kill fault
#     battery; battery-through-serving differential slice; serving
#     teardown/accounting regressions; wire + hash-ring unit suite),
#  6. optimizer parity (cost-based mode => bit-identical rows across
#     architectures and execution modes; statistics absent =>
#     bit-identical rows AND simulated times; join strategies —
#     hash/merge/indexnlj/nlj — bit-identical rows and times, with the
#     merge-join and adaptive-feedback benchmark gates),
#  7. columnar parity (row vs batch vs columnar => bit-identical rows
#     AND simulated times; zone-map pruning on/off => same rows;
#     COW-rebuild, all-NULL and pinned-snapshot edge cases),
#  8. calibration regression (the frozen Fig. 5/6 anchor numbers).
#
# Usage: scripts/check_parity.sh

set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== row/batch parity suite =="
python -m pytest -q tests/test_fdbs_batch_parity.py

echo "== pooling/caching ablation parity =="
python -m pytest -q tests/test_coupling_ablation.py tests/test_result_cache.py

echo "== fault-harness parity + exception-safety regressions =="
python -m pytest -q tests/test_fault_parity.py tests/test_faults.py \
    tests/test_runtime_pool.py tests/test_wfms_engine.py

echo "== concurrency parity + thread-safety regressions =="
python -m pytest -q tests/test_concurrent_parity.py \
    tests/test_thread_safety_regressions.py

echo "== MVCC snapshot-isolation suite =="
python -m pytest -q tests/test_mvcc_snapshot_isolation.py

echo "== concurrency benchmark parity gate =="
python benchmarks/bench_concurrency.py > /dev/null

python - <<'EOF'
import json

summary = json.load(open("BENCH_concurrency.json"))
assert len(summary["runs"]) >= 3, "need >= 3 worker counts"
assert summary["single_session_parity"], (
    "1-worker serving run is not bit-identical to the single-session path"
)
assert summary["cross_worker_parity"], (
    "worker count changed per-session rows or simulated times"
)
tp = {r["workers"]: r["throughput_calls_per_s"] for r in summary["runs"]}
print(f"OK: single-session parity + cross-worker parity hold; "
      f"throughput by workers: {tp}")

# MVCC gates: with MVCC on, a single worker is bit-identical to the
# bare pre-serving stack (rows AND simulated times -- asserted above
# via single_session_parity), shared-mode rows are deterministic at
# every worker count, and lock-free snapshot readers actually scale.
scaling = summary["scaling"]
for profile, entry in scaling["profiles"].items():
    for r in entry["runs"]:
        assert r["rows_match_one_worker"], (
            f"{profile}: {r['workers']}-worker shared-mode run changed rows"
        )
speedup = {
    r["workers"]: r["speedup_vs_1_worker"]
    for r in scaling["profiles"]["read_heavy"]["runs"]
}
assert speedup[4] >= 2.0, (
    f"read-heavy speedup at 4 workers is {speedup[4]}x, below the 2x gate"
)
print(f"OK: MVCC scaling gate holds; read-heavy speedup by workers: {speedup}")

# Process-sharded gates: isolated shards keep the parity contract exact
# across the process boundary (rows AND simulated times match the bare
# stack and the 1-shard run at every shard count), and overlapping the
# injected RMI wall latency across OS processes actually scales.
process = summary["process_scaling"]
assert process["cross_shard_parity"], (
    "a shard count changed per-session rows or simulated times"
)
for r in process["runs"]:
    assert r["rows_match_single_server"] and r["sim_times_match_single_server"], (
        f"{r['shards']}-shard run is not bit-identical to the bare stack"
    )
proc_speedup = {r["shards"]: r["speedup_vs_1_shard"] for r in process["runs"]}
assert proc_speedup[4] >= 2.0, (
    f"read-heavy process speedup at 4 shards is {proc_speedup[4]}x, "
    "below the 2x gate"
)
print(f"OK: process scaling gate holds; speedup by shards: {proc_speedup}")
EOF

echo "== process-sharded parity + fault battery + serving regressions =="
python -m pytest -q tests/test_serving_wire.py tests/test_serving_shutdown.py
python -m pytest -q -m proc tests/test_process_parity.py \
    tests/test_process_faults.py tests/sql_battery/test_battery_serving.py

echo "== optimizer parity (cost-based vs syntactic) =="
python -m pytest -q tests/test_optimizer_parity.py tests/test_optimizer.py \
    tests/test_join_strategies.py

echo "== optimizer benchmark gate (merge join + adaptive feedback) =="
python benchmarks/bench_optimizer.py > /dev/null

python - <<'EOF'
import json

summary = json.load(open("BENCH_optimizer.json"))
assert summary["rows_identical"], (
    "an optimizer workload changed the answer"
)
merge = summary["merge_join"]
assert merge["rows_identical"], "a join strategy changed the answer"
assert merge["presorted_input"], "merge join missed the clustered order"
assert merge["speedup_wall"] >= 3.0, (
    f"merge join wall speedup {merge['speedup_wall']}x below the 3x gate"
)
adaptive = summary["adaptive_feedback"]
assert adaptive["rows_identical"], "feedback replanning changed the answer"
assert adaptive["bind_join_after_feedback"], (
    "feedback failed to unlock the bind join"
)
assert adaptive["recovery"] >= 5.0, (
    f"adaptive recovery {adaptive['recovery']}x below the 5x gate"
)
print(f"OK: merge join {merge['speedup_wall']}x wall over hash; "
      f"feedback recovery {adaptive['recovery']}x "
      f"(q-error {adaptive['observed_q_error']})")
EOF

echo "== columnar parity (row vs batch vs columnar, zone maps on/off) =="
python -m pytest -q tests/test_columnar_parity.py

echo "== calibration regression =="
python -m pytest -q tests/test_calibration_regression.py

echo "parity checks passed"
