#!/usr/bin/env bash
# Parity gate: one command proving that optimizations never change
# results or baseline timings.
#
#  1. row/batch executor parity suite (same rows either mode),
#  2. pooling/caching ablation parity tests (flags off => simulated
#     timings bit-identical to the calibrated anchors; flags on =>
#     same result rows, paper's architecture ranking preserved),
#  3. fault-harness parity (every site armed at probability 0 with
#     retries + forward recovery on => bit-identical to flags-off;
#     exception-safety regressions in cache/pool/RMI/WfMS),
#  4. calibration regression (the frozen Fig. 5/6 anchor numbers).
#
# Usage: scripts/check_parity.sh

set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== row/batch parity suite =="
python -m pytest -q tests/test_fdbs_batch_parity.py

echo "== pooling/caching ablation parity =="
python -m pytest -q tests/test_coupling_ablation.py tests/test_result_cache.py

echo "== fault-harness parity + exception-safety regressions =="
python -m pytest -q tests/test_fault_parity.py tests/test_faults.py \
    tests/test_runtime_pool.py tests/test_wfms_engine.py

echo "== calibration regression =="
python -m pytest -q tests/test_calibration_regression.py

echo "parity checks passed"
