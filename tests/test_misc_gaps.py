"""Small behaviours not covered elsewhere."""

import pytest

from repro.bench.report import format_series
from repro.fdbs.engine import Database
from repro.fdbs.executor import LimitPlan, UnionPlan, UnitPlan
from repro.fdbs.expr import EvalContext


class TestReportSeries:
    def test_format_series_lines(self):
        text = format_series("loop scaling", [(1, 209.78), (2, 287.86)])
        lines = text.splitlines()
        assert lines[0] == "loop scaling"
        assert "209.78" in lines[1] and "su" in lines[1]

    def test_format_series_custom_unit(self):
        assert "ms" in format_series("x", [(1, 2.0)], unit="ms")


class TestExecutorEdges:
    def test_limit_zero_yields_nothing(self):
        plan = LimitPlan(UnitPlan(), 0)
        assert list(plan.rows(EvalContext())) == []

    def test_union_requires_branches(self):
        with pytest.raises(Exception):
            UnionPlan([], all_=True)

    def test_explain_tree_indents_children(self):
        db = Database("g")
        db.execute("CREATE TABLE t (a INT)")
        text = db.explain("SELECT a FROM t WHERE a > 1")
        lines = text.splitlines()
        assert lines[0].startswith("Snapshot(epoch=")
        assert lines[1].startswith("Execution(mode=")
        assert lines[2].startswith("Project")
        assert lines[3].startswith("  ")  # children indented


class TestSqlEdges:
    @pytest.fixture()
    def db(self):
        database = Database("edges")
        database.execute("CREATE TABLE t (a INT, d DECIMAL(6, 2))")
        database.execute("INSERT INTO t VALUES (1, 2.50), (2, 0.25)")
        return database

    def test_decimal_column_arithmetic(self, db):
        from decimal import Decimal

        total = db.execute("SELECT SUM(d) FROM t").scalar()
        assert total == Decimal("2.75")

    def test_case_with_null_operand_falls_to_else(self, db):
        value = db.execute(
            "SELECT CASE a WHEN 99 THEN 'x' ELSE 'other' END FROM t "
            "WHERE a = 1"
        ).scalar()
        assert value == "other"

    def test_concat_operator_with_cast_function(self, db):
        value = db.execute(
            "SELECT 'a=' || VARCHAR(a) FROM t WHERE a = 2"
        ).scalar()
        assert value == "a=2"

    def test_between_on_decimal(self, db):
        rows = db.execute(
            "SELECT a FROM t WHERE d BETWEEN 0.2 AND 1.0"
        ).rows
        assert rows == [(2,)]

    def test_group_by_expression(self, db):
        db.execute("INSERT INTO t VALUES (3, 1.00), (4, 1.00)")
        rows = db.execute(
            "SELECT MOD(a, 2), COUNT(*) FROM t GROUP BY MOD(a, 2) "
            "ORDER BY MOD(a, 2)"
        ).rows
        assert rows == [(0, 2), (1, 2)]

    def test_select_item_alias_shadowing_is_fine(self, db):
        rows = db.execute("SELECT a AS d FROM t ORDER BY d").rows
        assert rows == [(1,), (2,)]


class TestProcedureEdges:
    def test_duplicate_declare_rejected(self):
        db = Database("pe")
        db.execute(
            "CREATE PROCEDURE p (OUT v INT) LANGUAGE SQL BEGIN "
            "DECLARE x INT; DECLARE x INT; SET v = 1; END"
        )
        with pytest.raises(Exception, match="duplicate variable"):
            db.execute("CALL p()")

    def test_if_without_match_and_no_else_is_noop(self):
        db = Database("pe2")
        db.execute(
            "CREATE PROCEDURE p (OUT v INT) LANGUAGE SQL BEGIN "
            "SET v = 5; IF v > 100 THEN SET v = 0; END IF; END"
        )
        assert db.execute("CALL p()").out_params == {"v": 5}


class TestWorkflowEdges:
    def test_block_without_until_runs_once(self):
        from repro.fdbs.types import INTEGER
        from repro.wfms.builder import ProcessBuilder
        from repro.wfms.engine import WorkflowEngine
        from repro.wfms.programs import ProgramRegistry

        registry = ProgramRegistry()
        registry.register_program("one", lambda inp: {"V": inp["I"] + 1})
        body = ProcessBuilder("Body", [("I", INTEGER)], [("V", INTEGER)])
        body.program_activity(
            "A", "one", [("I", INTEGER)], [("V", INTEGER)],
            {"I": body.from_input("I")},
        )
        body.map_output("V", body.from_activity("A", "V"))
        outer = ProcessBuilder("Outer", [("I", INTEGER)], [("V", INTEGER)])
        outer.block_activity(
            "B", body.build(), input_map={"I": outer.from_input("I")}
        )
        outer.map_output("V", outer.from_activity("B", "V"))
        instance = WorkflowEngine(registry).run_process(outer.build(), {"I": 41})
        assert instance.activity("B").iterations == 1
        assert instance.output.as_dict() == {"V": 42}

    def test_instance_makespan_property(self):
        from repro.fdbs.types import INTEGER
        from repro.sysmodel.machine import Machine
        from repro.wfms.builder import ProcessBuilder
        from repro.wfms.engine import WorkflowEngine
        from repro.wfms.programs import ProgramRegistry

        machine = Machine()
        registry = ProgramRegistry()
        registry.register_program("noop", lambda inp: {"V": 1})
        b = ProcessBuilder("P", [("I", INTEGER)], [("V", INTEGER)])
        b.program_activity(
            "A", "noop", [("I", INTEGER)], [("V", INTEGER)],
            {"I": b.from_input("I")},
        )
        b.map_output("V", b.from_activity("A", "V"))
        instance = WorkflowEngine(registry, machine).run_process(
            b.build(), {"I": 1}
        )
        assert instance.makespan > 0
