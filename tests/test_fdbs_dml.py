"""INSERT / UPDATE / DELETE / transactions through the engine."""

import pytest

from repro.errors import ConstraintError, ExecutionError
from repro.fdbs.engine import Database


@pytest.fixture()
def db():
    database = Database("dml")
    database.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20), score INT)"
    )
    return database


def test_insert_values_rowcount(db):
    result = db.execute("INSERT INTO t VALUES (1, 'a', 10), (2, 'b', 20)")
    assert result.rowcount == 2
    assert len(db.execute("SELECT * FROM t").rows) == 2


def test_insert_with_column_list_fills_missing_with_null(db):
    db.execute("INSERT INTO t (id, name) VALUES (1, 'a')")
    assert db.execute("SELECT score FROM t").rows == [(None,)]


def test_insert_with_reordered_columns(db):
    db.execute("INSERT INTO t (score, id, name) VALUES (5, 1, 'a')")
    assert db.execute("SELECT id, name, score FROM t").rows == [(1, "a", 5)]


def test_insert_select(db):
    db.execute("INSERT INTO t VALUES (1, 'a', 10)")
    db.execute("CREATE TABLE u (id INT, name VARCHAR(20), score INT)")
    db.execute("INSERT INTO u SELECT id + 100, name, score FROM t")
    assert db.execute("SELECT id FROM u").rows == [(101,)]


def test_insert_width_mismatch_rejected(db):
    with pytest.raises(ExecutionError):
        db.execute("INSERT INTO t (id, name) VALUES (1, 'a', 3)")


def test_insert_duplicate_pk_rejected(db):
    db.execute("INSERT INTO t VALUES (1, 'a', 10)")
    with pytest.raises(ConstraintError):
        db.execute("INSERT INTO t VALUES (1, 'b', 20)")


def test_insert_with_parameters(db):
    db.execute("INSERT INTO t VALUES (?, ?, ?)", params=[1, "bound", 3])
    assert db.execute("SELECT name FROM t").rows == [("bound",)]


def test_update_with_where(db):
    db.execute("INSERT INTO t VALUES (1, 'a', 10), (2, 'b', 20)")
    result = db.execute("UPDATE t SET score = score + 1 WHERE id = 2")
    assert result.rowcount == 1
    assert db.execute("SELECT score FROM t WHERE id = 2").scalar() == 21


def test_update_all_rows(db):
    db.execute("INSERT INTO t VALUES (1, 'a', 10), (2, 'b', 20)")
    assert db.execute("UPDATE t SET score = 0").rowcount == 2


def test_update_sees_pre_update_values(db):
    db.execute("INSERT INTO t VALUES (1, 'a', 1), (2, 'b', 2)")
    db.execute("UPDATE t SET score = score * 10 WHERE score < 10")
    assert db.execute("SELECT SUM(score) FROM t").scalar() == 30


def test_delete_with_where(db):
    db.execute("INSERT INTO t VALUES (1, 'a', 10), (2, 'b', 20)")
    assert db.execute("DELETE FROM t WHERE score > 15").rowcount == 1
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1


def test_delete_all(db):
    db.execute("INSERT INTO t VALUES (1, 'a', 10)")
    db.execute("DELETE FROM t")
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0


def test_update_with_scalar_subquery(db):
    db.execute("INSERT INTO t VALUES (1, 'a', 10), (2, 'b', 20)")
    db.execute("UPDATE t SET score = (SELECT MAX(score) FROM t) WHERE id = 1")
    assert db.execute("SELECT score FROM t WHERE id = 1").scalar() == 20


class TestTransactions:
    def test_rollback_undoes_since_last_commit(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 10)")
        db.execute("COMMIT")
        db.execute("INSERT INTO t VALUES (2, 'b', 20)")
        db.execute("UPDATE t SET score = 0 WHERE id = 1")
        db.execute("ROLLBACK")
        assert db.execute("SELECT * FROM t").rows == [(1, "a", 10)]

    def test_commit_makes_changes_permanent(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 10)")
        db.execute("COMMIT WORK")
        db.execute("ROLLBACK")
        assert len(db.execute("SELECT * FROM t").rows) == 1

    def test_rollback_of_delete(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 10)")
        db.execute("COMMIT")
        db.execute("DELETE FROM t")
        db.execute("ROLLBACK")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1


def test_drop_table_removes_catalog_entry(db):
    db.execute("DROP TABLE t")
    with pytest.raises(Exception):
        db.execute("SELECT * FROM t")
