"""The UDTF architecture family: A-UDTFs, SQL I-UDTFs, procedural."""

import pytest

from repro.appsys import StockKeepingSystem
from repro.errors import CatalogError, OneStatementError, ParseError
from repro.fdbs.engine import Database
from repro.fdbs.types import INTEGER
from repro.udtf.access import make_access_udtf, register_access_udtfs
from repro.udtf.procedural import (
    PROCEDURAL_LANGUAGE,
    ProceduralConnection,
    register_procedural_iudtf,
)
from repro.udtf.sql_iudtf import create_sql_iudtf


@pytest.fixture()
def db_with_stock(data):
    db = Database("arch")
    stock = StockKeepingSystem(None, data)
    register_access_udtfs(db, stock)
    return db, stock


class TestAccessUdtfs:
    def test_one_udtf_per_local_function(self, db_with_stock):
        db, stock = db_with_stock
        for fn in stock.functions():
            assert db.catalog.has_function(fn.name)

    def test_udtf_calls_through_to_system(self, db_with_stock):
        db, _ = db_with_stock
        rows = db.execute("SELECT * FROM TABLE (GetQuality(1234)) AS GQ").rows
        assert rows == [(8,)]

    def test_external_name_identifies_system(self, data):
        stock = StockKeepingSystem(None, data)
        udtf = make_access_udtf(stock, stock.function("GetQuality"))
        assert udtf.external_name == "stock.GetQuality"
        assert udtf.fenced

    def test_subset_registration(self, data):
        db = Database("subset")
        stock = StockKeepingSystem(None, data)
        registered = register_access_udtfs(db, stock, only=["GetQuality"])
        assert [f.name for f in registered] == ["GetQuality"]
        assert not db.catalog.has_function("GetNumber")

    def test_name_collision_rejected(self, db_with_stock):
        db, stock = db_with_stock
        with pytest.raises(CatalogError):
            register_access_udtfs(db, stock)


class TestSqlIudtf:
    def test_create_and_invoke(self, db_with_stock):
        db, _ = db_with_stock
        create_sql_iudtf(
            db,
            "CREATE FUNCTION QualityOf1234 () RETURNS TABLE (Qual INT) "
            "LANGUAGE SQL RETURN SELECT GQ.Qual FROM "
            "TABLE (GetQuality(1234)) AS GQ",
        )
        rows = db.execute("SELECT * FROM TABLE (QualityOf1234()) AS Q").rows
        assert rows == [(8,)]

    def test_non_create_function_rejected(self, db_with_stock):
        db, _ = db_with_stock
        with pytest.raises(ParseError):
            create_sql_iudtf(db, "SELECT 1")

    def test_multi_statement_body_rejected(self, db_with_stock):
        db, _ = db_with_stock
        with pytest.raises(OneStatementError):
            create_sql_iudtf(
                db,
                "CREATE FUNCTION f (x INT) RETURNS TABLE (y INT) LANGUAGE SQL "
                "BEGIN SET y = 1; END",
            )

    def test_bind_time_validation_catches_bad_body(self, db_with_stock):
        db, _ = db_with_stock
        with pytest.raises(Exception):
            create_sql_iudtf(
                db,
                "CREATE FUNCTION f (x INT) RETURNS TABLE (y INT) LANGUAGE SQL "
                "RETURN SELECT G.Nope FROM TABLE (GetQuality(f.x)) AS G",
            )
        # A failed bind must not leave an unusable function behind.
        assert not db.catalog.has_function("f")


class TestProcedural:
    def test_multi_statement_body_with_control_flow(self, db_with_stock):
        db, _ = db_with_stock

        def body(conn: ProceduralConnection, supplier_no):
            total = 0
            count = 0
            for comp_no, _number in conn.query_rows(
                "SELECT * FROM TABLE (GetStockComponents(?)) AS SC",
                params=[supplier_no],
            ):
                row = conn.query_rows(
                    "SELECT * FROM TABLE (GetNumber(?, ?)) AS N",
                    params=[supplier_no, comp_no],
                )
                if row and row[0][0] is not None:
                    total += row[0][0]
                    count += 1
            return [(count, total)]

        function = register_procedural_iudtf(
            db,
            "StockTotals",
            params=[("SupplierNo", INTEGER)],
            returns=[("CompCount", INTEGER), ("Total", INTEGER)],
            body=body,
        )
        assert function.language == PROCEDURAL_LANGUAGE
        rows = db.execute("SELECT * FROM TABLE (StockTotals(1234)) AS T").rows
        count, total = rows[0]
        assert count >= 1 and total >= 0

    def test_connection_counts_statements(self, db_with_stock):
        db, _ = db_with_stock
        connection = ProceduralConnection(db)
        connection.query("SELECT 1")
        connection.query_scalar("SELECT 2")
        assert connection.statements_issued == 2

    def test_connection_is_query_only(self, db_with_stock):
        db, _ = db_with_stock
        connection = ProceduralConnection(db)
        assert not hasattr(connection, "execute_update")
