"""Integration server, architecture matrix, scenario deployment."""

import pytest

from repro.core.architectures import (
    Architecture,
    FOOTNOTE,
    capability_matrix,
    mechanism,
    supports,
)
from repro.core.mapping import HeterogeneityCase
from repro.core.scenario import build_scenario, scenario_functions
from repro.errors import MappingError, UnsupportedMappingError


class TestCapabilityMatrix:
    def test_cyclic_only_wfms_and_procedural(self):
        cyclic = HeterogeneityCase.DEPENDENT_CYCLIC
        assert supports(Architecture.WFMS, cyclic)
        assert supports(Architecture.ENHANCED_JAVA_UDTF, cyclic)
        assert not supports(Architecture.ENHANCED_SQL_UDTF, cyclic)
        assert not supports(Architecture.SIMPLE_UDTF, cyclic)

    def test_everything_else_supported_everywhere(self):
        for case in HeterogeneityCase:
            if case is HeterogeneityCase.DEPENDENT_CYCLIC:
                continue
            for architecture in Architecture:
                assert supports(architecture, case)

    def test_matrix_matches_paper_cells(self):
        rows = {row["case"]: row for row in capability_matrix()}
        udtf, wfms = Architecture.ENHANCED_SQL_UDTF.value, Architecture.WFMS.value
        assert rows["trivial"][udtf] == rows["trivial"][wfms]
        assert "cast functions" in rows["simple"][udtf]
        assert rows["simple"][wfms] == "helper functions"
        assert rows["independent"][udtf] == "join with selection"
        assert rows["independent"][wfms] == "parallel execution of activities"
        assert rows["dependent: cyclic"][udtf] == "not supported"
        assert rows["dependent: cyclic"][wfms] == "loop construct with sub-workflow"
        assert "*" in rows["dependent: linear"][udtf]  # the paper's footnote
        assert "Not supported in general" in FOOTNOTE

    def test_mechanism_for_procedural_cyclic_marked_as_extension(self):
        text = mechanism(
            Architecture.ENHANCED_JAVA_UDTF, HeterogeneityCase.DEPENDENT_CYCLIC
        )
        assert "extension" in text


class TestScenarioFunctions:
    def test_expected_cases(self):
        cases = {f.name: f.case.value for f in scenario_functions()}
        assert cases["GibKompNr"] == "trivial"
        assert cases["GetNumberSupp1234"] == "simple"
        assert cases["GetSuppQual"] == "dependent: linear"
        assert cases["GetSuppQualRelia"] == "independent"
        assert cases["GetSubCompDiscounts"] == "independent"
        assert cases["GetSuppGrade"] == "dependent: (1:n)"
        assert cases["GetSuppQualReliaByName"] == "dependent: (n:1)"
        assert cases["GetNoSuppComp"] == "general"
        assert cases["BuySuppComp"] == "general"
        assert cases["AllCompNames"] == "dependent: cyclic"

    def test_local_function_counts(self):
        counts = {f.name: f.local_function_count() for f in scenario_functions()}
        assert counts["GibKompNr"] == 1
        assert counts["GetNoSuppComp"] == 3  # the Fig. 6 anchor
        assert counts["BuySuppComp"] == 5  # Fig. 1

    def test_all_validate(self):
        for fed in scenario_functions():
            fed.validate()
            assert fed.signature().startswith(fed.name)


class TestIntegrationServer:
    def test_cyclic_skipped_on_sql_architecture(self, sql_udtf_scenario):
        assert "ALLCOMPNAMES" in sql_udtf_scenario.skipped
        assert "cyclic" in sql_udtf_scenario.skipped["ALLCOMPNAMES"]

    def test_nothing_skipped_on_wfms(self, wfms_scenario):
        assert wfms_scenario.skipped == {}

    def test_call_of_undeployed_function_rejected(self, wfms_scenario):
        with pytest.raises(MappingError, match="not deployed"):
            wfms_scenario.server.call("Ghost")

    def test_deploy_unsupported_raises(self, data):
        scenario = build_scenario(Architecture.ENHANCED_SQL_UDTF, data=data)
        fed = next(f for f in scenario_functions() if f.name == "AllCompNames")
        with pytest.raises(UnsupportedMappingError):
            scenario.server.deploy(fed)

    def test_call_sql_shows_application_view(self, wfms_scenario, simple_scenario):
        # WfMS / I-UDTF architectures: one simple select per call.
        assert wfms_scenario.server.call_sql("BuySuppComp") == (
            "SELECT * FROM TABLE (BuySuppComp(?, ?)) AS R"
        )
        # Simple architecture: the full composed statement leaks into
        # the application ("the integration logic is hidden within the
        # application code").
        text = simple_scenario.server.call_sql("BuySuppComp")
        assert "DecidePurchase" in text and "GetQuality" in text

    def test_resolver_rejects_unknown_system(self, wfms_scenario):
        with pytest.raises(MappingError):
            wfms_scenario.server.resolver("nonexistent", "F")

    def test_elapsed_helper_returns_result_and_time(self, wfms_scenario):
        rows, elapsed = wfms_scenario.server.elapsed(
            wfms_scenario.call, "GibKompNr", "gearbox"
        )
        assert rows == [(1,)]
        assert elapsed > 0

    def test_boot_resets_warmth(self, data):
        scenario = build_scenario(Architecture.WFMS, data=data)
        scenario.call("GibKompNr", "gearbox")
        _, hot = scenario.server.elapsed(scenario.call, "GibKompNr", "gearbox")
        scenario.server.boot()
        _, cold = scenario.server.elapsed(scenario.call, "GibKompNr", "gearbox")
        assert cold > hot

    def test_mixed_query_combines_federated_function_with_audtf(
        self, sql_udtf_scenario
    ):
        """Federated functions remain composable with other functions in
        one statement — the property that rules out CALL-only PSM."""
        result = sql_udtf_scenario.server.fdbs.execute(
            "SELECT B.Answer, GQ.Qual "
            "FROM TABLE (BuySuppComp(1234, 'gearbox')) AS B, "
            "TABLE (GetQuality(1234)) AS GQ"
        )
        assert result.rows == [("BUY", 8)]

    def test_sql_med_registry_populated(self, wfms_scenario):
        med = wfms_scenario.server.med
        assert "WFMS_WRAPPER" in med.wrappers
        assert "WFMS_SERVER" in med.servers
