"""Conditional routing: exclusive choice + OR-join merge."""

import pytest

from repro.errors import NavigationError, ProcessDefinitionError
from repro.fdbs.types import INTEGER, VARCHAR
from repro.wfms.builder import ProcessBuilder
from repro.wfms.engine import WorkflowEngine
from repro.wfms.instance import ActivityState
from repro.wfms.model import Condition, FromActivityOutput, FromAnyActivity
from repro.wfms.programs import ProgramRegistry


def registry():
    reg = ProgramRegistry()
    reg.register_program("grade", lambda inp: {"Grade": inp["X"]})
    reg.register_program("fast", lambda inp: {"Answer": "EXPRESS"})
    reg.register_program("slow", lambda inp: {"Answer": "NEGOTIATE"})
    reg.register_program("record", lambda inp: {"Final": inp["Answer"]})
    return reg


def routed_process(merge_join="OR"):
    """grade -> (fast | slow by condition) -> record (merge)."""
    b = ProcessBuilder("Route", [("X", INTEGER)], [("Final", VARCHAR(20))])
    b.program_activity(
        "Grade", "grade", [("X", INTEGER)], [("Grade", INTEGER)],
        {"X": b.from_input("X")},
    )
    b.program_activity(
        "Fast", "fast", [("X", INTEGER)], [("Answer", VARCHAR(20))],
        {"X": b.from_input("X")},
    )
    b.program_activity(
        "Slow", "slow", [("X", INTEGER)], [("Answer", VARCHAR(20))],
        {"X": b.from_input("X")},
    )
    b.program_activity(
        "Record", "record", [("Answer", VARCHAR(20))], [("Final", VARCHAR(20))],
        {
            "Answer": FromAnyActivity(
                (
                    FromActivityOutput("Fast", "Answer"),
                    FromActivityOutput("Slow", "Answer"),
                )
            )
        },
    )
    b.connect("Grade", "Fast", Condition("Grade", ">=", 6))
    b.connect("Grade", "Slow", Condition("Grade", "<", 6))
    b.connect("Fast", "Record").connect("Slow", "Record")
    b._definition.activity("Record").join = merge_join
    b.map_output("Final", b.from_activity("Record", "Final"))
    return b.build()


def test_high_grade_takes_fast_path():
    engine = WorkflowEngine(registry())
    instance = engine.run_process(routed_process(), {"X": 8})
    assert instance.output.as_dict() == {"Final": "EXPRESS"}
    assert instance.activity("Fast").state is ActivityState.FINISHED
    assert instance.activity("Slow").state is ActivityState.SKIPPED


def test_low_grade_takes_slow_path():
    engine = WorkflowEngine(registry())
    instance = engine.run_process(routed_process(), {"X": 2})
    assert instance.output.as_dict() == {"Final": "NEGOTIATE"}
    assert instance.activity("Fast").state is ActivityState.SKIPPED


def test_and_join_merge_dies_with_either_branch():
    engine = WorkflowEngine(registry())
    instance = engine.run_process(routed_process(merge_join="AND"), {"X": 8})
    assert instance.activity("Record").state is ActivityState.SKIPPED
    # The process finishes, but the output member stays unset.
    assert not instance.output.is_set("Final")


def test_from_any_activity_with_no_finished_producer_fails_clearly():
    b = ProcessBuilder("P", [("X", INTEGER)], [("Final", VARCHAR(20))])
    reg = registry()
    b.program_activity(
        "Grade", "grade", [("X", INTEGER)], [("Grade", INTEGER)],
        {"X": b.from_input("X")},
    )
    b.program_activity(
        "Fast", "fast", [("X", INTEGER)], [("Answer", VARCHAR(20))],
        {"X": b.from_input("X")},
    )
    b.program_activity(
        "Record", "record", [("Answer", VARCHAR(20))], [("Final", VARCHAR(20))],
        {"Answer": FromAnyActivity((FromActivityOutput("Fast", "Answer"),))},
    )
    b.connect("Grade", "Fast", Condition("Grade", ">", 99))  # never
    b.connect("Fast", "Record")
    b._definition.activity("Record").join = "OR"
    b.connect("Grade", "Record")  # keeps Record alive without data
    b.map_output("Final", b.from_activity("Record", "Final"))
    with pytest.raises(Exception):
        WorkflowEngine(reg).run_process(b.build(), {"X": 1})


def test_empty_from_any_rejected_at_validation():
    b = ProcessBuilder("P", [("X", INTEGER)], [("Y", INTEGER)])
    b.program_activity(
        "A", "grade", [("X", INTEGER)], [("Grade", INTEGER)],
        {"X": FromAnyActivity(())},
    )
    b.map_output("Y", b.from_activity("A", "Grade"))
    with pytest.raises(ProcessDefinitionError, match="at least one choice"):
        b.build()


def test_unknown_join_kind_rejected():
    b = ProcessBuilder("P", [("X", INTEGER)], [("Y", INTEGER)])
    b.program_activity(
        "A", "grade", [("X", INTEGER)], [("Grade", INTEGER)],
        {"X": b.from_input("X")},
    )
    b.map_output("Y", b.from_activity("A", "Grade"))
    b._definition.activities[0].join = "XOR"
    with pytest.raises(ProcessDefinitionError, match="join kind"):
        b.build()


def test_routing_round_trips_through_fdl():
    from repro.wfms.fdl import parse_fdl, to_fdl

    process = routed_process()
    reparsed = parse_fdl(to_fdl(process))["Route"]
    record = reparsed.activity("Record")
    assert record.join == "OR"
    assert isinstance(record.input_map["Answer"], FromAnyActivity)
    assert len(record.input_map["Answer"].choices) == 2
