"""Stress suite: many sessions hammering one *shared* server stack.

Shared mode is the adversarial configuration: every session of an
architecture runs through one :class:`IntegrationServer` — one clock,
one warm pool, one result cache, one statement cache, one pair of RMI
channels — so correctness rests entirely on the component locks and the
statement-level serialization of the FDBS.  The suite asserts:

* row correctness — every session's rows are bit-identical to the same
  script run on an isolated shard (timings may interleave, rows not);
* counter conservation — interleaving-invariant totals (RMI hops,
  pool acquires, statement-cache lookups) are identical between a
  1-worker and an 8-worker run of the same workload: a lost or
  duplicated ``+=`` would break the equality;
* bounded-time joins — runs complete inside an explicit timeout, so a
  deadlock (e.g. a lock-ordering bug) fails fast instead of hanging;
* admission control — the block policy applies backpressure and the
  reject policy raises, with exact accounting.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.appsys.datagen import generate_enterprise_data
from repro.core.architectures import Architecture
from repro.errors import AdmissionError
from repro.serving.server import (
    AdmissionController,
    ConcurrentIntegrationServer,
    SessionManager,
)
from repro.serving.session import ClientSession
from repro.serving.workload import make_workload

SEED = 8181
JOIN_TIMEOUT = 90.0


@pytest.fixture(scope="module")
def data():
    return generate_enterprise_data()


def run_mode(data, mode, workers, seed=SEED, sessions=8, calls=6):
    scripts = make_workload(seed=seed, sessions=sessions, calls_per_session=calls)
    with ConcurrentIntegrationServer(
        workers=workers, mode=mode, data=data, pooling=True
    ) as server:
        result = server.run_workload(scripts, join_timeout=JOIN_TIMEOUT)
        stats = server.runtime_stats()
    return result, stats


class TestSharedServerStress:
    def test_rows_bit_identical_to_isolated_baseline(self, data):
        """Contention may reorder work, never change any session's rows."""
        expected, _ = run_mode(data, "isolated", workers=1)
        result, _ = run_mode(data, "shared", workers=8)
        assert result.row_sets == expected.row_sets
        assert result.calls == expected.calls

    def test_repeated_runs_are_stable(self, data):
        """Three fresh shared runs must agree row-for-row: zero flakes."""
        first, _ = run_mode(data, "shared", workers=8)
        for _ in range(2):
            again, _ = run_mode(data, "shared", workers=8)
            assert again.row_sets == first.row_sets

    def test_no_lost_or_duplicated_counter_updates(self, data):
        """Interleaving-invariant totals match between 1 and 8 workers.

        The same scripts do the same work whatever the interleaving, so
        per-architecture totals of RMI hops, pool acquires and
        statement-cache lookups are fixed; a torn ``+=`` under the
        8-worker run would make them diverge.  (Warm/cold and hit/miss
        *splits* legitimately depend on interleaving — only sums are
        compared.)
        """
        _, stats_seq = run_mode(data, "shared", workers=1)
        _, stats_conc = run_mode(data, "shared", workers=8)
        assert stats_seq.keys() == stats_conc.keys()
        for arch in stats_seq:
            seq, conc = stats_seq[arch], stats_conc[arch]
            for channel in ("rmi_udtf", "rmi_wfms"):
                assert conc[channel]["calls"] == seq[channel]["calls"], (
                    f"{arch}/{channel}: RMI hop count diverged under "
                    "concurrency"
                )
            pool_seq = seq["runtime_pool"]
            pool_conc = conc["runtime_pool"]
            assert (
                pool_conc["warm_hits"] + pool_conc["cold_starts"]
                == pool_seq["warm_hits"] + pool_seq["cold_starts"]
            ), f"{arch}: pool acquire total diverged under concurrency"

    def test_statement_cache_lookups_conserved(self, data):
        """hits + misses totals per architecture are interleaving-invariant."""

        def totals(workers):
            scripts = make_workload(seed=SEED, sessions=8, calls_per_session=6)
            with ConcurrentIntegrationServer(
                workers=workers, mode="shared", data=data
            ) as server:
                server.run_workload(scripts, join_timeout=JOIN_TIMEOUT)
                return {
                    arch.value: (
                        lambda s: s["hits"] + s["misses"]
                    )(srv.fdbs.statement_cache.stats())
                    for arch, srv in server._shared_servers.items()
                }

        assert totals(1) == totals(8)

    def test_bounded_join_and_no_deadlock(self, data):
        """A big mixed run completes within the join timeout — every
        worker returns, every call is accounted for."""
        scripts = make_workload(seed=SEED + 1, sessions=16, calls_per_session=8)
        expected_calls = sum(len(s.calls) for s in scripts)
        with ConcurrentIntegrationServer(
            workers=8, mode="shared", data=data, pooling=True, result_cache=True
        ) as server:
            result = server.run_workload(scripts, join_timeout=JOIN_TIMEOUT)
        assert result.calls == expected_calls
        assert result.admission["in_flight"] == 0
        assert result.admission["admitted"] == len(scripts)

    def test_many_threads_one_architecture_same_rows(self, data):
        """N raw threads × M calls against ONE shared server: every call
        returns the sequential answer."""
        with ConcurrentIntegrationServer(
            workers=4, mode="shared", data=data
        ) as server:
            shared = server._shared_server(Architecture.WFMS)
            expected = shared.call("GetNoSuppComp", "gearbox")
            threads, calls = 6, 5
            barrier = threading.Barrier(threads)

            def worker(index):
                barrier.wait(timeout=JOIN_TIMEOUT)
                return [
                    shared.call("GetNoSuppComp", "gearbox") for _ in range(calls)
                ]

            with ThreadPoolExecutor(max_workers=threads) as executor:
                futures = [executor.submit(worker, i) for i in range(threads)]
                for future in futures:
                    for rows in future.result(timeout=JOIN_TIMEOUT):
                        assert rows == expected


class TestAdmissionControl:
    def test_reject_policy_raises_when_full(self):
        controller = AdmissionController(capacity=1, queue_limit=1, policy="reject")
        controller.admit()
        controller.admit()
        with pytest.raises(AdmissionError):
            controller.admit()
        stats = controller.stats()
        assert stats["admitted"] == 2
        assert stats["rejected"] == 1
        controller.release()
        controller.admit()  # a freed slot admits again
        assert controller.stats()["admitted"] == 3

    def test_block_policy_applies_backpressure(self):
        controller = AdmissionController(capacity=1, queue_limit=0, policy="block")
        controller.admit()
        admitted_late = threading.Event()

        def blocked_submitter():
            controller.admit(timeout=JOIN_TIMEOUT)
            admitted_late.set()

        thread = threading.Thread(target=blocked_submitter)
        thread.start()
        assert not admitted_late.wait(timeout=0.2), (
            "the submitter got in while the controller was full"
        )
        controller.release()
        assert admitted_late.wait(timeout=JOIN_TIMEOUT)
        thread.join(timeout=JOIN_TIMEOUT)
        assert controller.stats()["blocked"] == 1

    def test_block_policy_times_out(self):
        controller = AdmissionController(capacity=1, policy="block")
        controller.admit()
        with pytest.raises(AdmissionError, match="timed out"):
            controller.admit(timeout=0.05)

    def test_release_without_admit_rejected(self):
        controller = AdmissionController(capacity=1)
        with pytest.raises(Exception):
            controller.release()

    def test_reject_workload_over_session_limit(self, data):
        """End to end: more scripts than admission slots under 'reject'."""
        scripts = make_workload(seed=SEED, sessions=6, calls_per_session=2)
        with ConcurrentIntegrationServer(
            workers=1,
            mode="shared",
            data=data,
            queue_limit=0,
            admission_policy="reject",
        ) as server:
            with pytest.raises(AdmissionError):
                server.run_workload(scripts, join_timeout=JOIN_TIMEOUT)


class TestSessionManager:
    def test_max_sessions_gate(self, data):
        manager = SessionManager(max_sessions=2)
        with ConcurrentIntegrationServer(
            workers=1, mode="shared", data=data
        ) as server:
            shared = server._shared_server(Architecture.WFMS)
            manager.register(ClientSession(0, Architecture.WFMS, shared))
            manager.register(ClientSession(1, Architecture.WFMS, shared))
            with pytest.raises(AdmissionError):
                manager.register(ClientSession(2, Architecture.WFMS, shared))
            manager.close(0)
            manager.register(ClientSession(3, Architecture.WFMS, shared))
            assert manager.open_count == 2
            assert manager.total_opened == 3
