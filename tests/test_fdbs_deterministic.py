"""DETERMINISTIC table functions: the foreign-function optimization
extension (cf. Chaudhuri/Shim, the paper's [10])."""

import pytest

from repro.fdbs import ast
from repro.fdbs.engine import Database
from repro.fdbs.functions import make_external_function
from repro.fdbs.parser import parse_statement
from repro.fdbs.types import INTEGER
from repro.sysmodel.machine import Machine


def make_db(machine=None, deterministic=False):
    db = Database("det", machine=machine)
    calls = {"n": 0}

    def impl(x):
        calls["n"] += 1
        return x * 2

    db.register_external_function(
        make_external_function(
            "F", [("x", INTEGER)], [("y", INTEGER)], impl,
            deterministic=deterministic,
        )
    )
    db.execute("CREATE TABLE seeds (s INT)")
    db.execute("INSERT INTO seeds VALUES (1), (1), (1), (2)")
    return db, calls


class TestParsing:
    def test_deterministic_clause_parsed(self):
        stmt = parse_statement(
            "CREATE FUNCTION f (x INT) RETURNS TABLE (y INT) "
            "LANGUAGE JAVA EXTERNAL NAME 'e' FENCED DETERMINISTIC"
        )
        assert isinstance(stmt, ast.CreateExternalFunction)
        assert stmt.deterministic

    def test_not_deterministic_is_the_default(self):
        stmt = parse_statement(
            "CREATE FUNCTION f (x INT) RETURNS TABLE (y INT) "
            "LANGUAGE JAVA EXTERNAL NAME 'e' NOT DETERMINISTIC"
        )
        assert not stmt.deterministic

    def test_sql_function_deterministic(self):
        stmt = parse_statement(
            "CREATE FUNCTION f (x INT) RETURNS TABLE (y INT) DETERMINISTIC "
            "LANGUAGE SQL RETURN SELECT f.x + 0 AS y"
        )
        assert isinstance(stmt, ast.CreateSqlFunction)
        assert stmt.deterministic

    def test_render_round_trip(self):
        text = (
            "CREATE FUNCTION f (x INTEGER) RETURNS TABLE (y INTEGER) "
            "LANGUAGE JAVA EXTERNAL NAME 'e' FENCED DETERMINISTIC"
        )
        assert parse_statement(parse_statement(text).render()).deterministic


class TestCaching:
    def test_non_deterministic_reinvokes_per_row(self):
        db, calls = make_db(deterministic=False)
        db.execute("SELECT r.y FROM seeds, TABLE (F(s)) AS r")
        assert calls["n"] == 4

    def test_deterministic_caches_equal_arguments(self):
        db, calls = make_db(deterministic=True)
        result = db.execute("SELECT r.y FROM seeds, TABLE (F(s)) AS r")
        assert calls["n"] == 2  # distinct argument values only
        assert sorted(result.rows) == [(2,), (2,), (2,), (4,)]

    def test_cache_saves_fenced_invocation_costs(self):
        machine_plain = Machine()
        plain, _ = make_db(machine_plain, deterministic=False)
        machine_det = Machine()
        det, _ = make_db(machine_det, deterministic=True)
        from repro.wrapper.udtf_runtime import FencedFunctionRuntime

        plain.function_runtime = FencedFunctionRuntime(plain, machine_plain)
        det.function_runtime = FencedFunctionRuntime(det, machine_det)
        sql = "SELECT r.y FROM seeds, TABLE (F(s)) AS r"

        def hot(db, machine):
            db.execute(sql)
            start = machine.clock.now
            db.execute(sql)
            return machine.clock.now - start

        slow = hot(plain, machine_plain)
        fast = hot(det, machine_det)
        # Two of four fenced invocations are served from the cache.
        per_invocation = (
            machine_det.costs.udtf_prepare_access
            + machine_det.costs.rmi_call
            + machine_det.costs.controller_dispatch
            + machine_det.costs.udtf_finish_access
            + machine_det.costs.rmi_return
        )
        assert slow - fast >= 2 * per_invocation * 0.95

    def test_results_identical_with_and_without_caching(self):
        plain, _ = make_db(deterministic=False)
        cached, _ = make_db(deterministic=True)
        sql = "SELECT s, r.y FROM seeds, TABLE (F(s)) AS r ORDER BY s, r.y"
        assert plain.execute(sql).rows == cached.execute(sql).rows
