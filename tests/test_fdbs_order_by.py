"""ORDER BY resolution: output aliases, hidden keys, positions."""

import pytest

from repro.errors import PlanError
from repro.fdbs.engine import Database


@pytest.fixture()
def db():
    database = Database("ob")
    database.execute_script(
        """
        CREATE TABLE t (name VARCHAR(10), relia INT, qual INT);
        INSERT INTO t VALUES
            ('a', 3, 9), ('b', 1, 7), ('c', 2, 7), ('d', 2, 1)
        """
    )
    return database


def test_order_by_non_selected_column(db):
    result = db.execute("SELECT name FROM t ORDER BY relia")
    assert result.columns == ["name"]
    assert result.rows == [("b",), ("c",), ("d",), ("a",)]


def test_order_by_expression_over_non_selected_columns(db):
    result = db.execute("SELECT name FROM t ORDER BY relia * 10 + qual DESC")
    assert result.rows[0] == ("a",)


def test_order_by_mixed_hidden_and_selected(db):
    result = db.execute("SELECT name, qual FROM t ORDER BY qual DESC, relia")
    assert result.rows == [("a", 9), ("b", 7), ("c", 7), ("d", 1)]


def test_order_by_select_alias(db):
    result = db.execute("SELECT relia + qual AS score, name FROM t ORDER BY score")
    assert [row[0] for row in result.rows] == sorted(
        row[0] for row in result.rows
    )


def test_order_by_alias_expression(db):
    result = db.execute("SELECT relia AS r, name FROM t ORDER BY r * -1, name")
    assert result.rows[0][0] == 3


def test_order_by_position_still_works(db):
    by_pos = db.execute("SELECT name, relia FROM t ORDER BY 2, 1")
    by_name = db.execute("SELECT name, relia FROM t ORDER BY relia, name")
    assert by_pos.rows == by_name.rows


def test_order_by_hidden_with_distinct_rejected(db):
    with pytest.raises(PlanError, match="DISTINCT"):
        db.execute("SELECT DISTINCT name FROM t ORDER BY relia")


def test_order_by_distinct_on_selected_allowed(db):
    result = db.execute("SELECT DISTINCT relia FROM t ORDER BY relia DESC")
    assert result.rows == [(3,), (2,), (1,)]


def test_order_by_unresolvable_rejected(db):
    with pytest.raises(PlanError):
        db.execute("SELECT name FROM t ORDER BY nonexistent")


def test_limit_applies_after_hidden_sort(db):
    result = db.execute("SELECT name FROM t ORDER BY relia DESC FETCH FIRST 1 ROWS ONLY")
    assert result.rows == [("a",)]


def test_hidden_keys_do_not_leak_into_output(db):
    result = db.execute("SELECT name FROM t ORDER BY relia")
    assert result.columns == ["name"]
    assert all(len(row) == 1 for row in result.rows)


def test_aggregate_output_names_are_clean(db):
    result = db.execute(
        "SELECT relia, COUNT(*) AS c, MAX(qual) FROM t GROUP BY relia ORDER BY relia"
    )
    assert result.columns == ["relia", "c", "COL3"]


def test_order_by_aggregate_not_in_select(db):
    result = db.execute(
        "SELECT relia FROM t GROUP BY relia ORDER BY COUNT(*) DESC, relia"
    )
    assert result.rows[0] == (2,)  # relia=2 appears twice


def test_union_order_by_output_only(db):
    result = db.execute(
        "SELECT name FROM t WHERE relia = 1 UNION SELECT name FROM t "
        "WHERE relia = 3 ORDER BY name DESC"
    )
    assert result.rows == [("b",), ("a",)]
