"""Application systems: encapsulation, signatures, scenario functions."""

import pytest

from repro.appsys import (
    ProductDataManagementSystem,
    PurchasingSystem,
    StockKeepingSystem,
    generate_enterprise_data,
)
from repro.appsys.purchasing import compute_grade, decide
from repro.errors import EncapsulationError, SignatureError, UnknownFunctionError
from repro.simtime.costs import DEFAULT_COSTS
from repro.sysmodel.machine import Machine


@pytest.fixture(scope="module")
def systems(data):
    return (
        StockKeepingSystem(None, data),
        PurchasingSystem(None, data),
        ProductDataManagementSystem(None, data),
    )


class TestEncapsulation:
    def test_database_attribute_raises(self, systems):
        for system in systems:
            with pytest.raises(EncapsulationError):
                _ = system.database

    def test_functions_are_the_only_access_path(self, systems):
        stock, _, _ = systems
        assert stock.call("GetQuality", 1234) == [(8,)]


class TestSignatures:
    def test_unknown_function_rejected(self, systems):
        with pytest.raises(UnknownFunctionError):
            systems[0].call("NoSuchFn")

    def test_wrong_arity_rejected(self, systems):
        with pytest.raises(SignatureError):
            systems[0].call("GetQuality", 1, 2)

    def test_argument_coercion(self, systems):
        # ints flow into INTEGER params; strings do not.
        with pytest.raises(Exception):
            systems[0].call("GetQuality", "not a number")

    def test_signature_rendering(self, systems):
        stock = systems[0]
        text = stock.function("GetNumber").signature()
        assert "GetNumber(SupplierNo INTEGER, CompNo INTEGER)" in text

    def test_catalog_summary_lists_all(self, systems):
        summary = systems[0].catalog_summary()
        for fn in systems[0].functions():
            assert fn.name in summary


class TestStockKeeping:
    def test_get_quality_pinned_supplier(self, systems):
        assert systems[0].call("GetQuality", 1234) == [(8,)]

    def test_get_quality_unknown_supplier_empty(self, systems):
        assert systems[0].call("GetQuality", 99999) == []

    def test_get_number(self, systems, data):
        record = next(r for r in data.stock if r.supplier_no == 1234)
        rows = systems[0].call("GetNumber", 1234, record.comp_no)
        assert rows == [(record.number,)]

    def test_get_supplier_returns_primary(self, systems, data):
        rows = systems[0].call("GetSupplier", 1)
        candidates = {r.supplier_no for r in data.stock if r.comp_no == 1}
        assert rows[0][0] == min(candidates)

    def test_get_stock_components_table_valued(self, systems, data):
        rows = systems[0].call("GetStockComponents", 1234)
        expected = sorted(
            (r.comp_no, r.number) for r in data.stock if r.supplier_no == 1234
        )
        assert rows == expected


class TestPurchasing:
    def test_reliability(self, systems):
        assert systems[1].call("GetReliability", 1234) == [(7,)]

    def test_supplier_no_by_name_roundtrip(self, systems):
        number = systems[1].call("GetSupplierNo", "ACME Industrial")[0][0]
        assert number == 1234
        assert systems[1].call("GetSupplierName", number) == [("ACME Industrial",)]

    def test_grade_formula(self):
        assert compute_grade(8, 7) == (2 * 8 + 7 + 1) // 3
        assert compute_grade(None, 7) is None
        assert 1 <= compute_grade(1, 1) <= 10
        assert compute_grade(10, 10) == 10

    def test_decide_thresholds(self):
        assert decide(8, 1) == "BUY"
        assert decide(5, 1) == "NEGOTIATE"
        assert decide(2, 1) == "REJECT"
        assert decide(8, None) == "UNKNOWN COMPONENT"
        assert decide(None, 1) == "NO GRADE"

    def test_discount_lookup_is_filtered_and_ordered(self, systems, data):
        rows = systems[1].call("GetCompSupp4Discount", 20)
        expected = sorted(
            (o.comp_no, o.supplier_no) for o in data.discounts if o.discount >= 20
        )
        assert rows == expected


class TestPdm:
    def test_comp_no_and_name_roundtrip(self, systems):
        number = systems[2].call("GetCompNo", "gearbox")[0][0]
        assert number == 1
        assert systems[2].call("GetCompName", number) == [("gearbox",)]

    def test_sub_components(self, systems, data):
        rows = systems[2].call("GetSubCompNo", 1)
        expected = sorted((sub,) for comp, sub in data.bom if comp == 1)
        assert rows == expected
        assert rows  # gearbox is guaranteed sub-components

    def test_max_comp_no(self, systems, data):
        assert systems[2].call("GetMaxCompNo")[0][0] == len(data.components)


class TestCosts:
    def test_call_charges_local_function_cost(self):
        machine = Machine()
        stock = StockKeepingSystem(machine, generate_enterprise_data())
        machine.ensure_appsys("stock")
        before = machine.clock.now
        stock.call("GetQuality", 1234)
        elapsed = machine.clock.now - before
        assert elapsed >= DEFAULT_COSTS.local_function_base

    def test_first_call_pays_appsys_boot(self):
        machine = Machine()
        stock = StockKeepingSystem(machine, generate_enterprise_data())
        before = machine.clock.now
        stock.call("GetQuality", 1234)
        first = machine.clock.now - before
        before = machine.clock.now
        stock.call("GetQuality", 1234)
        second = machine.clock.now - before
        assert first - second == pytest.approx(DEFAULT_COSTS.appsys_boot)

    def test_call_count_tracked(self, systems):
        stock = systems[0]
        before = stock.call_count
        stock.call("GetQuality", 1234)
        assert stock.call_count == before + 1


class TestDatagen:
    def test_deterministic_for_same_seed(self):
        a = generate_enterprise_data(seed=5)
        b = generate_enterprise_data(seed=5)
        assert a.suppliers == b.suppliers
        assert a.stock == b.stock
        assert a.bom == b.bom

    def test_different_seeds_differ(self):
        a = generate_enterprise_data(seed=1)
        b = generate_enterprise_data(seed=2)
        assert a.stock != b.stock

    def test_pinned_entities(self, data):
        assert data.supplier_by_no(1234).name == "ACME Industrial"
        assert data.component_by_name("gearbox").comp_no == 1

    def test_every_component_stocked(self, data):
        stocked = {r.comp_no for r in data.stock}
        assert {c.comp_no for c in data.components} <= stocked

    def test_bom_is_acyclic_by_construction(self, data):
        assert all(comp < sub for comp, sub in data.bom)

    def test_size_parameters_respected(self):
        small = generate_enterprise_data(n_suppliers=3, n_components=5)
        assert len(small.suppliers) == 3
        assert len(small.components) == 5

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_enterprise_data(n_suppliers=1)
