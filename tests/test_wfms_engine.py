"""Workflow engine: navigation, parallelism, dead paths, loops, errors."""

import pytest

from repro.errors import ActivityFailedError, ContainerError, NavigationError
from repro.fdbs.types import INTEGER, VARCHAR
from repro.simtime.costs import DEFAULT_COSTS
from repro.sysmodel.machine import Machine
from repro.wfms.builder import ProcessBuilder
from repro.wfms.engine import WorkflowEngine
from repro.wfms.instance import ActivityState, ProcessState
from repro.wfms.model import Condition
from repro.wfms.programs import ProgramRegistry


def make_registry():
    registry = ProgramRegistry()
    registry.register_program("math.double", lambda inp: {"Y": inp["X"] * 2})
    registry.register_program("math.add", lambda inp: {"S": inp["A"] + inp["B"]})
    registry.register_program("math.one", lambda inp: {"V": 1})
    registry.register_program("boom", lambda inp: 1 / 0)
    registry.register_helper("helper.negate", lambda inp: {"N": -inp["V"]})
    return registry


def engine(machine=None):
    return WorkflowEngine(make_registry(), machine)


def double_chain(name="Chain"):
    """X -> double -> double."""
    b = ProcessBuilder(name, [("X", INTEGER)], [("Y", INTEGER)])
    b.program_activity(
        "D1", "math.double", [("X", INTEGER)], [("Y", INTEGER)],
        {"X": b.from_input("X")},
    )
    b.program_activity(
        "D2", "math.double", [("X", INTEGER)], [("Y", INTEGER)],
        {"X": b.from_activity("D1", "Y")},
    )
    b.sequence("D1", "D2")
    b.map_output("Y", b.from_activity("D2", "Y"))
    return b.build()


def test_sequential_dataflow():
    instance = engine().run_process(double_chain(), {"X": 3})
    assert instance.state is ProcessState.FINISHED
    assert instance.output.as_dict() == {"Y": 12}


def test_activity_instances_recorded():
    instance = engine().run_process(double_chain(), {"X": 1})
    assert instance.activity("D1").state is ActivityState.FINISHED
    assert instance.activity("D2").state is ActivityState.FINISHED


def test_constant_input():
    b = ProcessBuilder("P", [("X", INTEGER)], [("S", INTEGER)])
    b.program_activity(
        "Add", "math.add", [("A", INTEGER), ("B", INTEGER)], [("S", INTEGER)],
        {"A": b.from_input("X"), "B": b.constant(100)},
    )
    b.map_output("S", b.from_activity("Add", "S"))
    instance = engine().run_process(b.build(), {"X": 1})
    assert instance.output.as_dict() == {"S": 101}


def test_helper_activity():
    b = ProcessBuilder("P", [("X", INTEGER)], [("N", INTEGER)])
    b.program_activity(
        "One", "math.one", [("X", INTEGER)], [("V", INTEGER)],
        {"X": b.from_input("X")},
    )
    b.helper_activity(
        "Neg", "helper.negate", [("V", INTEGER)], [("N", INTEGER)],
        {"V": b.from_activity("One", "V")},
    )
    b.sequence("One", "Neg")
    b.map_output("N", b.from_activity("Neg", "N"))
    instance = engine().run_process(b.build(), {"X": 0})
    assert instance.output.as_dict() == {"N": -1}


def parallel_pair():
    b = ProcessBuilder("Par", [("X", INTEGER)], [("A", INTEGER), ("B", INTEGER)])
    b.program_activity(
        "P1", "math.double", [("X", INTEGER)], [("Y", INTEGER)],
        {"X": b.from_input("X")},
    )
    b.program_activity(
        "P2", "math.double", [("X", INTEGER)], [("Y", INTEGER)],
        {"X": b.from_input("X")},
    )
    b.map_output("A", b.from_activity("P1", "Y"))
    b.map_output("B", b.from_activity("P2", "Y"))
    return b.build()


def test_parallel_activities_overlap_in_virtual_time():
    machine = Machine()
    wf_engine = engine(machine)
    sequential = double_chain()
    parallel = parallel_pair()

    start = machine.clock.now
    wf_engine.run_process(sequential, {"X": 1})
    sequential_elapsed = machine.clock.now - start

    start = machine.clock.now
    wf_engine.run_process(parallel, {"X": 1})
    parallel_elapsed = machine.clock.now - start

    # Both have two program activities; the parallel one saves one full
    # activity execution (JVM boot + containers).
    assert parallel_elapsed < sequential_elapsed
    saved = sequential_elapsed - parallel_elapsed
    assert saved >= DEFAULT_COSTS.wf_activity_jvm


def test_parallel_activities_share_start_time():
    machine = Machine()
    instance = engine(machine).run_process(parallel_pair(), {"X": 1})
    assert instance.activity("P1").start_time == instance.activity("P2").start_time


def test_makespan_equals_critical_path_for_sequence():
    machine = Machine()
    instance = engine(machine).run_process(double_chain(), {"X": 1})
    d1, d2 = instance.activity("D1"), instance.activity("D2")
    assert d2.start_time == pytest.approx(d1.finish_time)


def test_transition_condition_skips_dead_path():
    b = ProcessBuilder("Cond", [("X", INTEGER)], [("Y", INTEGER)])
    b.program_activity(
        "D1", "math.double", [("X", INTEGER)], [("Y", INTEGER)],
        {"X": b.from_input("X")},
    )
    b.program_activity(
        "D2", "math.double", [("X", INTEGER)], [("Y", INTEGER)],
        {"X": b.from_activity("D1", "Y")},
    )
    b.connect("D1", "D2", Condition("Y", ">", 100))
    b.map_output("Y", b.from_activity("D1", "Y"))
    instance = engine().run_process(b.build(), {"X": 1})
    assert instance.activity("D2").state is ActivityState.SKIPPED
    assert instance.output.as_dict() == {"Y": 2}


def test_dead_path_propagates_transitively():
    b = ProcessBuilder("Dead", [("X", INTEGER)], [("Y", INTEGER)])
    for name in ("A", "B", "C"):
        b.program_activity(
            name, "math.double", [("X", INTEGER)], [("Y", INTEGER)],
            {"X": b.from_input("X")},
        )
    b.connect("A", "B", Condition("Y", "<", 0))  # always false
    b.connect("B", "C")
    b.map_output("Y", b.from_activity("A", "Y"))
    instance = engine().run_process(b.build(), {"X": 1})
    assert instance.activity("B").state is ActivityState.SKIPPED
    assert instance.activity("C").state is ActivityState.SKIPPED


def test_failing_activity_fails_process():
    b = ProcessBuilder("Fail", [("X", INTEGER)], [("Y", INTEGER)])
    b.program_activity(
        "Boom", "boom", [("X", INTEGER)], [("Y", INTEGER)],
        {"X": b.from_input("X")},
    )
    b.map_output("Y", b.from_activity("Boom", "Y"))
    wf_engine = engine()
    with pytest.raises(ActivityFailedError, match="Boom"):
        wf_engine.run_process(b.build(), {"X": 1})


def test_unexpected_output_member_rejected():
    registry = ProgramRegistry()
    registry.register_program("bad.extra", lambda inp: {"Y": 1, "Zzz": 2})
    b = ProcessBuilder("P", [("X", INTEGER)], [("Y", INTEGER)])
    b.program_activity(
        "A", "bad.extra", [("X", INTEGER)], [("Y", INTEGER)],
        {"X": b.from_input("X")},
    )
    b.map_output("Y", b.from_activity("A", "Y"))
    with pytest.raises((ContainerError, ActivityFailedError)):
        WorkflowEngine(registry).run_process(b.build(), {"X": 1})


def test_container_failure_leaves_instance_failed():
    """Regression: run_process caught only ActivityFailedError, so a
    ContainerError (mis-wired mapping) escaped with the instance stuck
    RUNNING — no finish time, no error, no 'process failed' audit."""
    registry = ProgramRegistry()
    registry.register_program("bad.extra", lambda inp: {"Y": 1, "Zzz": 2})
    b = ProcessBuilder("P", [("X", INTEGER)], [("Y", INTEGER)])
    b.program_activity(
        "A", "bad.extra", [("X", INTEGER)], [("Y", INTEGER)],
        {"X": b.from_input("X")},
    )
    b.map_output("Y", b.from_activity("A", "Y"))
    wf_engine = WorkflowEngine(registry, Machine())
    with pytest.raises(ContainerError):
        wf_engine.run_process(b.build(), {"X": 1})
    instance = wf_engine.instances[-1]
    assert instance.state is ProcessState.FAILED
    assert instance.finish_time is not None
    assert isinstance(instance.error, ContainerError)
    events = [e.event for e in wf_engine.audit.for_process("P")]
    assert events[-1] == "process failed"


def test_navigation_failure_leaves_instance_failed():
    """Same regression for NavigationError escaping the navigator."""
    registry = make_registry()
    b = ProcessBuilder("P", [("X", INTEGER)], [("Y", INTEGER)])
    b.program_activity(
        "A", "math.double", [("X", INTEGER)], [("Y", INTEGER)],
        {"X": b.from_input("X")},
    )
    b.map_output("Y", b.from_activity("A", "Y"))
    process = b.build()
    wf_engine = WorkflowEngine(registry, Machine())

    def broken_resolve(instance, source, where):
        raise NavigationError("wiring destroyed mid-navigation")

    wf_engine._resolve = broken_resolve
    with pytest.raises(NavigationError):
        wf_engine.run_process(process, {"X": 1})
    instance = wf_engine.instances[-1]
    assert instance.state is ProcessState.FAILED
    assert instance.finish_time is not None
    assert isinstance(instance.error, NavigationError)


def test_audit_trail_records_lifecycle():
    wf_engine = engine()
    wf_engine.run_process(double_chain(), {"X": 1})
    events = [e.event for e in wf_engine.audit.for_process("Chain")]
    assert events[0] == "process started"
    assert events[-1] == "process finished"
    assert events.count("activity started") == 2
    assert events.count("activity finished") == 2


class TestLoops:
    def counting_loop(self, collect=False):
        """Sub-process: emit V=counter, advance, until counter > End."""
        registry = make_registry()
        registry.register_program(
            "loop.emit", lambda inp: {"V": inp["I"], "ROWS": [(inp["I"],)]}
        )
        registry.register_helper(
            "loop.advance",
            lambda inp: {
                "NextI": inp["I"] + 1,
                "Done": 1 if inp["I"] + 1 > inp["End"] else 0,
            },
        )
        body = ProcessBuilder(
            "Body", [("I", INTEGER), ("End", INTEGER)],
            [("V", INTEGER), ("NextI", INTEGER), ("Done", INTEGER)],
        )
        body.program_activity(
            "Emit", "loop.emit", [("I", INTEGER)], [("V", INTEGER)],
            {"I": body.from_input("I")},
        )
        body.helper_activity(
            "Advance", "loop.advance",
            [("I", INTEGER), ("End", INTEGER)],
            [("NextI", INTEGER), ("Done", INTEGER)],
            {"I": body.from_input("I"), "End": body.from_input("End")},
        )
        body.sequence("Emit", "Advance")
        body.map_output("V", body.from_activity("Emit", "V"))
        body.map_output("NextI", body.from_activity("Advance", "NextI"))
        body.map_output("Done", body.from_activity("Advance", "Done"))
        if collect:
            body.result_rows_from("Emit")
        body_def = body.build()

        outer = ProcessBuilder(
            "Loop", [("Start", INTEGER), ("End", INTEGER)], [("V", INTEGER)]
        )
        outer.block_activity(
            "Iterate", body_def,
            input_map={
                "I": outer.from_input("Start"),
                "End": outer.from_input("End"),
            },
            until=Condition("Done", "=", 1),
            carry={"I": "NextI"},
            collect_rows=collect,
        )
        outer.map_output("V", outer.from_activity("Iterate", "V"))
        if collect:
            outer._definition.rows_from = "Iterate"
        return registry, outer.build()

    def test_do_until_runs_expected_iterations(self):
        registry, process = self.counting_loop()
        wf_engine = WorkflowEngine(registry)
        instance = wf_engine.run_process(process, {"Start": 1, "End": 4})
        assert instance.activity("Iterate").iterations == 4
        assert instance.output.as_dict() == {"V": 4}  # last iteration's value

    def test_do_until_runs_at_least_once(self):
        registry, process = self.counting_loop()
        instance = WorkflowEngine(registry).run_process(
            process, {"Start": 5, "End": 1}
        )
        assert instance.activity("Iterate").iterations == 1

    def test_collect_rows_concatenates_iterations(self):
        registry, process = self.counting_loop(collect=True)
        instance = WorkflowEngine(registry).run_process(
            process, {"Start": 1, "End": 3}
        )
        assert instance.output.rows == [(1,), (2,), (3,)]

    def test_loop_time_scales_linearly(self):
        registry, process = self.counting_loop()
        machine = Machine()
        wf_engine = WorkflowEngine(registry, machine)

        def run(k):
            start = machine.clock.now
            wf_engine.run_process(process, {"Start": 1, "End": k})
            return machine.clock.now - start

        t2, t4, t8 = run(2), run(4), run(8)
        slope_a = (t4 - t2) / 2  # su per extra iteration
        slope_b = (t8 - t4) / 4
        assert slope_a == pytest.approx(slope_b, rel=0.01)

    def test_runaway_loop_guarded(self):
        registry, process = self.counting_loop()
        block = process.activity("Iterate")
        block.until = Condition("Done", "=", 99)  # never true
        block.max_iterations = 10
        with pytest.raises(ActivityFailedError, match="iterations"):
            WorkflowEngine(registry).run_process(process, {"Start": 1, "End": 2})
