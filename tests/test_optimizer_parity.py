"""Optimizer on/off parity: bit-identical rows across architectures."""

import pytest

from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario

ARCHITECTURES = [
    Architecture.WFMS,
    Architecture.SIMPLE_UDTF,
    Architecture.ENHANCED_SQL_UDTF,
    Architecture.ENHANCED_JAVA_UDTF,
]

#: Skewed supplier numbers: repeats make the bind join's dedup matter.
WATCH_SUPPLIERS = [1234, 5001, 1234, 5002, 5001, 5003, 1234, 5004, 5002, 1234]

QUERY = (
    "SELECT w.pk, w.supplier_no, q.Qual "
    "FROM watch AS w, TABLE (GetQuality(w.supplier_no)) AS q "
    "ORDER BY w.pk"
)


def prepare(architecture, optimizer="syntactic", runstats=True):
    """A scenario FDBS with a local ``watch`` table over supplier numbers."""
    scenario = build_scenario(architecture, optimizer=optimizer)
    fdbs = scenario.server.fdbs
    fdbs.execute(
        "CREATE TABLE watch (pk INT PRIMARY KEY, supplier_no INT)"
    )
    for pk, supplier_no in enumerate(WATCH_SUPPLIERS):
        fdbs.execute(
            "INSERT INTO watch VALUES (?, ?)", params=[pk, supplier_no]
        )
    if runstats:
        fdbs.execute("RUNSTATS watch")
    return scenario


class TestRowParity:
    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    @pytest.mark.parametrize("mode", ["row", "batch", "columnar"])
    def test_rows_bit_identical(self, architecture, mode):
        scenario = prepare(architecture)
        fdbs = scenario.server.fdbs
        fdbs.set_execution_mode(mode)
        baseline = fdbs.execute(QUERY).rows
        assert len(baseline) == len(WATCH_SUPPLIERS)
        fdbs.set_optimizer("cost")
        assert fdbs.execute(QUERY).rows == baseline
        fdbs.set_optimizer("syntactic")
        assert fdbs.execute(QUERY).rows == baseline

    def test_cost_mode_uses_a_udtf_bind_join(self):
        scenario = prepare(Architecture.WFMS, optimizer="cost")
        fdbs = scenario.server.fdbs
        text = fdbs.explain(QUERY)
        assert "BindJoin(TABLE(GetQuality)" in text

    def test_udtf_bind_join_saves_time(self):
        def hot(optimizer):
            scenario = prepare(Architecture.WFMS, optimizer=optimizer)
            fdbs = scenario.server.fdbs
            fdbs.execute(QUERY)  # warm caches and processes
            rows, elapsed = scenario.server.elapsed(fdbs.execute, QUERY)
            return rows.rows, elapsed

        rows_cost, fast = hot("cost")
        rows_syntactic, slow = hot("syntactic")
        assert rows_cost == rows_syntactic
        # 4 distinct keys invoked once each under one prepare/finish fence
        # instead of per-row invocation bookkeeping.
        assert fast < slow


class TestStatsAbsentParity:
    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    def test_time_and_rows_identical_without_stats(self, architecture):
        outcomes = {}
        for optimizer in ("syntactic", "cost"):
            scenario = prepare(architecture, optimizer=optimizer, runstats=False)
            fdbs = scenario.server.fdbs
            fdbs.execute(QUERY)  # same warm-up on both sides
            rows, elapsed = scenario.server.elapsed(fdbs.execute, QUERY)
            outcomes[optimizer] = (rows.rows, elapsed)
        assert outcomes["cost"] == outcomes["syntactic"]
