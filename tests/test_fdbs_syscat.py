"""SYSCAT system-catalog views."""

import pytest

from repro.fdbs.engine import Database
from repro.fdbs.federation import DatabaseEndpoint
from repro.fdbs.functions import make_external_function
from repro.fdbs.types import INTEGER


@pytest.fixture()
def db():
    database = Database("syscat")
    database.execute("CREATE TABLE t (a INT NOT NULL, b VARCHAR(10))")
    database.execute("CREATE VIEW v AS SELECT a FROM t")
    database.register_external_function(
        make_external_function(
            "F", [("x", INTEGER)], [("y", INTEGER)], lambda x: x,
            deterministic=True,
        )
    )
    database.execute(
        "CREATE FUNCTION G (n INT) RETURNS TABLE (m INT) LANGUAGE SQL "
        "RETURN SELECT G.n + 1 AS m"
    )
    database.execute(
        "CREATE PROCEDURE p (IN a INT, OUT b INT) LANGUAGE SQL BEGIN "
        "SET b = a; END"
    )
    return database


def test_syscat_tables_lists_tables_views_nicknames(db):
    remote = Database("remote")
    remote.execute("CREATE TABLE r (x INT)")
    db.execute("CREATE WRAPPER w")
    db.execute("CREATE SERVER s WRAPPER w")
    db.attach_endpoint("s", DatabaseEndpoint(remote))
    db.execute("CREATE NICKNAME n FOR s.r")
    rows = db.execute("SELECT name, type FROM SYSCAT_TABLES ORDER BY name").rows
    assert ("t", "T") in rows
    assert ("v", "V") in rows
    assert ("n", "N") in rows


def test_syscat_columns(db):
    rows = db.execute(
        "SELECT colname, colno, typename, nullable FROM SYSCAT_COLUMNS "
        "WHERE tabname = 't' ORDER BY colno"
    ).rows
    assert rows == [("a", 1, "INTEGER", "N"), ("b", 2, "VARCHAR(10)", "Y")]


def test_syscat_functions(db):
    rows = db.execute(
        "SELECT name, lang, deterministic FROM SYSCAT_FUNCTIONS ORDER BY name"
    ).rows
    assert ("F", "JAVA", "Y") in rows
    assert ("G", "SQL", "N") in rows


def test_syscat_procedures(db):
    rows = db.execute("SELECT * FROM SYSCAT_PROCEDURES").rows
    assert rows == [("p", 2)]


def test_syscat_views_contains_definition(db):
    text = db.execute("SELECT text FROM SYSCAT_VIEWS WHERE name = 'v'").scalar()
    assert "SELECT a FROM t" in text


def test_ddl_immediately_visible(db):
    before = db.execute("SELECT COUNT(*) FROM SYSCAT_TABLES").scalar()
    db.execute("CREATE TABLE extra (x INT)")
    after = db.execute("SELECT COUNT(*) FROM SYSCAT_TABLES").scalar()
    assert after == before + 1


def test_syscat_composable_with_predicates_and_joins(db):
    rows = db.execute(
        "SELECT t.name, c.colname FROM SYSCAT_TABLES AS t, SYSCAT_COLUMNS AS c "
        "WHERE t.name = c.tabname AND t.type = 'T' ORDER BY c.colno"
    ).rows
    assert rows == [("t", "a"), ("t", "b")]


def test_user_table_shadows_nothing(db):
    # A real user table named like a SYSCAT view wins (catalog first).
    db.execute("CREATE TABLE SYSCAT_TABLES (x INT)")
    db.execute("INSERT INTO SYSCAT_TABLES VALUES (42)")
    assert db.execute("SELECT x FROM SYSCAT_TABLES").rows == [(42,)]


def test_explain_shows_syscat_scan(db):
    text = db.explain("SELECT * FROM SYSCAT_FUNCTIONS")
    assert "SyscatScan(SYSCAT_FUNCTIONS)" in text
