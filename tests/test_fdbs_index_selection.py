"""Index selection: equality conjuncts become hash-index probes."""

import pytest

from repro.fdbs.engine import Database


@pytest.fixture()
def db():
    database = Database("idx")
    database.execute(
        "CREATE TABLE t (k INT PRIMARY KEY, grp INT, label VARCHAR(10))"
    )
    for index in range(50):
        database.execute(
            "INSERT INTO t VALUES (?, ?, ?)",
            params=[index, index % 5, f"L{index % 5}"],
        )
    return database


def plan_text(db, sql):
    return "\n".join(r[0] for r in db.execute("EXPLAIN " + sql).rows)


def test_equality_literal_uses_index(db):
    text = plan_text(db, "SELECT k FROM t WHERE grp = 3")
    assert "IndexLookup(t.grp)" in text
    assert "Filter(WHERE)" not in text  # the conjunct was consumed


def test_results_identical_with_and_without_index(db):
    sql = "SELECT k FROM t WHERE grp = 3 ORDER BY k"
    with_index = db.execute(sql).rows
    db.index_selection_enabled = False
    without = db.execute(sql).rows
    assert with_index == without
    assert len(with_index) == 10


def test_parameter_probe(db):
    rows = db.execute("SELECT COUNT(*) FROM t WHERE grp = ?", params=[2])
    assert rows.scalar() == 10
    assert "IndexLookup" in plan_text(db, "SELECT k FROM t WHERE grp = ?")


def test_remaining_conjuncts_stay_in_filter(db):
    text = plan_text(db, "SELECT k FROM t WHERE grp = 1 AND k > 10")
    assert "IndexLookup(t.grp)" in text
    assert "Filter(WHERE)" in text
    rows = db.execute("SELECT k FROM t WHERE grp = 1 AND k > 10 ORDER BY k").rows
    assert rows == [(11,), (16,), (21,), (26,), (31,), (36,), (41,), (46,)]


def test_character_columns_not_probed(db):
    # CHAR-padding comparison semantics make exact-hash probes unsafe.
    text = plan_text(db, "SELECT k FROM t WHERE label = 'L1'")
    assert "IndexLookup" not in text
    assert "TableScan(t)" in text


def test_null_literal_not_probed(db):
    text = plan_text(db, "SELECT k FROM t WHERE grp = NULL")
    assert "IndexLookup" not in text
    assert db.execute("SELECT k FROM t WHERE grp = NULL").rows == []


def test_null_parameter_yields_no_rows(db):
    assert db.execute("SELECT k FROM t WHERE grp = ?", params=[None]).rows == []


def test_one_probe_per_scan_rest_filtered(db):
    sql = "SELECT k FROM t WHERE grp = 1 AND k = 21"
    rows = db.execute(sql).rows
    assert rows == [(21,)]
    text = plan_text(db, sql)
    assert text.count("IndexLookup") == 1


def test_index_maintained_across_dml(db):
    db.execute("SELECT k FROM t WHERE grp = 0")  # builds the index
    db.execute("UPDATE t SET grp = 99 WHERE k = 0")
    db.execute("DELETE FROM t WHERE k = 5")
    rows = db.execute("SELECT k FROM t WHERE grp = 0 ORDER BY k").rows
    assert rows == [(10,), (15,), (20,), (25,), (30,), (35,), (40,), (45,)]
    assert db.execute("SELECT k FROM t WHERE grp = 99").rows == [(0,)]


def test_join_predicates_not_probed(db):
    db.execute("CREATE TABLE u (grp INT)")
    db.execute("INSERT INTO u VALUES (1)")
    sql = "SELECT COUNT(*) FROM t, u WHERE t.grp = u.grp"
    assert db.execute(sql).scalar() == 10
    assert "IndexLookup" not in plan_text(db, sql)


def test_lateral_function_args_unaffected(db):
    from repro.fdbs.functions import make_external_function
    from repro.fdbs.types import INTEGER

    db.register_external_function(
        make_external_function("F", [("x", INTEGER)], [("y", INTEGER)], lambda x: x)
    )
    rows = db.execute(
        "SELECT r.y FROM t, TABLE (F(k)) AS r WHERE grp = 1 AND k = 6"
    ).rows
    assert rows == [(6,)]
