"""Parser coverage: statements, expressions, reproduced restrictions."""

import pytest

from repro.errors import OneStatementError, ParseError
from repro.fdbs import ast
from repro.fdbs.parser import parse_expression, parse_script, parse_statement
from repro.fdbs.types import BIGINT, INTEGER, VARCHAR


class TestSelect:
    def test_minimal_select(self):
        stmt = parse_statement("SELECT 1")
        assert isinstance(stmt, ast.Select)
        assert stmt.items[0].expr.value == 1  # type: ignore[attr-defined]

    def test_select_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse_statement("SELECT a.* FROM t AS a")
        star = stmt.items[0].expr
        assert isinstance(star, ast.Star)
        assert star.qualifier == "a"

    def test_aliases_with_and_without_as(self):
        stmt = parse_statement("SELECT x AS a, y b FROM t")
        assert stmt.items[0].alias == "a"
        assert stmt.items[1].alias == "b"

    def test_where_group_having_order(self):
        stmt = parse_statement(
            "SELECT c, COUNT(*) FROM t WHERE x > 1 GROUP BY c "
            "HAVING COUNT(*) > 2 ORDER BY c DESC"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False

    def test_fetch_first_rows_only(self):
        stmt = parse_statement("SELECT x FROM t FETCH FIRST 5 ROWS ONLY")
        assert stmt.limit == 5

    def test_limit_synonym(self):
        assert parse_statement("SELECT x FROM t LIMIT 3").limit == 3

    def test_union_all(self):
        stmt = parse_statement("SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3")
        assert len(stmt.union) == 2
        assert all(is_all for is_all, _ in stmt.union)

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT x FROM t").distinct

    def test_paper_table_function_reference(self):
        stmt = parse_statement(
            "SELECT GQ.Qual FROM TABLE (GetQuality(SupplierNo)) AS GQ"
        )
        ref = stmt.from_items[0]
        assert isinstance(ref, ast.TableFunctionRef)
        assert ref.function_name == "GetQuality"
        assert ref.alias == "GQ"

    def test_correlation_name_mandatory_for_table_function(self):
        # DB2 v7.1 behaviour the paper points out explicitly.
        with pytest.raises(ParseError, match="correlation name"):
            parse_statement("SELECT 1 FROM TABLE (F(1))")

    def test_paper_buysuppcomp_query_parses(self):
        stmt = parse_statement(
            """
            SELECT DP.Answer
            FROM TABLE (GetQuality(SupplierNo)) AS GQ,
                 TABLE (GetReliability(SupplierNo)) AS GR,
                 TABLE (GetGrade(GQ.Qual, GR.Relia)) AS GG,
                 TABLE (GetCompNo(CompName)) AS GCN,
                 TABLE (DecidePurchase(GG.Grade, GCN.No)) AS DP
            """
        )
        assert len(stmt.from_items) == 5

    def test_joins(self):
        stmt = parse_statement(
            "SELECT * FROM a INNER JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        join = stmt.from_items[0]
        assert isinstance(join, ast.Join)
        assert join.kind == "LEFT OUTER"
        assert isinstance(join.left, ast.Join)

    def test_cross_join(self):
        stmt = parse_statement("SELECT * FROM a CROSS JOIN b")
        assert stmt.from_items[0].kind == "CROSS"

    def test_derived_table_needs_alias(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM (SELECT 1)")

    def test_derived_table(self):
        stmt = parse_statement("SELECT * FROM (SELECT 1 AS x) AS d")
        assert isinstance(stmt.from_items[0], ast.SubquerySource)


class TestExpressions:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.render() == "(1 + (2 * 3))"

    def test_precedence_logic(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.render() == "((a = 1) OR ((b = 2) AND (c = 3)))"

    def test_not_in_between_like(self):
        assert isinstance(parse_expression("x NOT IN (1, 2)"), ast.InList)
        assert isinstance(parse_expression("x NOT LIKE 'a%'"), ast.Like)
        between = parse_expression("x NOT BETWEEN 1 AND 2")
        assert isinstance(between, ast.Between)
        assert between.negated

    def test_is_null(self):
        expr = parse_expression("x IS NOT NULL")
        assert isinstance(expr, ast.IsNull)
        assert expr.negated

    def test_case_searched(self):
        expr = parse_expression("CASE WHEN a > 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, ast.Case)
        assert expr.operand is None

    def test_case_simple(self):
        expr = parse_expression("CASE a WHEN 1 THEN 'x' END")
        assert expr.operand is not None

    def test_cast_and_cast_function(self):
        cast = parse_expression("CAST(x AS BIGINT)")
        assert isinstance(cast, ast.Cast)
        assert cast.target is BIGINT
        call = parse_expression("BIGINT(x)")
        assert isinstance(call, ast.FunctionCall)

    def test_scalar_subquery_and_exists(self):
        assert isinstance(parse_expression("(SELECT 1)"), ast.ScalarSubquery)
        assert isinstance(parse_expression("EXISTS (SELECT 1)"), ast.Exists)

    def test_in_subquery(self):
        expr = parse_expression("x IN (SELECT y FROM t)")
        assert isinstance(expr, ast.InSubquery)

    def test_unary_minus_and_double_negative(self):
        assert parse_expression("-x").render() == "(-x)"
        assert parse_expression("- -1").render() == "(-(-1))"

    def test_string_concat(self):
        expr = parse_expression("a || b")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.op == "||"

    def test_parameter_markers_indexed(self):
        stmt = parse_statement("SELECT * FROM t WHERE a = ? AND b = ?")
        markers = []

        def walk(expr):
            if isinstance(expr, ast.Parameter):
                markers.append(expr.index)
            if isinstance(expr, ast.BinaryOp):
                walk(expr.left)
                walk(expr.right)

        walk(stmt.where)
        assert markers == [0, 1]


class TestDdlDml:
    def test_create_table_with_constraints(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT NOT NULL PRIMARY KEY, b VARCHAR(10) DEFAULT 'x')"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].default is not None

    def test_create_table_composite_key(self):
        stmt = parse_statement("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
        assert stmt.primary_key == ["a", "b"]

    def test_insert_values_multi_row(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT * FROM s")
        assert stmt.source is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete)

    def test_drop(self):
        assert isinstance(parse_statement("DROP TABLE t"), ast.DropTable)
        assert isinstance(parse_statement("DROP FUNCTION f"), ast.DropFunction)

    def test_commit_rollback(self):
        assert isinstance(parse_statement("COMMIT WORK"), ast.Commit)
        assert isinstance(parse_statement("ROLLBACK"), ast.Rollback)


class TestFunctionsAndProcedures:
    def test_paper_create_function(self):
        stmt = parse_statement(
            """
            CREATE FUNCTION GetSuppQual (SupplierName VARCHAR) RETURNS TABLE (Qual INT)
            LANGUAGE SQL RETURN
            SELECT GQ.Qual
            FROM TABLE (GetSupplierNo(GetSuppQual.SupplierName)) AS GSN,
                 TABLE (GetQuality(GSN.SupplierNo)) AS GQ
            """
        )
        assert isinstance(stmt, ast.CreateSqlFunction)
        assert stmt.params[0].name == "SupplierName"
        assert stmt.returns_table[0][1] is INTEGER

    def test_sql_function_body_block_rejected(self):
        # The paper's one-statement restriction.
        with pytest.raises(OneStatementError):
            parse_statement(
                "CREATE FUNCTION f (x INT) RETURNS TABLE (y INT) "
                "LANGUAGE SQL BEGIN SET y = 1; END"
            )

    def test_external_function(self):
        stmt = parse_statement(
            "CREATE FUNCTION f (x INT) RETURNS TABLE (y INT) "
            "LANGUAGE JAVA EXTERNAL NAME 'pkg.Cls' FENCED"
        )
        assert isinstance(stmt, ast.CreateExternalFunction)
        assert stmt.external_name == "pkg.Cls"
        assert stmt.fenced

    def test_create_procedure_with_control_flow(self):
        stmt = parse_statement(
            """
            CREATE PROCEDURE p (IN n INT, OUT total INT) LANGUAGE SQL BEGIN
              DECLARE i INT DEFAULT 0;
              SET total = 0;
              WHILE i < n DO
                SET total = total + i;
                SET i = i + 1;
              END WHILE;
              IF total > 10 THEN SET total = 10; ELSE SET total = total; END IF;
            END
            """
        )
        assert isinstance(stmt, ast.CreateProcedure)
        kinds = [type(s).__name__ for s in stmt.body]
        assert "PsmWhile" in kinds and "PsmIf" in kinds

    def test_call_statement(self):
        stmt = parse_statement("CALL p(1, 'x')")
        assert isinstance(stmt, ast.Call)
        assert len(stmt.args) == 2


class TestFederationDdl:
    def test_create_wrapper_server_nickname(self):
        script = parse_script(
            "CREATE WRAPPER w; CREATE SERVER s WRAPPER w; "
            "CREATE NICKNAME n FOR s.remote_t"
        )
        assert isinstance(script[0], ast.CreateWrapper)
        assert isinstance(script[1], ast.CreateServer)
        nickname = script[2]
        assert isinstance(nickname, ast.CreateNickname)
        assert nickname.remote_name == "remote_t"


class TestErrors:
    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_statement("SELECT 1 SELECT 2")

    def test_script_splits_statements(self):
        statements = parse_script("SELECT 1; SELECT 2;")
        assert len(statements) == 2

    def test_error_carries_position(self):
        with pytest.raises(ParseError, match=r"line \d+"):
            parse_statement("SELECT FROM")

    def test_empty_case_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("CASE END")
