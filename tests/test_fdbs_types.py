"""SQL type system: parsing, casts, coercion, ranges."""

import datetime
from decimal import Decimal

import pytest

from repro.errors import TypeError_
from repro.fdbs.types import (
    BIGINT,
    BOOLEAN,
    CHAR,
    DATE,
    DECIMAL,
    DOUBLE,
    INTEGER,
    SMALLINT,
    VARCHAR,
    cast_value,
    coerce_into,
    common_supertype,
    explicitly_castable,
    implicitly_castable,
    infer_type,
    parse_type,
    python_value_matches,
)


class TestParseType:
    def test_simple_names(self):
        assert parse_type("INT") is INTEGER
        assert parse_type("integer") is INTEGER
        assert parse_type("BIGINT") is BIGINT
        assert parse_type("LONG") is BIGINT  # the paper's INT -> LONG
        assert parse_type("DOUBLE") is DOUBLE
        assert parse_type("BOOLEAN") is BOOLEAN
        assert parse_type("DATE") is DATE

    def test_parameterised_types(self):
        assert parse_type("VARCHAR", 20) == VARCHAR(20)
        assert parse_type("CHAR", 3) == CHAR(3)
        assert parse_type("DECIMAL", 10, 2) == DECIMAL(10, 2)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError_):
            parse_type("BLOB")

    def test_simple_type_with_parameters_rejected(self):
        with pytest.raises(TypeError_):
            parse_type("INT", 4)

    def test_render_round_trip(self):
        assert VARCHAR(20).render() == "VARCHAR(20)"
        assert DECIMAL(8, 2).render() == "DECIMAL(8, 2)"
        assert INTEGER.render() == "INTEGER"


class TestCastRules:
    def test_numeric_ladder_promotes_implicitly(self):
        assert implicitly_castable(SMALLINT, INTEGER)
        assert implicitly_castable(INTEGER, BIGINT)
        assert implicitly_castable(BIGINT, DOUBLE)

    def test_numeric_demotion_needs_explicit_cast(self):
        assert not implicitly_castable(BIGINT, INTEGER)
        assert explicitly_castable(BIGINT, INTEGER)

    def test_character_types_interchange(self):
        assert implicitly_castable(CHAR(3), VARCHAR(10))
        assert implicitly_castable(VARCHAR(10), CHAR(3))

    def test_string_to_number_is_explicit_only(self):
        assert not implicitly_castable(VARCHAR(5), INTEGER)
        assert explicitly_castable(VARCHAR(5), INTEGER)

    def test_boolean_to_numeric_forbidden(self):
        assert not explicitly_castable(BOOLEAN, INTEGER)

    def test_common_supertype(self):
        assert common_supertype(INTEGER, BIGINT) is BIGINT
        assert common_supertype(SMALLINT, DOUBLE) is DOUBLE
        assert common_supertype(VARCHAR(5), VARCHAR(9)) == VARCHAR(9)

    def test_no_common_supertype_across_families(self):
        with pytest.raises(TypeError_):
            common_supertype(INTEGER, VARCHAR(5))


class TestCastValue:
    def test_null_casts_to_anything(self):
        assert cast_value(None, INTEGER, VARCHAR(5)) is None

    def test_int_to_bigint_paper_simple_case(self):
        assert cast_value(7, INTEGER, BIGINT) == 7

    def test_double_to_int_truncates_toward_zero(self):
        assert cast_value(3.9, DOUBLE, INTEGER) == 3
        assert cast_value(-3.9, DOUBLE, INTEGER) == -3

    def test_string_to_int(self):
        assert cast_value(" 42 ", VARCHAR(10), INTEGER) == 42

    def test_bad_string_to_int_rejected(self):
        with pytest.raises(TypeError_):
            cast_value("abc", VARCHAR(10), INTEGER)

    def test_int_to_varchar(self):
        assert cast_value(42, INTEGER, VARCHAR(10)) == "42"

    def test_char_pads_to_length(self):
        assert cast_value("ab", VARCHAR(5), CHAR(4)) == "ab  "

    def test_varchar_truncates_character_source(self):
        assert cast_value("abcdef", VARCHAR(10), VARCHAR(3)) == "abc"

    def test_numeric_too_long_for_varchar_rejected(self):
        with pytest.raises(TypeError_):
            cast_value(123456, INTEGER, VARCHAR(3))

    def test_decimal_quantizes_to_scale(self):
        result = cast_value("3.14159", VARCHAR(10), DECIMAL(6, 2))
        assert result == Decimal("3.14")

    def test_string_to_date(self):
        assert cast_value("2002-03-25", VARCHAR(10), DATE) == datetime.date(
            2002, 3, 25
        )

    def test_date_to_string(self):
        value = datetime.date(2002, 3, 25)
        assert cast_value(value, DATE, VARCHAR(10)) == "2002-03-25"

    def test_smallint_overflow_rejected(self):
        with pytest.raises(TypeError_):
            cast_value(70000, INTEGER, SMALLINT)

    def test_disallowed_cast_rejected(self):
        with pytest.raises(TypeError_):
            cast_value(True, BOOLEAN, INTEGER)


class TestCoerceAndInfer:
    def test_coerce_accepts_matching_value(self):
        assert coerce_into(5, INTEGER) == 5
        assert coerce_into("x", VARCHAR(5)) == "x"

    def test_coerce_promotes_int_to_double(self):
        assert coerce_into(5, DOUBLE) == 5.0
        assert isinstance(coerce_into(5, DOUBLE), float)

    def test_coerce_rejects_oversized_string(self):
        with pytest.raises(TypeError_):
            coerce_into("toolong", VARCHAR(3))

    def test_coerce_rejects_wrong_family(self):
        with pytest.raises(TypeError_):
            coerce_into("5", INTEGER)

    def test_coerce_null_passes(self):
        assert coerce_into(None, INTEGER) is None

    def test_coerce_integer_range_checked(self):
        with pytest.raises(TypeError_):
            coerce_into(2**40, INTEGER)

    def test_infer_type(self):
        assert infer_type(5) is INTEGER
        assert infer_type(2**40) is BIGINT
        assert infer_type(1.5) is DOUBLE
        assert infer_type(True) is BOOLEAN
        assert infer_type("ab") == VARCHAR(2)
        assert infer_type(datetime.date.today()) is DATE

    def test_infer_null_rejected(self):
        with pytest.raises(TypeError_):
            infer_type(None)

    def test_python_value_matches(self):
        assert python_value_matches(None, INTEGER)
        assert python_value_matches(5, INTEGER)
        assert not python_value_matches(True, INTEGER)
        assert not python_value_matches("x", INTEGER)
        assert python_value_matches(1.5, DOUBLE)
