"""Mapping graphs: validation and heterogeneity classification."""

import pytest

from repro.core.mapping import (
    Const,
    FedInput,
    HeterogeneityCase,
    JoinCondition,
    LocalCall,
    LoopCall,
    MappingGraph,
    NodeOutput,
    OutputSpec,
    classify,
)
from repro.errors import MappingGraphError
from repro.fdbs.types import BIGINT


def call(node_id, args=None):
    return LocalCall(node_id, "sys", "Fn", args or {})


def out(name="O", source=None, cast=None):
    return OutputSpec(name, source or NodeOutput("A", "X"), cast)


class TestValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(MappingGraphError, match="at least one call"):
            MappingGraph(outputs=[out()]).validate()

    def test_missing_outputs_rejected(self):
        with pytest.raises(MappingGraphError, match="output"):
            MappingGraph(nodes=[call("A")]).validate()

    def test_duplicate_node_id_rejected(self):
        graph = MappingGraph(nodes=[call("A"), call("a")], outputs=[out()])
        with pytest.raises(MappingGraphError, match="duplicate"):
            graph.validate()

    def test_unknown_node_reference_rejected(self):
        graph = MappingGraph(
            nodes=[call("A", {"p": NodeOutput("ghost", "X")})], outputs=[out()]
        )
        with pytest.raises(MappingGraphError, match="ghost"):
            graph.validate()

    def test_cycle_between_calls_rejected(self):
        graph = MappingGraph(
            nodes=[
                call("A", {"p": NodeOutput("B", "X")}),
                call("B", {"p": NodeOutput("A", "X")}),
            ],
            outputs=[out()],
        )
        with pytest.raises(MappingGraphError, match="cycle"):
            graph.validate()

    def test_join_references_checked(self):
        graph = MappingGraph(
            nodes=[call("A"), call("B")],
            outputs=[out()],
            joins=[JoinCondition(NodeOutput("A", "X"), NodeOutput("ghost", "Y"))],
        )
        with pytest.raises(MappingGraphError):
            graph.validate()

    def test_loop_counter_must_not_be_wired(self):
        graph = MappingGraph(
            nodes=[
                LoopCall(
                    "L", "sys", "Fn", counter_param="I",
                    args={"I": FedInput("X")},
                )
            ],
            outputs=[out(source=NodeOutput("L", "X"))],
        )
        with pytest.raises(MappingGraphError, match="counter"):
            graph.validate()

    def test_topological_order(self):
        graph = MappingGraph(
            nodes=[
                call("C", {"p": NodeOutput("B", "X")}),
                call("B", {"p": NodeOutput("A", "X")}),
                call("A"),
            ],
            outputs=[out(source=NodeOutput("C", "X"))],
        )
        order = [n.id for n in graph.topological_order()]
        assert order.index("A") < order.index("B") < order.index("C")


class TestClassification:
    def test_trivial(self):
        graph = MappingGraph(
            nodes=[call("A", {"p": FedInput("X")})],
            outputs=[out(source=NodeOutput("A", "X"))],
        )
        assert classify(graph) is HeterogeneityCase.TRIVIAL

    def test_simple_via_cast(self):
        graph = MappingGraph(
            nodes=[call("A", {"p": FedInput("X")})],
            outputs=[out(source=NodeOutput("A", "X"), cast=BIGINT)],
        )
        assert classify(graph) is HeterogeneityCase.SIMPLE

    def test_simple_via_constant(self):
        graph = MappingGraph(
            nodes=[call("A", {"p": Const(1234)})],
            outputs=[out(source=NodeOutput("A", "X"))],
        )
        assert classify(graph) is HeterogeneityCase.SIMPLE

    def test_independent(self):
        graph = MappingGraph(
            nodes=[call("A", {"p": FedInput("X")}), call("B", {"p": FedInput("X")})],
            outputs=[out(source=NodeOutput("A", "X"))],
        )
        assert classify(graph) is HeterogeneityCase.INDEPENDENT

    def test_linear(self):
        graph = MappingGraph(
            nodes=[
                call("A", {"p": FedInput("X")}),
                call("B", {"p": NodeOutput("A", "X")}),
            ],
            outputs=[out(source=NodeOutput("B", "X"))],
        )
        assert classify(graph) is HeterogeneityCase.DEPENDENT_LINEAR

    def test_one_to_n(self):
        graph = MappingGraph(
            nodes=[
                call("A", {"p": FedInput("X")}),
                call("B", {"p": FedInput("X")}),
                call("C", {"p": NodeOutput("A", "X"), "q": NodeOutput("B", "X")}),
            ],
            outputs=[out(source=NodeOutput("C", "X"))],
        )
        assert classify(graph) is HeterogeneityCase.DEPENDENT_1N

    def test_n_to_one(self):
        graph = MappingGraph(
            nodes=[
                call("A", {"p": FedInput("X")}),
                call("B", {"p": NodeOutput("A", "X")}),
                call("C", {"p": NodeOutput("A", "X")}),
            ],
            outputs=[out(source=NodeOutput("B", "X"))],
        )
        assert classify(graph) is HeterogeneityCase.DEPENDENT_N1

    def test_cyclic_via_loop_node(self):
        graph = MappingGraph(
            nodes=[LoopCall("L", "sys", "Fn", counter_param="I")],
            outputs=[out(source=NodeOutput("L", "X"))],
        )
        assert classify(graph) is HeterogeneityCase.DEPENDENT_CYCLIC

    def test_general_mixed_shape(self):
        # chain into a fan-in whose producers are not all independent
        graph = MappingGraph(
            nodes=[
                call("A", {"p": FedInput("X")}),
                call("B", {"p": NodeOutput("A", "X")}),
                call("C", {"p": NodeOutput("A", "X"), "q": NodeOutput("B", "X")}),
            ],
            outputs=[out(source=NodeOutput("C", "X"))],
        )
        assert classify(graph) is HeterogeneityCase.GENERAL

    def test_two_disjoint_chains_are_general(self):
        graph = MappingGraph(
            nodes=[
                call("A", {"p": FedInput("X")}),
                call("B", {"p": NodeOutput("A", "X")}),
                call("C", {"p": FedInput("X")}),
                call("D", {"p": NodeOutput("C", "X")}),
            ],
            outputs=[out(source=NodeOutput("B", "X"))],
        )
        assert classify(graph) is HeterogeneityCase.GENERAL


class TestMetrics:
    def test_local_function_count(self):
        graph = MappingGraph(
            nodes=[call("A"), LoopCall("L", "s", "f", counter_param="I")],
            outputs=[out(source=NodeOutput("A", "X"))],
        )
        assert graph.local_function_count() == 2

    def test_has_loop_and_helpers(self):
        graph = MappingGraph(
            nodes=[call("A", {"p": Const(1)})],
            outputs=[out(source=NodeOutput("A", "X"))],
        )
        assert graph.has_helpers()
        assert not graph.has_loop()
