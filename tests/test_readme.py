"""The README's code blocks must keep working."""

import pathlib
import re

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, re.DOTALL)


def test_readme_exists_and_mentions_the_paper():
    text = README.read_text()
    assert "Hergula" in text and "EDBT 2002" in text


def test_readme_quickstart_block_runs():
    blocks = python_blocks()
    assert blocks, "README has no python code block"
    for block in blocks:
        # Expression-statement lines ending in `.rows` print in a REPL;
        # exec() runs them fine as-is.  Comment lines starting with `#`
        # and result comments are already valid Python.
        exec(compile(block, "<README>", "exec"), {})


def test_readme_references_all_example_scripts():
    text = README.read_text()
    examples = pathlib.Path(__file__).resolve().parent.parent / "examples"
    for script in examples.glob("*.py"):
        assert script.name in text, f"README does not mention {script.name}"
