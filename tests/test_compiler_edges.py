"""Compiler edge cases and fine-grained calibration checks."""

import pytest

from repro.appsys import (
    ProductDataManagementSystem,
    PurchasingSystem,
    StockKeepingSystem,
)
from repro.bench.harness import measure_hot
from repro.core.compile_procedural import compile_procedural
from repro.core.compile_workflow import compile_workflow
from repro.core.federated_function import FederatedFunction
from repro.core.mapping import (
    FedInput,
    JoinCondition,
    LocalCall,
    MappingGraph,
    NodeOutput,
    OutputSpec,
)
from repro.errors import UnsupportedMappingError
from repro.fdbs.types import INTEGER
from repro.simtime.costs import DEFAULT_COSTS
from repro.wfms.programs import ProgramRegistry


@pytest.fixture(scope="module")
def resolver(data):
    systems = {
        s.name: s
        for s in (
            StockKeepingSystem(None, data),
            PurchasingSystem(None, data),
            ProductDataManagementSystem(None, data),
        )
    }
    return lambda system, function: systems[system].function(function)


def three_branch_join_fed():
    """Joins across three branches: more than the composition helpers
    support."""
    nodes = [
        LocalCall("A", "pdm", "GetSubCompNo", {"CompNo": FedInput("X")}),
        LocalCall("B", "pdm", "GetSubCompNo", {"CompNo": FedInput("X")}),
        LocalCall("C", "pdm", "GetSubCompNo", {"CompNo": FedInput("X")}),
    ]
    return FederatedFunction(
        name="TriJoin",
        params=[("X", INTEGER)],
        returns=[("A", INTEGER), ("B", INTEGER)],
        mapping=MappingGraph(
            nodes=nodes,
            outputs=[
                OutputSpec("A", NodeOutput("A", "SubCompNo")),
                OutputSpec("B", NodeOutput("B", "SubCompNo")),
            ],
            joins=[
                JoinCondition(NodeOutput("A", "SubCompNo"), NodeOutput("B", "SubCompNo")),
                JoinCondition(NodeOutput("B", "SubCompNo"), NodeOutput("C", "SubCompNo")),
            ],
        ),
    )


def test_workflow_compiler_rejects_three_branch_joins(resolver):
    with pytest.raises(UnsupportedMappingError, match="two branches"):
        compile_workflow(three_branch_join_fed(), resolver, ProgramRegistry())


def test_procedural_compiler_rejects_three_branch_joins(resolver):
    body = compile_procedural(three_branch_join_fed(), resolver)
    # The rejection surfaces when projecting (the compile is lazy there).
    from repro.udtf.procedural import ProceduralConnection
    from repro.fdbs.engine import Database
    from repro.udtf.access import register_access_udtfs
    from repro.appsys import ProductDataManagementSystem

    db = Database("tri")
    register_access_udtfs(db, ProductDataManagementSystem())
    with pytest.raises(UnsupportedMappingError):
        body(ProceduralConnection(db), 1)


def test_sql_compiler_handles_three_branch_joins(resolver):
    """The SQL architecture has no such limit: joins are just WHERE."""
    from repro.core.compile_sql_udtf import compile_sql_udtf

    ddl = compile_sql_udtf(three_branch_join_fed(), resolver)
    assert ddl.count("=") >= 2


class TestHelperActivityCost:
    def test_simple_case_pays_exactly_one_helper(self, data):
        """GetNumberSupp1234 = GibKompNr's shape + one cast helper:
        the WfMS delta must be exactly container handling + navigation."""
        from repro.core.architectures import Architecture
        from repro.core.scenario import build_scenario

        scenario = build_scenario(Architecture.WFMS, data=data)
        trivial = measure_hot(scenario, "GibKompNr").mean
        simple = measure_hot(scenario, "GetNumberSupp1234").mean
        expected_delta = (
            DEFAULT_COSTS.wf_activity_container + DEFAULT_COSTS.wf_navigation
        )
        assert simple - trivial == pytest.approx(expected_delta, abs=0.1)

    def test_udtf_architecture_has_no_helper_activities(self, data):
        """On the SQL side the cast is an expression: both one-call
        functions cost the same."""
        from repro.core.architectures import Architecture
        from repro.core.scenario import build_scenario

        scenario = build_scenario(Architecture.ENHANCED_SQL_UDTF, data=data)
        trivial = measure_hot(scenario, "GibKompNr").mean
        simple = measure_hot(scenario, "GetNumberSupp1234").mean
        assert simple == pytest.approx(trivial, abs=0.1)


def test_wfms_table_valued_trace_covers_call(data):
    """The parallel 'Process activities' window also appears for
    table-valued (join-composed) federated functions."""
    from repro.core.architectures import Architecture
    from repro.core.scenario import build_scenario
    from repro.simtime.trace import TraceRecorder

    scenario = build_scenario(Architecture.WFMS, data=data)
    scenario.call("GetSubCompDiscounts", 1, 5)
    trace = TraceRecorder(scenario.server.machine.clock)
    with trace.span("TOTAL"):
        rows = scenario.call("GetSubCompDiscounts", 1, 5, trace=trace)
    assert rows  # non-empty result
    totals = trace.totals_by_name()
    assert totals.get("Process activities", 0) > 0
    # Attribution is nearly complete (unaccounted < 3% of the total).
    attributed = sum(v for k, v in totals.items() if k != "TOTAL")
    assert attributed / trace.total() > 0.97
