"""SQL tokenizer behaviour."""

import pytest

from repro.errors import LexerError
from repro.fdbs.lexer import TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql) if t.type is not TokenType.EOF]


def test_keywords_are_case_insensitive():
    assert kinds("select")[0] == (TokenType.KEYWORD, "SELECT")
    assert kinds("SeLeCt")[0] == (TokenType.KEYWORD, "SELECT")


def test_identifiers_preserve_case():
    assert kinds("SupplierNo")[0] == (TokenType.IDENTIFIER, "SupplierNo")


def test_soft_keywords_are_identifiers():
    for word in ("name", "first", "rows", "only", "work"):
        assert kinds(word)[0][0] is TokenType.IDENTIFIER


def test_integer_and_float_literals():
    assert kinds("42")[0] == (TokenType.NUMBER, "42")
    assert kinds("3.14")[0] == (TokenType.NUMBER, "3.14")
    assert kinds("1e3")[0] == (TokenType.NUMBER, "1e3")
    assert kinds("2.5E-2")[0] == (TokenType.NUMBER, "2.5E-2")


def test_string_literal_with_escaped_quote():
    tokens = kinds("'O''Hara'")
    assert tokens[0] == (TokenType.STRING, "O'Hara")


def test_unterminated_string_rejected():
    with pytest.raises(LexerError):
        tokenize("'open")


def test_delimited_identifier():
    tokens = kinds('"Weird Name"')
    assert tokens[0] == (TokenType.IDENTIFIER, "Weird Name")


def test_empty_delimited_identifier_rejected():
    with pytest.raises(LexerError):
        tokenize('""')


def test_two_char_operators():
    values = [v for _, v in kinds("a <> b <= c >= d || e != f")]
    assert "<>" in values and "<=" in values and ">=" in values
    assert "||" in values and "!=" in values


def test_line_comment_skipped():
    tokens = kinds("SELECT -- comment text\n 1")
    assert [v for _, v in tokens] == ["SELECT", "1"]


def test_block_comment_skipped():
    tokens = kinds("SELECT /* multi\nline */ 1")
    assert [v for _, v in tokens] == ["SELECT", "1"]


def test_unterminated_block_comment_rejected():
    with pytest.raises(LexerError):
        tokenize("SELECT /* never closed")


def test_parameter_marker():
    assert kinds("?")[0][0] is TokenType.PARAMETER


def test_unexpected_character_reports_position():
    with pytest.raises(LexerError) as excinfo:
        tokenize("SELECT @")
    assert "line 1" in str(excinfo.value)


def test_qualified_name_tokenization():
    values = [v for _, v in kinds("GQ.Qual")]
    assert values == ["GQ", ".", "Qual"]


def test_eof_token_always_present():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].type is TokenType.EOF


def test_positions_track_lines():
    tokens = tokenize("SELECT\n  name")
    name_token = tokens[1]
    assert name_token.line == 2
    assert name_token.column == 3
