"""Workflow process model: containers, conditions, validation."""

import pytest

from repro.errors import ContainerError, ProcessDefinitionError
from repro.fdbs.types import INTEGER, VARCHAR
from repro.wfms.builder import ProcessBuilder, container_type
from repro.wfms.model import (
    Condition,
    ContainerType,
    ControlConnector,
    FromActivityOutput,
    FromProcessInput,
    ProcessDefinition,
    ProgramActivity,
)


class TestContainers:
    def make(self):
        return ContainerType("C", (("No", INTEGER), ("Name", VARCHAR(10))))

    def test_set_get(self):
        container = self.make().new_container()
        container.set("No", 5)
        assert container.get("No") == 5

    def test_member_names_case_insensitive(self):
        container = self.make().new_container()
        container.set("no", 5)
        assert container.get("NO") == 5

    def test_values_coerced_into_member_type(self):
        container = self.make().new_container()
        with pytest.raises(Exception):
            container.set("No", "not a number")

    def test_unknown_member_rejected(self):
        container = self.make().new_container()
        with pytest.raises(ContainerError):
            container.set("zzz", 1)
        with pytest.raises(ContainerError):
            container.get("zzz")

    def test_unset_member_read_rejected(self):
        container = self.make().new_container()
        with pytest.raises(ContainerError, match="unset"):
            container.get("No")

    def test_as_dict_preserves_declaration_order(self):
        container = self.make().new_container()
        container.set("Name", "x")
        container.set("No", 1)
        assert list(container.as_dict()) == ["No", "Name"]

    def test_fill(self):
        container = self.make().new_container().fill({"No": 1, "Name": "a"})
        assert container.as_dict() == {"No": 1, "Name": "a"}


class TestConditions:
    def container_with(self, value):
        c = ContainerType("C", (("Grade", INTEGER),)).new_container()
        if value is not ...:
            c.set("Grade", value)
        return c

    def test_operators(self):
        assert Condition("Grade", ">", 5).evaluate(self.container_with(7))
        assert Condition("Grade", "=", 7).evaluate(self.container_with(7))
        assert Condition("Grade", "<>", 5).evaluate(self.container_with(7))
        assert not Condition("Grade", "<=", 5).evaluate(self.container_with(7))

    def test_unset_member_is_false(self):
        assert not Condition("Grade", ">", 0).evaluate(self.container_with(...))

    def test_null_is_false(self):
        assert not Condition("Grade", "=", 0).evaluate(self.container_with(None))

    def test_unknown_member_rejected(self):
        with pytest.raises(ContainerError):
            Condition("Zzz", "=", 1).evaluate(self.container_with(1))

    def test_bad_operator_rejected(self):
        with pytest.raises(ProcessDefinitionError):
            Condition("Grade", "~=", 1)

    def test_render(self):
        assert Condition("Done", "=", 1).render() == "Done = 1"
        assert Condition("Name", "=", "x").render() == "Name = 'x'"


def simple_activity(name, program="p.q"):
    return ProgramActivity(
        name=name,
        input_type=container_type(f"{name}_IN", [("X", INTEGER)]),
        output_type=container_type(f"{name}_OUT", [("Y", INTEGER)]),
        input_map={"X": FromProcessInput("X")},
        program=program,
    )


class TestValidation:
    def base(self, activities, connectors, output_map=None):
        return ProcessDefinition(
            name="P",
            input_type=container_type("P_IN", [("X", INTEGER)]),
            output_type=container_type("P_OUT", [("Y", INTEGER)]),
            activities=activities,
            connectors=connectors,
            output_map=output_map or {"Y": FromActivityOutput("A", "Y")},
        )

    def test_valid_process_passes(self):
        process = self.base([simple_activity("A")], [])
        process.validate()

    def test_duplicate_activity_rejected(self):
        process = self.base([simple_activity("A"), simple_activity("a")], [])
        with pytest.raises(ProcessDefinitionError, match="duplicate"):
            process.validate()

    def test_dangling_connector_rejected(self):
        process = self.base(
            [simple_activity("A")], [ControlConnector("A", "ghost")]
        )
        with pytest.raises(ProcessDefinitionError, match="ghost"):
            process.validate()

    def test_self_loop_rejected(self):
        process = self.base([simple_activity("A")], [ControlConnector("A", "A")])
        with pytest.raises(ProcessDefinitionError, match="do-until"):
            process.validate()

    def test_control_cycle_rejected(self):
        process = self.base(
            [simple_activity("A"), simple_activity("B")],
            [ControlConnector("A", "B"), ControlConnector("B", "A")],
        )
        with pytest.raises(ProcessDefinitionError, match="cycle"):
            process.validate()

    def test_unknown_input_source_rejected(self):
        activity = simple_activity("A")
        activity.input_map = {"X": FromActivityOutput("ghost", "Y")}
        with pytest.raises(ProcessDefinitionError):
            self.base([activity], []).validate()

    def test_unknown_output_member_of_producer_rejected(self):
        a = simple_activity("A")
        b = simple_activity("B")
        b.input_map = {"X": FromActivityOutput("A", "Nope")}
        with pytest.raises(ProcessDefinitionError, match="Nope"):
            self.base([a, b], [ControlConnector("A", "B")]).validate()

    def test_unknown_process_input_rejected(self):
        activity = simple_activity("A")
        activity.input_map = {"X": FromProcessInput("Missing")}
        with pytest.raises(ProcessDefinitionError, match="Missing"):
            self.base([activity], []).validate()

    def test_output_map_member_checked(self):
        process = self.base(
            [simple_activity("A")],
            [],
            output_map={"Nope": FromActivityOutput("A", "Y")},
        )
        with pytest.raises(ProcessDefinitionError):
            process.validate()

    def test_rows_from_checked(self):
        process = self.base([simple_activity("A")], [])
        process.rows_from = "ghost"
        with pytest.raises(ProcessDefinitionError, match="rows_from"):
            process.validate()

    def test_topological_order_respects_edges(self):
        a, b, c = (simple_activity(n) for n in "ABC")
        process = self.base(
            [c, b, a],
            [ControlConnector("A", "B"), ControlConnector("B", "C")],
        )
        order = [x.name for x in process.topological_order()]
        assert order.index("A") < order.index("B") < order.index("C")

    def test_program_activity_count(self):
        process = self.base([simple_activity("A"), simple_activity("B")], [])
        assert process.program_activity_count() == 2


class TestBuilder:
    def test_sequence_requires_two(self):
        builder = ProcessBuilder("P", [("X", INTEGER)], [("Y", INTEGER)])
        with pytest.raises(ProcessDefinitionError):
            builder.sequence("A")

    def test_build_validates(self):
        builder = ProcessBuilder("P", [("X", INTEGER)], [("Y", INTEGER)])
        builder.connect("nope", "alsonope")
        with pytest.raises(ProcessDefinitionError):
            builder.build()
