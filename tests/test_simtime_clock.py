"""Virtual clock semantics: monotonicity, freezing, capturing."""

import pytest

from repro.errors import ClockError
from repro.simtime.clock import VirtualClock


def test_starts_at_zero_by_default():
    assert VirtualClock().now == 0.0


def test_custom_start():
    assert VirtualClock(5.0).now == 5.0


def test_negative_start_rejected():
    with pytest.raises(ClockError):
        VirtualClock(-1.0)


def test_advance_accumulates():
    clock = VirtualClock()
    clock.advance(2.5)
    clock.advance(1.5)
    assert clock.now == 4.0


def test_advance_returns_new_time():
    clock = VirtualClock()
    assert clock.advance(3.0) == 3.0


def test_negative_advance_rejected():
    clock = VirtualClock()
    with pytest.raises(ClockError):
        clock.advance(-0.1)


def test_zero_advance_allowed():
    clock = VirtualClock()
    clock.advance(0.0)
    assert clock.now == 0.0


def test_advance_to_moves_forward():
    clock = VirtualClock()
    clock.advance_to(10.0)
    assert clock.now == 10.0


def test_advance_to_backwards_rejected():
    clock = VirtualClock(5.0)
    with pytest.raises(ClockError):
        clock.advance_to(4.0)


def test_frozen_section_suppresses_advances():
    clock = VirtualClock()
    with clock.frozen_section():
        clock.advance(100.0)
    assert clock.now == 0.0


def test_frozen_sections_nest():
    clock = VirtualClock()
    clock.freeze()
    clock.freeze()
    clock.unfreeze()
    clock.advance(1.0)  # still frozen once
    clock.unfreeze()
    clock.advance(1.0)
    assert clock.now == 1.0


def test_unfreeze_without_freeze_rejected():
    with pytest.raises(ClockError):
        VirtualClock().unfreeze()


def test_capture_accumulates_without_moving_clock():
    clock = VirtualClock()
    with clock.capture() as captured:
        clock.advance(7.0)
        clock.advance(3.0)
    assert captured.total == 10.0
    assert clock.now == 0.0


def test_capture_total_visible_during_capture():
    clock = VirtualClock()
    with clock.capture():
        clock.advance(4.0)
        assert clock.capture_total() == 4.0
    assert clock.capture_total() == 0.0


def test_capturing_flag():
    clock = VirtualClock()
    assert not clock.capturing
    with clock.capture():
        assert clock.capturing
    assert not clock.capturing


def test_nested_capture_rejected():
    clock = VirtualClock()
    with clock.capture():
        with pytest.raises(ClockError):
            with clock.capture():
                pass


def test_advance_after_capture_moves_clock_again():
    clock = VirtualClock()
    with clock.capture():
        clock.advance(5.0)
    clock.advance(2.0)
    assert clock.now == 2.0
