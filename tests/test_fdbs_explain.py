"""EXPLAIN as a SQL statement."""

import pytest

from repro.errors import AuthorizationError
from repro.fdbs.engine import Database
from repro.fdbs.functions import make_external_function
from repro.fdbs.types import INTEGER


@pytest.fixture()
def db():
    database = Database("explain")
    database.execute("CREATE TABLE t (v INT)")
    database.execute("INSERT INTO t VALUES (1), (2)")
    database.register_external_function(
        make_external_function("F", [("x", INTEGER)], [("y", INTEGER)], lambda x: x)
    )
    return database


def test_explain_returns_plan_rows(db):
    result = db.execute("EXPLAIN SELECT v FROM t WHERE v > 1 ORDER BY v")
    assert result.columns == ["PLAN"]
    text = "\n".join(row[0] for row in result.rows)
    # Zone checks attach in every execution mode, so the pushed
    # conjunct shows up as a zone annotation even in row mode.
    assert "TableScan(t, zone: (v > 1))" in text
    assert "Filter(WHERE)" in text
    assert "Sort" in text


def test_explain_does_not_execute_functions(db):
    calls = {"n": 0}

    def counting(x):
        calls["n"] += 1
        return x

    db.bind_external("F", counting)
    db.execute("EXPLAIN SELECT r.y FROM t, TABLE (F(v)) AS r")
    assert calls["n"] == 0


def test_explain_shows_cross_apply_for_table_functions(db):
    result = db.execute("EXPLAIN SELECT r.y FROM t, TABLE (F(v)) AS r")
    text = "\n".join(row[0] for row in result.rows)
    assert "CrossApply" in text


def test_explain_requires_query_privileges(db):
    db.execute("CREATE USER alice")
    db.set_current_user("alice")
    try:
        with pytest.raises(AuthorizationError):
            db.execute("EXPLAIN SELECT v FROM t")
    finally:
        db.set_current_user("SYSTEM")


def test_explain_render_round_trip(db):
    from repro.fdbs.parser import parse_statement

    statement = parse_statement("EXPLAIN SELECT v FROM t")
    assert parse_statement(statement.render()).render() == statement.render()
