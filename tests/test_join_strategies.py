"""Local join strategies, cardinality feedback and the adaptive join.

The hard invariant throughout: every join strategy — nested-loop, hash,
sort-merge, index nested-loop, and the adaptive remote join on either of
its paths — produces *bit-identical rows* to the syntactic plan, and
(because local join operators charge no simulated time of their own)
identical simulated elapsed times on a machine-backed database.
"""

import pytest

from repro.errors import ExecutionError
from repro.fdbs.engine import Database
from repro.fdbs.federation import DatabaseEndpoint
from repro.fdbs.stats import StatsFeedback, q_error
from repro.sysmodel.machine import Machine

STRATEGIES = ("auto", "hash", "merge", "indexnlj", "nlj")

JOIN_SQL = (
    "SELECT b.id, b.val, s.name FROM big AS b, small AS s "
    "WHERE b.grp = s.grp AND b.val > 60 ORDER BY b.id"
)


def make_local_pair(optimizer="cost", mode="row", machine=None, runstats=True):
    """A database with two comma-joinable base tables (numeric key)."""
    db = Database("joins", machine=machine, execution_mode=mode,
                  optimizer=optimizer)
    db.execute("CREATE TABLE big (id INTEGER, grp INTEGER, val INTEGER)")
    db.execute("CREATE TABLE small (grp INTEGER, name VARCHAR(10))")
    for index in range(120):
        db.execute(
            "INSERT INTO big VALUES (?, ?, ?)", params=[index, index % 8, index]
        )
    for grp in range(8):
        db.execute("INSERT INTO small VALUES (?, ?)", params=[grp, f"g{grp}"])
    if runstats:
        db.execute("RUNSTATS big")
        db.execute("RUNSTATS small")
    return db


class TestStrategySweep:
    @pytest.mark.parametrize("mode", ["row", "batch", "columnar"])
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_rows_bit_identical_across_strategies(self, mode, strategy):
        baseline = make_local_pair("syntactic", mode).execute(JOIN_SQL).rows
        assert baseline  # the sweep must exercise real matches
        db = make_local_pair("cost", mode)
        db.set_join_strategy(strategy)
        assert db.execute(JOIN_SQL).rows == baseline

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_simulated_time_identical_across_strategies(self, strategy):
        def run(optimizer, strategy="auto"):
            machine = Machine()
            db = make_local_pair(optimizer, machine=machine)
            db.set_join_strategy(strategy)
            db.execute(JOIN_SQL)  # warm statement cache + plan compile
            start = machine.clock.now
            rows = db.execute(JOIN_SQL).rows
            return rows, machine.clock.now - start

        base_rows, base_elapsed = run("syntactic")
        rows, elapsed = run("cost", strategy)
        assert rows == base_rows
        assert elapsed == base_elapsed

    def test_forced_strategies_reach_the_executor(self):
        for strategy, token in (
            ("hash", "join=hash"),
            ("merge", "join=merge"),
            ("indexnlj", "join=indexnlj"),
        ):
            db = make_local_pair()
            db.set_join_strategy(strategy)
            assert token in db.explain(JOIN_SQL)
            # Counters track *built* operators, so EXPLAIN counts too.
            assert db.join_stats()[f"joins_{strategy}"] == 1
            db.execute(JOIN_SQL)
            assert db.join_stats()[f"joins_{strategy}"] == 2

    def test_forced_nlj_keeps_the_syntactic_fold(self):
        db = make_local_pair()
        db.set_join_strategy("nlj")
        text = db.explain(JOIN_SQL)
        assert "join=" not in text
        assert "CrossApply" in text

    def test_unknown_strategy_rejected(self):
        db = Database("bad")
        with pytest.raises(ExecutionError):
            db.set_join_strategy("loop")

    def test_stats_absent_keeps_syntactic_plan(self):
        db = make_local_pair(runstats=False)
        assert "join=" not in db.explain(JOIN_SQL)


class TestMergeJoin:
    def test_presorted_input_skips_the_sort(self):
        # ``big.grp`` cycles 0..7 (unsorted); ``small.grp`` is inserted
        # ascending, so with small as the inner side the sort is skipped.
        db = make_local_pair()
        db.set_join_strategy("merge")
        sql = (
            "SELECT b.id, s.name FROM small AS s, big AS b "
            "WHERE s.grp = b.grp ORDER BY b.id"
        )
        text = db.explain(sql)
        assert "join=merge" in text
        # The optimizer reorders: small (8 rows) outer, big inner —
        # big's key column is 0..7 cycling, hence an explicit sort.
        assert "input=sort" in text

    def test_sorted_hint_reported_for_ordered_inner(self):
        # ``inner_t`` (40 rows, ascending key: RUNSTATS records
        # sorted_asc) stays inner after reordering puts the 10-row
        # ``outer_t`` first — the explicit sort is skipped.
        def build(name):
            db = Database(name)
            db.execute("CREATE TABLE outer_t (k INTEGER)")
            db.execute("CREATE TABLE inner_t (k INTEGER, tag VARCHAR(5))")
            for index in range(10):
                db.execute(
                    "INSERT INTO outer_t VALUES (?)", params=[index % 4]
                )
            for index in range(40):
                db.execute(
                    "INSERT INTO inner_t VALUES (?, ?)", params=[index, "x"]
                )
            return db

        db = build("sorted")
        db.execute("RUNSTATS outer_t")
        db.execute("RUNSTATS inner_t")
        db.set_optimizer("cost")
        db.set_join_strategy("merge")
        sql = (
            "SELECT o.k, i.tag FROM outer_t AS o, inner_t AS i "
            "WHERE o.k = i.k ORDER BY o.k"
        )
        assert "input=presorted" in db.explain(sql)
        assert db.execute(sql).rows == build("sorted-base").execute(sql).rows


class TestFeedback:
    def prepare_stale(self):
        """RUNSTATS at 1000 rows, then shrink ``big`` to 50 (q-error 20)."""
        db = Database("stale", optimizer="cost")
        db.execute("CREATE TABLE big (id INTEGER, grp INTEGER)")
        db.execute("CREATE TABLE small (grp INTEGER, name VARCHAR(10))")
        for index in range(1000):
            db.execute(
                "INSERT INTO big VALUES (?, ?)", params=[index, index % 10]
            )
        for grp in range(10):
            db.execute(
                "INSERT INTO small VALUES (?, ?)", params=[grp, f"g{grp}"]
            )
        db.execute("RUNSTATS big")
        db.execute("RUNSTATS small")
        db.execute("DELETE FROM big WHERE id >= 50")
        return db

    def test_analyze_records_feedback_and_bumps_epoch(self):
        db = self.prepare_stale()
        sql = (
            "SELECT b.id, s.name FROM big AS b, small AS s "
            "WHERE b.grp = s.grp"
        )
        epoch = db.catalog.stats_epoch
        db.execute("EXPLAIN ANALYZE " + sql)
        assert db.catalog.stats_epoch == epoch + 1
        feedback = db.catalog.feedback_for("big")
        assert feedback is not None
        assert feedback.observed == 50
        assert feedback.q_error == pytest.approx(20.0)
        stats = db.join_stats()
        assert stats["plans_invalidated"] == 1
        assert stats["max_q_error_pct"] == 2000
        # Planning now sees the corrected cardinality...
        assert db.catalog.planning_statistics("big").card == 50
        # ...and the replanned estimate reflects it.
        assert "est=50" in db.explain("SELECT b.id FROM big AS b")

    def test_feedback_invalidates_cached_statements(self):
        db = self.prepare_stale()
        sql = (
            "SELECT b.id, s.name FROM big AS b, small AS s "
            "WHERE b.grp = s.grp"
        )
        db.execute(sql)
        hits_before = db.statement_cache.stats()["hits"]
        db.execute(sql)
        assert db.statement_cache.stats()["hits"] == hits_before + 1
        db.execute("EXPLAIN ANALYZE " + sql)  # bumps the stats epoch
        hits_after = db.statement_cache.stats()["hits"]
        db.execute(sql)  # namespace changed: recompiles, no new hit
        assert db.statement_cache.stats()["hits"] == hits_after

    def test_small_drift_below_threshold_is_ignored(self):
        db = make_local_pair()
        db.execute("DELETE FROM big WHERE id >= 100")  # 120 -> 100: q 1.2
        epoch = db.catalog.stats_epoch
        db.execute("EXPLAIN ANALYZE " + JOIN_SQL)
        assert db.catalog.stats_epoch == epoch
        assert db.catalog.feedback() == []
        assert db.join_stats()["max_q_error_pct"] >= 100

    def test_runstats_clears_feedback(self):
        db = self.prepare_stale()
        db.execute(
            "EXPLAIN ANALYZE SELECT b.id, s.name FROM big AS b, small AS s "
            "WHERE b.grp = s.grp"
        )
        assert db.catalog.feedback_for("big") is not None
        db.execute("RUNSTATS big")
        assert db.catalog.feedback_for("big") is None
        assert db.catalog.planning_statistics("big").card == 50  # fresh scan

    def test_feedback_never_creates_statistics(self):
        db = make_local_pair(runstats=False)
        epoch = db.catalog.stats_epoch
        db.execute("EXPLAIN ANALYZE " + JOIN_SQL)
        # Without RUNSTATS the plan is syntactic, scans carry no
        # estimates, and no feedback may materialise.
        assert db.catalog.feedback() == []
        assert db.catalog.stats_epoch == epoch
        assert db.catalog.planning_statistics("big") is None
        # Even a directly recorded observation is refused.
        db.catalog.record_feedback(
            StatsFeedback(table="big", estimated=1, observed=9, q_error=9.0)
        )
        assert db.catalog.feedback() == []

    def test_q_error_is_symmetric(self):
        assert q_error(10, 100) == q_error(100, 10) == 10.0
        assert q_error(0, 5) == 1.0


class TestAdaptiveJoin:
    def make_federated(self, optimizer="cost"):
        remote = Database("remote")
        remote.execute(
            "CREATE TABLE orders (order_no INTEGER, comp_no INTEGER)"
        )
        for index in range(100):
            remote.execute(
                "INSERT INTO orders VALUES (?, ?)", params=[index, index % 5]
            )
        local = Database("local", optimizer=optimizer)
        local.execute("CREATE WRAPPER w")
        local.execute("CREATE SERVER s WRAPPER w")
        local.attach_endpoint("s", DatabaseEndpoint(remote))
        local.execute("CREATE NICKNAME n FOR s.orders")
        local.execute("CREATE TABLE watch (pk INTEGER, comp_no INTEGER)")
        for index in range(20):
            local.execute(
                "INSERT INTO watch VALUES (?, ?)", params=[index, index % 5]
            )
        return local, remote

    SQL = (
        "SELECT w.pk, o.order_no FROM watch AS w, n AS o "
        "WHERE w.comp_no = o.comp_no ORDER BY w.pk, o.order_no"
    )

    def test_factor_validation(self):
        db = Database("v")
        with pytest.raises(ExecutionError):
            db.set_adaptive_join(0.5)
        db.set_adaptive_join(None)  # disable is always legal

    def test_escape_hatch_fires_on_remote_blowup(self):
        local, remote = self.make_federated()
        local.execute("RUNSTATS watch")
        local.execute("RUNSTATS n")
        for index in range(100, 5000):  # remote grows 50x after RUNSTATS
            remote.execute(
                "INSERT INTO orders VALUES (?, ?)", params=[index, index % 5]
            )
        local.set_adaptive_join(4.0)
        assert "AdaptiveJoin(n" in local.explain(self.SQL)
        rows = local.execute(self.SQL).rows
        assert local.join_stats()["midquery_fallbacks"] == 1
        baseline, grown = self.make_federated("syntactic")
        for index in range(100, 5000):
            grown.execute(
                "INSERT INTO orders VALUES (?, ?)", params=[index, index % 5]
            )
        assert rows == baseline.execute(self.SQL).rows

    def test_no_fallback_when_estimate_holds(self):
        local, _ = self.make_federated()
        local.execute("RUNSTATS watch")
        local.execute("RUNSTATS n")
        local.set_adaptive_join(4.0)
        baseline, _ = self.make_federated("syntactic")
        assert local.execute(self.SQL).rows == baseline.execute(self.SQL).rows
        assert local.join_stats()["midquery_fallbacks"] == 0

    def test_disabled_without_factor(self):
        local, _ = self.make_federated()
        local.execute("RUNSTATS watch")
        local.execute("RUNSTATS n")
        assert "AdaptiveJoin" not in local.explain(self.SQL)


class TestRuntimeCounters:
    def test_joins_component_in_syscat(self):
        db = make_local_pair()
        db.execute(JOIN_SQL)
        rows = db.execute(
            "SELECT counter, value FROM SYSCAT_RUNTIME_STATS "
            "WHERE component = 'joins'"
        ).rows
        counters = dict(rows)
        for key in (
            "joins_hash",
            "joins_merge",
            "joins_indexnlj",
            "joins_nlj",
            "plans_invalidated",
            "midquery_fallbacks",
            "max_q_error_pct",
            "stats_epoch",
        ):
            assert key in counters
        assert sum(
            counters[key]
            for key in ("joins_hash", "joins_merge", "joins_indexnlj")
        ) >= 1

    def test_explicit_joins_counted_too(self):
        db = Database("explicit", execution_mode="batch")
        db.execute("CREATE TABLE l (a INTEGER)")
        db.execute("CREATE TABLE r (b INTEGER)")
        db.execute("INSERT INTO l VALUES (1)")
        db.execute("INSERT INTO r VALUES (1)")
        db.execute("SELECT * FROM l JOIN r ON l.a = r.b")
        db.execute("SELECT * FROM l JOIN r ON l.a < r.b")
        stats = db.join_stats()
        assert stats["joins_hash"] == 1
        assert stats["joins_nlj"] == 1
