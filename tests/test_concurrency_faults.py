"""Fault injection × concurrency: failures stay inside their session.

The fault harness and the serving layer compose: in isolated mode each
session owns its machine — injector, RNG stream, retry policy, pool,
channels — so one session's faults are invisible to every other
session, and fault outcomes are as deterministic under 8 workers as
under 1.  The suite asserts the ISSUE's three interaction guarantees:

* concurrent WfMS sessions retry / forward-recover *independently* —
  every call completes, answers match the fault-free baseline;
* a UDTF session's unrecovered fault aborts only its *own* statement —
  the session continues, siblings never see the abort;
* one session's fault never poisons another session's channel, pool or
  cache: a clean session run next to a faulty one is bit-identical
  (rows and simulated time) to the same session run alone.
"""

import pytest

from repro.appsys.datagen import generate_enterprise_data
from repro.core.architectures import Architecture
from repro.serving.server import ConcurrentIntegrationServer
from repro.serving.workload import SessionScript, WorkloadCall
from repro.sysmodel.faults import (
    SITE_ACTIVITY_PROGRAM,
    SITE_FENCED_PROCESS,
    SITE_RMI_WFMS,
)

ANCHOR = "GetNoSuppComp"
CALLS = 4

#: Deterministic WfMS fault mix: count-limited certain faults plus
#: retries and forward recovery — every call must still complete.
WFMS_FAULTS = {
    "enabled": True,
    "seed": 99,
    "sites": {
        SITE_RMI_WFMS: (1.0, 1),
        SITE_ACTIVITY_PROGRAM: (1.0, 1),
    },
    "retry_attempts": 3,
    "forward_recovery": True,
}

#: Deterministic UDTF fault: the first fenced-process hand-over dies,
#: aborting exactly one statement; no recovery mechanism exists.
UDTF_FAULTS = {
    "enabled": True,
    "seed": 99,
    "sites": {SITE_FENCED_PROCESS: (1.0, 1)},
}


def anchor_script(session_id, architecture, faults=None, calls=CALLS):
    return SessionScript(
        session_id=session_id,
        architecture=architecture,
        calls=[WorkloadCall("call", ANCHOR, ("gearbox",))] * calls,
        faults=faults,
    )


def run_scripts(data, scripts, workers):
    with ConcurrentIntegrationServer(
        workers=workers, mode="isolated", data=data
    ) as server:
        return server.run_workload(scripts)


@pytest.fixture(scope="module")
def data():
    return generate_enterprise_data()


@pytest.fixture(scope="module")
def baseline_rows(data):
    """Fault-free anchor rows (one session, no faults)."""
    result = run_scripts(data, [anchor_script(0, Architecture.WFMS)], workers=1)
    rows = result.row_sets[0]
    assert all(r for r in rows)
    return rows[0]


class TestWfmsRecoveryUnderConcurrency:
    def test_concurrent_sessions_recover_independently(self, data, baseline_rows):
        """Four faulty WfMS sessions side by side: each absorbs its own
        faults through retries/forward recovery and completes every call
        with the fault-free answer."""
        scripts = [
            anchor_script(sid, Architecture.WFMS, faults=dict(WFMS_FAULTS))
            for sid in range(4)
        ]
        result = run_scripts(data, scripts, workers=4)
        for sid in range(4):
            summary = result.summaries[sid]
            assert summary.aborted == 0, f"session {sid} lost a call to a fault"
            assert summary.calls == CALLS
            for rows in result.row_sets[sid]:
                assert rows == baseline_rows

    def test_recovery_outcome_independent_of_worker_count(self, data):
        """Fault handling is per-session deterministic: 1 vs 4 workers
        give identical rows, aborts and simulated times."""
        def scripts():
            return [
                anchor_script(sid, Architecture.WFMS, faults=dict(WFMS_FAULTS))
                for sid in range(4)
            ]

        sequential = run_scripts(data, scripts(), workers=1)
        concurrent = run_scripts(data, scripts(), workers=4)
        assert concurrent.row_sets == sequential.row_sets
        assert concurrent.simulated_ms == sequential.simulated_ms
        assert {s: v.aborted for s, v in concurrent.summaries.items()} == {
            s: v.aborted for s, v in sequential.summaries.items()
        }


class TestUdtfAbortContainment:
    @pytest.mark.parametrize(
        "architecture",
        [Architecture.ENHANCED_SQL_UDTF, Architecture.ENHANCED_JAVA_UDTF],
    )
    def test_abort_hits_only_the_faulty_statement(
        self, data, baseline_rows, architecture
    ):
        """The dying fenced process aborts statement one; the session
        survives and every later call returns correct rows."""
        script = anchor_script(0, architecture, faults=dict(UDTF_FAULTS))
        result = run_scripts(data, [script], workers=1)
        rows = result.row_sets[0]
        assert rows[0] is None, "the injected fault did not abort the statement"
        assert result.summaries[0].aborted == 1
        for later in rows[1:]:
            assert later == baseline_rows

    def test_sibling_sessions_never_see_the_abort(self, data, baseline_rows):
        """One faulty UDTF session among three clean ones, concurrently:
        only the faulty session records an abort."""
        scripts = [
            anchor_script(0, Architecture.ENHANCED_SQL_UDTF, faults=dict(UDTF_FAULTS)),
            anchor_script(1, Architecture.ENHANCED_SQL_UDTF),
            anchor_script(2, Architecture.ENHANCED_JAVA_UDTF),
            anchor_script(3, Architecture.WFMS),
        ]
        result = run_scripts(data, scripts, workers=4)
        assert result.summaries[0].aborted == 1
        for sid in (1, 2, 3):
            assert result.summaries[sid].aborted == 0
            for rows in result.row_sets[sid]:
                assert rows == baseline_rows


class TestFaultIsolation:
    def test_faulty_neighbor_changes_nothing_for_clean_session(self, data):
        """A clean session's rows AND simulated time are bit-identical
        whether it runs alone or next to a heavily faulty session —
        channels, pools, caches and RNG streams are per-session."""
        alone = run_scripts(
            data, [anchor_script(1, Architecture.ENHANCED_SQL_UDTF)], workers=1
        )
        heavy_faults = {
            "enabled": True,
            "seed": 7,
            "sites": {SITE_FENCED_PROCESS: 1.0, SITE_RMI_WFMS: 1.0},
        }
        paired = run_scripts(
            data,
            [
                anchor_script(
                    0, Architecture.ENHANCED_SQL_UDTF, faults=heavy_faults
                ),
                anchor_script(1, Architecture.ENHANCED_SQL_UDTF),
            ],
            workers=2,
        )
        assert paired.summaries[0].aborted == CALLS, (
            "the faulty session should abort every call at probability 1"
        )
        assert paired.row_sets[1] == alone.row_sets[1]
        assert paired.simulated_ms[1] == alone.simulated_ms[1]
        assert paired.summaries[1].aborted == 0

    def test_faulty_session_pool_eviction_is_private(self, data):
        """The fenced-process death evicts the *faulty* session's pooled
        runtime, not the neighbor's."""
        with ConcurrentIntegrationServer(
            workers=2, mode="isolated", data=data, pooling=True
        ) as server:
            server.run_workload(
                [
                    anchor_script(
                        0, Architecture.ENHANCED_SQL_UDTF, faults=dict(UDTF_FAULTS)
                    ),
                    anchor_script(1, Architecture.ENHANCED_SQL_UDTF),
                ]
            )
            stats = server.runtime_stats()
        assert stats["session_0"]["runtime_pool"]["fault_evictions"] >= 1
        assert stats["session_1"]["runtime_pool"]["fault_evictions"] == 0
        assert stats["session_1"]["faults"]["injected_total"] == 0
