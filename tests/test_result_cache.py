"""Memoizing result cache: semantics, owner invalidation, both modes."""

import pytest

from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario
from repro.sysmodel.result_cache import ResultCache, normalize_args


class TestCacheUnit:
    def test_miss_then_hit_returns_copy(self):
        cache = ResultCache(enabled=True)
        assert cache.get("ns", "f", (1,)) is None
        cache.put("ns", "f", (1,), [(7,)], owner="stock")
        rows = cache.get("ns", "f", (1,))
        assert rows == [(7,)]
        rows.append((8,))  # caller mutation must not poison the cache
        assert cache.get("ns", "f", (1,)) == [(7,)]

    def test_numeric_args_normalized(self):
        cache = ResultCache(enabled=True)
        cache.put("ns", "f", (1,), [(7,)], owner="s")
        assert cache.get("ns", "f", (1.0,)) == [(7,)]

    def test_bool_not_conflated_with_int(self):
        assert normalize_args((True,)) != normalize_args((1,))

    def test_namespaces_are_disjoint(self):
        cache = ResultCache(enabled=True)
        cache.put("A:row", "f", (1,), [(7,)], owner="s")
        assert cache.get("A:batch", "f", (1,)) is None

    def test_lru_eviction_at_capacity(self):
        cache = ResultCache(capacity=2, enabled=True)
        cache.put("ns", "a", (), [(1,)], owner="s")
        cache.put("ns", "b", (), [(2,)], owner="s")
        cache.get("ns", "a", ())  # refresh a; b is now LRU
        cache.put("ns", "c", (), [(3,)], owner="s")
        assert cache.get("ns", "b", ()) is None
        assert cache.get("ns", "a", ()) == [(1,)]
        assert cache.stats()["evictions"] == 1

    def test_invalidate_owner_is_selective_across_namespaces(self):
        cache = ResultCache(enabled=True)
        cache.put("A:row", "stock.f", (1,), [(1,)], owner="stock")
        cache.put("A:batch", "stock.f", (1,), [(1,)], owner="stock")
        cache.put("A:row", "purchasing.g", (1,), [(2,)], owner="purchasing")
        dropped = cache.invalidate_owner("stock")
        assert dropped == 2
        assert cache.get("A:row", "stock.f", (1,)) is None
        assert cache.get("A:batch", "stock.f", (1,)) is None
        assert cache.get("A:row", "purchasing.g", (1,)) == [(2,)]

    def test_disabled_cache_is_inert(self):
        cache = ResultCache(enabled=False)
        cache.put("ns", "f", (), [(1,)], owner="s")
        assert cache.get("ns", "f", ()) is None
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0

    def test_unhashable_args_bypass(self):
        cache = ResultCache(enabled=True)
        cache.put("ns", "f", ([1],), [(1,)], owner="s")
        assert cache.get("ns", "f", ([1],)) is None


@pytest.fixture(params=["row", "batch"])
def cached_server(request, data):
    """A UDTF-architecture server with the result cache on, per mode."""
    scenario = build_scenario(
        Architecture.ENHANCED_SQL_UDTF, data=data, result_cache=True
    )
    scenario.server.fdbs.set_execution_mode(request.param)
    return scenario.server


class TestOwnerInvalidation:
    def test_dml_invalidates_only_owning_system(self, cached_server):
        """A write through stock's local function drops stock's cached
        entries only; purchasing's survive.  Runs in row and batch mode
        (the cache namespace includes the execution mode)."""
        server = cached_server
        cache = server.machine.result_cache

        server.stock.call("GetQuality", 1234)
        server.purchasing.call("GetReliability", 1234)
        stock_calls = server.stock.call_count
        purchasing_calls = server.purchasing.call_count

        # Both hot: served from cache, call counts unchanged.
        server.stock.call("GetQuality", 1234)
        server.purchasing.call("GetReliability", 1234)
        assert server.stock.call_count == stock_calls
        assert server.purchasing.call_count == purchasing_calls
        assert cache.stats()["hits"] == 2

        # DML through stock's SetQuality: stock entries invalidated.
        server.stock.call("SetQuality", 1234, 9)
        assert cache.stats()["invalidations"] >= 1

        server.stock.call("GetQuality", 1234)  # must re-execute
        server.purchasing.call("GetReliability", 1234)  # still cached
        assert server.stock.call_count == stock_calls + 2  # SetQuality + rerun
        assert server.purchasing.call_count == purchasing_calls
        assert cache.stats()["hits"] == 3

    def test_dml_refreshes_stale_value(self, cached_server):
        server = cached_server
        before = server.stock.call("GetQuality", 1234)
        server.stock.call("SetQuality", 1234, before[0][0] + 1)
        after = server.stock.call("GetQuality", 1234)
        assert after[0][0] == before[0][0] + 1

    def test_mutating_function_results_never_cached(self, cached_server):
        server = cached_server
        calls = server.purchasing.call_count
        server.purchasing.call("SetReliability", 1234, 3)
        server.purchasing.call("SetReliability", 1234, 3)
        assert server.purchasing.call_count == calls + 2


class TestFederatedPath:
    def test_federated_function_hits_cache_and_dml_clears_it(self, data):
        """The A-UDTF-level cache short-circuits the fenced invocation
        for a repeated federated call, and a DML write against an owning
        system forces re-execution with the fresh value."""
        scenario = build_scenario(
            Architecture.ENHANCED_SQL_UDTF, data=data,
            pooling=True, result_cache=True,
        )
        server = scenario.server
        clock = server.machine.clock

        first = scenario.call("GetSuppQual", "ACME Industrial")
        start = clock.now
        second = scenario.call("GetSuppQual", "ACME Industrial")
        hot_cached = clock.now - start
        assert first == second
        assert server.machine.result_cache.stats()["hits"] > 0

        server.stock.call("SetQuality", 1234, first[0][0] + 1)
        start = clock.now
        refreshed = scenario.call("GetSuppQual", "ACME Industrial")
        refresh_elapsed = clock.now - start
        assert refreshed[0][0] == first[0][0] + 1
        # The refresh re-ran the invalidated leg of the pipeline, so it
        # is strictly slower than the all-cached repeat call.
        assert refresh_elapsed > hot_cached
