"""Memoizing result cache: semantics, owner invalidation, both modes."""

import pytest

from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario
from repro.sysmodel.result_cache import ResultCache, normalize_args


class TestCacheUnit:
    def test_miss_then_hit_returns_copy(self):
        cache = ResultCache(enabled=True)
        assert cache.get("ns", "f", (1,)) is None
        cache.put("ns", "f", (1,), [(7,)], owner="stock")
        rows = cache.get("ns", "f", (1,))
        assert rows == [(7,)]
        rows.append((8,))  # caller mutation must not poison the cache
        assert cache.get("ns", "f", (1,)) == [(7,)]

    def test_numeric_args_normalized(self):
        cache = ResultCache(enabled=True)
        cache.put("ns", "f", (1,), [(7,)], owner="s")
        assert cache.get("ns", "f", (1.0,)) == [(7,)]

    def test_bool_not_conflated_with_int(self):
        assert normalize_args((True,)) != normalize_args((1,))

    def test_namespaces_are_disjoint(self):
        cache = ResultCache(enabled=True)
        cache.put("A:row", "f", (1,), [(7,)], owner="s")
        assert cache.get("A:batch", "f", (1,)) is None

    def test_lru_eviction_at_capacity(self):
        cache = ResultCache(capacity=2, enabled=True)
        cache.put("ns", "a", (), [(1,)], owner="s")
        cache.put("ns", "b", (), [(2,)], owner="s")
        cache.get("ns", "a", ())  # refresh a; b is now LRU
        cache.put("ns", "c", (), [(3,)], owner="s")
        assert cache.get("ns", "b", ()) is None
        assert cache.get("ns", "a", ()) == [(1,)]
        assert cache.stats()["evictions"] == 1

    def test_invalidate_owner_is_selective_across_namespaces(self):
        cache = ResultCache(enabled=True)
        cache.put("A:row", "stock.f", (1,), [(1,)], owner="stock")
        cache.put("A:batch", "stock.f", (1,), [(1,)], owner="stock")
        cache.put("A:row", "purchasing.g", (1,), [(2,)], owner="purchasing")
        dropped = cache.invalidate_owner("stock")
        assert dropped == 2
        assert cache.get("A:row", "stock.f", (1,)) is None
        assert cache.get("A:batch", "stock.f", (1,)) is None
        assert cache.get("A:row", "purchasing.g", (1,)) == [(2,)]

    def test_disabled_cache_is_inert(self):
        cache = ResultCache(enabled=False)
        cache.put("ns", "f", (), [(1,)], owner="s")
        assert cache.get("ns", "f", ()) is None
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0

    def test_unhashable_args_bypass(self):
        cache = ResultCache(enabled=True)
        cache.put("ns", "f", ([1],), [(1,)], owner="s")
        assert cache.get("ns", "f", ([1],)) is None

    def test_large_ints_not_collapsed_through_float(self):
        """Regression: args were normalized via float(), so 2**53 and
        2**53 + 1 (same float64 value) collided on one entry and the
        second lookup served the first argument's rows."""
        cache = ResultCache(enabled=True)
        cache.put("ns", "f", (2**53,), [("a",)], owner="s")
        cache.put("ns", "f", (2**53 + 1,), [("b",)], owner="s")
        assert cache.get("ns", "f", (2**53,)) == [("a",)]
        assert cache.get("ns", "f", (2**53 + 1,)) == [("b",)]

    def test_non_integral_float_distinct_from_nearby_int(self):
        cache = ResultCache(enabled=True)
        cache.put("ns", "f", (0.5,), [("half",)], owner="s")
        assert cache.get("ns", "f", (0,)) is None
        assert cache.get("ns", "f", (0.5,)) == [("half",)]
        # Integral floats still unify with their int (1 ≡ 1.0).
        cache.put("ns", "g", (1,), [("one",)], owner="s")
        assert cache.get("ns", "g", (1.0,)) == [("one",)]

    def test_nan_args_bypass_and_never_pile_up(self):
        """Regression: NaN keys never compare equal, so every put
        appended a fresh dead entry and no get ever hit."""
        cache = ResultCache(enabled=True)
        nan = float("nan")
        for _ in range(3):
            cache.put("ns", "f", (nan,), [(1,)], owner="s")
        assert len(cache) == 0
        assert cache.get("ns", "f", (nan,)) is None
        assert normalize_args((nan,)) is None

    def test_infinities_are_cacheable_and_distinct(self):
        cache = ResultCache(enabled=True)
        cache.put("ns", "f", (float("inf"),), [("+",)], owner="s")
        cache.put("ns", "f", (float("-inf"),), [("-",)], owner="s")
        assert cache.get("ns", "f", (float("inf"),)) == [("+",)]
        assert cache.get("ns", "f", (float("-inf"),)) == [("-",)]

    def test_function_names_keyed_exactly(self):
        """Regression: function names were upper-cased in the key, so
        distinct runtime keys like audtf:Foo and audtf:foo collided."""
        cache = ResultCache(enabled=True)
        cache.put("ns", "audtf:Foo", (1,), [("Foo",)], owner="s")
        cache.put("ns", "audtf:foo", (1,), [("foo",)], owner="s")
        assert cache.get("ns", "audtf:Foo", (1,)) == [("Foo",)]
        assert cache.get("ns", "audtf:foo", (1,)) == [("foo",)]
        assert len(cache) == 2

    def test_disable_counts_dropped_entries_as_invalidations(self):
        """Regression: configure(enabled=False) cleared the entries
        without counting them, so hits+misses+evictions+invalidations
        no longer accounted for every entry that ever left the cache."""
        cache = ResultCache(enabled=True)
        cache.put("ns", "a", (), [(1,)], owner="s")
        cache.put("ns", "b", (), [(2,)], owner="s")
        cache.configure(enabled=False)
        assert cache.stats()["invalidations"] == 2
        assert len(cache) == 0

    def test_put_is_exception_safe_mid_fill(self):
        """A rows iterable raising mid-stream must leave the previous
        entry intact and never store a partial result."""
        cache = ResultCache(enabled=True)
        cache.put("ns", "f", (1,), [("old",)], owner="s")

        def poisoned():
            yield ("new-1",)
            raise RuntimeError("backend died mid-fill")

        with pytest.raises(RuntimeError):
            cache.put("ns", "f", (1,), poisoned(), owner="s")
        assert cache.get("ns", "f", (1,)) == [("old",)]


@pytest.fixture(params=["row", "batch"])
def cached_server(request, data):
    """A UDTF-architecture server with the result cache on, per mode."""
    scenario = build_scenario(
        Architecture.ENHANCED_SQL_UDTF, data=data, result_cache=True
    )
    scenario.server.fdbs.set_execution_mode(request.param)
    return scenario.server


class TestOwnerInvalidation:
    def test_dml_invalidates_only_owning_system(self, cached_server):
        """A write through stock's local function drops stock's cached
        entries only; purchasing's survive.  Runs in row and batch mode
        (the cache namespace includes the execution mode)."""
        server = cached_server
        cache = server.machine.result_cache

        server.stock.call("GetQuality", 1234)
        server.purchasing.call("GetReliability", 1234)
        stock_calls = server.stock.call_count
        purchasing_calls = server.purchasing.call_count

        # Both hot: served from cache, call counts unchanged.
        server.stock.call("GetQuality", 1234)
        server.purchasing.call("GetReliability", 1234)
        assert server.stock.call_count == stock_calls
        assert server.purchasing.call_count == purchasing_calls
        assert cache.stats()["hits"] == 2

        # DML through stock's SetQuality: stock entries invalidated.
        server.stock.call("SetQuality", 1234, 9)
        assert cache.stats()["invalidations"] >= 1

        server.stock.call("GetQuality", 1234)  # must re-execute
        server.purchasing.call("GetReliability", 1234)  # still cached
        assert server.stock.call_count == stock_calls + 2  # SetQuality + rerun
        assert server.purchasing.call_count == purchasing_calls
        assert cache.stats()["hits"] == 3

    def test_dml_refreshes_stale_value(self, cached_server):
        server = cached_server
        before = server.stock.call("GetQuality", 1234)
        server.stock.call("SetQuality", 1234, before[0][0] + 1)
        after = server.stock.call("GetQuality", 1234)
        assert after[0][0] == before[0][0] + 1

    def test_mutating_function_results_never_cached(self, cached_server):
        server = cached_server
        calls = server.purchasing.call_count
        server.purchasing.call("SetReliability", 1234, 3)
        server.purchasing.call("SetReliability", 1234, 3)
        assert server.purchasing.call_count == calls + 2


class TestFederatedPath:
    def test_federated_function_hits_cache_and_dml_clears_it(self, data):
        """The A-UDTF-level cache short-circuits the fenced invocation
        for a repeated federated call, and a DML write against an owning
        system forces re-execution with the fresh value."""
        scenario = build_scenario(
            Architecture.ENHANCED_SQL_UDTF, data=data,
            pooling=True, result_cache=True,
        )
        server = scenario.server
        clock = server.machine.clock

        first = scenario.call("GetSuppQual", "ACME Industrial")
        start = clock.now
        second = scenario.call("GetSuppQual", "ACME Industrial")
        hot_cached = clock.now - start
        assert first == second
        assert server.machine.result_cache.stats()["hits"] > 0

        server.stock.call("SetQuality", 1234, first[0][0] + 1)
        start = clock.now
        refreshed = scenario.call("GetSuppQual", "ACME Industrial")
        refresh_elapsed = clock.now - start
        assert refreshed[0][0] == first[0][0] + 1
        # The refresh re-ran the invalidated leg of the pipeline, so it
        # is strictly slower than the all-cached repeat call.
        assert refresh_elapsed > hot_cached
