"""The three compilers: SQL, workflow, procedural — one mapping, three
artefacts, identical results."""

import pytest

from repro.appsys import (
    ProductDataManagementSystem,
    PurchasingSystem,
    StockKeepingSystem,
)
from repro.core.compile_procedural import compile_procedural
from repro.core.compile_sql_udtf import compile_simple_select, compile_sql_udtf
from repro.core.compile_workflow import compile_workflow
from repro.core.scenario import scenario_functions
from repro.errors import MappingGraphError, UnsupportedMappingError
from repro.fdbs.parser import parse_statement
from repro.fdbs import ast
from repro.wfms.model import BlockActivity, HelperActivity, ProgramActivity
from repro.wfms.programs import ProgramRegistry


@pytest.fixture(scope="module")
def systems(data):
    return {
        s.name: s
        for s in (
            StockKeepingSystem(None, data),
            PurchasingSystem(None, data),
            ProductDataManagementSystem(None, data),
        )
    }


@pytest.fixture(scope="module")
def resolver(systems):
    return lambda system, function: systems[system].function(function)


@pytest.fixture(scope="module")
def feds():
    return {f.name: f for f in scenario_functions()}


class TestSqlCompiler:
    def test_buysuppcomp_matches_paper_shape(self, feds, resolver):
        ddl = compile_sql_udtf(feds["BuySuppComp"], resolver)
        statement = parse_statement(ddl)
        assert isinstance(statement, ast.CreateSqlFunction)
        body = statement.body
        # Five TABLE(...) references, in dependency order, DP last.
        aliases = [f.alias for f in body.from_items]
        assert len(aliases) == 5
        assert aliases[-1] == "DP"
        assert "BuySuppComp.SupplierNo" in ddl
        assert "TABLE (DecidePurchase(GG.Grade, GCN.No)) AS DP" in ddl

    def test_simple_case_emits_constant_and_cast(self, feds, resolver):
        ddl = compile_sql_udtf(feds["GetNumberSupp1234"], resolver)
        assert "GetNumber(1234, GetNumberSupp1234.CompNo)" in ddl
        assert "BIGINT(GN.Number)" in ddl

    def test_independent_case_emits_join_predicate(self, feds, resolver):
        ddl = compile_sql_udtf(feds["GetSubCompDiscounts"], resolver)
        assert "WHERE GSCD.SubCompNo = GCS4D.CompNo" in ddl

    def test_cyclic_case_unsupported(self, feds, resolver):
        with pytest.raises(UnsupportedMappingError) as excinfo:
            compile_sql_udtf(feds["AllCompNames"], resolver)
        assert excinfo.value.case == "dependent: cyclic"

    def test_simple_select_binding_order(self, feds, resolver):
        sql, binding = compile_simple_select(feds["BuySuppComp"], resolver)
        assert sql.startswith("SELECT")
        assert "CREATE FUNCTION" not in sql
        assert binding == ["SupplierNo", "SupplierNo", "CompName"]
        assert sql.count("?") == 3

    def test_unwired_parameter_rejected(self, feds, resolver):
        import copy

        fed = copy.deepcopy(feds["GetSuppQual"])
        fed.mapping.nodes[0].args.clear()
        with pytest.raises(MappingGraphError, match="does not wire"):
            compile_sql_udtf(fed, resolver)


class TestWorkflowCompiler:
    def compile(self, fed, resolver):
        return compile_workflow(fed, resolver, ProgramRegistry())

    def test_buysuppcomp_structure(self, feds, resolver):
        process = self.compile(feds["BuySuppComp"], resolver)
        programs = [a for a in process.activities if isinstance(a, ProgramActivity)]
        assert len(programs) == 5
        edges = {(c.source, c.target) for c in process.connectors}
        assert ("GQ", "GG") in edges and ("GR", "GG") in edges
        assert ("GG", "DP") in edges and ("GCN", "DP") in edges
        # GQ, GR, GCN have no incoming edges: they run in parallel.
        targets = {t for _, t in edges}
        assert {"GQ", "GR", "GCN"} & targets == set()

    def test_simple_case_gets_cast_helper_activity(self, feds, resolver):
        process = self.compile(feds["GetNumberSupp1234"], resolver)
        helpers = [a for a in process.activities if isinstance(a, HelperActivity)]
        assert len(helpers) == 1
        assert helpers[0].name == "CastNumber"

    def test_constant_supplied_to_input_container(self, feds, resolver):
        from repro.wfms.model import Constant

        process = self.compile(feds["GetNumberSupp1234"], resolver)
        activity = process.activity("GN")
        assert activity.input_map["SupplierNo"] == Constant(1234)

    def test_independent_join_becomes_composition_helper(self, feds, resolver):
        process = self.compile(feds["GetSubCompDiscounts"], resolver)
        assert process.has_activity("CombineResults")
        assert process.rows_from == "CombineResults"

    def test_cyclic_case_becomes_do_until_block(self, feds, resolver):
        process = self.compile(feds["AllCompNames"], resolver)
        blocks = [a for a in process.activities if isinstance(a, BlockActivity)]
        assert len(blocks) == 1
        block = blocks[0]
        assert block.until is not None
        assert block.collect_rows
        assert block.carry == {"CompNo": "NextValue"}
        assert block.subprocess is not None
        assert block.subprocess.has_activity("Advance")

    def test_compiled_process_validates(self, feds, resolver):
        for fed in feds.values():
            self.compile(fed, resolver).validate()


class TestProceduralCompiler:
    def test_cyclic_case_supported_by_host_loop(self, feds, resolver):
        body = compile_procedural(feds["AllCompNames"], resolver)
        assert callable(body)

    def test_body_name_carries_function_name(self, feds, resolver):
        body = compile_procedural(feds["BuySuppComp"], resolver)
        assert body.__name__ == "procedural_BuySuppComp"


class TestCrossArchitectureEquivalence:
    """The same federated function must return identical rows through
    every architecture that supports it (results, not timings)."""

    CALLS = {
        "GibKompNr": ("gearbox",),
        "GetNumberSupp1234": (1,),
        "GetSuppQual": ("ACME Industrial",),
        "GetSuppQualRelia": (1234,),
        "GetSubCompDiscounts": (1, 5),
        "GetSuppGrade": (1234,),
        "GetSuppQualReliaByName": ("ACME Industrial",),
        "GetNoSuppComp": ("gearbox",),
        "BuySuppComp": (1234, "gearbox"),
        "AllCompNames": (1, 5),
    }

    @pytest.mark.parametrize("name", sorted(CALLS))
    def test_identical_rows_across_architectures(
        self,
        name,
        simple_scenario,
        sql_udtf_scenario,
        procedural_scenario,
        wfms_scenario,
    ):
        args = self.CALLS[name]
        results = {}
        for scenario in (
            simple_scenario,
            sql_udtf_scenario,
            procedural_scenario,
            wfms_scenario,
        ):
            if name.upper() in scenario.skipped:
                continue
            results[scenario.server.architecture] = sorted(
                scenario.call(name, *args)
            )
        assert len(results) >= 2
        reference = next(iter(results.values()))
        for architecture, rows in results.items():
            assert rows == reference, architecture
