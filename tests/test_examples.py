"""Every example script must run to completion (they contain their own
assertions), so the documentation can never silently rot."""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
