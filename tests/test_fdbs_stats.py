"""RUNSTATS statistics collection and the SYSCAT_STATS view."""

import pytest

from repro.errors import CatalogError, ExecutionError
from repro.fdbs.catalog import ColumnDef
from repro.fdbs.engine import Database
from repro.fdbs.federation import DatabaseEndpoint
from repro.fdbs.stats import collect_stats
from repro.fdbs.types import INTEGER, VARCHAR
from repro.sysmodel.machine import Machine


def make_db(machine=None):
    db = Database("statsdb", machine=machine)
    db.execute("CREATE TABLE t (a INT, b VARCHAR(10))")
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x')")
    return db


class TestCollectStats:
    def test_basic_counts(self):
        columns = [ColumnDef("a", INTEGER), ColumnDef("b", VARCHAR(10))]
        rows = [(1, "x"), (2, "y"), (3, "x"), (None, None)]
        stats = collect_stats("T", columns, rows)
        assert stats.card == 4
        a = stats.column("a")
        assert (a.ndv, a.null_count, a.min_value, a.max_value) == (3, 1, 1, 3)
        b = stats.column("B")  # case-insensitive lookup
        assert (b.ndv, b.null_count, b.min_value, b.max_value) == (2, 1, "x", "y")

    def test_unhashable_values_are_tolerated(self):
        columns = [ColumnDef("a", INTEGER)]
        stats = collect_stats("T", columns, [([1],), (2,)])
        a = stats.column("a")
        assert a.null_count == 0
        assert a.min_value is None and a.max_value is None

    def test_unorderable_values_drop_min_max(self):
        columns = [ColumnDef("a", INTEGER)]
        stats = collect_stats("T", columns, [(1,), ("x",)])
        a = stats.column("a")
        assert a.ndv == 2
        assert a.min_value is None and a.max_value is None

    def test_empty_table(self):
        stats = collect_stats("T", [ColumnDef("a", INTEGER)], [])
        assert stats.card == 0
        assert stats.column("a").ndv == 0


class TestRunstatsStatement:
    def test_runstats_populates_catalog(self):
        db = make_db()
        result = db.execute("RUNSTATS t")
        assert result.statement_type == "RUNSTATS"
        assert result.rowcount == 3
        stats = db.catalog.get_statistics("t")
        assert stats is not None and stats.card == 3
        assert stats.column("a").ndv == 3
        assert stats.column("b").ndv == 2

    def test_analyze_is_an_alias(self):
        db = make_db()
        db.execute("ANALYZE t")
        assert db.catalog.get_statistics("T") is not None

    def test_syscat_stats_rows(self):
        db = make_db()
        db.execute("RUNSTATS t")
        rows = db.execute("SELECT * FROM SYSCAT_STATS").rows
        assert ("t", "a", 3, 3, 0, "1", "3") in rows
        assert ("t", "b", 3, 2, 0, "x", "y") in rows

    def test_runstats_on_nickname(self):
        remote = Database("remote")
        remote.execute("CREATE TABLE orders (order_no INT, comp_no INT)")
        remote.execute("INSERT INTO orders VALUES (1, 10), (2, 20)")
        local = Database("local")
        local.execute("CREATE WRAPPER w")
        local.execute("CREATE SERVER s WRAPPER w")
        local.attach_endpoint("s", DatabaseEndpoint(remote))
        local.execute("CREATE NICKNAME n FOR s.orders")
        result = local.execute("RUNSTATS n")
        assert result.rowcount == 2
        stats = local.catalog.get_statistics("n")
        assert stats.card == 2
        assert stats.column("comp_no").max_value == 20

    def test_unknown_name_raises(self):
        db = make_db()
        with pytest.raises(CatalogError):
            db.execute("RUNSTATS nope")

    def test_stats_are_a_snapshot(self):
        db = make_db()
        db.execute("RUNSTATS t")
        db.execute("INSERT INTO t VALUES (4, 'z')")
        assert db.catalog.get_statistics("t").card == 3  # stale until re-run
        db.execute("RUNSTATS t")
        assert db.catalog.get_statistics("t").card == 4

    def test_drop_table_discards_stats(self):
        db = make_db()
        db.execute("RUNSTATS t")
        db.execute("DROP TABLE t")
        assert db.catalog.get_statistics("t") is None

    def test_runstats_charges_per_row(self):
        machine = Machine()
        db = Database("timed", machine=machine)
        db.execute("CREATE TABLE t_sml (a INT)")
        db.execute("CREATE TABLE t_big (a INT)")
        db.execute("INSERT INTO t_sml VALUES (1)")
        for index in range(101):
            db.execute("INSERT INTO t_big VALUES (?)", params=[index])

        def elapsed(sql):
            start = machine.clock.now
            db.execute(sql)
            return machine.clock.now - start

        small = elapsed("RUNSTATS t_sml")
        big = elapsed("RUNSTATS t_big")
        assert small >= machine.costs.runstats_base
        assert big - small == pytest.approx(
            100 * machine.costs.runstats_row_cost, rel=0.01
        )

    def test_runstats_requires_materialised_storage(self):
        db = make_db()
        db.execute("CREATE VIEW v AS SELECT a FROM t")
        with pytest.raises((CatalogError, ExecutionError)):
            db.execute("RUNSTATS v")
