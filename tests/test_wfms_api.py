"""WfMS client API, programs registry, audit trail."""

import pytest

from repro.errors import ActivityFailedError, WorkflowError
from repro.fdbs.types import INTEGER
from repro.simtime.costs import DEFAULT_COSTS
from repro.sysmodel.machine import Machine
from repro.wfms.api import WfmsClient
from repro.wfms.audit import AuditTrail
from repro.wfms.builder import ProcessBuilder
from repro.wfms.programs import LocalFunctionProgram, ProgramRegistry


def deployable():
    b = ProcessBuilder("P", [("X", INTEGER)], [("Y", INTEGER)])
    b.program_activity(
        "A", "math.double", [("X", INTEGER)], [("Y", INTEGER)],
        {"X": b.from_input("X")},
    )
    b.map_output("Y", b.from_activity("A", "Y"))
    return b.build()


def make_client(machine=None):
    registry = ProgramRegistry()
    registry.register_program("math.double", lambda inp: {"Y": inp["X"] * 2})
    client = WfmsClient(machine, registry)
    client.deploy(deployable())
    return client


class TestClient:
    def test_run_to_output(self):
        assert make_client().run_to_output("P", {"X": 4}) == {"Y": 8}

    def test_unknown_template_rejected(self):
        with pytest.raises(WorkflowError, match="template"):
            make_client().run_process("Ghost", {})

    def test_redeploy_replaces_template(self):
        client = make_client()
        replacement = deployable()
        replacement.output_map["Y"] = replacement.output_map["Y"]
        client.deploy(replacement)
        assert client.templates() == ["P"]

    def test_template_load_cost_paid_once(self):
        machine = Machine()
        client = make_client(machine)
        machine.ensure_wfms()

        def run():
            start = machine.clock.now
            client.run_process("P", {"X": 1})
            return machine.clock.now - start

        first, second = run(), run()
        assert first - second == pytest.approx(DEFAULT_COSTS.wf_template_load)

    def test_env_start_charged_every_call(self):
        machine = Machine()
        client = make_client(machine)
        machine.ensure_wfms()
        client.run_process("P", {"X": 1})
        start = machine.clock.now
        client.run_process("P", {"X": 1})
        assert machine.clock.now - start >= DEFAULT_COSTS.wf_env_start

    def test_first_call_boots_wfms_server(self):
        machine = Machine()
        client = make_client(machine)
        client.run_process("P", {"X": 1})
        assert machine.wfms_process.running


class TestProgramRegistry:
    def test_duplicate_program_rejected(self):
        registry = ProgramRegistry()
        registry.register_program("p", lambda i: {})
        with pytest.raises(WorkflowError):
            registry.register_program("P", lambda i: {})

    def test_unknown_program_rejected(self):
        with pytest.raises(WorkflowError):
            ProgramRegistry().program("ghost")

    def test_helpers_live_in_their_own_namespace(self):
        registry = ProgramRegistry()
        registry.register_program("same", lambda i: {})
        registry.register_helper("same", lambda i: {})
        assert registry.has_program("same") and registry.has_helper("same")


class TestLocalFunctionProgram:
    def make(self, expose_rows=False):
        from repro.appsys import StockKeepingSystem

        stock = StockKeepingSystem()
        return stock, LocalFunctionProgram(
            stock, "GetQuality", ["SupplierNo"], ["Qual"], expose_rows
        )

    def test_maps_container_members_to_positional_args(self):
        _, program = self.make()
        assert program({"SupplierNo": 1234}) == {"Qual": 8}

    def test_input_member_names_case_insensitive(self):
        _, program = self.make()
        assert program({"SUPPLIERNO": 1234}) == {"Qual": 8}

    def test_missing_input_member_fails_activity(self):
        _, program = self.make()
        with pytest.raises(ActivityFailedError):
            program({})

    def test_empty_result_yields_null_outputs(self):
        _, program = self.make()
        assert program({"SupplierNo": 99999}) == {"Qual": None}

    def test_expose_rows_attaches_row_list(self):
        _, program = self.make(expose_rows=True)
        outputs = program({"SupplierNo": 1234})
        assert outputs["ROWS"] == [(8,)]

    def test_identifier(self):
        _, program = self.make()
        assert program.identifier == "stock.GetQuality"


class TestAuditTrail:
    def test_filtering_by_process_and_activity(self):
        trail = AuditTrail()
        trail.record(0.0, "P", "process started")
        trail.record(1.0, "P", "activity started", activity="A")
        trail.record(2.0, "Q", "process started")
        assert len(trail.for_process("p")) == 2
        assert len(trail.for_activity("a")) == 1

    def test_clear(self):
        trail = AuditTrail()
        trail.record(0.0, "P", "x")
        trail.clear()
        assert len(trail) == 0


class TestInstanceAdministration:
    def test_instances_recorded_with_ids(self):
        client = make_client()
        client.run_process("P", {"X": 1})
        client.run_process("P", {"X": 2})
        instances = client.instances()
        assert [i.instance_id for i in instances] == [1, 2]

    def test_instance_lookup_by_id(self):
        client = make_client()
        run = client.run_process("P", {"X": 5})
        fetched = client.instance(run.instance_id)
        assert fetched is run
        with pytest.raises(WorkflowError):
            client.instance(999)

    def test_filter_by_name_and_state(self):
        from repro.wfms.instance import ProcessState

        client = make_client()
        client.run_process("P", {"X": 1})
        assert len(client.instances(name="P")) == 1
        assert len(client.instances(name="Other")) == 0
        assert len(client.instances(state=ProcessState.FINISHED)) == 1
        assert len(client.instances(state=ProcessState.FAILED)) == 0

    def test_history_is_bounded(self):
        from repro.wfms.engine import WorkflowEngine

        client = make_client()
        client.engine.INSTANCE_HISTORY_LIMIT = 5
        for index in range(8):
            client.run_process("P", {"X": index})
        instances = client.instances()
        assert len(instances) == 5
        assert instances[-1].instance_id == 8
