"""The interactive SQL shell (stream-driven)."""

import io

import pytest

from repro.fdbs.engine import Database
from repro.fdbs.shell import Shell, build_database


def run_shell(script: str, database: Database | None = None) -> str:
    shell = Shell(database or Database("shell-test"))
    out = io.StringIO()
    shell.run(io.StringIO(script), out)
    return out.getvalue()


def test_select_prints_table_and_rowcount():
    out = run_shell("SELECT 1 AS one, 'x' AS label;\n.quit\n")
    assert "one" in out and "label" in out
    assert "(1 row" in out


def test_multiline_statement():
    out = run_shell("SELECT\n  40 + 2 AS v\n;\n.quit\n")
    assert "42" in out


def test_ddl_and_dml_feedback():
    out = run_shell(
        "CREATE TABLE t (a INT);\nINSERT INTO t VALUES (1), (2);\n.quit\n"
    )
    assert "CREATE TABLE ok" in out
    assert "2 row(s) affected" in out


def test_error_does_not_kill_shell():
    out = run_shell("SELECT * FROM missing;\nSELECT 5;\n.quit\n")
    assert "error:" in out
    assert "5" in out
    assert out.rstrip().endswith("bye")


def test_call_prints_out_params():
    db = Database("shell-call")
    db.execute(
        "CREATE PROCEDURE p (IN a INT, OUT b INT) LANGUAGE SQL BEGIN "
        "SET b = a * 2; END"
    )
    out = run_shell("CALL p(21);\n.quit\n", db)
    assert "OUT: {'b': 42}" in out


def test_dot_tables_and_functions():
    db = Database("shell-meta")
    db.execute("CREATE TABLE t (a INT)")
    out = run_shell(".tables\n.functions\n.quit\n", db)
    assert "t" in out


def test_dot_time_toggle():
    from repro.sysmodel.machine import Machine

    db = Database("shell-time", machine=Machine())
    out = run_shell("SELECT 1;\n.time off\nSELECT 1;\n.quit\n", db)
    assert out.count(" su)") == 1


def test_dot_user_switch_and_denial():
    db = Database("shell-auth")
    db.execute("CREATE TABLE t (a INT)")
    db.execute("CREATE USER alice")
    out = run_shell(".user alice\nSELECT * FROM t;\n.quit\n", db)
    assert "user is now ALICE" in out
    assert "error:" in out and "SELECT on table" in out


def test_unknown_dot_command():
    out = run_shell(".wat\n.quit\n")
    assert "unknown command" in out


def test_eof_exits_cleanly():
    out = run_shell("SELECT 1;\n")  # no .quit, stream just ends
    assert out.rstrip().endswith("bye")


def test_build_database_scenario():
    fdbs = build_database("sql")
    rows = fdbs.execute("SELECT * FROM TABLE (GibKompNr('gearbox')) AS G").rows
    assert rows == [(1,)]


def test_build_database_unknown_scenario():
    with pytest.raises(SystemExit):
        build_database("nope")
