"""Catalog object management."""

import pytest

from repro.errors import CatalogError
from repro.fdbs.catalog import (
    Catalog,
    ColumnDef,
    ExternalTableFunction,
    FunctionParam,
    NicknameDef,
    ProcedureDef,
    ServerDef,
    SqlTableFunction,
    TableDef,
    WrapperDef,
)
from repro.fdbs.parser import parse_statement
from repro.fdbs.types import INTEGER


def table(name="t"):
    return TableDef(name, [ColumnDef("a", INTEGER), ColumnDef("b", INTEGER)])


def function(name="f"):
    body = parse_statement("SELECT 1 AS x")
    return SqlTableFunction(
        name, [FunctionParam("p", INTEGER)], [ColumnDef("x", INTEGER)], body
    )


def test_table_lookup_is_case_insensitive():
    catalog = Catalog()
    catalog.add_table(table("Suppliers"))
    assert catalog.get_table("SUPPLIERS").name == "Suppliers"
    assert catalog.has_table("suppliers")


def test_duplicate_table_rejected():
    catalog = Catalog()
    catalog.add_table(table("T"))
    with pytest.raises(CatalogError):
        catalog.add_table(table("t"))


def test_unknown_table_rejected():
    with pytest.raises(CatalogError):
        Catalog().get_table("missing")


def test_drop_table():
    catalog = Catalog()
    catalog.add_table(table())
    catalog.drop_table("T")
    assert not catalog.has_table("t")


def test_column_index_and_names():
    t = table()
    assert t.column_index("B") == 1
    assert t.column_names == ["a", "b"]
    with pytest.raises(CatalogError):
        t.column_index("zzz")


def test_function_registration():
    catalog = Catalog()
    catalog.add_function(function("GetQuality"))
    assert catalog.has_function("getquality")
    assert catalog.get_function("GETQUALITY").name == "GetQuality"


def test_function_procedure_namespace_clash_rejected():
    catalog = Catalog()
    catalog.add_function(function("x"))
    with pytest.raises(CatalogError):
        catalog.add_procedure(ProcedureDef("X", [], []))
    catalog2 = Catalog()
    catalog2.add_procedure(ProcedureDef("y", [], []))
    with pytest.raises(CatalogError):
        catalog2.add_function(function("Y"))


def test_drop_function():
    catalog = Catalog()
    catalog.add_function(function())
    catalog.drop_function("F")
    assert not catalog.has_function("f")


def test_external_function_defaults():
    fn = ExternalTableFunction(
        "A", [], [ColumnDef("x", INTEGER)], external_name="e"
    )
    assert fn.fenced
    assert fn.implementation is None


def test_server_requires_wrapper():
    catalog = Catalog()
    with pytest.raises(CatalogError):
        catalog.add_server(ServerDef("s", "missing_wrapper"))
    catalog.add_wrapper(WrapperDef("w"))
    catalog.add_server(ServerDef("s", "w"))
    assert catalog.get_server("S").wrapper == "w"


def test_nickname_requires_server_and_unique_name():
    catalog = Catalog()
    catalog.add_wrapper(WrapperDef("w"))
    catalog.add_server(ServerDef("s", "w"))
    catalog.add_table(table("local_t"))
    with pytest.raises(CatalogError):
        catalog.add_nickname(NicknameDef("local_t", "s", "r"))  # clashes
    catalog.add_nickname(NicknameDef("n", "s", "r"))
    assert catalog.get_nickname("N").remote_name == "r"


def test_nickname_and_table_share_namespace():
    catalog = Catalog()
    catalog.add_wrapper(WrapperDef("w"))
    catalog.add_server(ServerDef("s", "w"))
    catalog.add_nickname(NicknameDef("n", "s", "r"))
    with pytest.raises(CatalogError):
        catalog.add_table(table("N"))
