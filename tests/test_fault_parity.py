"""Armed-at-zero fault harness is invisible: bit-identical to flags-off.

The contract that keeps the calibration anchors safe: enabling the
fault harness with every site armed at probability 0 (and the retry
policy + forward recovery switched on) must not change a single timing
or row.  Probability-0 sites never draw from the RNG, detection and
timeout costs are only charged when a fault actually fires, and backoff
is only charged between attempts — so the two runs must agree exactly
(``==``, not approximately).
"""

import pytest

from repro.bench.harness import call_args
from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario
from repro.sysmodel.faults import FAULT_SITES

FUNCTIONS = ("GetNoSuppComp", "GetSuppQual")


def drive(server, function):
    """Cold + two hot calls; return (rows, [per-call timings])."""
    args = call_args(function)
    timings = []
    rows = None
    for _ in range(3):
        result, elapsed = server.elapsed(server.call, function, *args)
        rows = result
        timings.append(elapsed)
    return rows, timings


@pytest.mark.parametrize(
    "architecture", [Architecture.WFMS, Architecture.ENHANCED_SQL_UDTF]
)
@pytest.mark.parametrize("pooling", [False, True])
def test_zero_probability_faults_are_bit_identical(data, architecture, pooling):
    baseline = build_scenario(architecture, data=data, pooling=pooling).server

    armed = build_scenario(architecture, data=data, pooling=pooling).server
    armed.configure_faults(
        enabled=True,
        seed=20020322,
        sites={site: 0.0 for site in FAULT_SITES},
        retry_attempts=4,
        backoff_base=50.0,
        forward_recovery=True,
    )

    for function in FUNCTIONS:
        expected_rows, expected_timings = drive(baseline, function)
        armed_rows, armed_timings = drive(armed, function)
        assert armed_rows == expected_rows
        assert armed_timings == expected_timings  # exact, not approx

    # Nothing fired, nothing retried, nothing drew from the RNG.
    stats = armed.machine.runtime_stats()["faults"]
    assert stats["injected_total"] == 0
    assert stats["retry_retries"] == 0


def test_disabled_harness_makes_no_rng_draws(data):
    server = build_scenario(Architecture.WFMS, data=data).server
    server.configure_faults(
        enabled=False, seed=7, sites={site: 0.5 for site in FAULT_SITES}
    )
    function = FUNCTIONS[0]
    server.call(function, *call_args(function))
    rng = server.machine.fault_injector.rng
    # The decision stream is untouched: same next draw as a fresh seed-7
    # stream, so later enabling the harness is still fully reproducible.
    import random

    assert rng.roll() == random.Random(7).random()
