"""Shared fixtures.

Scenario construction is the expensive part (three populated
application systems per architecture), so architecture scenarios are
module-scoped where mutation does not matter and function-scoped where
it does (warmth-sensitive tests build their own).
"""

from __future__ import annotations

import pytest

from repro.appsys.datagen import generate_enterprise_data
from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario


@pytest.fixture(scope="session")
def data():
    """The shared deterministic enterprise universe."""
    return generate_enterprise_data()


@pytest.fixture(scope="module")
def wfms_scenario(data):
    """A WfMS-architecture scenario (module-scoped; warmth accumulates)."""
    return build_scenario(Architecture.WFMS, data=data)


@pytest.fixture(scope="module")
def sql_udtf_scenario(data):
    """An enhanced-SQL-UDTF scenario (module-scoped)."""
    return build_scenario(Architecture.ENHANCED_SQL_UDTF, data=data)


@pytest.fixture(scope="module")
def procedural_scenario(data):
    """An enhanced-Java(procedural)-UDTF scenario (module-scoped)."""
    return build_scenario(Architecture.ENHANCED_JAVA_UDTF, data=data)


@pytest.fixture(scope="module")
def simple_scenario(data):
    """A simple-UDTF scenario (module-scoped)."""
    return build_scenario(Architecture.SIMPLE_UDTF, data=data)
