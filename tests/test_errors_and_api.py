"""Exception hierarchy and the top-level public API surface."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_every_error_is_a_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_restriction_errors_are_sql_errors(self):
        for cls in (
            errors.OneStatementError,
            errors.NestedTableFunctionError,
            errors.CyclicDependencyError,
            errors.CallOnlyProcedureError,
            errors.ReadOnlyFunctionError,
            errors.FencedModeError,
        ):
            assert issubclass(cls, errors.RestrictionError)
            assert issubclass(cls, errors.SqlError)

    def test_catching_the_base_class_works_end_to_end(self):
        from repro.fdbs.engine import Database

        db = Database("x")
        with pytest.raises(errors.ReproError):
            db.execute("SELECT * FROM nonexistent")

    def test_activity_failed_carries_cause(self):
        cause = ValueError("boom")
        error = errors.ActivityFailedError("A1", cause)
        assert error.activity == "A1"
        assert error.cause is cause
        assert "A1" in str(error)

    def test_lexer_error_carries_position(self):
        error = errors.LexerError("bad", position=5, line=2, column=3)
        assert (error.position, error.line, error.column) == (5, 2, 3)

    def test_unsupported_mapping_carries_case(self):
        error = errors.UnsupportedMappingError("no", case="dependent: cyclic")
        assert error.case == "dependent: cyclic"


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_quickstart_surface(self, data):
        scenario = repro.build_scenario(repro.Architecture.WFMS, data=data)
        assert scenario.call("GibKompNr", "gearbox") == [(1,)]

    def test_capability_matrix_reachable_from_top_level(self):
        rows = repro.capability_matrix()
        assert any(row["case"] == "dependent: cyclic" for row in rows)

    def test_classify_reachable_from_top_level(self, data):
        scenario = repro.build_scenario(
            repro.Architecture.ENHANCED_SQL_UDTF, data=data
        )
        fed = scenario.function("BuySuppComp")
        assert repro.classify(fed.mapping).value == "general"


class TestJitter:
    def test_jittered_measurements_average_near_deterministic(self, data):
        from repro.bench.harness import measure_hot
        from repro.core.scenario import build_scenario
        from repro.simtime.rng import JitterSource

        exact = build_scenario(repro.Architecture.ENHANCED_SQL_UDTF, data=data)
        noisy = build_scenario(
            repro.Architecture.ENHANCED_SQL_UDTF,
            data=data,
            jitter=JitterSource(seed=11, amplitude=0.05),
        )
        baseline = measure_hot(exact, "GetNoSuppComp").mean
        jittered = measure_hot(noisy, "GetNoSuppComp", repeats=25)
        assert jittered.maximum - jittered.minimum > 0.5  # real noise
        assert jittered.mean == pytest.approx(baseline, rel=0.05)

    def test_same_seed_reproduces_noisy_runs(self, data):
        from repro.bench.harness import measure_hot
        from repro.core.scenario import build_scenario
        from repro.simtime.rng import JitterSource

        runs = []
        for _ in range(2):
            scenario = build_scenario(
                repro.Architecture.WFMS,
                data=data,
                jitter=JitterSource(seed=7, amplitude=0.03),
            )
            runs.append(measure_hot(scenario, "GetSuppQual", repeats=5).runs)
        assert runs[0] == runs[1]
