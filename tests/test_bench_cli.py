"""The `python -m repro.bench` command-line entry point."""

import pytest

from repro.bench.__main__ import main


def test_single_experiment(capsys):
    assert main(["E8"]) == 0
    out = capsys.readouterr().out
    assert "E8" in out and "parallel" in out


def test_lowercase_ids_accepted(capsys):
    assert main(["e2"]) == 0
    assert "mapping complexity" in capsys.readouterr().out


def test_unknown_id_rejected(capsys):
    assert main(["E99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "available" in err
