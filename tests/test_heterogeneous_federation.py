"""Heterogeneous source profiles: per-source wire models, RUNSTATS-visible
counters, profile-aware bind-join costing, the MAX_BIND_KEYS runtime
guard, NULL/empty bind-join edges, and chunk-counter consistency under
early LIMIT termination."""

import pytest

from repro.appsys.datagen import generate_enterprise_data
from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario
from repro.fdbs.engine import Database
from repro.fdbs.federation import (
    ARCHIVE_PROFILE,
    CACHE_FRONTED_PROFILE,
    DatabaseEndpoint,
    WEB_API_PROFILE,
)

JOIN_BY_NICKNAME = {
    "api_ratings": ("supplier_no", "source:ratings_api"),
    "arch_orders": ("supplier_no", "source:order_archive"),
    "cat_components": ("comp_no", "source:comp_catalog"),
}


@pytest.fixture()
def hetero():
    """A WFMS scenario with the three profiled sources federated."""
    return build_scenario(
        Architecture.WFMS,
        data=generate_enterprise_data(),
        optimizer="cost",
        heterogeneous=True,
    )


def runstats_sources(fdbs):
    for nickname in JOIN_BY_NICKNAME:
        fdbs.execute(f"RUNSTATS ON TABLE {nickname}")


class TestSourceProfiles:
    def test_profiles_attached_to_servers(self, hetero):
        catalog = hetero.server.fdbs.catalog
        assert catalog.get_server("RATINGS_API").profile is WEB_API_PROFILE
        assert catalog.get_server("ORDER_ARCHIVE").profile is ARCHIVE_PROFILE
        assert (
            catalog.get_server("COMP_CATALOG").profile is CACHE_FRONTED_PROFILE
        )

    def test_counters_surface_in_runtime_stats(self, hetero):
        fdbs = hetero.server.fdbs
        for nickname in JOIN_BY_NICKNAME:
            fdbs.execute(f"SELECT COUNT(*) FROM {nickname}")
        rows = fdbs.execute("SELECT * FROM SYSCAT_RUNTIME_STATS").rows
        components = {component for component, _counter, _value in rows}
        assert "source:ratings_api" in components
        assert "source:order_archive" in components
        assert "source:comp_catalog" in components
        counters = {
            counter
            for component, counter, _value in rows
            if component == "source:ratings_api"
        }
        assert counters == {
            "requests",
            "pages",
            "rows",
            "rate_limit_waits",
            "cache_hits",
        }

    def test_web_api_pages_and_rate_limit_stall(self, hetero):
        fdbs = hetero.server.fdbs
        server = hetero.server
        elapsed = []
        for _ in range(3):
            _, e = server.elapsed(
                fdbs.execute, "SELECT COUNT(*) FROM api_ratings"
            )
            elapsed.append(e)
        stats = server.source_stats()["source:ratings_api"]
        # 120 rows / page 25 = 5 paged requests per scan, three scans.
        assert stats["requests"] == 15
        assert stats["pages"] == 15
        # the 8-requests-per-window budget forces at least one stall
        assert stats["rate_limit_waits"] >= 1
        assert max(elapsed) > min(elapsed)

    def test_cache_fronted_repeat_scan_is_cheap(self, hetero):
        fdbs = hetero.server.fdbs
        server = hetero.server
        _, cold = server.elapsed(
            fdbs.execute, "SELECT * FROM cat_components"
        )
        fdbs.statement_cache.invalidate()
        _, warm = server.elapsed(
            fdbs.execute, "SELECT * FROM cat_components"
        )
        assert warm < cold
        assert server.source_stats()["source:comp_catalog"]["cache_hits"] >= 1

    def test_archive_scan_cheaper_than_api_scan(self, hetero):
        fdbs = hetero.server.fdbs
        server = hetero.server
        _, archive = server.elapsed(
            fdbs.execute, "SELECT COUNT(*) FROM arch_orders"
        )
        _, api = server.elapsed(
            fdbs.execute, "SELECT COUNT(*) FROM api_ratings"
        )
        # 240 archive rows cost less to scan than 120 web-API rows
        assert archive < api

    def test_cost_plans_diverge_across_profiles(self, hetero):
        """The acceptance-criterion divergence: the same join shape
        against each profile lands on different plans purely because of
        the per-source cost constants."""
        fdbs = hetero.server.fdbs
        fdbs.execute(
            "CREATE TABLE hwatch (pk INT PRIMARY KEY, supplier_no INT, "
            "comp_no INT)"
        )
        for pk in range(12):
            fdbs.execute(
                "INSERT INTO hwatch VALUES (?, ?, ?)",
                params=[pk, 1234 if pk % 3 == 0 else 5001 + pk % 4, 1 + pk],
            )
        fdbs.execute("RUNSTATS ON TABLE hwatch")
        runstats_sources(fdbs)
        plans = {}
        for nickname, (column, _) in JOIN_BY_NICKNAME.items():
            text = fdbs.explain(
                f"SELECT w.pk FROM hwatch AS w, {nickname} AS r "
                f"WHERE w.{column} = r.{column}"
            )
            plans[nickname] = "BindJoin" in text
        # paged-and-expensive web API: ship only the needed keys; the
        # scan-cheap archive and the cache-warm catalog: ship all.
        assert plans == {
            "api_ratings": True,
            "arch_orders": False,
            "cat_components": False,
        }


class TestBindKeyGuard:
    """MAX_BIND_KEYS is an estimate-based gate at plan time and an
    actual-count guard at run time: stale statistics must degrade to
    ship-all, never to an oversized IN list or wrong rows."""

    @staticmethod
    def _pair(extra_distinct_keys):
        remote = Database("remote")
        remote.execute(
            "CREATE TABLE orders (order_no INT PRIMARY KEY, comp_no INT)"
        )
        for index in range(50):
            remote.execute(
                "INSERT INTO orders VALUES (?, ?)", params=[index, index % 5]
            )
        local = Database("local")
        local.execute("CREATE WRAPPER w")
        local.execute("CREATE SERVER s WRAPPER w")
        local.attach_endpoint("s", DatabaseEndpoint(remote))
        local.execute("CREATE NICKNAME n FOR s.orders")
        local.execute("CREATE TABLE watch (pk INT PRIMARY KEY, comp_no INT)")
        for index in range(6):
            local.execute(
                "INSERT INTO watch VALUES (?, ?)", params=[index, index % 2]
            )
        local.execute("RUNSTATS watch")
        local.execute("RUNSTATS n")
        local.set_optimizer("cost")
        # stale statistics: new distinct keys arrive after RUNSTATS
        for index in range(extra_distinct_keys):
            local.execute(
                "INSERT INTO watch VALUES (?, ?)",
                params=[100 + index, 1000 + index],
            )
        return local

    SQL = (
        "SELECT w.pk, o.order_no FROM watch AS w, n AS o "
        "WHERE w.comp_no = o.comp_no ORDER BY w.pk, o.order_no"
    )

    def test_exactly_at_cap_still_binds(self):
        local = self._pair(extra_distinct_keys=198)  # 2 + 198 = 200 keys
        assert "BindJoin" in local.explain(self.SQL)
        rows = local.execute(self.SQL).rows
        assert local.federation.bind_join_count == 1
        assert local.federation.bind_join_fallbacks == 0
        local.set_optimizer("syntactic")
        assert local.execute(self.SQL).rows == rows

    def test_one_past_cap_falls_back_to_ship_all(self):
        local = self._pair(extra_distinct_keys=199)  # 2 + 199 = 201 keys
        assert "BindJoin" in local.explain(self.SQL)  # plan gate is stale
        rows = local.execute(self.SQL).rows
        assert local.federation.bind_join_count == 0
        assert local.federation.bind_join_fallbacks == 1
        local.set_optimizer("syntactic")
        assert local.execute(self.SQL).rows == rows

    def test_profile_cap_guards_at_fifty_keys(self, hetero):
        """The web-API profile lowers the cap to 50: growing the outer
        side past it after RUNSTATS must trigger the same runtime
        fallback, with identical rows."""
        fdbs = hetero.server.fdbs
        fdbs.execute(
            "CREATE TABLE probe (pk INT PRIMARY KEY, supplier_no INT)"
        )
        for index in range(6):
            fdbs.execute(
                "INSERT INTO probe VALUES (?, ?)",
                params=[index, 1234 if index == 0 else 5000 + index],
            )
        fdbs.execute("RUNSTATS ON TABLE probe")
        runstats_sources(fdbs)
        sql = (
            "SELECT p.pk, r.score FROM probe AS p, api_ratings AS r "
            "WHERE p.supplier_no = r.supplier_no ORDER BY p.pk, r.score"
        )
        assert "BindJoin" in fdbs.explain(sql)
        layer = fdbs.federation
        binds = layer.bind_join_count
        fdbs.execute(sql)
        assert layer.bind_join_count == binds + 1
        for index in range(6, 55):  # 55 distinct keys > profile cap 50
            fdbs.execute(
                "INSERT INTO probe VALUES (?, ?)",
                params=[index, 9000 + index],
            )
        assert "BindJoin" in fdbs.explain(sql)  # stale estimate still binds
        binds = layer.bind_join_count
        fallbacks = layer.bind_join_fallbacks
        rows = fdbs.execute(sql).rows
        assert layer.bind_join_count == binds
        assert layer.bind_join_fallbacks == fallbacks + 1
        fdbs.set_optimizer("syntactic")
        assert fdbs.execute(sql).rows == rows


class TestNullAndEmptyBindEdges:
    """NULL join keys never match an inner equality; what each profile
    *charges* for discovering that depends on the plan it picked."""

    @pytest.fixture()
    def edges(self, hetero):
        fdbs = hetero.server.fdbs
        fdbs.execute(
            "CREATE TABLE nulls (pk INT PRIMARY KEY, supplier_no INT, "
            "comp_no INT)"
        )
        for pk in range(5):
            fdbs.execute(
                "INSERT INTO nulls VALUES (?, NULL, NULL)", params=[pk]
            )
        fdbs.execute(
            "CREATE TABLE empty_t (pk INT PRIMARY KEY, supplier_no INT, "
            "comp_no INT)"
        )
        fdbs.execute("RUNSTATS ON TABLE nulls")
        fdbs.execute("RUNSTATS ON TABLE empty_t")
        runstats_sources(fdbs)
        return hetero

    @pytest.mark.parametrize("nickname", sorted(JOIN_BY_NICKNAME))
    @pytest.mark.parametrize("outer", ["nulls", "empty_t"])
    def test_no_matches_and_profile_consistent_charging(
        self, edges, nickname, outer
    ):
        fdbs = edges.server.fdbs
        column, stats_key = JOIN_BY_NICKNAME[nickname]
        sql = (
            f"SELECT o.pk FROM {outer} AS o, {nickname} AS r "
            f"WHERE o.{column} = r.{column}"
        )
        before = edges.server.source_stats()[stats_key]["requests"]
        rows = fdbs.execute(sql).rows
        delta = edges.server.source_stats()[stats_key]["requests"] - before
        assert rows == []
        if nickname == "api_ratings":
            # bind join: zero usable keys, the fetch is skipped outright
            assert delta == 0
        elif nickname == "arch_orders":
            # ship-all: an all-NULL outer still pulls the archive once;
            # an empty outer never pulls the lazy inner side at all
            assert delta == (1 if outer == "nulls" else 0)
        else:
            # cache-fronted: RUNSTATS warmed the response cache, so
            # even the ship-all pull is a cache hit, not a request
            assert delta == 0


class TestChunkCountersUnderLimit:
    """EXPLAIN ANALYZE ``pruned=N/M chunks`` and the global
    ``chunks_scanned`` counter stay consistent when LIMIT stops a
    columnar scan early.

    Plain columnar execution streams: a satisfied LIMIT closes the scan
    generator, and the counters record only the chunks actually
    examined (pruned) or delivered (scanned).  EXPLAIN ANALYZE instead
    reports the execution *it* performed — the row pipeline, whose
    static join sides materialise — so its ``pruned=N/M`` covers the
    full drain.  Both views satisfy the same identity: the scanned
    delta equals delivered chunks (``M - N`` for the drain ANALYZE
    reports)."""

    @staticmethod
    def _db():
        db = Database("chunks", execution_mode="columnar", chunk_size=4)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for index in range(40):
            db.execute(
                "INSERT INTO t VALUES (?, ?)", params=[index, index % 7]
            )
        return db

    def test_early_limit_counts_only_examined_chunks(self):
        db = self._db()
        before = db.columnar_stats()
        rows = db.execute(
            "SELECT t.id FROM t WHERE t.id >= 8 LIMIT 2"
        ).rows
        after = db.columnar_stats()
        assert rows == [(8,), (9,)]
        # chunks 0-1 (ids 0..7) are zone-pruned; LIMIT 2 is satisfied
        # by the first delivered chunk, and the scan stops there.
        assert after["chunks_pruned"] - before["chunks_pruned"] == 2
        assert after["chunks_scanned"] - before["chunks_scanned"] == 1

    def test_full_scan_counts_all_chunks(self):
        db = self._db()
        before = db.columnar_stats()
        db.execute("SELECT t.id FROM t WHERE t.id >= 8")
        after = db.columnar_stats()
        assert after["chunks_pruned"] - before["chunks_pruned"] == 2
        assert after["chunks_scanned"] - before["chunks_scanned"] == 8

    def test_explain_analyze_reports_its_own_drain(self):
        db = self._db()
        before = db.columnar_stats()
        result = db.execute(
            "EXPLAIN ANALYZE SELECT t.id FROM t WHERE t.id >= 8 LIMIT 2"
        )
        after = db.columnar_stats()
        scan_line = next(
            line for line, in result.rows if "TableScan" in line
        )
        assert "[pruned=2/10 chunks]" in scan_line
        # identity: scanned delta == delivered == M - N
        assert after["chunks_scanned"] - before["chunks_scanned"] == 8
        assert after["chunks_pruned"] - before["chunks_pruned"] == 2
