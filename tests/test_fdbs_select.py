"""End-to-end SELECT execution against the engine."""

import pytest

from repro.errors import CatalogError, PlanError
from repro.fdbs.engine import Database


@pytest.fixture()
def db():
    database = Database("q")
    database.execute_script(
        """
        CREATE TABLE suppliers (sno INT PRIMARY KEY, name VARCHAR(30), relia INT);
        INSERT INTO suppliers VALUES
            (1, 'ACME', 7), (2, 'Globex', 9), (3, 'Initech', 4), (4, 'Stark', 9);
        CREATE TABLE parts (pno INT PRIMARY KEY, sno INT, price INT);
        INSERT INTO parts VALUES (10, 1, 100), (11, 1, 250), (12, 2, 80), (13, 9, 5)
        """
    )
    return database


def q(db, sql, params=None):
    return db.execute(sql, params=params)


def test_projection_and_aliases(db):
    result = q(db, "SELECT name AS n, relia FROM suppliers WHERE sno = 1")
    assert result.columns == ["n", "relia"]
    assert result.rows == [("ACME", 7)]


def test_star_expansion(db):
    result = q(db, "SELECT * FROM suppliers WHERE sno = 2")
    assert result.columns == ["sno", "name", "relia"]


def test_qualified_star(db):
    result = q(db, "SELECT s.*, p.price FROM suppliers AS s, parts AS p "
                   "WHERE s.sno = p.sno AND p.pno = 12")
    assert result.rows == [(2, "Globex", 9, 80)]


def test_where_filters(db):
    result = q(db, "SELECT name FROM suppliers WHERE relia >= 7 ORDER BY name")
    assert result.rows == [("ACME",), ("Globex",), ("Stark",)]


def test_order_by_desc_and_positional(db):
    by_name = q(db, "SELECT name, relia FROM suppliers ORDER BY relia DESC, name")
    assert by_name.rows[0][1] == 9
    positional = q(db, "SELECT name, relia FROM suppliers ORDER BY 2 DESC, 1")
    assert positional.rows == by_name.rows


def test_order_by_nulls_sort_last_ascending(db):
    db.execute("INSERT INTO suppliers VALUES (9, 'Null Co', NULL)")
    result = q(db, "SELECT relia FROM suppliers ORDER BY relia")
    assert result.rows[-1] == (None,)


def test_fetch_first(db):
    result = q(db, "SELECT sno FROM suppliers ORDER BY sno FETCH FIRST 2 ROWS ONLY")
    assert result.rows == [(1,), (2,)]


def test_distinct(db):
    result = q(db, "SELECT DISTINCT relia FROM suppliers ORDER BY relia")
    assert result.rows == [(4,), (7,), (9,)]


def test_cross_product_via_comma(db):
    result = q(db, "SELECT COUNT(*) FROM suppliers, parts")
    assert result.scalar() == 16


def test_inner_join(db):
    result = q(
        db,
        "SELECT s.name, p.pno FROM suppliers AS s INNER JOIN parts AS p "
        "ON s.sno = p.sno ORDER BY p.pno",
    )
    assert result.rows == [("ACME", 10), ("ACME", 11), ("Globex", 12)]


def test_left_outer_join_pads_nulls(db):
    result = q(
        db,
        "SELECT s.name, p.pno FROM suppliers AS s LEFT OUTER JOIN parts AS p "
        "ON s.sno = p.sno WHERE s.sno = 3",
    )
    assert result.rows == [("Initech", None)]


def test_join_without_on_rejected(db):
    with pytest.raises(PlanError, match="requires an ON"):
        q(db, "SELECT * FROM suppliers INNER JOIN parts")


def test_derived_table(db):
    result = q(
        db,
        "SELECT d.name FROM (SELECT name, relia FROM suppliers WHERE relia > 8) "
        "AS d ORDER BY d.name",
    )
    assert result.rows == [("Globex",), ("Stark",)]


def test_union_removes_duplicates(db):
    result = q(
        db,
        "SELECT relia FROM suppliers UNION SELECT relia FROM suppliers "
        "ORDER BY relia",
    )
    assert result.rows == [(4,), (7,), (9,)]


def test_union_all_keeps_duplicates(db):
    result = q(db, "SELECT 1 UNION ALL SELECT 1")
    assert result.rows == [(1,), (1,)]


def test_union_width_mismatch_rejected(db):
    with pytest.raises(Exception):
        q(db, "SELECT 1 UNION SELECT 1, 2")


def test_scalar_subquery(db):
    result = q(db, "SELECT name FROM suppliers WHERE relia = "
                   "(SELECT MAX(relia) FROM suppliers) ORDER BY name")
    assert result.rows == [("Globex",), ("Stark",)]


def test_in_subquery(db):
    result = q(db, "SELECT name FROM suppliers WHERE sno IN "
                   "(SELECT sno FROM parts) ORDER BY name")
    assert result.rows == [("ACME",), ("Globex",)]


def test_exists_subquery(db):
    result = q(db, "SELECT COUNT(*) FROM suppliers WHERE EXISTS "
                   "(SELECT 1 FROM parts WHERE price > 1000)")
    assert result.scalar() == 0


def test_case_expression_in_select(db):
    result = q(
        db,
        "SELECT name, CASE WHEN relia >= 7 THEN 'good' ELSE 'poor' END AS verdict "
        "FROM suppliers WHERE sno IN (1, 3) ORDER BY name",
    )
    assert result.rows == [("ACME", "good"), ("Initech", "poor")]


def test_parameters_bind_positionally(db):
    result = q(db, "SELECT name FROM suppliers WHERE relia > ? AND sno < ?",
               params=[6, 2])
    assert result.rows == [("ACME",)]


def test_unknown_table_rejected(db):
    with pytest.raises(CatalogError):
        q(db, "SELECT * FROM nonexistent")


def test_duplicate_alias_rejected(db):
    with pytest.raises(PlanError, match="duplicate correlation name"):
        q(db, "SELECT * FROM suppliers AS x, parts AS x")


def test_select_without_from(db):
    assert q(db, "SELECT 40 + 2").scalar() == 42


def test_explain_produces_plan_tree(db):
    text = db.explain("SELECT name FROM suppliers WHERE relia > 5 ORDER BY name")
    assert "TableScan(suppliers, zone: (relia > 5))" in text
    assert "Sort" in text


class TestAggregates:
    def test_global_aggregates(self, db):
        result = q(db, "SELECT COUNT(*), SUM(relia), MIN(relia), MAX(relia), "
                       "AVG(relia) FROM suppliers")
        assert result.rows == [(4, 29, 4, 9, 29 / 4)]

    def test_count_ignores_nulls_count_star_does_not(self, db):
        db.execute("INSERT INTO suppliers VALUES (5, 'N', NULL)")
        result = q(db, "SELECT COUNT(*), COUNT(relia) FROM suppliers")
        assert result.rows == [(5, 4)]

    def test_group_by(self, db):
        result = q(db, "SELECT relia, COUNT(*) AS c FROM suppliers "
                       "GROUP BY relia ORDER BY relia")
        assert result.rows == [(4, 1), (7, 1), (9, 2)]

    def test_having(self, db):
        result = q(db, "SELECT relia, COUNT(*) AS c FROM suppliers "
                       "GROUP BY relia HAVING COUNT(*) > 1")
        assert result.rows == [(9, 2)]

    def test_aggregate_over_expression(self, db):
        assert q(db, "SELECT SUM(relia * 2) FROM suppliers").scalar() == 58

    def test_expression_over_aggregate(self, db):
        assert q(db, "SELECT MAX(relia) - MIN(relia) FROM suppliers").scalar() == 5

    def test_count_distinct(self, db):
        assert q(db, "SELECT COUNT(DISTINCT relia) FROM suppliers").scalar() == 3

    def test_global_aggregate_on_empty_input(self, db):
        result = q(db, "SELECT COUNT(*), SUM(relia) FROM suppliers WHERE sno > 99")
        assert result.rows == [(0, None)]

    def test_group_by_on_empty_input_yields_no_rows(self, db):
        result = q(db, "SELECT relia, COUNT(*) FROM suppliers WHERE sno > 99 "
                       "GROUP BY relia")
        assert result.rows == []

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(PlanError, match="not allowed in WHERE"):
            q(db, "SELECT 1 FROM suppliers WHERE COUNT(*) > 1")

    def test_having_without_aggregate_rejected(self, db):
        with pytest.raises(PlanError):
            q(db, "SELECT name FROM suppliers HAVING name = 'ACME'")

    def test_nested_aggregates_rejected(self, db):
        with pytest.raises(PlanError, match="nested"):
            q(db, "SELECT SUM(COUNT(*)) FROM suppliers")

    def test_order_by_aggregate(self, db):
        result = q(db, "SELECT relia, COUNT(*) FROM suppliers GROUP BY relia "
                       "ORDER BY COUNT(*) DESC, relia")
        assert result.rows[0] == (9, 2)

    def test_non_grouped_column_rejected(self, db):
        with pytest.raises(PlanError):
            q(db, "SELECT name, COUNT(*) FROM suppliers GROUP BY relia")
