"""Result helpers and the statement (plan) cache."""

import pytest

from repro.errors import ExecutionError
from repro.fdbs.session import Result, StatementCache


class TestResult:
    def test_scalar(self):
        assert Result(columns=["x"], rows=[(5,)]).scalar() == 5

    def test_scalar_rejects_multirow(self):
        with pytest.raises(ExecutionError):
            Result(columns=["x"], rows=[(1,), (2,)]).scalar()

    def test_scalar_rejects_multicolumn(self):
        with pytest.raises(ExecutionError):
            Result(columns=["x", "y"], rows=[(1, 2)]).scalar()

    def test_first(self):
        assert Result(rows=[(1,), (2,)]).first() == (1,)
        assert Result().first() is None

    def test_to_dicts(self):
        result = Result(columns=["a", "b"], rows=[(1, 2)])
        assert result.to_dicts() == [{"a": 1, "b": 2}]

    def test_column_case_insensitive(self):
        result = Result(columns=["Qual"], rows=[(7,), (9,)])
        assert result.column("QUAL") == [7, 9]

    def test_column_unknown_rejected(self):
        with pytest.raises(ExecutionError):
            Result(columns=["a"]).column("b")

    def test_iteration_and_len(self):
        result = Result(rows=[(1,), (2,)])
        assert list(result) == [(1,), (2,)]
        assert len(result) == 2


class TestStatementCache:
    def test_miss_then_hit(self):
        cache = StatementCache()
        assert cache.get("SELECT 1") is None
        cache.put("SELECT 1", "plan")
        assert cache.get("SELECT 1") == "plan"
        assert cache.hits == 1 and cache.misses == 1

    def test_whitespace_insensitive_keys(self):
        cache = StatementCache()
        cache.put("SELECT  1\n FROM t", "plan")
        assert cache.get("SELECT 1 FROM t") == "plan"

    def test_lru_eviction(self):
        cache = StatementCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_invalidate_clears_all(self):
        cache = StatementCache()
        cache.put("a", 1)
        cache.invalidate()
        assert len(cache) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            StatementCache(capacity=0)


class TestEngineCacheIntegration:
    def test_repeated_statement_costs_less_than_first(self):
        from repro.fdbs.engine import Database
        from repro.sysmodel.machine import Machine

        machine = Machine()
        db = Database("c", machine=machine)
        db.execute("CREATE TABLE t (v INT)")
        start = machine.clock.now
        db.execute("SELECT v FROM t")
        first = machine.clock.now - start
        start = machine.clock.now
        db.execute("SELECT v FROM t")
        second = machine.clock.now - start
        assert second < first
        assert first - second >= machine.costs.plan_compile

    def test_ddl_invalidates_statement_cache(self):
        from repro.fdbs.engine import Database

        db = Database("c2")
        db.execute("CREATE TABLE t (v INT)")
        db.execute("SELECT v FROM t")
        assert len(db.statement_cache) > 0
        db.execute("CREATE TABLE u (w INT)")
        assert len(db.statement_cache) == 0
