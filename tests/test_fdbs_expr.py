"""Expression evaluation: NULL semantics, builtins, predicates."""

import pytest

from repro.errors import ExecutionError, PlanError
from repro.fdbs.expr import (
    ColumnSlot,
    EvalContext,
    ExpressionCompiler,
    ParamScope,
    RowLayout,
    like_to_regex,
    truthy,
)
from repro.fdbs.parser import parse_expression
from repro.fdbs.types import INTEGER, VARCHAR


def evaluate(text, row=(), layout=None, params=None, scope=None):
    compiler = ExpressionCompiler(layout or RowLayout([]), params=scope)
    compiled = compiler.compile(parse_expression(text))
    return compiled(row, EvalContext(params=params or []))


LAYOUT = RowLayout(
    [
        ColumnSlot("t", "a", INTEGER),
        ColumnSlot("t", "b", INTEGER),
        ColumnSlot("u", "name", VARCHAR(20)),
    ]
)


class TestArithmetic:
    def test_basic(self):
        assert evaluate("1 + 2 * 3") == 7
        assert evaluate("(1 + 2) * 3") == 9
        assert evaluate("-5 + 2") == -3

    def test_integer_division_truncates_toward_zero(self):
        assert evaluate("7 / 2") == 3
        assert evaluate("-7 / 2") == -3

    def test_float_division(self):
        assert evaluate("7.0 / 2") == 3.5

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError, match="division by zero"):
            evaluate("1 / 0")

    def test_null_propagates(self):
        assert evaluate("1 + NULL") is None
        assert evaluate("NULL * 3") is None

    def test_non_numeric_operand_rejected_at_plan_time(self):
        with pytest.raises(PlanError, match="must be numeric"):
            evaluate("'a' + 1")

    def test_non_numeric_untyped_operand_rejected_at_runtime(self):
        # A parameter marker has no static type; the check moves to runtime.
        with pytest.raises(ExecutionError):
            evaluate("? + 1", params=["a"])


class TestComparisons:
    def test_basic(self):
        assert evaluate("1 < 2") is True
        assert evaluate("2 <= 2") is True
        assert evaluate("3 <> 4") is True
        assert evaluate("'a' = 'a'") is True

    def test_null_comparison_is_unknown(self):
        assert evaluate("1 = NULL") is None
        assert evaluate("NULL <> NULL") is None

    def test_char_padding_ignored(self):
        assert evaluate("'a  ' = 'a'") is True

    def test_cross_family_comparison_rejected(self):
        with pytest.raises(ExecutionError):
            evaluate("1 = 'a'")


class TestThreeValuedLogic:
    def test_and_kleene(self):
        assert evaluate("TRUE AND NULL") is None
        assert evaluate("FALSE AND NULL") is False
        assert evaluate("TRUE AND TRUE") is True

    def test_or_kleene(self):
        assert evaluate("TRUE OR NULL") is True
        assert evaluate("FALSE OR NULL") is None

    def test_not_null(self):
        assert evaluate("NOT (1 = NULL)") is None

    def test_truthy_where_semantics(self):
        assert truthy(True)
        assert not truthy(False)
        assert not truthy(None)


class TestPredicates:
    def test_is_null(self):
        assert evaluate("NULL IS NULL") is True
        assert evaluate("1 IS NOT NULL") is True

    def test_in_list(self):
        assert evaluate("2 IN (1, 2, 3)") is True
        assert evaluate("9 NOT IN (1, 2)") is True

    def test_in_list_with_null_is_unknown(self):
        assert evaluate("9 IN (1, NULL)") is None
        assert evaluate("1 IN (1, NULL)") is True

    def test_between(self):
        assert evaluate("2 BETWEEN 1 AND 3") is True
        assert evaluate("5 NOT BETWEEN 1 AND 3") is True
        assert evaluate("NULL BETWEEN 1 AND 3") is None

    def test_like(self):
        assert evaluate("'gearbox' LIKE 'gear%'") is True
        assert evaluate("'gearbox' LIKE '_earbox'") is True
        assert evaluate("'gearbox' NOT LIKE 'x%'") is True
        assert evaluate("NULL LIKE 'a%'") is None

    def test_like_escapes_regex_metacharacters(self):
        assert evaluate("'a.b' LIKE 'a.b'") is True
        assert evaluate("'axb' LIKE 'a.b'") is False

    def test_like_to_regex(self):
        assert like_to_regex("a%").match("abc")
        assert not like_to_regex("a%").match("bc")


class TestCase:
    def test_searched(self):
        assert evaluate("CASE WHEN 1 > 2 THEN 'x' ELSE 'y' END") == "y"

    def test_simple(self):
        assert evaluate("CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END") == "b"

    def test_no_match_without_else_is_null(self):
        assert evaluate("CASE WHEN FALSE THEN 1 END") is None


class TestBuiltins:
    def test_string_functions(self):
        assert evaluate("UPPER('ab')") == "AB"
        assert evaluate("LOWER('AB')") == "ab"
        assert evaluate("LENGTH('abc')") == 3
        assert evaluate("SUBSTR('gearbox', 1, 4)") == "gear"
        assert evaluate("TRIM('  x ')") == "x"
        assert evaluate("CONCAT('a', 'b')") == "ab"

    def test_numeric_functions(self):
        assert evaluate("ABS(-3)") == 3
        assert evaluate("MOD(7, 3)") == 1
        assert evaluate("ROUND(3.456, 1)") == pytest.approx(3.5)
        assert evaluate("FLOOR(3.7)") == 3
        assert evaluate("CEIL(3.2)") == 4

    def test_null_handling_functions(self):
        assert evaluate("COALESCE(NULL, NULL, 5)") == 5
        assert evaluate("NULLIF(1, 1)") is None
        assert evaluate("NULLIF(1, 2)") == 1

    def test_null_in_null_out(self):
        assert evaluate("UPPER(NULL)") is None
        assert evaluate("ABS(NULL)") is None

    def test_mod_by_zero_rejected(self):
        with pytest.raises(ExecutionError):
            evaluate("MOD(1, 0)")

    def test_unknown_function_rejected(self):
        with pytest.raises(PlanError, match="unknown scalar function"):
            evaluate("FROBNICATE(1)")

    def test_wrong_arity_rejected(self):
        with pytest.raises(PlanError):
            evaluate("ABS(1, 2)")

    def test_cast_function_names(self):
        assert evaluate("BIGINT('12')") == 12
        assert evaluate("VARCHAR(42)") == "42"
        assert evaluate("DOUBLE(3)") == 3.0


class TestColumnsAndParams:
    def test_qualified_resolution(self):
        assert evaluate("t.a + t.b", row=(1, 2, "x"), layout=LAYOUT) == 3

    def test_unqualified_unique_resolution(self):
        assert evaluate("name", row=(1, 2, "x"), layout=LAYOUT) == "x"

    def test_unknown_reference_rejected(self):
        with pytest.raises(PlanError, match="cannot resolve"):
            evaluate("zzz", layout=LAYOUT)

    def test_unknown_column_under_known_alias(self):
        with pytest.raises(PlanError, match="unknown column"):
            evaluate("t.zzz", layout=LAYOUT)

    def test_ambiguous_reference_rejected(self):
        ambiguous = RowLayout(
            [ColumnSlot("a", "x", INTEGER), ColumnSlot("b", "x", INTEGER)]
        )
        with pytest.raises(PlanError, match="ambiguous"):
            evaluate("x", layout=ambiguous)

    def test_function_parameter_scope(self):
        scope = ParamScope("BuySuppComp", {"SUPPLIERNO": (0, INTEGER)})
        assert evaluate("BuySuppComp.SupplierNo", params=[1234], scope=scope) == 1234
        assert evaluate("SupplierNo", params=[1234], scope=scope) == 1234

    def test_wrong_qualifier_for_parameter_rejected(self):
        scope = ParamScope("F", {"X": (0, INTEGER)})
        with pytest.raises(PlanError):
            evaluate("G.X", params=[1], scope=scope)

    def test_positional_parameter(self):
        assert evaluate("? + 1", params=[41]) == 42

    def test_unbound_positional_parameter_rejected(self):
        with pytest.raises(ExecutionError):
            evaluate("?")
