"""The cost-based optimizer: gate, reordering, bind joins, EXPLAIN."""

import pytest

from repro.errors import ExecutionError
from repro.fdbs.engine import Database
from repro.fdbs.executor import RemoteBindJoinPlan
from repro.fdbs.expr import EvalContext
from repro.fdbs.federation import DatabaseEndpoint
from repro.fdbs.optimizer import plan_decisions
from repro.fdbs.parser import parse_statement
from repro.sysmodel.machine import Machine


def federated_pair(machine=None, n_rows=50, n_watch=6):
    """A local FDBS with a skewed ``watch`` table joined to a remote
    ``orders`` nickname (``comp_no`` in 0..4, ~n_rows/5 rows per key)."""
    remote = Database("remote")
    remote.execute(
        "CREATE TABLE orders (order_no INT PRIMARY KEY, comp_no INT, qty INT)"
    )
    for index in range(n_rows):
        remote.execute(
            "INSERT INTO orders VALUES (?, ?, ?)",
            params=[index, index % 5, index * 10],
        )
    local = Database("local", machine=machine)
    local.execute("CREATE WRAPPER w")
    local.execute("CREATE SERVER s WRAPPER w")
    local.attach_endpoint("s", DatabaseEndpoint(remote))
    local.execute("CREATE NICKNAME n FOR s.orders")
    local.execute("CREATE TABLE watch (pk INT PRIMARY KEY, comp_no INT)")
    for index in range(n_watch):
        local.execute(
            "INSERT INTO watch VALUES (?, ?)", params=[index, index % 2]
        )
    return local, remote


JOIN_SQL = (
    "SELECT w.pk, o.order_no FROM watch AS w, n AS o "
    "WHERE w.comp_no = o.comp_no ORDER BY w.pk, o.order_no"
)


def collect_runstats(db):
    db.execute("RUNSTATS watch")
    db.execute("RUNSTATS n")


class TestMode:
    def test_default_is_syntactic(self):
        assert Database("d").optimizer == "syntactic"

    def test_constructor_and_setter(self):
        db = Database("d", optimizer="cost")
        assert db.optimizer == "cost"
        db.set_optimizer("syntactic")
        assert db.optimizer == "syntactic"

    def test_invalid_mode_rejected(self):
        db = Database("d")
        with pytest.raises(ExecutionError):
            db.set_optimizer("rule-based")
        with pytest.raises(ExecutionError):
            Database("d2", optimizer="bogus")


class TestGate:
    def test_without_stats_plan_is_identical(self):
        local, _ = federated_pair()
        syntactic = local.explain(JOIN_SQL)
        local.set_optimizer("cost")
        cost = local.explain(JOIN_SQL)
        assert cost == syntactic
        assert "est=" not in cost
        assert "BindJoin" not in cost

    def test_without_stats_time_is_identical(self):
        elapsed = {}
        for mode in ("syntactic", "cost"):
            machine = Machine()
            local, _ = federated_pair(machine)
            local.set_optimizer(mode)
            local.execute(JOIN_SQL)  # warm the statement cache
            start = machine.clock.now
            rows = local.execute(JOIN_SQL).rows
            elapsed[mode] = (machine.clock.now - start, rows)
        assert elapsed["cost"] == elapsed["syntactic"]

    def test_decisions_none_for_views_and_unknown_names(self):
        local, _ = federated_pair()
        collect_runstats(local)
        local.execute("CREATE VIEW wv AS SELECT pk, comp_no FROM watch")
        for sql in (
            "SELECT v.pk FROM wv AS v",
            "SELECT x.a FROM missing AS x",
        ):
            select = parse_statement(sql)
            assert plan_decisions(select, local.catalog, local.catalog.get_statistics) is None

    def test_default_mode_ignores_stats(self):
        local, _ = federated_pair()
        collect_runstats(local)
        text = local.explain(JOIN_SQL)
        assert "BindJoin" not in text
        assert "est=" not in text


class TestRemoteBindJoin:
    def test_bind_join_in_plan_and_rows_identical(self):
        local, remote = federated_pair()
        baseline = local.execute(JOIN_SQL).rows
        collect_runstats(local)
        local.set_optimizer("cost")
        text = local.explain(JOIN_SQL)
        assert "BindJoin(n, bind: comp_no)" in text
        before = local.federation.bind_join_count
        rows = local.execute(JOIN_SQL).rows
        assert rows == baseline and rows
        assert local.federation.bind_join_count == before + 1

    def test_bind_keys_reach_remote_sql(self):
        local, remote = federated_pair()
        collect_runstats(local)
        local.set_optimizer("cost")
        shipped = _spy_on_endpoint(local)
        local.execute(JOIN_SQL)
        assert any("IN (0, 1)" in sql for sql in shipped)

    def test_bind_join_saves_transfer_time(self):
        def hot(mode):
            machine = Machine()
            local, _ = federated_pair(machine, n_rows=500)
            collect_runstats(local)
            local.set_optimizer(mode)
            local.execute(JOIN_SQL)
            start = machine.clock.now
            rows = local.execute(JOIN_SQL).rows
            return machine.clock.now - start, rows

        fast, rows_cost = hot("cost")
        slow, rows_syntactic = hot("syntactic")
        assert rows_cost == rows_syntactic
        # 200 of 500 remote rows shipped instead of all 500.
        assert fast < slow

    def test_too_many_keys_falls_back_to_unbound_fetch(self):
        local, _ = federated_pair()
        collect_runstats(local)
        select = parse_statement(JOIN_SQL)
        decisions = plan_decisions(
            select, local.catalog, local.catalog.get_statistics
        )
        assert decisions is not None and decisions.bind_remote
        local.set_optimizer("cost")
        plan = local._planner().plan_select(select)
        bind = _find(plan, RemoteBindJoinPlan)
        bind.max_keys = 1  # force the outer side past the cap
        rows = list(plan.rows(EvalContext(params=None)))
        assert bind.unbound_fetches == 1 and bind.bound_fetches == 0
        local.set_optimizer("syntactic")
        assert sorted(rows) == sorted(local.execute(JOIN_SQL).rows)

    def test_all_null_outer_keys_skip_the_fetch(self):
        local, _ = federated_pair(n_watch=0)
        local.execute("INSERT INTO watch VALUES (1, NULL)")
        collect_runstats(local)
        local.set_optimizer("cost")
        before = local.federation.pushdown_count
        assert local.execute(JOIN_SQL).rows == []
        assert local.federation.pushdown_count == before  # fetch skipped


class TestReordering:
    def test_smaller_table_is_moved_first(self):
        db = Database("order")
        db.execute("CREATE TABLE big (k INT)")
        db.execute("CREATE TABLE small (k INT)")
        for index in range(40):
            db.execute("INSERT INTO big VALUES (?)", params=[index % 4])
        for index in range(3):
            db.execute("INSERT INTO small VALUES (?)", params=[index])
        db.execute("RUNSTATS big")
        db.execute("RUNSTATS small")
        sql = (
            "SELECT b.k FROM big AS b, small AS s "
            "WHERE b.k = s.k ORDER BY b.k"
        )
        baseline = db.execute(sql).rows
        syntactic = db.explain(sql)
        assert syntactic.index("TableScan(big)") < syntactic.index(
            "TableScan(small)"
        )
        db.set_optimizer("cost")
        cost = db.explain(sql)
        assert cost.index("TableScan(small)") < cost.index("TableScan(big)")
        assert db.execute(sql).rows == baseline

    def test_equal_cardinality_ties_break_on_alias_name(self):
        """Equal effective cardinalities order alphabetically by alias,
        pinning the greedy order against dict/hash-seed accidents."""
        db = Database("tie")
        db.execute("CREATE TABLE zeta (k INT)")
        db.execute("CREATE TABLE alpha (k INT)")
        for index in range(5):
            db.execute("INSERT INTO zeta VALUES (?)", params=[index])
            db.execute("INSERT INTO alpha VALUES (?)", params=[index])
        db.execute("RUNSTATS zeta")
        db.execute("RUNSTATS alpha")
        select = parse_statement(
            "SELECT z.k FROM zeta AS z, alpha AS a WHERE z.k = a.k"
        )
        decisions = plan_decisions(
            select, db.catalog, db.catalog.get_statistics
        )
        # Both tables have 5 rows; alias "A" sorts before alias "Z",
        # so alpha (written second) is promoted to the outer position.
        assert decisions.order == [1, 0]

    def test_lateral_dependency_is_respected(self):
        local, _ = federated_pair()
        collect_runstats(local)
        select = parse_statement(
            "SELECT w.pk FROM watch AS w, n AS o WHERE w.comp_no = o.comp_no"
        )
        decisions = plan_decisions(
            select, local.catalog, local.catalog.get_statistics
        )
        # watch (6 rows) before the nickname (50 rows).
        assert decisions.order == [0, 1]


class TestExplain:
    def test_cost_mode_reports_estimates(self):
        local, _ = federated_pair()
        collect_runstats(local)
        local.set_optimizer("cost")
        text = local.explain(JOIN_SQL)
        assert "est=" in text

    def test_explain_analyze_reports_actuals(self):
        local, _ = federated_pair()
        collect_runstats(local)
        local.set_optimizer("cost")
        result = local.execute("EXPLAIN ANALYZE " + JOIN_SQL)
        text = "\n".join(row[0] for row in result.rows)
        assert "est=" in text and "actual=" in text

    def test_explain_analyze_works_in_syntactic_mode(self):
        local, _ = federated_pair()
        result = local.execute("EXPLAIN ANALYZE " + JOIN_SQL)
        text = "\n".join(row[0] for row in result.rows)
        assert "actual=" in text and "est=" not in text


def _spy_on_endpoint(local, server="s"):
    """Record every SQL text shipped through the server's endpoint."""
    endpoint = local.catalog.get_server(server).endpoint
    shipped = []
    original = endpoint.query

    def recording(sql):
        shipped.append(sql)
        return original(sql)

    endpoint.query = recording
    return shipped


def _find(plan, cls):
    """Depth-first search for the first operator of the given class."""
    if isinstance(plan, cls):
        return plan
    for child in plan._children():  # noqa: SLF001 - test introspection
        found = _find(child, cls)
        if found is not None:
            return found
    return None
