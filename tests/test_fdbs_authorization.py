"""Access control (the paper's Sect. 6 future-work extension)."""

import pytest

from repro.errors import AuthorizationError, CatalogError
from repro.fdbs.authorization import (
    PUBLIC,
    SUPERUSER,
    AuthorizationManager,
    Privilege,
)
from repro.fdbs.engine import Database
from repro.fdbs.functions import make_external_function
from repro.fdbs.types import INTEGER


@pytest.fixture()
def db():
    database = Database("auth")
    database.execute("CREATE TABLE t (v INT)")
    database.execute("INSERT INTO t VALUES (1), (2)")
    database.register_external_function(
        make_external_function("F", [("x", INTEGER)], [("y", INTEGER)], lambda x: x)
    )
    database.execute(
        "CREATE PROCEDURE p (OUT v INT) LANGUAGE SQL BEGIN SET v = 1; END"
    )
    database.execute("CREATE USER alice")
    database.execute("CREATE USER bob")
    return database


class TestManager:
    def test_superuser_has_everything(self):
        manager = AuthorizationManager()
        assert manager.is_granted(Privilege.SELECT, "table", "t", SUPERUSER)

    def test_grant_then_check(self):
        manager = AuthorizationManager()
        manager.create_user("alice")
        assert not manager.is_granted(Privilege.SELECT, "table", "t", "alice")
        manager.grant(Privilege.SELECT, "table", "t", "alice")
        manager.check(Privilege.SELECT, "table", "t", "ALICE")  # case-insensitive

    def test_revoke(self):
        manager = AuthorizationManager()
        manager.create_user("alice")
        manager.grant(Privilege.SELECT, "table", "t", "alice")
        manager.revoke(Privilege.SELECT, "table", "t", "alice")
        with pytest.raises(AuthorizationError):
            manager.check(Privilege.SELECT, "table", "t", "alice")

    def test_public_grant_applies_to_everyone(self):
        manager = AuthorizationManager()
        manager.create_user("alice")
        manager.grant(Privilege.EXECUTE, "function", "F", PUBLIC)
        assert manager.is_granted(Privilege.EXECUTE, "function", "F", "alice")

    def test_privilege_kind_mismatch_rejected(self):
        manager = AuthorizationManager()
        manager.create_user("a")
        with pytest.raises(CatalogError):
            manager.grant(Privilege.EXECUTE, "table", "t", "a")
        with pytest.raises(CatalogError):
            manager.grant(Privilege.SELECT, "function", "f", "a")

    def test_grant_to_unknown_user_rejected(self):
        with pytest.raises(CatalogError):
            AuthorizationManager().grant(Privilege.SELECT, "table", "t", "ghost")

    def test_duplicate_or_reserved_user_rejected(self):
        manager = AuthorizationManager()
        manager.create_user("alice")
        with pytest.raises(CatalogError):
            manager.create_user("ALICE")
        with pytest.raises(CatalogError):
            manager.create_user("public")


class TestEngineEnforcement:
    def test_select_requires_select_privilege(self, db):
        db.set_current_user("alice")
        with pytest.raises(AuthorizationError, match="SELECT on table 't'"):
            db.execute("SELECT * FROM t")

    def test_granted_select_works(self, db):
        db.execute("GRANT SELECT ON t TO alice")
        db.set_current_user("alice")
        assert len(db.execute("SELECT * FROM t").rows) == 2

    def test_function_requires_execute(self, db):
        db.execute("GRANT SELECT ON t TO alice")
        db.set_current_user("alice")
        with pytest.raises(AuthorizationError, match="EXECUTE"):
            db.execute("SELECT * FROM t, TABLE (F(v)) AS r")
        db.set_current_user("SYSTEM")
        db.execute("GRANT EXECUTE ON FUNCTION F TO alice")
        db.set_current_user("alice")
        assert db.execute("SELECT r.y FROM t, TABLE (F(v)) AS r").rowcount == 2

    def test_subquery_objects_checked(self, db):
        db.execute("CREATE TABLE u (w INT)")
        db.execute("GRANT SELECT ON u TO alice")
        db.set_current_user("alice")
        with pytest.raises(AuthorizationError, match="table 't'"):
            db.execute("SELECT w FROM u WHERE w IN (SELECT v FROM t)")

    def test_dml_privileges_are_separate(self, db):
        db.execute("GRANT SELECT, INSERT ON t TO alice")
        db.set_current_user("alice")
        db.execute("INSERT INTO t VALUES (3)")
        with pytest.raises(AuthorizationError, match="DELETE"):
            db.execute("DELETE FROM t")
        with pytest.raises(AuthorizationError, match="UPDATE"):
            db.execute("UPDATE t SET v = 0")

    def test_call_requires_execute_on_procedure(self, db):
        db.set_current_user("bob")
        with pytest.raises(AuthorizationError):
            db.execute("CALL p()")
        db.set_current_user("SYSTEM")
        db.execute("GRANT EXECUTE ON PROCEDURE p TO bob")
        db.set_current_user("bob")
        assert db.execute("CALL p()").out_params == {"v": 1}

    def test_ddl_is_superuser_only(self, db):
        db.set_current_user("alice")
        with pytest.raises(AuthorizationError, match="DDL"):
            db.execute("CREATE TABLE evil (x INT)")
        with pytest.raises(AuthorizationError):
            db.execute("GRANT SELECT ON t TO alice")

    def test_revoke_takes_effect(self, db):
        db.execute("GRANT SELECT ON t TO alice")
        db.execute("REVOKE SELECT ON t FROM alice")
        db.set_current_user("alice")
        with pytest.raises(AuthorizationError):
            db.execute("SELECT * FROM t")

    def test_public_grant_via_sql(self, db):
        db.execute("GRANT SELECT ON TABLE t TO PUBLIC")
        db.set_current_user("bob")
        assert len(db.execute("SELECT * FROM t").rows) == 2

    def test_unknown_user_rejected(self, db):
        with pytest.raises(CatalogError):
            db.set_current_user("ghost")

    def test_grant_on_unknown_object_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("GRANT SELECT ON nothing TO alice")


class TestDefinerRights:
    def test_sql_function_body_runs_with_definer_rights(self, db):
        """EXECUTE on the federated function suffices; the body's
        A-UDTFs and tables stay hidden — the paper's encapsulation at
        the integration server's top interface."""
        db.execute(
            "CREATE FUNCTION Wrapped (x INT) RETURNS TABLE (y INT) "
            "LANGUAGE SQL RETURN SELECT r.y FROM TABLE (F(Wrapped.x)) AS r"
        )
        db.execute("GRANT EXECUTE ON FUNCTION Wrapped TO alice")
        db.set_current_user("alice")
        # no grant on F itself:
        assert db.execute("SELECT * FROM TABLE (Wrapped(7)) AS w").rows == [(7,)]
        with pytest.raises(AuthorizationError):
            db.execute("SELECT * FROM TABLE (F(7)) AS f")


class TestFederatedFunctionAuthorization:
    def test_grant_execute_on_connecting_udtf(self, data):
        from repro.core.architectures import Architecture
        from repro.core.scenario import build_scenario

        scenario = build_scenario(Architecture.WFMS, data=data)
        fdbs = scenario.server.fdbs
        fdbs.execute("CREATE USER clerk")
        fdbs.execute("GRANT EXECUTE ON FUNCTION BuySuppComp TO clerk")
        fdbs.set_current_user("clerk")
        try:
            rows = fdbs.execute(
                "SELECT * FROM TABLE (BuySuppComp(1234, 'gearbox')) AS B"
            ).rows
            assert rows == [("BUY",)]
            with pytest.raises(AuthorizationError):
                fdbs.execute("SELECT * FROM TABLE (GetQuality(1234)) AS Q")
        finally:
            fdbs.set_current_user("SYSTEM")
