"""Repository quality gates: documentation and import hygiene."""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

MODULES = sorted(SRC.rglob("*.py"))


def test_every_module_has_a_docstring():
    undocumented = []
    for path in MODULES:
        tree = ast.parse(path.read_text())
        if ast.get_docstring(tree) is None:
            undocumented.append(str(path))
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_every_public_class_and_function_has_a_docstring():
    missing: list[str] = []
    for path in MODULES:
        tree = ast.parse(path.read_text())
        for node in tree.body:
            if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                if ast.get_docstring(node) is None:
                    missing.append(f"{path.name}:{node.lineno} {node.name}")
            if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                for member in node.body:
                    if (
                        isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and not member.name.startswith("_")
                        and ast.get_docstring(member) is None
                    ):
                        missing.append(
                            f"{path.name}:{member.lineno} "
                            f"{node.name}.{member.name}"
                        )
    assert not missing, "undocumented public items:\n" + "\n".join(missing)


def test_no_unused_imports():
    """Heuristic unused-import detector (names must appear somewhere in
    the module text outside their own import line)."""
    offenders: list[str] = []
    for path in MODULES:
        text = path.read_text()
        tree = ast.parse(text)
        imported: dict[str, int] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imported[(alias.asname or alias.name).split(".")[0]] = node.lineno
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        imported[alias.asname or alias.name] = node.lineno
        used = {n.id for n in ast.walk(tree) if isinstance(n, ast.Name)}
        for name, lineno in imported.items():
            if name in used or name == "annotations":
                continue
            # string annotations / docs / __all__ references
            if f'"{name}"' in text or f"'{name}'" in text or f"`{name}`" in text:
                continue
            if f"{name}." in text or f"{name} |" in text or f"| {name}" in text:
                continue
            offenders.append(f"{path.name}:{lineno} {name}")
    assert not offenders, "unused imports:\n" + "\n".join(offenders)


def test_having_with_global_aggregate():
    """Regression for the HAVING-without-GROUP-BY fix."""
    from repro.fdbs.engine import Database

    db = Database("having")
    db.execute("CREATE TABLE t (a INT)")
    db.execute("INSERT INTO t VALUES (1), (2), (3)")
    assert db.execute("SELECT 1 FROM t HAVING COUNT(*) > 2").rows == [(1,)]
    assert db.execute("SELECT 1 FROM t HAVING COUNT(*) > 5").rows == []
    with pytest.raises(Exception):
        db.execute("SELECT 1 FROM t HAVING a > 1")  # no aggregate at all
