"""Heap storage: constraints, indexes, undo."""

import pytest

from repro.errors import ConstraintError, ExecutionError
from repro.fdbs.catalog import ColumnDef
from repro.fdbs.storage import Table, UndoLog
from repro.fdbs.types import INTEGER, VARCHAR


def make_table(primary_key=("id",)):
    columns = [
        ColumnDef("id", INTEGER, not_null=True),
        ColumnDef("name", VARCHAR(20)),
        ColumnDef("score", INTEGER),
    ]
    return Table("t", columns, primary_key)


def test_insert_and_scan():
    table = make_table()
    table.insert((1, "a", 10))
    table.insert((2, "b", 20))
    assert table.rows() == [(1, "a", 10), (2, "b", 20)]
    assert len(table) == 2


def test_insert_coerces_values():
    table = make_table()
    with pytest.raises(Exception):
        table.insert((1, 5, 10))  # 5 is not a string


def test_wrong_arity_rejected():
    table = make_table()
    with pytest.raises(ExecutionError):
        table.insert((1, "a"))


def test_duplicate_primary_key_rejected():
    table = make_table()
    table.insert((1, "a", 10))
    with pytest.raises(ConstraintError):
        table.insert((1, "b", 20))


def test_null_primary_key_rejected():
    table = make_table()
    with pytest.raises(ConstraintError):
        table.insert((None, "a", 10))


def test_not_null_enforced():
    table = make_table(primary_key=())
    with pytest.raises(ConstraintError):
        table.insert((None, "a", 1))


def test_composite_primary_key():
    table = Table(
        "t2",
        [ColumnDef("a", INTEGER, True), ColumnDef("b", INTEGER, True)],
        ("a", "b"),
    )
    table.insert((1, 1))
    table.insert((1, 2))
    with pytest.raises(ConstraintError):
        table.insert((1, 1))


def test_lookup_pk():
    table = make_table()
    table.insert((7, "x", 1))
    assert table.lookup_pk((7,)) == (7, "x", 1)
    assert table.lookup_pk((8,)) is None


def test_lookup_pk_without_key_rejected():
    table = make_table(primary_key=())
    with pytest.raises(ExecutionError):
        table.lookup_pk((1,))


def test_delete_frees_pk():
    table = make_table()
    rid = table.insert((1, "a", 10))
    table.delete_rid(rid)
    assert len(table) == 0
    table.insert((1, "again", 5))  # pk reusable


def test_delete_twice_rejected():
    table = make_table()
    rid = table.insert((1, "a", 10))
    table.delete_rid(rid)
    with pytest.raises(ExecutionError):
        table.delete_rid(rid)


def test_update_rid():
    table = make_table()
    rid = table.insert((1, "a", 10))
    table.update_rid(rid, (1, "b", 99))
    assert table.rows() == [(1, "b", 99)]


def test_update_to_conflicting_pk_rejected():
    table = make_table()
    table.insert((1, "a", 10))
    rid = table.insert((2, "b", 20))
    with pytest.raises(ConstraintError):
        table.update_rid(rid, (1, "b", 20))


def test_update_keeping_own_pk_allowed():
    table = make_table()
    rid = table.insert((1, "a", 10))
    table.update_rid(rid, (1, "a", 11))
    assert table.lookup_pk((1,)) == (1, "a", 11)


def test_hash_index_lookup():
    table = make_table()
    table.insert((1, "a", 10))
    table.insert((2, "b", 10))
    table.insert((3, "c", 20))
    assert table.index_lookup("score", 10) == [(1, "a", 10), (2, "b", 10)]
    assert table.index_lookup("score", 99) == []


def test_index_maintained_across_mutations():
    table = make_table()
    rid = table.insert((1, "a", 10))
    table.create_index("score")
    table.update_rid(rid, (1, "a", 33))
    assert table.index_lookup("score", 10) == []
    assert table.index_lookup("score", 33) == [(1, "a", 33)]


class TestUndo:
    def test_rollback_insert(self):
        table = make_table()
        undo = UndoLog()
        table.insert((1, "a", 10), undo=undo)
        undo.rollback()
        assert len(table) == 0

    def test_rollback_delete(self):
        table = make_table()
        rid = table.insert((1, "a", 10))
        undo = UndoLog()
        table.delete_rid(rid, undo=undo)
        undo.rollback()
        assert table.rows() == [(1, "a", 10)]

    def test_rollback_update(self):
        table = make_table()
        rid = table.insert((1, "a", 10))
        undo = UndoLog()
        table.update_rid(rid, (1, "z", 0), undo=undo)
        undo.rollback()
        assert table.rows() == [(1, "a", 10)]

    def test_rollback_applies_in_reverse_order(self):
        table = make_table()
        undo = UndoLog()
        rid = table.insert((1, "a", 10), undo=undo)
        table.update_rid(rid, (1, "b", 20), undo=undo)
        table.delete_rid(rid, undo=undo)
        undo.rollback()
        assert len(table) == 0
        assert table.lookup_pk((1,)) is None

    def test_clear_commits(self):
        table = make_table()
        undo = UndoLog()
        table.insert((1, "a", 10), undo=undo)
        undo.clear()
        undo.rollback()  # nothing to undo
        assert len(table) == 1
