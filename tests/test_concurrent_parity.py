"""Concurrent-serving parity: worker count must never change results.

The serving layer's isolated mode gives every session its own server
shard — machine, virtual clock, pools, caches — so a session's rows
*and* simulated times depend only on its own call sequence.  These
tests replay one seeded workload under different worker counts and
submission orders and demand bit-identical per-session outcomes, plus
bit-identity against the bare single-caller stack (the pre-serving
execution path).  This is the concurrency extension of the repo's
parity gates: concurrency may change wall-clock time, never answers or
simulated timings.
"""

import pytest

from repro.appsys.datagen import generate_enterprise_data
from repro.core.scenario import build_scenario
from repro.errors import StatementAbortedError
from repro.serving.server import ConcurrentIntegrationServer
from repro.serving.workload import make_workload

SESSIONS = 6
CALLS = 5


def run_serving(data, scripts, workers):
    """One serving-layer run; returns (row_sets, simulated_ms) by session."""
    with ConcurrentIntegrationServer(
        workers=workers, mode="isolated", data=data
    ) as server:
        result = server.run_workload(scripts)
    return result.row_sets, result.simulated_ms


def drive_bare(data, script):
    """The pre-serving path: a dedicated single-caller server, no
    session object, no pool, no admission control."""
    server = build_scenario(script.architecture, data=data).server
    if script.faults:
        server.configure_faults(**script.faults)
    rows = []
    start = server.machine.clock.now
    for call in script.calls:
        if call.kind == "call":
            try:
                rows.append(server.call(call.target, *call.args))
            except StatementAbortedError:
                rows.append(None)
        else:
            result = server.fdbs.execute(call.target, params=list(call.args))
            rows.append(list(result.rows))
    return rows, server.machine.clock.now - start


@pytest.fixture(scope="module")
def data():
    return generate_enterprise_data()


@pytest.mark.parametrize("seed", [11, 99, 20260805])
@pytest.mark.parametrize("workers", [4, 8])
def test_one_vs_many_workers_bit_identical(data, seed, workers):
    """Same seeded workload, 1 worker vs K: identical rows and times."""
    scripts = make_workload(seed=seed, sessions=SESSIONS, calls_per_session=CALLS)
    rows_one, sim_one = run_serving(data, scripts, workers=1)
    scripts_again = make_workload(
        seed=seed, sessions=SESSIONS, calls_per_session=CALLS
    )
    rows_many, sim_many = run_serving(data, scripts_again, workers=workers)
    assert rows_many == rows_one
    assert sim_many == sim_one


def test_submission_order_is_irrelevant(data):
    """Reversing the script list must not change any session's outcome."""
    scripts = make_workload(seed=31, sessions=SESSIONS, calls_per_session=CALLS)
    rows_fwd, sim_fwd = run_serving(data, scripts, workers=4)
    reversed_scripts = list(
        reversed(make_workload(seed=31, sessions=SESSIONS, calls_per_session=CALLS))
    )
    rows_rev, sim_rev = run_serving(data, reversed_scripts, workers=4)
    assert rows_rev == rows_fwd
    assert sim_rev == sim_fwd


def test_serving_layer_matches_bare_stack(data):
    """1-worker serving == driving each script on a bare server: the
    serving layer (sessions, traces, admission, locks) costs zero
    simulated time and changes no rows."""
    scripts = make_workload(seed=77, sessions=SESSIONS, calls_per_session=CALLS)
    rows_serving, sim_serving = run_serving(data, scripts, workers=1)
    for script in make_workload(seed=77, sessions=SESSIONS, calls_per_session=CALLS):
        rows_bare, sim_bare = drive_bare(data, script)
        assert rows_serving[script.session_id] == rows_bare
        assert sim_serving[script.session_id] == sim_bare


def test_workload_generation_is_deterministic():
    same_a = make_workload(seed=5, sessions=4, calls_per_session=6)
    same_b = make_workload(seed=5, sessions=4, calls_per_session=6)
    other = make_workload(seed=6, sessions=4, calls_per_session=6)
    assert [s.calls for s in same_a] == [s.calls for s in same_b]
    assert [s.calls for s in same_a] != [s.calls for s in other]
    assert [s.architecture for s in same_a] == [s.architecture for s in same_b]


def test_every_session_gets_results(data):
    """No session loses or duplicates calls whatever the worker count."""
    scripts = make_workload(seed=13, sessions=SESSIONS, calls_per_session=CALLS)
    expected_calls = {s.session_id: len(s.calls) for s in scripts}
    for workers in (1, 4):
        rows, _ = run_serving(
            data,
            make_workload(seed=13, sessions=SESSIONS, calls_per_session=CALLS),
            workers=workers,
        )
        assert {sid: len(r) for sid, r in rows.items()} == expected_calls
        assert all(r is not None for session in rows.values() for r in session)
