"""SQL/MED federation: wrappers, servers, nicknames, pushdown."""

import pytest

from repro.errors import CatalogError
from repro.fdbs.engine import Database
from repro.fdbs.federation import DatabaseEndpoint
from repro.sysmodel.machine import Machine


def make_remote():
    remote = Database("remote-orders")
    remote.execute(
        "CREATE TABLE orders (order_no INT PRIMARY KEY, comp_no INT, qty INT)"
    )
    remote.execute("INSERT INTO orders VALUES (1, 1, 100), (2, 2, 50), (3, 1, 25)")
    return remote


@pytest.fixture()
def federated():
    local = Database("fdbs")
    remote = make_remote()
    local.execute("CREATE WRAPPER sql_wrapper")
    local.execute("CREATE SERVER order_server WRAPPER sql_wrapper")
    local.attach_endpoint("order_server", DatabaseEndpoint(remote))
    local.execute("CREATE NICKNAME remote_orders FOR order_server.orders")
    return local, remote


def test_nickname_scan_fetches_remote_rows(federated):
    local, _ = federated
    result = local.execute("SELECT * FROM remote_orders ORDER BY order_no")
    assert result.columns == ["order_no", "comp_no", "qty"]
    assert len(result.rows) == 3


def test_nickname_schema_resolved_from_remote(federated):
    local, _ = federated
    nickname = local.catalog.get_nickname("remote_orders")
    assert [c.name for c in nickname.columns] == ["order_no", "comp_no", "qty"]


def test_local_predicates_apply_to_remote_rows(federated):
    local, _ = federated
    result = local.execute(
        "SELECT order_no FROM remote_orders WHERE comp_no = 1 ORDER BY order_no"
    )
    assert result.rows == [(1,), (3,)]


def test_join_local_with_remote(federated):
    local, _ = federated
    local.execute("CREATE TABLE comps (comp_no INT, name VARCHAR(20))")
    local.execute("INSERT INTO comps VALUES (1, 'gearbox'), (2, 'axle')")
    result = local.execute(
        "SELECT c.name, SUM(r.qty) AS total FROM comps AS c, remote_orders AS r "
        "WHERE c.comp_no = r.comp_no GROUP BY c.name ORDER BY c.name"
    )
    assert result.rows == [("axle", 50), ("gearbox", 125)]


def test_remote_updates_visible_on_next_scan(federated):
    local, remote = federated
    remote.execute("INSERT INTO orders VALUES (4, 2, 10)")
    assert local.execute("SELECT COUNT(*) FROM remote_orders").scalar() == 4


def test_nicknames_are_read_only(federated):
    local, _ = federated
    with pytest.raises(Exception, match="read-only"):
        local.execute("DELETE FROM remote_orders")


def test_server_without_endpoint_rejected():
    local = Database("fdbs")
    local.execute("CREATE WRAPPER w")
    local.execute("CREATE SERVER s WRAPPER w")
    with pytest.raises(CatalogError, match="endpoint"):
        local.execute("CREATE NICKNAME n FOR s.whatever")


def test_server_requires_existing_wrapper():
    local = Database("fdbs")
    with pytest.raises(CatalogError):
        local.execute("CREATE SERVER s WRAPPER missing")


def test_pushdown_charges_roundtrip_cost():
    machine = Machine()
    local = Database("fdbs", machine=machine)
    remote = make_remote()
    local.execute("CREATE WRAPPER w")
    local.execute("CREATE SERVER s WRAPPER w")
    local.attach_endpoint("s", DatabaseEndpoint(remote))
    local.execute("CREATE NICKNAME n FOR s.orders")
    local.execute("SELECT * FROM n")  # warm the statement cache
    before = machine.clock.now
    local.execute("SELECT * FROM n")
    elapsed = machine.clock.now - before
    assert elapsed >= machine.costs.remote_sql_roundtrip


def test_pushdown_counter_increments(federated):
    local, _ = federated
    before = local.federation.pushdown_count
    local.execute("SELECT * FROM remote_orders")
    assert local.federation.pushdown_count == before + 1
