"""Views — the paper's 'homogenized view' upper tier."""

import pytest

from repro.errors import AuthorizationError, CatalogError, ExecutionError, PlanError
from repro.fdbs.engine import Database
from repro.fdbs.functions import make_external_function
from repro.fdbs.types import INTEGER


@pytest.fixture()
def db():
    database = Database("views")
    database.execute_script(
        """
        CREATE TABLE suppliers (sno INT PRIMARY KEY, name VARCHAR(30), relia INT);
        INSERT INTO suppliers VALUES (1, 'ACME', 7), (2, 'Globex', 9), (3, 'Low', 2)
        """
    )
    return database


def test_create_and_select(db):
    db.execute("CREATE VIEW good AS SELECT name, relia FROM suppliers WHERE relia > 5")
    result = db.execute("SELECT * FROM good ORDER BY name")
    assert result.columns == ["name", "relia"]
    assert result.rows == [("ACME", 7), ("Globex", 9)]


def test_declared_column_names(db):
    db.execute(
        "CREATE VIEW renamed (who, score) AS SELECT name, relia FROM suppliers"
    )
    result = db.execute("SELECT who FROM renamed WHERE score = 9")
    assert result.rows == [("Globex",)]


def test_column_count_mismatch_rejected(db):
    with pytest.raises(PlanError, match="column"):
        db.execute("CREATE VIEW bad (a) AS SELECT name, relia FROM suppliers")


def test_body_validated_at_create_time(db):
    with pytest.raises(Exception):
        db.execute("CREATE VIEW bad AS SELECT nothing FROM nowhere")
    assert not db.catalog.has_view("bad")


def test_view_with_alias_and_join(db):
    db.execute("CREATE VIEW v AS SELECT sno, relia FROM suppliers")
    result = db.execute(
        "SELECT a.sno, b.relia FROM v AS a, v AS b "
        "WHERE a.sno = b.sno AND a.relia > 8"
    )
    assert result.rows == [(2, 9)]


def test_view_over_view(db):
    db.execute("CREATE VIEW v1 AS SELECT name, relia FROM suppliers")
    db.execute("CREATE VIEW v2 AS SELECT name FROM v1 WHERE relia > 5")
    assert len(db.execute("SELECT * FROM v2").rows) == 2


def test_view_with_aggregation(db):
    db.execute(
        "CREATE VIEW stats (n, avg_relia) AS "
        "SELECT COUNT(*), AVG(relia) FROM suppliers"
    )
    assert db.execute("SELECT n FROM stats").scalar() == 3


def test_view_over_table_function(db):
    db.register_external_function(
        make_external_function(
            "Quality", [("sno", INTEGER)], [("q", INTEGER)], lambda sno: sno * 3
        )
    )
    db.execute(
        "CREATE VIEW assessed AS SELECT s.name, Q.q "
        "FROM suppliers AS s, TABLE (Quality(s.sno)) AS Q"
    )
    result = db.execute("SELECT q FROM assessed WHERE name = 'Globex'")
    assert result.rows == [(6,)]


def test_name_collision_with_table_rejected(db):
    with pytest.raises(CatalogError):
        db.execute("CREATE VIEW suppliers AS SELECT 1 AS x")


def test_drop_view(db):
    db.execute("CREATE VIEW v AS SELECT 1 AS x")
    db.execute("DROP VIEW v")
    with pytest.raises(CatalogError):
        db.execute("SELECT * FROM v")


def test_views_are_read_only(db):
    db.execute("CREATE VIEW v AS SELECT sno FROM suppliers")
    with pytest.raises(ExecutionError, match="read-only"):
        db.execute("DELETE FROM v")


def test_stale_view_fails_cleanly_after_table_drop(db):
    db.execute("CREATE VIEW v AS SELECT sno FROM suppliers")
    db.execute("DROP TABLE suppliers")
    with pytest.raises(CatalogError):
        db.execute("SELECT * FROM v")


def test_view_self_reference_detected(db):
    # Views validate at create time, so a cycle can only be staged by
    # swapping definitions underneath; simulate via catalog surgery.
    from repro.fdbs.catalog import ViewDef
    from repro.fdbs.parser import parse_statement

    body = parse_statement("SELECT x FROM v")
    db.catalog.add_view(ViewDef("v", None, body))
    with pytest.raises(PlanError, match="cyclic view"):
        db.execute("SELECT * FROM v")


class TestViewAuthorization:
    def test_select_on_view_suffices_definer_rights(self, db):
        db.execute("CREATE VIEW public_names AS SELECT name FROM suppliers")
        db.execute("CREATE USER alice")
        db.execute("GRANT SELECT ON public_names TO alice")
        db.set_current_user("alice")
        try:
            assert len(db.execute("SELECT * FROM public_names").rows) == 3
            with pytest.raises(AuthorizationError):
                db.execute("SELECT * FROM suppliers")
        finally:
            db.set_current_user("SYSTEM")

    def test_homogenized_view_hides_federated_plumbing(self, data):
        """The paper's full stack: application -> view -> federated
        function -> workflow -> application systems, with access only at
        the top."""
        from repro.core.architectures import Architecture
        from repro.core.scenario import build_scenario

        scenario = build_scenario(Architecture.WFMS, data=data)
        fdbs = scenario.server.fdbs
        fdbs.execute(
            "CREATE VIEW gearbox_decision AS "
            "SELECT B.Answer FROM TABLE (BuySuppComp(1234, 'gearbox')) AS B"
        )
        fdbs.execute("CREATE USER app")
        fdbs.execute("GRANT SELECT ON gearbox_decision TO app")
        fdbs.set_current_user("app")
        try:
            assert fdbs.execute("SELECT * FROM gearbox_decision").rows == [("BUY",)]
            with pytest.raises(AuthorizationError):
                fdbs.execute("SELECT * FROM TABLE (BuySuppComp(1234, 'gearbox')) AS B")
        finally:
            fdbs.set_current_user("SYSTEM")
