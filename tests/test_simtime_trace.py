"""Span recording and Fig. 6-style aggregation."""

import pytest

from repro.simtime.clock import VirtualClock
from repro.simtime.trace import TraceRecorder, maybe_span


def make():
    clock = VirtualClock()
    return clock, TraceRecorder(clock)


def test_single_span_duration():
    clock, trace = make()
    with trace.span("work"):
        clock.advance(5.0)
    assert trace.total() == 5.0
    assert trace.totals_by_name() == {"work": 5.0}


def test_nested_spans_self_duration():
    clock, trace = make()
    with trace.span("outer"):
        clock.advance(2.0)
        with trace.span("inner"):
            clock.advance(3.0)
        clock.advance(1.0)
    totals = trace.totals_by_name()
    assert totals["outer"] == pytest.approx(3.0)  # 2 + 1, inner excluded
    assert totals["inner"] == pytest.approx(3.0)
    assert trace.total() == pytest.approx(6.0)


def test_same_name_spans_aggregate():
    clock, trace = make()
    for _ in range(3):
        with trace.span("step"):
            clock.advance(1.0)
    assert trace.totals_by_name()["step"] == pytest.approx(3.0)
    assert trace.total() == pytest.approx(3.0)


def test_nested_same_name_spans_do_not_double_count():
    clock, trace = make()
    with trace.span("Process activities"):
        clock.advance(1.0)
        with trace.span("Process activities"):
            clock.advance(2.0)
    assert trace.totals_by_name()["Process activities"] == pytest.approx(3.0)


def test_portions_sum_to_one():
    clock, trace = make()
    with trace.span("a"):
        clock.advance(1.0)
    with trace.span("b"):
        clock.advance(3.0)
    portions = trace.portions()
    assert portions["a"] == pytest.approx(0.25)
    assert portions["b"] == pytest.approx(0.75)
    assert sum(portions.values()) == pytest.approx(1.0)


def test_portions_empty_when_no_time():
    _, trace = make()
    assert trace.portions() == {}


def test_add_leaf_records_pretimed_span():
    clock, trace = make()
    with trace.span("outer"):
        clock.advance(10.0)
        trace.add_leaf("phase", 2.0, 8.0)
    totals = trace.totals_by_name()
    assert totals["phase"] == pytest.approx(6.0)
    assert totals["outer"] == pytest.approx(4.0)


def test_open_span_duration_raises():
    _, trace = make()
    context = trace.span("open")
    span = context.__enter__()
    with pytest.raises(ValueError):
        _ = span.duration


def test_maybe_span_none_recorder_is_noop():
    with maybe_span(None, "anything"):
        pass  # must not raise


def test_maybe_span_with_recorder_records():
    clock, trace = make()
    with maybe_span(trace, "step"):
        clock.advance(1.0)
    assert trace.totals_by_name() == {"step": 1.0}


def test_walk_visits_all_descendants():
    clock, trace = make()
    with trace.span("root"):
        with trace.span("child"):
            with trace.span("grandchild"):
                clock.advance(1.0)
    names = [s.name for s in trace.roots[0].walk()]
    assert names == ["root", "child", "grandchild"]
