"""Calibration regression guard.

The whole reproduction hangs off one calibrated cost profile
(DESIGN.md Sect. 6).  This test pins the anchor's absolute virtual
numbers so an accidental change to any cost constant — or to a charging
path — is caught here first, with a pointer to re-derive the profile.
"""

import pytest

from repro.bench.harness import measure_hot
from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario


@pytest.fixture(scope="module")
def anchor_times(data):
    wfms = build_scenario(Architecture.WFMS, data=data)
    udtf = build_scenario(Architecture.ENHANCED_SQL_UDTF, data=data)
    return (
        measure_hot(wfms, "GetNoSuppComp").mean,
        measure_hot(udtf, "GetNoSuppComp").mean,
    )


def test_wfms_anchor_absolute(anchor_times):
    wfms, _ = anchor_times
    # ≈300 su: see the derivation table in simtime/costs.py.
    assert wfms == pytest.approx(302.9, abs=1.0)


def test_udtf_anchor_absolute(anchor_times):
    _, udtf = anchor_times
    # ≈100 su: see the derivation table in simtime/costs.py.
    assert udtf == pytest.approx(101.8, abs=1.0)


def test_anchor_ratio(anchor_times):
    wfms, udtf = anchor_times
    assert wfms / udtf == pytest.approx(2.97, abs=0.05)
