"""Cross-process parity: shard count must never change results.

The process-sharded server routes sessions onto OS worker processes by
consistent hashing; every session still gets its own isolated server
shard (own Database, Machine, VirtualClock), now built inside the
worker.  Isolation makes the parity contract exact across the process
boundary: a session's result rows AND its per-session simulated times
must be bit-identical to the bare single-process stack — and therefore
to each other — at shard counts 1, 2 and 4, across all four
architectures.  Pickling the outcomes over the wire must not perturb a
single bit.

These tests spawn real OS processes and are deselected by default
behind the ``proc`` marker (run with ``-m proc``; the
``process-serving`` CI job and ``scripts/check_parity.sh`` select it).
"""

import pytest

from repro.appsys.datagen import generate_enterprise_data
from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario
from repro.errors import StatementAbortedError
from repro.serving import ConcurrentIntegrationServer, ShardedIntegrationServer
from repro.serving.workload import DEFAULT_ARCHITECTURES, make_workload

pytestmark = pytest.mark.proc

SEED = 20260809
SESSIONS = 8  # two sessions per architecture (round-robin over all 4)
CALLS = 4
SHARD_COUNTS = (1, 2, 4)


def scripts():
    return make_workload(seed=SEED, sessions=SESSIONS, calls_per_session=CALLS)


def drive_bare(data, script):
    """The pre-serving path: one bare single-caller server per script."""
    server = build_scenario(script.architecture, data=data).server
    if script.faults:
        server.configure_faults(**script.faults)
    rows, call_sims = [], []
    for call in script.calls:
        before = server.machine.clock.now
        if call.kind == "call":
            try:
                rows.append(server.call(call.target, *call.args))
            except StatementAbortedError:
                rows.append(None)
        else:
            result = server.fdbs.execute(call.target, params=list(call.args))
            rows.append(list(result.rows))
        call_sims.append(server.machine.clock.now - before)
    # Sum the deltas rather than subtracting clock endpoints: that is
    # the exact float sum a ClientSession reports as simulated_time.
    return rows, call_sims, sum(call_sims)


@pytest.fixture(scope="module")
def data():
    return generate_enterprise_data()


@pytest.fixture(scope="module")
def bare(data):
    """Bare-stack baseline, computed once: rows/per-call/total by session."""
    outcomes = {}
    for script in scripts():
        outcomes[script.session_id] = drive_bare(data, script)
    return outcomes


@pytest.fixture(scope="module")
def process_runs(data):
    """One sharded run per shard count over the identical workload."""
    runs = {}
    for shards in SHARD_COUNTS:
        with ShardedIntegrationServer(
            shards=shards, data=data, queue_limit=SESSIONS
        ) as server:
            runs[shards] = server.run_workload(scripts())
    return runs


def test_workload_covers_every_architecture():
    used = {script.architecture for script in scripts()}
    assert used == set(DEFAULT_ARCHITECTURES)
    assert len(used) == 4


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_process_mode_bit_identical_to_bare_stack(process_runs, bare, shards):
    """Rows, per-call and total simulated times: exact at every count."""
    result = process_runs[shards]
    assert set(result.row_sets) == set(bare)
    for session_id, (rows, call_sims, total) in bare.items():
        assert result.row_sets[session_id] == rows, (
            f"shards={shards} session {session_id}: rows diverge from bare"
        )
        assert result.call_sim_ms[session_id] == call_sims, (
            f"shards={shards} session {session_id}: per-call times diverge"
        )
        assert result.simulated_ms[session_id] == total, (
            f"shards={shards} session {session_id}: total time diverges"
        )


def test_shard_counts_bit_identical_to_each_other(process_runs):
    one = process_runs[SHARD_COUNTS[0]]
    for shards in SHARD_COUNTS[1:]:
        other = process_runs[shards]
        assert other.row_sets == one.row_sets
        assert other.simulated_ms == one.simulated_ms
        assert other.call_sim_ms == one.call_sim_ms


def test_process_mode_matches_thread_mode(process_runs, data):
    """Thread pool and process shards are the same serving contract."""
    with ConcurrentIntegrationServer(workers=2, data=data) as server:
        thread_result = server.run_workload(scripts())
    process_result = process_runs[2]
    assert process_result.row_sets == thread_result.row_sets
    assert process_result.simulated_ms == thread_result.simulated_ms
    assert process_result.call_sim_ms == thread_result.call_sim_ms


def test_routing_is_deterministic_and_total(process_runs):
    """Every session lands on a real shard, identically in every run."""
    for shards, result in process_runs.items():
        assert set(result.shard_assignments) == set(range(SESSIONS))
        assert all(0 <= s < shards for s in result.shard_assignments.values())
    again = {}
    for shards in SHARD_COUNTS:
        again[shards] = process_runs[shards].shard_assignments
        assert again[shards] == process_runs[shards].shard_assignments


def test_no_session_loses_or_duplicates_calls(process_runs):
    expected = {s.session_id: len(s.calls) for s in scripts()}
    for result in process_runs.values():
        assert {sid: len(r) for sid, r in result.row_sets.items()} == expected
        assert result.calls == sum(expected.values())


def test_summaries_cross_the_wire_intact(process_runs, bare):
    for result in process_runs.values():
        for session_id, summary in result.summaries.items():
            rows, _, total = bare[session_id]
            assert summary.session_id == session_id
            assert summary.calls == len(rows)
            assert summary.simulated_ms == total
            assert summary.rows_returned == sum(
                len(r) for r in rows if r is not None
            )
