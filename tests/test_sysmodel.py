"""Simulated processes, RMI channels, controller, machine lifecycle."""

import pytest

from repro.errors import ProcessStateError
from repro.simtime.clock import VirtualClock
from repro.simtime.costs import DEFAULT_COSTS
from repro.simtime.trace import TraceRecorder
from repro.sysmodel.controller import Controller
from repro.sysmodel.machine import Machine
from repro.sysmodel.process import JavaVirtualMachine, OsProcess
from repro.sysmodel.rmi import RmiChannel


class TestOsProcess:
    def test_start_charges_cost(self):
        clock = VirtualClock()
        process = OsProcess("p", clock, start_cost=12.0)
        process.start()
        assert clock.now == 12.0
        assert process.running

    def test_double_start_rejected(self):
        process = OsProcess("p", VirtualClock(), 1.0)
        process.start()
        with pytest.raises(ProcessStateError):
            process.start()

    def test_ensure_running_is_idempotent_and_cheap(self):
        clock = VirtualClock()
        process = OsProcess("p", clock, 10.0)
        assert process.ensure_running() is True
        assert process.ensure_running() is False
        assert clock.now == 10.0
        assert process.start_count == 1

    def test_stop_requires_running(self):
        process = OsProcess("p", VirtualClock(), 1.0)
        with pytest.raises(ProcessStateError):
            process.stop()

    def test_restart_charges_again(self):
        clock = VirtualClock()
        process = OsProcess("p", clock, 10.0)
        process.start()
        process.stop()
        process.start()
        assert clock.now == 20.0
        assert process.start_count == 2

    def test_jvm_boot_cost(self):
        clock = VirtualClock()
        jvm = JavaVirtualMachine("jvm", clock, boot_cost=40.0)
        assert jvm.boot_cost == 40.0
        jvm.start()
        assert clock.now == 40.0


class TestRmiChannel:
    def test_invoke_charges_both_hops(self):
        clock = VirtualClock()
        channel = RmiChannel("c", clock, call_cost=8.0, return_cost=0.5)
        result = channel.invoke(lambda x: x * 2, 21)
        assert result == 42
        assert clock.now == pytest.approx(8.5)
        assert channel.call_count == 1

    def test_invoke_traces_hops(self):
        clock = VirtualClock()
        trace = TraceRecorder(clock)
        channel = RmiChannel("c", clock, 8.0, 0.5)
        with trace.span("total"):
            channel.invoke(
                lambda: None, trace=trace, call_label="RMI call",
                return_label="RMI return",
            )
        totals = trace.totals_by_name()
        assert totals["RMI call"] == pytest.approx(8.0)
        assert totals["RMI return"] == pytest.approx(0.5)

    def test_remote_exception_propagates(self):
        channel = RmiChannel("c", VirtualClock(), 1.0, 1.0)

        def boom():
            raise RuntimeError("remote failure")

        with pytest.raises(RuntimeError):
            channel.invoke(boom)


class TestController:
    def make(self):
        clock = VirtualClock()
        controller = Controller(clock, DEFAULT_COSTS)
        controller.start()
        return clock, controller

    def test_dispatch_charges_and_forwards(self):
        clock, controller = self.make()
        before = clock.now
        result = controller.dispatch(lambda a: a + 1, 1)
        assert result == 2
        assert clock.now - before == pytest.approx(DEFAULT_COSTS.controller_dispatch)
        assert controller.dispatch_count == 1

    def test_broker_workflow_charges_brokerage(self):
        clock, controller = self.make()
        before = clock.now
        controller.broker_workflow(lambda: "started")
        assert clock.now - before == pytest.approx(
            DEFAULT_COSTS.controller_wfms_brokerage
        )
        assert controller.brokerage_count == 1

    def test_dispatch_requires_running(self):
        controller = Controller(VirtualClock(), DEFAULT_COSTS)
        with pytest.raises(ProcessStateError):
            controller.dispatch(lambda: None)


class TestMachine:
    def test_ensure_base_services_starts_fdbs_and_controller(self):
        machine = Machine()
        assert machine.ensure_base_services() is True
        assert machine.fdbs_process.running
        assert machine.controller.running
        assert machine.clock.now == pytest.approx(
            DEFAULT_COSTS.fdbs_boot + DEFAULT_COSTS.controller_boot
        )

    def test_disabled_controller_never_started(self):
        machine = Machine(controller_enabled=False)
        machine.ensure_base_services()
        assert not machine.controller.running

    def test_boot_stops_processes_and_resets_warmth(self):
        machine = Machine()
        machine.ensure_base_services()
        machine.warmth.note_statement("q")
        machine.boot()
        assert not machine.fdbs_process.running
        assert machine.warmth.machine_cold
        assert not machine.warmth.statement_is_hot("q")

    def test_register_appsys_is_idempotent(self):
        machine = Machine()
        first = machine.register_appsys("stock")
        second = machine.register_appsys("stock")
        assert first is second

    def test_ensure_appsys_charges_boot_once(self):
        machine = Machine()
        start = machine.clock.now
        assert machine.ensure_appsys("pdm") is True
        assert machine.ensure_appsys("pdm") is False
        assert machine.clock.now - start == pytest.approx(DEFAULT_COSTS.appsys_boot)

    def test_ensure_wfms(self):
        machine = Machine()
        machine.ensure_wfms()
        assert machine.wfms_process.running
