"""Larger-seed battery sweep, deselected by default.

Runs the same differential contract as ``test_battery_shape`` over a
*different* seed and a bigger corpus, so fresh query shapes keep
probing the 4 x 3 x 2 combination grid.  Selected explicitly::

    PYTHONPATH=src python -m pytest tests/sql_battery -m battery

(The default ``addopts`` deselect ``battery``, like ``perf``.)
"""

from collections import Counter

import pytest

from repro.appsys.datagen import generate_enterprise_data

from .generator import generate_corpus
from .runner import ARCHITECTURES, MODES, OPTIMIZERS, run_combo
from .test_battery_shape import TIME_TOLERANCE

NIGHTLY_SEED = 20270101
NIGHTLY_COUNT = 800

pytestmark = pytest.mark.battery


@pytest.fixture(scope="module")
def nightly_corpus():
    return generate_corpus(seed=NIGHTLY_SEED, count=NIGHTLY_COUNT)


@pytest.fixture(scope="module")
def nightly_outcomes(nightly_corpus):
    data = generate_enterprise_data()
    return {
        (architecture, mode, optimizer): run_combo(
            architecture, mode, optimizer, nightly_corpus, data=data
        )
        for architecture in ARCHITECTURES
        for mode in MODES
        for optimizer in OPTIMIZERS
    }


def test_nightly_full_grid_parity(nightly_corpus, nightly_outcomes):
    failures = []
    for i, query in enumerate(nightly_corpus):
        for architecture in ARCHITECTURES:
            for optimizer in OPTIMIZERS:
                base = nightly_outcomes[(architecture, "row", optimizer)][i]
                for mode in ("batch", "columnar"):
                    o = nightly_outcomes[(architecture, mode, optimizer)][i]
                    if o.rows != base.rows or o.elapsed != base.elapsed:
                        failures.append((i, "mode", architecture.name, mode, optimizer))
        for mode in MODES:
            for optimizer in OPTIMIZERS:
                base = nightly_outcomes[(ARCHITECTURES[0], mode, optimizer)][i]
                for architecture in ARCHITECTURES[1:]:
                    o = nightly_outcomes[(architecture, mode, optimizer)][i]
                    if o.rows != base.rows or (
                        abs(o.elapsed - base.elapsed) > TIME_TOLERANCE
                    ):
                        failures.append((i, "arch", architecture.name, mode, optimizer))
        for architecture in ARCHITECTURES:
            for mode in MODES:
                syn = nightly_outcomes[(architecture, mode, "syntactic")][i]
                cost = nightly_outcomes[(architecture, mode, "cost")][i]
                if query.total_order:
                    rows_ok = cost.rows == syn.rows
                else:
                    rows_ok = Counter(map(tuple, cost.rows)) == Counter(
                        map(tuple, syn.rows)
                    )
                time_ok = (
                    query.remote
                    or query.lateral
                    or abs(cost.elapsed - syn.elapsed) <= TIME_TOLERANCE
                )
                if not rows_ok or not time_ok:
                    failures.append((i, "optimizer", architecture.name, mode))
    assert not failures, (
        f"{len(failures)} divergences; first: {failures[0]} "
        f"sql: {nightly_corpus[failures[0][0]].sql}"
    )
