"""Differential SQL battery: every architecture x execution mode x
optimizer combination must agree on every generated query.

Parity contract
===============

* **Rows** are bit-identical (values *and* order) across execution
  modes and across architectures within one optimizer.  Across
  optimizers the row *list* is bit-identical whenever the query's
  ORDER BY covers its whole select list (ties are then identical rows,
  so physical join order cannot show through); for unordered queries
  the row *multiset* is identical — the cost optimizer may legally
  reorder FROM items, which permutes unordered output.
* **Simulated time** is bit-identical across execution modes within
  one (architecture, optimizer): modes differ only in dispatch, never
  in what work is charged.  Across architectures and across optimizers
  times agree to within ``TIME_TOLERANCE`` (1e-6 su): the statement
  sequence is identical but runs from different virtual-clock bases
  (deploy histories differ), and float accumulation from a different
  base drifts by a few ulps (~1e-12 su).  Across optimizers the
  equality claim only covers statements touching neither a nickname
  nor a lateral ``TABLE()`` call — for those, plan choice legitimately
  changes remote requests and UDTF invocations, hence charged time.

Divergences this battery surfaced (fixed at root, pinned below)
===============================================================

* ``test_pinned_pruned_empty_outer_skips_remote_fetch``: zone-map
  pruning used to run only in columnar mode, so a predicate that
  provably empties the outer side of a join suppressed the lazy pull
  of a remote inner side (one web-API/archive request + its simulated
  latency) under columnar but not under row/batch.  Fixed by attaching
  zone checks in every execution mode (planner ``_plan_from``); the
  follow-on lateral-query divergences were cascades of the shifted
  clock (process-pool warmth decays with absolute virtual time).
"""

from collections import Counter

import pytest

from repro.appsys.datagen import generate_enterprise_data

from .generator import DEFAULT_SEED, generate_corpus
from .runner import (
    ARCHITECTURES,
    MODES,
    OPTIMIZERS,
    build_battery_scenario,
    run_combo,
)

TIME_TOLERANCE = 1e-6

_CORPUS = None
_DATA = None
_OUTCOMES: dict = {}


def corpus():
    global _CORPUS
    if _CORPUS is None:
        _CORPUS = generate_corpus(seed=DEFAULT_SEED)
    return _CORPUS


def data():
    global _DATA
    if _DATA is None:
        _DATA = generate_enterprise_data()
    return _DATA


def combo(architecture, mode, optimizer, join_strategy="auto"):
    """Outcomes for one combination, computed once per test session."""
    key = (architecture, mode, optimizer, join_strategy)
    if key not in _OUTCOMES:
        _OUTCOMES[key] = run_combo(
            architecture,
            mode,
            optimizer,
            corpus(),
            data=data(),
            join_strategy=join_strategy,
        )
    return _OUTCOMES[key]


class TestCorpusShape:
    def test_corpus_size_and_family_coverage(self):
        queries = corpus()
        assert len(queries) >= 300
        tags = Counter(q.tag for q in queries)
        for family in (
            "simple",
            "aggregate",
            "join2",
            "left_join",
            "lateral",
            "union",
            "insert",
            "update",
            "delete",
        ):
            assert tags[family] > 0, f"family {family} never generated"

    def test_corpus_feature_coverage(self):
        text = "\n".join(q.sql for q in corpus())
        for feature in (
            "LEFT OUTER JOIN",
            "TABLE (GetQuality",
            "GROUP BY",
            "HAVING",
            "DISTINCT",
            "UNION",
            "ORDER BY",
            "LIMIT",
            "FETCH FIRST",
            "BETWEEN",
            " IN (",
            "LIKE",
            "IS NULL",
            "IS NOT NULL",
        ):
            assert feature in text, f"feature {feature!r} never generated"

    def test_corpus_is_seed_deterministic(self):
        again = generate_corpus(seed=DEFAULT_SEED)
        assert [q.sql for q in again] == [q.sql for q in corpus()]

    def test_corpus_touches_every_source_profile(self):
        text = "\n".join(q.sql for q in corpus())
        for nickname in ("api_ratings", "arch_orders", "cat_components"):
            assert nickname in text


class TestModeParity:
    """row / batch / columnar: bit-identical rows and simulated times."""

    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    @pytest.mark.parametrize("optimizer", OPTIMIZERS)
    def test_rows_and_time_bit_identical_across_modes(
        self, architecture, optimizer
    ):
        base = combo(architecture, "row", optimizer)
        for mode in ("batch", "columnar"):
            other = combo(architecture, mode, optimizer)
            for i, query in enumerate(corpus()):
                assert other[i].rows == base[i].rows, (
                    f"[{mode}] rows diverge: {query.sql}"
                )
                assert other[i].elapsed == base[i].elapsed, (
                    f"[{mode}] time diverges "
                    f"({other[i].elapsed} != {base[i].elapsed}): {query.sql}"
                )


class TestArchitectureParity:
    """All four architectures share the integration FDBS: same rows,
    same charged time (to float tolerance) for the whole corpus —
    including lateral A-UDTF calls, which run the same code path on
    the integration server everywhere."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("optimizer", OPTIMIZERS)
    def test_rows_and_time_identical_across_architectures(
        self, mode, optimizer
    ):
        base = combo(ARCHITECTURES[0], mode, optimizer)
        for architecture in ARCHITECTURES[1:]:
            other = combo(architecture, mode, optimizer)
            for i, query in enumerate(corpus()):
                assert other[i].rows == base[i].rows, (
                    f"[{architecture.name}] rows diverge: {query.sql}"
                )
                assert abs(other[i].elapsed - base[i].elapsed) <= TIME_TOLERANCE, (
                    f"[{architecture.name}] time diverges "
                    f"({other[i].elapsed} != {base[i].elapsed}): {query.sql}"
                )


class TestOptimizerParity:
    """Syntactic vs cost: same answers, and same charged time for
    statements whose plan space the cost optimizer cannot change."""

    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    @pytest.mark.parametrize("mode", MODES)
    def test_rows_agree_across_optimizers(self, architecture, mode):
        syntactic = combo(architecture, mode, "syntactic")
        cost = combo(architecture, mode, "cost")
        for i, query in enumerate(corpus()):
            if query.total_order:
                assert cost[i].rows == syntactic[i].rows, (
                    f"ordered rows diverge: {query.sql}"
                )
            else:
                assert Counter(map(tuple, cost[i].rows)) == Counter(
                    map(tuple, syntactic[i].rows)
                ), f"row multiset diverges: {query.sql}"

    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    @pytest.mark.parametrize("mode", MODES)
    def test_local_statement_time_agrees_across_optimizers(
        self, architecture, mode
    ):
        syntactic = combo(architecture, mode, "syntactic")
        cost = combo(architecture, mode, "cost")
        for i, query in enumerate(corpus()):
            if query.remote or query.lateral:
                continue
            assert (
                abs(cost[i].elapsed - syntactic[i].elapsed) <= TIME_TOLERANCE
            ), (
                f"local time diverges ({cost[i].elapsed} != "
                f"{syntactic[i].elapsed}): {query.sql}"
            )


class TestJoinStrategyParity:
    """Forced local join strategies (hash / merge / indexnlj / nlj)
    must be invisible in the battery: bit-identical rows *and*
    bit-identical simulated times against the cost optimizer's own
    pick, for every corpus statement.  Local join operators charge no
    simulated time of their own — identical rows therefore imply
    identical clocks, and any drift is a real operator bug."""

    @pytest.mark.parametrize("strategy", ["hash", "merge", "indexnlj", "nlj"])
    def test_rows_and_time_bit_identical_across_strategies(self, strategy):
        base = combo(ARCHITECTURES[0], "row", "cost")
        forced = combo(ARCHITECTURES[0], "row", "cost", join_strategy=strategy)
        for i, query in enumerate(corpus()):
            assert forced[i].rows == base[i].rows, (
                f"[{strategy}] rows diverge: {query.sql}"
            )
            assert forced[i].elapsed == base[i].elapsed, (
                f"[{strategy}] time diverges "
                f"({forced[i].elapsed} != {base[i].elapsed}): {query.sql}"
            )


class TestPinnedDivergences:
    """Named regressions for divergences the battery surfaced."""

    # Minimized from battery seed 20260809, query #40: the IS NULL
    # conjunct provably empties bat_watch (no NULL supplier_no), so the
    # lazily-pulled archive fetch must be skipped in *every* execution
    # mode — pre-fix, only columnar pruned the outer side, and row and
    # batch mode each paid one extra archive request (+48.59 su).
    PINNED_SQL = (
        "SELECT l.grade, r.qty FROM bat_watch AS l, arch_orders AS r "
        "WHERE l.supplier_no = r.supplier_no AND l.supplier_no IS NULL"
    )

    @pytest.mark.parametrize("mode", MODES)
    def test_pinned_pruned_empty_outer_skips_remote_fetch(self, mode):
        scenario = build_battery_scenario(
            ARCHITECTURES[0], mode, "syntactic", data=generate_enterprise_data()
        )
        fdbs = scenario.server.fdbs
        before = scenario.server.source_stats()["source:order_archive"]
        requests_before = before["requests"]
        result, elapsed = scenario.server.elapsed(fdbs.execute, self.PINNED_SQL)
        after = scenario.server.source_stats()["source:order_archive"]
        assert result.rows == []
        assert after["requests"] == requests_before, (
            f"[{mode}] empty outer side still pulled the archive source"
        )
