"""Battery-through-serving: the differential corpus behind the router.

Routes a seeded slice of the SQL battery corpus through both serving
modes — the thread-pool :class:`ConcurrentIntegrationServer` and the
process-sharded :class:`ShardedIntegrationServer` — one session per
architecture, and asserts the same parity contract as
``test_battery_shape.py``:

* **rows exact** — per statement, each serving mode returns exactly the
  rows the bare battery runner (``run_combo``) produced, and the two
  serving modes agree bit-for-bit with each other;
* **time tolerance** — per statement, simulated time matches the bare
  runner within ``TIME_TOLERANCE`` (cross-checking the serving layer
  adds zero charged time), while thread vs process serving must agree
  *exactly* (same stack both sides of the fork, so pickling over the
  wire may not cost a bit);
* **cross-architecture** — through serving, all four architectures
  still agree on rows (exact) and times (tolerance), mirroring the
  battery's architecture-parity gate.

Setup (battery DDL, seed rows, RUNSTATS) rides at the head of each
session script, so every isolated shard — thread or process — replays
the exact statement history of ``build_battery_scenario``.

Deselected by default behind the ``proc`` marker.
"""

import random

import pytest

from repro.appsys.datagen import generate_enterprise_data
from repro.serving import ConcurrentIntegrationServer, ShardedIntegrationServer
from repro.serving.workload import SessionScript, WorkloadCall

from .generator import BATTERY_DDL, DEFAULT_SEED, battery_rows, generate_corpus
from .runner import ARCHITECTURES, VERIFY_SCRATCH, run_combo

pytestmark = pytest.mark.proc

SLICE_SEED = 20260809
SLICE_SIZE = 18
TIME_TOLERANCE = 1e-6
RUNSTATS_TABLES = (
    "bat_watch",
    "bat_parts",
    "bat_scratch",
    "api_ratings",
    "arch_orders",
    "cat_components",
)


def corpus_slice():
    """A seeded slice of the corpus, padded for family coverage."""
    corpus = generate_corpus(seed=DEFAULT_SEED)
    rng = random.Random(SLICE_SEED)
    picked = sorted(rng.sample(range(len(corpus)), SLICE_SIZE))
    chosen = [corpus[i] for i in picked]
    for probe in (
        lambda q: q.kind == "dml",
        lambda q: q.remote,
        lambda q: q.lateral,
    ):
        if not any(probe(q) for q in chosen):
            chosen.append(next(q for q in corpus if probe(q)))
    return chosen


def setup_calls():
    """The battery scenario's setup, replayed as session script calls."""
    calls = [WorkloadCall("sql", ddl) for ddl in BATTERY_DDL]
    for table, rows in sorted(battery_rows().items()):
        markers = ", ".join("?" for _ in rows[0])
        for row in rows:
            calls.append(
                WorkloadCall("sql", f"INSERT INTO {table} VALUES ({markers})", tuple(row))
            )
    for table in RUNSTATS_TABLES:
        calls.append(WorkloadCall("sql", f"RUNSTATS ON TABLE {table}"))
    return calls


def build_scripts(queries):
    """One script per architecture: setup, then the corpus slice.

    Returns ``(scripts, fingerprints)`` where ``fingerprints[i]`` is,
    per query, the call index whose *rows* fingerprint the query (the
    verification SELECT for DML) and the index charged with its time.
    """
    prologue = setup_calls()
    calls = list(prologue)
    fingerprints = []
    for query in queries:
        time_index = len(calls)
        calls.append(WorkloadCall("sql", query.sql))
        if query.kind == "dml":
            calls.append(WorkloadCall("sql", VERIFY_SCRATCH))
            fingerprints.append((len(calls) - 1, time_index))
        else:
            fingerprints.append((time_index, time_index))
    scripts = [
        SessionScript(session_id=i, architecture=architecture, calls=list(calls))
        for i, architecture in enumerate(ARCHITECTURES)
    ]
    return scripts, fingerprints


@pytest.fixture(scope="module")
def data():
    return generate_enterprise_data()


@pytest.fixture(scope="module")
def queries():
    return corpus_slice()


@pytest.fixture(scope="module")
def reference(data, queries):
    """Bare battery-runner outcomes per architecture (row/syntactic)."""
    return {
        architecture: run_combo(architecture, "row", "syntactic", queries, data=data)
        for architecture in ARCHITECTURES
    }


@pytest.fixture(scope="module")
def thread_run(data, queries):
    scripts, _ = build_scripts(queries)
    with ConcurrentIntegrationServer(
        workers=2, data=data, heterogeneous=True
    ) as server:
        return server.run_workload(scripts)


@pytest.fixture(scope="module")
def process_run(data, queries):
    scripts, _ = build_scripts(queries)
    with ShardedIntegrationServer(
        shards=2, data=data, heterogeneous=True, queue_limit=len(scripts)
    ) as server:
        return server.run_workload(scripts)


def test_slice_is_seeded_and_covers_the_families(queries):
    assert [q.sql for q in queries] == [q.sql for q in corpus_slice()]
    assert any(q.kind == "dml" for q in queries)
    assert any(q.remote for q in queries)
    assert any(q.lateral for q in queries)


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_serving_matches_bare_battery_runner(
    mode, thread_run, process_run, reference, queries
):
    """Rows exact, per-statement time within tolerance, per architecture."""
    run = thread_run if mode == "thread" else process_run
    _, fingerprints = build_scripts(queries)
    for session_id, architecture in enumerate(ARCHITECTURES):
        outcomes = reference[architecture]
        rows = run.row_sets[session_id]
        sims = run.call_sim_ms[session_id]
        for i, query in enumerate(queries):
            rows_index, time_index = fingerprints[i]
            assert rows[rows_index] == outcomes[i].rows, (
                f"[{mode}/{architecture.name}] rows diverge: {query.sql}"
            )
            assert abs(sims[time_index] - outcomes[i].elapsed) <= TIME_TOLERANCE, (
                f"[{mode}/{architecture.name}] time diverges "
                f"({sims[time_index]} != {outcomes[i].elapsed}): {query.sql}"
            )


def test_thread_and_process_serving_bit_identical(thread_run, process_run):
    """The fork and the pickle round trip must not change one bit."""
    assert process_run.row_sets == thread_run.row_sets
    assert process_run.call_sim_ms == thread_run.call_sim_ms
    assert process_run.simulated_ms == thread_run.simulated_ms


def test_architecture_parity_survives_serving(process_run, queries):
    """Across architectures: rows exact, times within tolerance."""
    _, fingerprints = build_scripts(queries)
    base_rows = process_run.row_sets[0]
    base_sims = process_run.call_sim_ms[0]
    for session_id, architecture in enumerate(ARCHITECTURES[1:], start=1):
        rows = process_run.row_sets[session_id]
        sims = process_run.call_sim_ms[session_id]
        for i, query in enumerate(queries):
            rows_index, time_index = fingerprints[i]
            assert rows[rows_index] == base_rows[rows_index], (
                f"[{architecture.name}] rows diverge: {query.sql}"
            )
            assert abs(sims[time_index] - base_sims[time_index]) <= TIME_TOLERANCE, (
                f"[{architecture.name}] time diverges: {query.sql}"
            )
