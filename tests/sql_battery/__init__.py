"""Differential SQL battery over heterogeneous federated sources.

A seeded generator (:mod:`tests.sql_battery.generator`) produces a
corpus of shape-checked SELECT/DML statements; the runner
(:mod:`tests.sql_battery.runner`) executes the identical corpus against
every architecture x execution-mode x optimizer combination and the
tests (:mod:`tests.sql_battery.test_battery_shape`) assert bit-identical
rows and simulated times per the parity contract documented there.
"""
