"""Seeded SQL corpus generator for the differential battery.

Every query is *shape-checked*: it carries the number of output columns
it must produce, whether its ORDER BY covers the whole select list
(making the result a total order — ties are identical rows, so the row
*list* must be bit-identical even across plans that scan in different
orders), an optional LIMIT bound, and whether it touches a remote
nickname or a lateral ``TABLE()`` call (which changes what the tests
may assert about simulated time across optimizers/architectures).

The corpus draws from three battery-local tables (created by the
runner; NULL-heavy, with ``DECIMAL`` and ``VARCHAR`` columns) and the
three heterogeneous nicknames that
:func:`repro.core.scenario.attach_heterogeneous_sources` federates:

========================  =============================================
``bat_watch``             local; supplier/component watch list
``bat_parts``             local; parts with NULLable DECIMAL weights
``bat_scratch``           local; DML target (INSERT/UPDATE/DELETE)
``api_ratings``           web-API source (paged, rate-limited)
``arch_orders``           archive source (scan-cheap, lookup-expensive)
``cat_components``        cache-fronted source
========================  =============================================

Only :class:`random.Random` seeded state is used — same seed, same
corpus, on every run and platform (no iteration over ``set``/``dict``
views of strings).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from decimal import Decimal

DEFAULT_SEED = 20260809
DEFAULT_COUNT = 320

# -- schema the generator writes queries against -------------------------------

# (column, kind) where kind is "int" | "dec" | "str"
TABLES: dict[str, list[tuple[str, str]]] = {
    "bat_watch": [
        ("pk", "int"),
        ("supplier_no", "int"),
        ("comp_no", "int"),
        ("grade", "int"),
        ("label", "str"),
    ],
    "bat_parts": [
        ("pno", "int"),
        ("pname", "str"),
        ("weight", "dec"),
        ("sno", "int"),
        ("tag", "str"),
    ],
    "bat_scratch": [
        ("k", "int"),
        ("v", "int"),
        ("note", "str"),
        ("amount", "dec"),
    ],
    "api_ratings": [
        ("supplier_no", "int"),
        ("score", "dec"),
        ("reviewer", "str"),
        ("note", "str"),
    ],
    "arch_orders": [
        ("order_no", "int"),
        ("supplier_no", "int"),
        ("comp_no", "int"),
        ("qty", "int"),
        ("price", "dec"),
    ],
    "cat_components": [
        ("comp_no", "int"),
        ("name", "str"),
        ("weight", "dec"),
    ],
}

REMOTE_TABLES = ("api_ratings", "arch_orders", "cat_components")
LOCAL_TABLES = ("bat_watch", "bat_parts", "bat_scratch")

# joinable column pairs: (left table, left col, right table, right col)
JOIN_PAIRS = [
    ("bat_watch", "supplier_no", "bat_parts", "sno"),
    ("bat_watch", "supplier_no", "api_ratings", "supplier_no"),
    ("bat_watch", "supplier_no", "arch_orders", "supplier_no"),
    ("bat_watch", "comp_no", "cat_components", "comp_no"),
    ("bat_parts", "sno", "api_ratings", "supplier_no"),
    ("bat_parts", "sno", "arch_orders", "supplier_no"),
    ("arch_orders", "comp_no", "cat_components", "comp_no"),
]

SUPPLIER_NOS = [1234] + [5000 + i for i in range(1, 9)]

INT_LITERALS = {
    "pk": list(range(0, 19)),
    "supplier_no": SUPPLIER_NOS,
    "sno": SUPPLIER_NOS,
    "comp_no": list(range(1, 61)),
    "grade": [1, 2, 3, 4, 5],
    "pno": list(range(1, 31)),
    "k": list(range(1, 16)) + list(range(1000, 1040)),
    "v": list(range(0, 101, 5)),
    "order_no": list(range(1, 241, 7)),
    "qty": list(range(1, 501, 25)),
}

DEC_LITERALS = {
    "weight": ["0.5", "2.25", "7.125", "19.5", "33.0", "48.75"],
    "score": ["1.0", "2.5", "4.75", "6.0", "8.25", "9.5"],
    "amount": ["10.00", "55.25", "120.50", "300.00", "640.75"],
    "price": ["5.00", "42.50", "99.99", "180.25", "333.00"],
}

STR_LITERALS = {
    "label": ["gold", "silver", "bronze", "watch", "hold"],
    "pname": ["gearbox", "piston", "camshaft", "flywheel", "valve", "rotor"],
    "tag": ["a1", "b2", "c3", "dd", "ee"],
    "note": ["prompt", "late", "damaged", "spotless", "ok"],
    "reviewer": ["auditor", "field", "panel"],
    "name": ["gearbox", "axle", "bearing", "shaft"],
}

LIKE_PATTERNS = {
    "label": ["%o%", "g%", "%d"],
    "pname": ["%a%", "%or%", "p%"],
    "tag": ["%1", "b%", "%e%"],
    "note": ["%t%", "%ed", "s%"],
    "reviewer": ["%l%", "a%", "%d%"],
    "name": ["%a%", "%x%", "g%"],
}

CMP_OPS = ["<", "<=", ">", ">=", "=", "<>"]


@dataclass(frozen=True)
class BatteryQuery:
    """One generated statement plus its shape contract."""

    sql: str
    kind: str  # "select" | "dml"
    columns: int  # output width (for DML: of the verification SELECT)
    total_order: bool  # ORDER BY covers the whole select list
    limit: int | None  # row-count ceiling, if the query has one
    remote: bool  # touches a nickname
    lateral: bool  # touches a lateral TABLE() call
    tag: str  # generator family, for triage


# -- battery-local table DDL and seed rows -------------------------------------

BATTERY_DDL = [
    "CREATE TABLE bat_watch (pk INT PRIMARY KEY, supplier_no INT, "
    "comp_no INT, grade INT, label VARCHAR(8))",
    "CREATE TABLE bat_parts (pno INT PRIMARY KEY, pname VARCHAR(14), "
    "weight DECIMAL(7,3), sno INT, tag VARCHAR(6))",
    "CREATE TABLE bat_scratch (k INT PRIMARY KEY, v INT, "
    "note VARCHAR(10), amount DECIMAL(8,2))",
]


def battery_rows(seed: int = 11) -> dict[str, list[tuple]]:
    """Deterministic NULL-heavy seed rows for the battery tables."""
    rng = random.Random(seed)
    watch = []
    for pk in range(18):
        watch.append(
            (
                pk,
                rng.choice(SUPPLIER_NOS),  # never NULL: fed to GetQuality
                rng.choice(list(range(1, 61)) + [None, None]),
                rng.choice([1, 2, 3, 4, 5, None]),
                rng.choice(STR_LITERALS["label"] + [None, None]),
            )
        )
    parts = []
    for pno in range(1, 25):
        parts.append(
            (
                pno,
                rng.choice(STR_LITERALS["pname"] + [None]),
                rng.choice(
                    [
                        Decimal("0.500"),
                        Decimal("2.250"),
                        Decimal("7.125"),
                        Decimal("19.500"),
                        Decimal("33.000"),
                        None,
                        None,
                    ]
                ),
                rng.choice(SUPPLIER_NOS + [None, None]),
                rng.choice(STR_LITERALS["tag"] + [None]),
            )
        )
    scratch = []
    for k in range(1, 13):
        scratch.append(
            (
                k,
                rng.choice(list(range(0, 101, 5)) + [None]),
                rng.choice(STR_LITERALS["note"] + [None]),
                rng.choice(
                    [
                        Decimal("10.00"),
                        Decimal("55.25"),
                        Decimal("120.50"),
                        Decimal("300.00"),
                        None,
                    ]
                ),
            )
        )
    return {"bat_watch": watch, "bat_parts": parts, "bat_scratch": scratch}


# -- the generator -------------------------------------------------------------


class QueryGenerator:
    """Draws :class:`BatteryQuery` items from a seeded RNG."""

    def __init__(self, seed: int = DEFAULT_SEED):
        self.rng = random.Random(seed)
        self._next_insert_key = 1000

    # helper draws ---------------------------------------------------------

    def _columns_of(self, table: str) -> list[tuple[str, str]]:
        return TABLES[table]

    def _literal(self, column: str, kind: str) -> str:
        if kind == "int":
            return str(self.rng.choice(INT_LITERALS[column]))
        if kind == "dec":
            return self.rng.choice(DEC_LITERALS[column])
        return "'" + self.rng.choice(STR_LITERALS[column]) + "'"

    def _predicate(self, alias: str, column: str, kind: str) -> str:
        """One atomic predicate over ``alias.column``."""
        ref = f"{alias}.{column}"
        roll = self.rng.random()
        if roll < 0.12:
            return f"{ref} IS NULL"
        if roll < 0.24:
            return f"{ref} IS NOT NULL"
        if kind == "str":
            if roll < 0.5:
                pattern = self.rng.choice(LIKE_PATTERNS[column])
                return f"{ref} LIKE '{pattern}'"
            if roll < 0.75:
                picks = self.rng.sample(
                    STR_LITERALS[column], k=min(2, len(STR_LITERALS[column]))
                )
                quoted = ", ".join(f"'{p}'" for p in picks)
                return f"{ref} IN ({quoted})"
            return f"{ref} = {self._literal(column, kind)}"
        if roll < 0.45:
            op = self.rng.choice(CMP_OPS)
            return f"{ref} {op} {self._literal(column, kind)}"
        if roll < 0.65:
            lo = self._literal(column, kind)
            hi = self._literal(column, kind)
            if kind == "int" and int(lo) > int(hi):
                lo, hi = hi, lo
            if kind == "dec" and float(lo) > float(hi):
                lo, hi = hi, lo
            return f"{ref} BETWEEN {lo} AND {hi}"
        if roll < 0.85:
            pool = INT_LITERALS[column] if kind == "int" else DEC_LITERALS[column]
            picks = self.rng.sample(pool, k=min(3, len(pool)))
            return f"{ref} IN ({', '.join(str(p) for p in picks)})"
        op = self.rng.choice(CMP_OPS)
        return f"{ref} {op} {self._literal(column, kind)}"

    def _where(self, parts: list[str]) -> str:
        if not parts:
            return ""
        glue = " AND " if self.rng.random() < 0.7 else " OR "
        return " WHERE " + glue.join(parts)

    def _some_predicates(self, alias: str, table: str, max_n: int = 2) -> list[str]:
        columns = self._columns_of(table)
        n = self.rng.randint(0, max_n)
        out = []
        for _ in range(n):
            column, kind = self.rng.choice(columns)
            out.append(self._predicate(alias, column, kind))
        return out

    # query families -------------------------------------------------------

    def simple_select(self) -> BatteryQuery:
        table = self.rng.choice(LOCAL_TABLES + REMOTE_TABLES)
        alias = table[0]
        columns = self._columns_of(table)
        k = self.rng.randint(1, min(4, len(columns)))
        projected = self.rng.sample(columns, k=k)
        select_list = ", ".join(f"{alias}.{c}" for c, _ in projected)
        distinct = "DISTINCT " if self.rng.random() < 0.25 else ""
        where = self._where(self._some_predicates(alias, table))
        order, total = "", False
        limit = None
        if self.rng.random() < 0.7:
            keys = []
            for c, _ in projected:
                direction = self.rng.choice(["", " DESC"])
                keys.append(f"{alias}.{c}{direction}")
            order = " ORDER BY " + ", ".join(keys)
            total = True
            if self.rng.random() < 0.3:
                limit = self.rng.choice([1, 3, 5, 10])
                clause = self.rng.random()
                if clause < 0.5:
                    order += f" LIMIT {limit}"
                else:
                    order += f" FETCH FIRST {limit} ROWS ONLY"
        sql = (
            f"SELECT {distinct}{select_list} FROM {table} AS {alias}"
            f"{where}{order}"
        )
        return BatteryQuery(
            sql,
            "select",
            len(projected),
            total,
            limit,
            table in REMOTE_TABLES,
            False,
            "simple",
        )

    def aggregate(self) -> BatteryQuery:
        table = self.rng.choice(LOCAL_TABLES + REMOTE_TABLES)
        alias = table[0]
        columns = self._columns_of(table)
        group_col, _ = self.rng.choice(
            [(c, kd) for c, kd in columns if kd != "dec"]
        )
        numeric = [(c, kd) for c, kd in columns if kd in ("int", "dec")]
        agg_col, _ = self.rng.choice(numeric)
        agg_fn = self.rng.choice(["SUM", "MIN", "MAX", "AVG", "COUNT"])
        aggs = ["COUNT(*)", f"{agg_fn}({alias}.{agg_col})"]
        where = self._where(self._some_predicates(alias, table, max_n=1))
        having = ""
        if self.rng.random() < 0.4:
            having = f" HAVING COUNT(*) >= {self.rng.choice([1, 2, 3])}"
        sql = (
            f"SELECT {alias}.{group_col}, {', '.join(aggs)} "
            f"FROM {table} AS {alias}{where} "
            f"GROUP BY {alias}.{group_col}{having} "
            f"ORDER BY {alias}.{group_col}"
        )
        # group keys are unique per output row, so ordering by them alone
        # is already a total order.
        return BatteryQuery(
            sql,
            "select",
            3,
            True,
            None,
            table in REMOTE_TABLES,
            False,
            "aggregate",
        )

    def join2(self) -> BatteryQuery:
        lt, lc, rt, rc = self.rng.choice(JOIN_PAIRS)
        la, ra = "l", "r"
        lcols = self.rng.sample(
            self._columns_of(lt), k=self.rng.randint(1, 2)
        )
        rcols = self.rng.sample(
            self._columns_of(rt), k=self.rng.randint(1, 2)
        )
        select_items = [f"{la}.{c}" for c, _ in lcols] + [
            f"{ra}.{c}" for c, _ in rcols
        ]
        preds = [f"{la}.{lc} = {ra}.{rc}"]
        preds += self._some_predicates(la, lt, max_n=1)
        preds += self._some_predicates(ra, rt, max_n=1)
        order, total = "", False
        if self.rng.random() < 0.75:
            order = " ORDER BY " + ", ".join(select_items)
            total = True
        sql = (
            f"SELECT {', '.join(select_items)} FROM {lt} AS {la}, {rt} AS {ra} "
            f"WHERE {' AND '.join(preds)}{order}"
        )
        remote = lt in REMOTE_TABLES or rt in REMOTE_TABLES
        return BatteryQuery(
            sql,
            "select",
            len(select_items),
            total,
            None,
            remote,
            False,
            "join2",
        )

    def left_join(self) -> BatteryQuery:
        lt, lc, rt, rc = self.rng.choice(JOIN_PAIRS)
        la, ra = "l", "r"
        lcols = self.rng.sample(
            self._columns_of(lt), k=self.rng.randint(1, 2)
        )
        rcols = self.rng.sample(self._columns_of(rt), k=1)
        select_items = [f"{la}.{c}" for c, _ in lcols] + [
            f"{ra}.{c}" for c, _ in rcols
        ]
        outer = "LEFT OUTER JOIN" if self.rng.random() < 0.5 else "LEFT JOIN"
        where = ""
        if self.rng.random() < 0.4:
            rcol, _ = rcols[0]
            where = f" WHERE {ra}.{rcol} IS NULL"
        order, total = "", False
        if self.rng.random() < 0.75:
            order = " ORDER BY " + ", ".join(select_items)
            total = True
        sql = (
            f"SELECT {', '.join(select_items)} FROM {lt} AS {la} "
            f"{outer} {rt} AS {ra} ON {la}.{lc} = {ra}.{rc}{where}{order}"
        )
        remote = lt in REMOTE_TABLES or rt in REMOTE_TABLES
        return BatteryQuery(
            sql,
            "select",
            len(select_items),
            total,
            None,
            remote,
            False,
            "left_join",
        )

    def lateral(self) -> BatteryQuery:
        preds = self._some_predicates("w", "bat_watch", max_n=1)
        where = (" AND " + " AND ".join(preds)) if preds else ""
        sql = (
            "SELECT w.pk, w.supplier_no, q.Qual "
            "FROM bat_watch AS w, TABLE (GetQuality(w.supplier_no)) AS q "
            f"WHERE w.pk >= 0{where} ORDER BY w.pk"
        )
        return BatteryQuery(sql, "select", 3, True, None, False, True, "lateral")

    def union(self) -> BatteryQuery:
        # int-kinded single-column branches are always type-compatible
        choices = [
            ("bat_watch", "w", "supplier_no"),
            ("bat_parts", "p", "sno"),
            ("api_ratings", "a", "supplier_no"),
            ("arch_orders", "o", "supplier_no"),
        ]
        (t1, a1, c1), (t2, a2, c2) = self.rng.sample(choices, k=2)
        w1 = self._where(self._some_predicates(a1, t1, max_n=1))
        w2 = self._where(self._some_predicates(a2, t2, max_n=1))
        op = "UNION ALL" if self.rng.random() < 0.5 else "UNION"
        sql = (
            f"SELECT {a1}.{c1} FROM {t1} AS {a1}{w1} "
            f"{op} "
            f"SELECT {a2}.{c2} FROM {t2} AS {a2}{w2}"
        )
        remote = t1 in REMOTE_TABLES or t2 in REMOTE_TABLES
        return BatteryQuery(
            sql, "select", 1, False, None, remote, False, "union"
        )

    def dml(self) -> BatteryQuery:
        roll = self.rng.random()
        if roll < 0.45:
            key = self._next_insert_key
            self._next_insert_key += 1
            v = self.rng.choice(list(range(0, 101, 5)) + ["NULL"])
            note = self.rng.choice(
                ["'" + n + "'" for n in STR_LITERALS["note"]] + ["NULL"]
            )
            amount = self.rng.choice(DEC_LITERALS["amount"] + ["NULL"])
            sql = f"INSERT INTO bat_scratch VALUES ({key}, {v}, {note}, {amount})"
            tag = "insert"
        elif roll < 0.8:
            assign = []
            if self.rng.random() < 0.7:
                assign.append(f"v = {self.rng.choice(INT_LITERALS['v'])}")
            if not assign or self.rng.random() < 0.4:
                assign.append(
                    f"note = '{self.rng.choice(STR_LITERALS['note'])}'"
                )
            pred = self._predicate(
                "bat_scratch", self.rng.choice(["k", "v"]), "int"
            )
            sql = f"UPDATE bat_scratch SET {', '.join(assign)} WHERE {pred}"
            tag = "update"
        else:
            # narrow predicates only, so the table never empties out
            key = self.rng.choice(INT_LITERALS["k"])
            sql = f"DELETE FROM bat_scratch WHERE bat_scratch.k = {key}"
            tag = "delete"
        # the runner snapshots bat_scratch (ORDER BY k: a total order)
        # right after every DML and compares those rows
        return BatteryQuery(sql, "dml", 4, True, None, False, False, tag)


FAMILY_WEIGHTS = [
    ("simple_select", 30),
    ("aggregate", 18),
    ("join2", 18),
    ("left_join", 10),
    ("lateral", 6),
    ("union", 8),
    ("dml", 10),
]


def generate_corpus(
    seed: int = DEFAULT_SEED, count: int = DEFAULT_COUNT
) -> list[BatteryQuery]:
    """The battery corpus: ``count`` queries drawn from a seeded RNG."""
    gen = QueryGenerator(seed)
    families = [name for name, weight in FAMILY_WEIGHTS for _ in range(weight)]
    corpus = []
    for _ in range(count):
        family = gen.rng.choice(families)
        corpus.append(getattr(gen, family)())
    return corpus
