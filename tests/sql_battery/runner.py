"""Executes the battery corpus against one architecture/mode/optimizer
combination and fingerprints every statement.

Each combination gets a *fresh* heterogeneous scenario (so response
caches, rate-limit windows, statement warmth and MVCC state evolve
identically from the same starting point), runs the identical statement
sequence, and records per query the result rows and the simulated time
the statement took.  DML statements are followed by a deterministic
verification SELECT over the scratch table; its rows become the DML's
fingerprint while the elapsed time covers the DML itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario

from .generator import BATTERY_DDL, BatteryQuery, battery_rows

ARCHITECTURES = [
    Architecture.WFMS,
    Architecture.SIMPLE_UDTF,
    Architecture.ENHANCED_SQL_UDTF,
    Architecture.ENHANCED_JAVA_UDTF,
]

MODES = ("row", "batch", "columnar")
OPTIMIZERS = ("syntactic", "cost")

VERIFY_SCRATCH = "SELECT * FROM bat_scratch ORDER BY bat_scratch.k"


@dataclass
class Outcome:
    """Fingerprint of one statement in one combination."""

    rows: list[tuple]
    elapsed: float


def build_battery_scenario(
    architecture, mode, optimizer, data=None, join_strategy="auto"
):
    """A heterogeneous scenario preloaded with the battery tables.

    RUNSTATS runs over every battery table and nickname so the cost
    optimizer sees real cardinalities (and, deliberately, so the
    cache-fronted source's response cache is warm — RUNSTATS issues the
    exact full-scan SQL the planner later prices as a cache hit).
    ``join_strategy`` forces one local join operator for the whole
    corpus (the join-strategy parity sweep); ``"auto"`` keeps the
    cost-based pick.
    """
    scenario = build_scenario(
        architecture, data=data, optimizer=optimizer, heterogeneous=True
    )
    fdbs = scenario.server.fdbs
    for ddl in BATTERY_DDL:
        fdbs.execute(ddl)
    for table, rows in sorted(battery_rows().items()):
        width = len(rows[0])
        markers = ", ".join("?" for _ in range(width))
        for row in rows:
            fdbs.execute(
                f"INSERT INTO {table} VALUES ({markers})", params=list(row)
            )
    for table in (
        "bat_watch",
        "bat_parts",
        "bat_scratch",
        "api_ratings",
        "arch_orders",
        "cat_components",
    ):
        fdbs.execute(f"RUNSTATS ON TABLE {table}")
    fdbs.set_execution_mode(mode)
    if join_strategy != "auto":
        fdbs.set_join_strategy(join_strategy)
    return scenario


def run_combo(
    architecture,
    mode: str,
    optimizer: str,
    corpus: list[BatteryQuery],
    data=None,
    join_strategy: str = "auto",
) -> list[Outcome]:
    """Run the corpus under one combination; shape-check as we go."""
    scenario = build_battery_scenario(
        architecture, mode, optimizer, data=data, join_strategy=join_strategy
    )
    fdbs = scenario.server.fdbs
    server = scenario.server
    outcomes: list[Outcome] = []
    for query in corpus:
        result, elapsed = server.elapsed(fdbs.execute, query.sql)
        if query.kind == "dml":
            rows = list(fdbs.execute(VERIFY_SCRATCH).rows)
        else:
            rows = list(result.rows)
        check_shape(query, rows)
        outcomes.append(Outcome(rows=rows, elapsed=elapsed))
    return outcomes


def check_shape(query: BatteryQuery, rows: list[tuple]) -> None:
    """Assert the query's shape contract against its result rows."""
    for row in rows:
        assert len(row) == query.columns, (
            f"width {len(row)} != declared {query.columns}: {query.sql}"
        )
    if query.limit is not None:
        assert len(rows) <= query.limit, (
            f"{len(rows)} rows exceed LIMIT {query.limit}: {query.sql}"
        )
