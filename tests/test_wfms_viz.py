"""DOT export of workflow processes (the paper's Fig. 1)."""

import pytest

from repro.appsys import (
    ProductDataManagementSystem,
    PurchasingSystem,
    StockKeepingSystem,
)
from repro.core.compile_workflow import compile_workflow
from repro.core.scenario import scenario_functions
from repro.wfms.programs import ProgramRegistry
from repro.wfms.viz import to_dot


@pytest.fixture(scope="module")
def resolver(data):
    systems = {
        s.name: s
        for s in (
            StockKeepingSystem(None, data),
            PurchasingSystem(None, data),
            ProductDataManagementSystem(None, data),
        )
    }
    return lambda system, function: systems[system].function(function)


def process_for(name, resolver):
    fed = next(f for f in scenario_functions() if f.name == name)
    return compile_workflow(fed, resolver, ProgramRegistry())


def test_fig1_buysuppcomp_dot(resolver):
    dot = to_dot(process_for("BuySuppComp", resolver))
    assert dot.startswith("digraph workflow {")
    assert dot.rstrip().endswith("}")
    # The five local-function activities of Fig. 1:
    for activity in ("GQ", "GR", "GG", "GCN", "DP"):
        assert f'"BuySuppComp.{activity}"' in dot
    # Precedence edges (the figure's arrows):
    assert '"BuySuppComp.GQ" -> "BuySuppComp.GG"' in dot
    assert '"BuySuppComp.GG" -> "BuySuppComp.DP"' in dot
    assert '"BuySuppComp.GCN" -> "BuySuppComp.DP"' in dot


def test_constants_render_as_plaintext_nodes(resolver):
    dot = to_dot(process_for("GetNumberSupp1234", resolver))
    assert "1234" in dot
    assert "plaintext" in dot


def test_block_renders_cluster_and_loop_marker(resolver):
    dot = to_dot(process_for("AllCompNames", resolver))
    assert "doubleoctagon" in dot
    assert "subgraph cluster_AllCompNames_ACN_Body" in dot
    assert "do-until Done = 1" in dot


def test_conditions_label_edges():
    from repro.fdbs.types import INTEGER
    from repro.wfms.builder import ProcessBuilder
    from repro.wfms.model import Condition

    b = ProcessBuilder("P", [("X", INTEGER)], [("Y", INTEGER)])
    for name in ("A", "B"):
        b.program_activity(
            name, "p", [("X", INTEGER)], [("Y", INTEGER)],
            {"X": b.from_input("X")},
        )
    b.connect("A", "B", Condition("Y", ">", 3))
    b.map_output("Y", b.from_activity("A", "Y"))
    dot = to_dot(b.build())
    assert '[label="Y > 3"]' in dot


def test_quotes_escaped():
    from repro.fdbs.types import VARCHAR
    from repro.wfms.builder import ProcessBuilder

    b = ProcessBuilder("P", [("X", VARCHAR(5))], [("Y", VARCHAR(5))])
    b.program_activity(
        "A", "p", [("X", VARCHAR(5))], [("Y", VARCHAR(5))],
        {"X": b.constant('he said "hi"')},
    )
    b.map_output("Y", b.from_activity("A", "Y"))
    dot = to_dot(b.build())
    assert r"\"hi\"" in dot


def test_data_edges_can_be_disabled(resolver):
    with_edges = to_dot(process_for("BuySuppComp", resolver))
    without = to_dot(process_for("BuySuppComp", resolver), include_data_edges=False)
    assert with_edges.count("style=dashed") > without.count("style=dashed")
