"""Warm runtime pool: LRU semantics, WfMS integration, warm/cold labels."""

import pytest

from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario
from repro.fdbs.types import INTEGER
from repro.simtime.costs import DEFAULT_COSTS
from repro.simtime.trace import TraceRecorder
from repro.sysmodel.machine import Machine
from repro.sysmodel.pool import WarmRuntimePool
from repro.wfms.builder import ProcessBuilder
from repro.wfms.engine import WorkflowEngine
from repro.wfms.programs import ProgramRegistry


class TestPoolUnit:
    def test_cold_then_warm(self):
        pool = WarmRuntimePool(capacity=2, enabled=True)
        assert pool.acquire("program:a") is False
        assert pool.acquire("program:a") is True
        assert pool.stats()["warm_hits"] == 1
        assert pool.stats()["cold_starts"] == 1

    def test_keys_are_case_sensitive(self):
        """Regression: the pool used to fold keys to upper case, so
        distinct runtimes like ``audtf:Foo`` and ``audtf:foo`` shared a
        warm slot and the second one got a false warm hit."""
        pool = WarmRuntimePool(enabled=True)
        pool.acquire("program:A")
        assert pool.acquire("PROGRAM:a") is False
        assert pool.is_warm("program:A")
        assert pool.is_warm("PROGRAM:a")
        assert not pool.is_warm("program:a")

    def test_fault_evict_drops_slot_and_counts(self):
        pool = WarmRuntimePool(enabled=True)
        pool.acquire("audtf:F")
        assert pool.evict("audtf:F") is True
        assert not pool.is_warm("audtf:F")
        assert pool.evict("audtf:F") is False
        stats = pool.stats()
        assert stats["fault_evictions"] == 1
        assert stats["evictions"] == 0

    def test_lru_eviction(self):
        pool = WarmRuntimePool(capacity=2, enabled=True)
        pool.acquire("a")
        pool.acquire("b")
        pool.acquire("a")  # refresh a; b is now LRU
        pool.acquire("c")  # evicts b
        assert pool.is_warm("a") and pool.is_warm("c")
        assert not pool.is_warm("b")
        assert pool.stats()["evictions"] == 1

    def test_capacity_one_alternation_never_warm(self):
        pool = WarmRuntimePool(capacity=1, enabled=True)
        for _ in range(3):
            assert pool.acquire("a") is False
            assert pool.acquire("b") is False
        assert pool.warm_hits == 0
        assert pool.cold_starts == 6
        assert pool.evictions == 5

    def test_disabled_counts_cold_but_keeps_nothing(self):
        pool = WarmRuntimePool(enabled=False)
        assert pool.acquire("a") is False
        assert pool.acquire("a") is False
        assert pool.cold_starts == 2
        assert len(pool) == 0
        assert not pool.is_warm("a")

    def test_shrink_evicts_lru_first(self):
        pool = WarmRuntimePool(capacity=3, enabled=True)
        for key in ("a", "b", "c"):
            pool.acquire(key)
        pool.configure(capacity=1)
        assert pool.contents() == ["c"]

    def test_disable_clears_slots(self):
        pool = WarmRuntimePool(enabled=True)
        pool.acquire("a")
        pool.configure(enabled=False)
        assert len(pool) == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            WarmRuntimePool(capacity=0)
        with pytest.raises(ValueError):
            WarmRuntimePool().configure(capacity=-1)


def two_program_process():
    """A process invoking two *different* activity programs in sequence."""
    b = ProcessBuilder("Two", [("X", INTEGER)], [("S", INTEGER)])
    b.program_activity(
        "D", "math.double", [("X", INTEGER)], [("Y", INTEGER)],
        {"X": b.from_input("X")},
    )
    b.program_activity(
        "A", "math.add", [("A", INTEGER), ("B", INTEGER)], [("S", INTEGER)],
        {"A": b.from_activity("D", "Y"), "B": b.from_input("X")},
    )
    b.sequence("D", "A")
    b.map_output("S", b.from_activity("A", "S"))
    return b.build()


def wf_engine(pool_capacity=None, pooling=True):
    machine = Machine()
    machine.configure_runtime(pooling=pooling, pool_capacity=pool_capacity)
    registry = ProgramRegistry()
    registry.register_program("math.double", lambda inp: {"Y": inp["X"] * 2})
    registry.register_program(
        "math.add", lambda inp: {"S": inp["A"] + inp["B"]}
    )
    return WorkflowEngine(registry, machine), machine


class TestWfmsIntegration:
    def test_capacity_one_alternating_programs_stays_cold(self):
        """Two programs through a 1-slot pool: every start is cold —
        no false warm hits from the just-evicted slot."""
        engine, machine = wf_engine(pool_capacity=1)
        process = two_program_process()
        for _ in range(3):
            engine.run_process(process, {"X": 2})
        stats = machine.runtime_pool.stats()
        assert stats["warm_hits"] == 0
        assert stats["cold_starts"] == 6
        events = [e.event for e in engine.audit.events]
        assert events.count("jvm cold start") == 6
        assert "jvm warm dispatch" not in events

    def test_repeat_runs_hit_warm_with_capacity(self):
        engine, machine = wf_engine(pool_capacity=8)
        process = two_program_process()
        clock = machine.clock
        engine.run_process(process, {"X": 2})
        cold_elapsed = clock.now
        start = clock.now
        engine.run_process(process, {"X": 2})
        warm_elapsed = clock.now - start
        stats = machine.runtime_pool.stats()
        assert stats["cold_starts"] == 2
        assert stats["warm_hits"] == 2
        # Both activities swap a JVM boot for a warm dispatch.
        saving = 2 * (
            DEFAULT_COSTS.wf_activity_jvm - DEFAULT_COSTS.jvm_warm_dispatch
        )
        assert cold_elapsed - warm_elapsed == pytest.approx(saving)

    def test_audit_labels_warm_and_cold_starts(self):
        engine, _ = wf_engine(pool_capacity=8)
        process = two_program_process()
        engine.run_process(process, {"X": 2})
        engine.run_process(process, {"X": 2})
        events = [
            (e.event, e.detail)
            for e in engine.audit.events
            if e.event in ("jvm cold start", "jvm warm dispatch")
        ]
        assert events.count(("jvm cold start", "program math.double")) == 1
        assert events.count(("jvm warm dispatch", "program math.double")) == 1
        assert events.count(("jvm cold start", "program math.add")) == 1
        assert events.count(("jvm warm dispatch", "program math.add")) == 1

    def test_disabled_pool_emits_no_start_audit_events(self):
        engine, machine = wf_engine(pooling=False)
        engine.run_process(two_program_process(), {"X": 2})
        events = [e.event for e in engine.audit.events]
        assert "jvm cold start" not in events
        assert "jvm warm dispatch" not in events
        # The counter still observes the cold starts (used by E9).
        assert machine.runtime_pool.cold_starts == 2

    def test_machine_boot_resets_warm_slots(self):
        engine, machine = wf_engine(pool_capacity=8)
        engine.run_process(two_program_process(), {"X": 2})
        assert len(machine.runtime_pool) == 2
        machine.boot()
        assert len(machine.runtime_pool) == 0


class TestUdtfTraceSpans:
    def span_names(self, scenario, *args):
        trace = TraceRecorder(scenario.server.machine.clock)
        scenario.call("GetSuppQual", *args, trace=trace)
        return [
            span.name
            for root in trace.roots
            for span in root.walk()
        ]

    def test_prepare_span_labels_warm_vs_cold(self, data):
        scenario = build_scenario(
            Architecture.ENHANCED_SQL_UDTF, data=data, pooling=True
        )
        cold = self.span_names(scenario, "ACME Industrial")
        warm = self.span_names(scenario, "ACME Industrial")
        assert "Prepare A-UDTFs" in cold
        assert "Prepare A-UDTFs (warm)" not in cold
        assert "Prepare A-UDTFs (warm)" in warm
        assert "Prepare A-UDTFs" not in warm

    def test_result_cache_span_on_hit(self, data):
        scenario = build_scenario(
            Architecture.ENHANCED_SQL_UDTF, data=data,
            pooling=True, result_cache=True,
        )
        self.span_names(scenario, "ACME Industrial")
        cached = self.span_names(scenario, "ACME Industrial")
        assert "Result cache" in cached
        assert "Prepare A-UDTFs (warm)" not in cached

    def test_no_new_spans_with_features_off(self, data):
        scenario = build_scenario(Architecture.ENHANCED_SQL_UDTF, data=data)
        self.span_names(scenario, "ACME Industrial")
        hot = self.span_names(scenario, "ACME Industrial")
        assert "Prepare A-UDTFs" in hot
        assert "Prepare A-UDTFs (warm)" not in hot
        assert "Result cache" not in hot
