"""MVCC snapshot isolation: semantics, conflicts, and concurrency.

Deterministic tests pin a snapshot explicitly (``db.execute(...,
snapshot=...)`` / ``db.pin_snapshot()``) and assert the isolation
contract single-threaded:

* a pinned snapshot never sees later writes (read skew is impossible);
* a write statement validated against a stale snapshot loses
  first-writer-wins and raises a retryable
  :class:`~repro.errors.WriteConflictError`;
* INSERT is append-only and exempt from version conflicts — a genuine
  key collision surfaces as the :class:`~repro.errors.ConstraintError`
  it is;
* DDL bumps the catalog epoch, so compiled plans cached before a
  DROP/CREATE can never serve the new table shape (the stale
  statement-cache fix);
* the MVCC counters are visible through ``runtime_stats()`` and the
  ``SYSCAT_RUNTIME_STATS`` view.

The hammer tests drive the same engine from many threads at a 1µs GIL
switch interval (style of ``test_thread_safety_regressions``):

* readers always observe a *consistent* snapshot while a writer
  republishes versions under them (no torn multi-row updates);
* writers on different tables proceed independently (per-table
  latches, no database-wide lock);
* same-row writers race, lose first-writer-wins, retry against fresh
  snapshots, and still conserve every update exactly.
"""

import sys
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ConstraintError, WriteConflictError
from repro.fdbs.engine import Database

THREADS = 8
JOIN_TIMEOUT = 60.0


def hammer(worker, threads: int = THREADS) -> None:
    """Run ``worker(thread_index)`` on N threads; barrier-aligned start,
    1µs GIL switch interval, bounded join, exceptions re-raised."""
    barrier = threading.Barrier(threads)

    def task(index: int):
        barrier.wait(timeout=JOIN_TIMEOUT)
        return worker(index)

    previous_interval = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        with ThreadPoolExecutor(max_workers=threads) as executor:
            futures = [executor.submit(task, i) for i in range(threads)]
            for future in futures:
                future.result(timeout=JOIN_TIMEOUT)
    finally:
        sys.setswitchinterval(previous_interval)


def make_accounts(name: str = "mvcc") -> Database:
    db = Database(name)
    db.execute("CREATE TABLE ACC (ID INTEGER PRIMARY KEY, VAL INTEGER)")
    db.execute("INSERT INTO ACC VALUES (1, 50), (2, 50)")
    return db


class TestSnapshotReads:
    def test_pinned_snapshot_never_sees_later_writes(self):
        db = make_accounts()
        old = db.pin_snapshot()
        db.execute("UPDATE ACC SET VAL = 99 WHERE ID = 1")
        stale_rows = db.execute(
            "SELECT VAL FROM ACC WHERE ID = 1", snapshot=old
        ).rows
        fresh_rows = db.execute("SELECT VAL FROM ACC WHERE ID = 1").rows
        assert stale_rows == [(50,)]
        assert fresh_rows == [(99,)]

    def test_pinned_snapshot_ignores_later_inserts_and_deletes(self):
        db = make_accounts()
        old = db.pin_snapshot()
        db.execute("INSERT INTO ACC VALUES (3, 10)")
        db.execute("DELETE FROM ACC WHERE ID = 2")
        stale = db.execute(
            "SELECT ID FROM ACC ORDER BY ID", snapshot=old
        ).rows
        fresh = db.execute("SELECT ID FROM ACC ORDER BY ID").rows
        assert stale == [(1,), (2,)]
        assert fresh == [(1,), (3,)]

    def test_snapshot_epoch_advances_with_writes(self):
        db = make_accounts()
        before = db.pin_snapshot()
        db.execute("UPDATE ACC SET VAL = VAL + 1")
        after = db.pin_snapshot()
        assert after.epoch > before.epoch

    def test_explain_header_names_the_pinned_epoch(self):
        db = make_accounts()
        first = db.explain("SELECT * FROM ACC").splitlines()[0]
        assert first.startswith("Snapshot(epoch=")
        rows = db.execute("EXPLAIN SELECT * FROM ACC").rows
        assert rows[0][0].startswith("Snapshot(epoch=")


class TestFirstWriterWins:
    def test_stale_update_raises_retryable_conflict(self):
        db = make_accounts()
        stale = db.pin_snapshot()
        db.execute("UPDATE ACC SET VAL = 60 WHERE ID = 1")
        with pytest.raises(WriteConflictError) as excinfo:
            db.execute(
                "UPDATE ACC SET VAL = 70 WHERE ID = 1", snapshot=stale
            )
        assert excinfo.value.retryable
        assert "first writer wins" in str(excinfo.value)
        # The losing statement must not have changed anything.
        assert db.execute("SELECT VAL FROM ACC WHERE ID = 1").rows == [(60,)]

    def test_stale_delete_raises_conflict(self):
        db = make_accounts()
        stale = db.pin_snapshot()
        db.execute("UPDATE ACC SET VAL = 60 WHERE ID = 2")
        with pytest.raises(WriteConflictError):
            db.execute("DELETE FROM ACC WHERE ID = 2", snapshot=stale)
        assert len(db.execute("SELECT * FROM ACC").rows) == 2

    def test_retry_with_fresh_snapshot_succeeds(self):
        db = make_accounts()
        stale = db.pin_snapshot()
        db.execute("UPDATE ACC SET VAL = 60 WHERE ID = 1")
        with pytest.raises(WriteConflictError):
            db.execute(
                "UPDATE ACC SET VAL = VAL + 5 WHERE ID = 1", snapshot=stale
            )
        db.note_conflict_retry()
        db.execute("UPDATE ACC SET VAL = VAL + 5 WHERE ID = 1")
        assert db.execute("SELECT VAL FROM ACC WHERE ID = 1").rows == [(65,)]
        stats = db.mvcc_stats()
        assert stats["write_conflicts"] == 1
        assert stats["retries"] == 1

    def test_insert_is_exempt_from_version_conflicts(self):
        db = make_accounts()
        stale = db.pin_snapshot()
        db.execute("UPDATE ACC SET VAL = 60 WHERE ID = 1")
        # Appends never first-writer-conflict...
        db.execute("INSERT INTO ACC VALUES (3, 10)", snapshot=stale)
        assert len(db.execute("SELECT * FROM ACC").rows) == 3
        # ...and a genuine collision is a key violation, not a version race.
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO ACC VALUES (3, 11)")

    def test_conflicts_on_different_tables_are_independent(self):
        db = make_accounts()
        db.execute("CREATE TABLE OTHER (ID INTEGER PRIMARY KEY, V INTEGER)")
        db.execute("INSERT INTO OTHER VALUES (1, 1)")
        stale = db.pin_snapshot()
        db.execute("UPDATE ACC SET VAL = 60 WHERE ID = 1")
        # ACC moved on, but the snapshot is still current for OTHER.
        db.execute("UPDATE OTHER SET V = 2 WHERE ID = 1", snapshot=stale)
        assert db.execute("SELECT V FROM OTHER").rows == [(2,)]


class TestStaleStatementCache:
    def test_recreated_table_never_served_by_old_plan(self):
        db = Database("ddl-epoch")
        db.execute("CREATE TABLE T (A INTEGER)")
        db.execute("INSERT INTO T VALUES (1)")
        assert db.execute("SELECT * FROM T").rows == [(1,)]
        db.execute("DROP TABLE T")
        db.execute("CREATE TABLE T (A INTEGER, B INTEGER)")
        db.execute("INSERT INTO T VALUES (2, 3)")
        # Same SQL text as the cached plan — must reflect the new shape.
        assert db.execute("SELECT * FROM T").rows == [(2, 3)]

    def test_ddl_bumps_cache_namespace_epoch(self):
        db = Database("ddl-epoch-2")
        before = db.catalog.ddl_epoch
        db.execute("CREATE TABLE T (A INTEGER)")
        assert db.catalog.ddl_epoch > before


class TestMvccCounters:
    def test_runtime_stats_exposes_mvcc_counters(self):
        db = make_accounts()
        db.execute("SELECT * FROM ACC")
        stats = db.runtime_stats()["mvcc"]
        assert set(stats) == {
            "snapshots_pinned",
            "versions_published",
            "write_conflicts",
            "retries",
            "snapshot_epoch",
        }
        assert stats["snapshots_pinned"] > 0
        assert stats["versions_published"] >= 2  # one per inserted row
        assert stats["write_conflicts"] == 0

    def test_syscat_view_reports_mvcc(self):
        db = make_accounts()
        rows = db.execute(
            "SELECT counter, value FROM SYSCAT_RUNTIME_STATS "
            "WHERE component = 'mvcc'"
        ).rows
        counters = dict(rows)
        assert counters["snapshots_pinned"] > 0
        assert counters["versions_published"] > 0


class TestConcurrentSnapshots:
    def test_readers_see_consistent_versions_while_writer_publishes(self):
        """No torn reads: a single-statement multi-row update is published
        atomically, so SUM(VAL) is invariant for every concurrent reader."""
        db = make_accounts("hammer-consistency")
        writes = 150
        reads = 150
        failures: list[tuple] = []

        def worker(index: int):
            if index == 0:
                for _ in range(writes):
                    # Moves value between the rows; the sum stays 100.
                    db.execute("UPDATE ACC SET VAL = 100 - VAL")
            else:
                for _ in range(reads):
                    total = db.execute("SELECT SUM(VAL) FROM ACC").scalar()
                    if total != 100:
                        failures.append((index, total))

        hammer(worker)
        assert not failures, f"torn snapshot reads observed: {failures[:5]}"
        stats = db.mvcc_stats()
        assert stats["write_conflicts"] == 0  # single writer never loses
        assert stats["versions_published"] >= writes

    def test_writers_on_different_tables_never_conflict(self):
        db = Database("hammer-tables")
        for index in range(THREADS):
            db.execute(
                f"CREATE TABLE T{index} (ID INTEGER PRIMARY KEY, V INTEGER)"
            )
            db.execute(f"INSERT INTO T{index} VALUES (1, 0)")
        increments = 100

        def worker(index: int):
            for _ in range(increments):
                db.execute(f"UPDATE T{index} SET V = V + 1 WHERE ID = 1")

        hammer(worker)
        for index in range(THREADS):
            value = db.execute(f"SELECT V FROM T{index}").scalar()
            assert value == increments, f"T{index} lost updates: {value}"
        # Per-table latches, disjoint tables: nobody ever lost a race.
        assert db.mvcc_stats()["write_conflicts"] == 0

    def test_same_row_writers_retry_and_conserve_every_update(self):
        """First-writer-wins on one row: losers retry with a fresh
        snapshot until they win; no increment is lost or duplicated."""
        db = Database("hammer-conflicts")
        db.execute("CREATE TABLE C (ID INTEGER PRIMARY KEY, V INTEGER)")
        db.execute("INSERT INTO C VALUES (1, 0)")
        increments = 60

        def worker(index: int):
            for _ in range(increments):
                while True:
                    try:
                        db.execute("UPDATE C SET V = V + 1 WHERE ID = 1")
                        break
                    except WriteConflictError:
                        db.note_conflict_retry()

        hammer(worker)
        assert db.execute("SELECT V FROM C").scalar() == THREADS * increments
        stats = db.mvcc_stats()
        # Every conflict was retried (and only conflicts were retried).
        assert stats["retries"] == stats["write_conflicts"]

    def test_concurrent_inserts_conserve_rows_without_conflicts(self):
        db = Database("hammer-inserts")
        db.execute("CREATE TABLE R (ID INTEGER PRIMARY KEY, V INTEGER)")
        per_thread = 80

        def worker(index: int):
            base = index * per_thread
            for offset in range(per_thread):
                db.execute(
                    "INSERT INTO R VALUES (?, ?)", params=[base + offset, index]
                )

        hammer(worker)
        count = db.execute("SELECT COUNT(*) FROM R").scalar()
        assert count == THREADS * per_thread
        assert db.mvcc_stats()["write_conflicts"] == 0
