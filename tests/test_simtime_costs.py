"""Cost-model defaults, scaling, warmth bookkeeping."""

import dataclasses

import pytest

from repro.simtime.costs import CostModel, DEFAULT_COSTS, Warmth


def test_default_profile_is_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        DEFAULT_COSTS.jvm_boot = 1.0  # type: ignore[misc]


def test_all_default_costs_nonnegative():
    for field in dataclasses.fields(CostModel):
        assert getattr(DEFAULT_COSTS, field.name) >= 0, field.name


def test_scaled_multiplies_every_constant():
    doubled = DEFAULT_COSTS.scaled(2.0)
    for field in dataclasses.fields(CostModel):
        assert getattr(doubled, field.name) == pytest.approx(
            2.0 * getattr(DEFAULT_COSTS, field.name)
        )


def test_scaled_rejects_nonpositive_factor():
    with pytest.raises(ValueError):
        DEFAULT_COSTS.scaled(0.0)


def test_replace_overrides_named_constant():
    custom = DEFAULT_COSTS.replace(jvm_boot=99.0)
    assert custom.jvm_boot == 99.0
    assert custom.rmi_call == DEFAULT_COSTS.rmi_call


def test_calibration_anchor_wfms_per_activity():
    """The WfMS per-activity cost (JVM + containers) is the dominant
    share of the calibration (Fig. 6: process activities = 51 su)."""
    per_activity = DEFAULT_COSTS.wf_activity_jvm + DEFAULT_COSTS.wf_activity_container
    assert per_activity == pytest.approx(49.0)


def test_warmth_statement_tracking():
    warmth = Warmth()
    assert not warmth.statement_is_hot("q1")
    warmth.note_statement("q1")
    assert warmth.statement_is_hot("q1")
    assert not warmth.statement_is_hot("q2")


def test_warmth_template_tracking():
    warmth = Warmth()
    warmth.note_template("P")
    assert warmth.template_is_hot("P")


def test_warmth_reset_forgets_everything():
    warmth = Warmth(machine_cold=False)
    warmth.note_statement("q")
    warmth.note_template("p")
    warmth.reset()
    assert warmth.machine_cold
    assert not warmth.statement_is_hot("q")
    assert not warmth.template_is_hot("p")
