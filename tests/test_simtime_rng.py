"""Deterministic jitter source."""

import pytest

from repro.simtime.rng import JitterSource


def test_zero_amplitude_is_exact():
    source = JitterSource(seed=1, amplitude=0.0)
    assert source.factor() == 1.0
    assert source.jitter(42.0) == 42.0


def test_amplitude_bounds_factors():
    source = JitterSource(seed=7, amplitude=0.05)
    for _ in range(200):
        assert 0.95 <= source.factor() <= 1.05


def test_same_seed_same_sequence():
    a = JitterSource(seed=3, amplitude=0.1)
    b = JitterSource(seed=3, amplitude=0.1)
    assert [a.factor() for _ in range(10)] == [b.factor() for _ in range(10)]


def test_different_seeds_differ():
    a = JitterSource(seed=1, amplitude=0.1)
    b = JitterSource(seed=2, amplitude=0.1)
    assert [a.factor() for _ in range(10)] != [b.factor() for _ in range(10)]


def test_invalid_amplitude_rejected():
    with pytest.raises(ValueError):
        JitterSource(amplitude=-0.1)
    with pytest.raises(ValueError):
        JitterSource(amplitude=1.0)
