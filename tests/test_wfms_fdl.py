"""FDL parsing and serialization."""

import pytest

from repro.errors import FdlSyntaxError
from repro.fdbs.types import INTEGER
from repro.wfms.fdl import parse_fdl, to_fdl
from repro.wfms.model import (
    BlockActivity,
    Constant,
    FromActivityOutput,
    FromProcessInput,
    HelperActivity,
    ProgramActivity,
)

SIMPLE = """
PROCESS GetSuppQual
  INPUT (SupplierName VARCHAR(40))
  OUTPUT (Qual INTEGER)

  PROGRAM_ACTIVITY GetSupplierNo
    PROGRAM 'purchasing.GetSupplierNo'
    INPUT (SupplierName VARCHAR(40))
    OUTPUT (SupplierNo INTEGER)
    MAP SupplierName FROM PROCESS.SupplierName
  END_ACTIVITY

  PROGRAM_ACTIVITY GetQuality
    PROGRAM 'stock.GetQuality'
    INPUT (SupplierNo INTEGER)
    OUTPUT (Qual INTEGER)
    MAP SupplierNo FROM GetSupplierNo.SupplierNo
  END_ACTIVITY

  CONTROL FROM GetSupplierNo TO GetQuality
  MAP_OUTPUT Qual FROM GetQuality.Qual
END_PROCESS
"""


def test_parse_simple_process():
    processes = parse_fdl(SIMPLE)
    process = processes["GetSuppQual"]
    assert [a.name for a in process.activities] == ["GetSupplierNo", "GetQuality"]
    first = process.activities[0]
    assert isinstance(first, ProgramActivity)
    assert first.program == "purchasing.GetSupplierNo"
    assert first.input_map["SupplierName"] == FromProcessInput("SupplierName")
    second = process.activities[1]
    assert second.input_map["SupplierNo"] == FromActivityOutput(
        "GetSupplierNo", "SupplierNo"
    )
    assert len(process.connectors) == 1


def test_parse_constant_and_condition_and_helper():
    text = """
PROCESS P
  INPUT (X INTEGER)
  OUTPUT (Y INTEGER)
  PROGRAM_ACTIVITY A
    PROGRAM 'sys.fn'
    INPUT (P1 INTEGER, P2 INTEGER)
    OUTPUT (Y INTEGER)
    MAP P1 FROM PROCESS.X
    MAP P2 CONSTANT 1234
  END_ACTIVITY
  HELPER_ACTIVITY H
    HELPER 'cast.it'
    INPUT (V INTEGER)
    OUTPUT (W BIGINT)
    MAP V FROM A.Y
  END_ACTIVITY
  CONTROL FROM A TO H WHEN Y > 5
  MAP_OUTPUT Y FROM A.Y
END_PROCESS
"""
    process = parse_fdl(text)["P"]
    a = process.activities[0]
    assert a.input_map["P2"] == Constant(1234)
    h = process.activities[1]
    assert isinstance(h, HelperActivity)
    condition = process.connectors[0].condition
    assert condition is not None and condition.op == ">" and condition.value == 5


def test_parse_block_with_subprocess_in_same_document():
    text = """
PROCESS Body
  INPUT (I INTEGER, End INTEGER)
  OUTPUT (NextI INTEGER, Done INTEGER)
  HELPER_ACTIVITY Advance
    HELPER 'loop.advance'
    INPUT (I INTEGER, End INTEGER)
    OUTPUT (NextI INTEGER, Done INTEGER)
    MAP I FROM PROCESS.I
    MAP End FROM PROCESS.End
  END_ACTIVITY
  MAP_OUTPUT NextI FROM Advance.NextI
  MAP_OUTPUT Done FROM Advance.Done
END_PROCESS

PROCESS Loop
  INPUT (Start INTEGER, End INTEGER)
  OUTPUT (NextI INTEGER, Done INTEGER)
  BLOCK_ACTIVITY Iterate
    SUBPROCESS Body
    UNTIL Done = 1
    CARRY I FROM NextI
    MAP I FROM PROCESS.Start
    MAP End FROM PROCESS.End
  END_ACTIVITY
  MAP_OUTPUT NextI FROM Iterate.NextI
  MAP_OUTPUT Done FROM Iterate.Done
END_PROCESS
"""
    processes = parse_fdl(text)
    block = processes["Loop"].activities[0]
    assert isinstance(block, BlockActivity)
    assert block.subprocess is processes["Body"]
    assert block.carry == {"I": "NextI"}
    assert block.until is not None and block.until.member == "Done"


def test_unknown_subprocess_rejected():
    text = """
PROCESS Loop
  INPUT (X INTEGER)
  OUTPUT (Y INTEGER)
  BLOCK_ACTIVITY B
    SUBPROCESS Ghost
  END_ACTIVITY
  MAP_OUTPUT Y FROM B.Y
END_PROCESS
"""
    with pytest.raises(FdlSyntaxError, match="Ghost"):
        parse_fdl(text)


def test_library_provides_subprocesses():
    body = parse_fdl(
        """
PROCESS Body
  INPUT (I INTEGER)
  OUTPUT (Done INTEGER)
  HELPER_ACTIVITY H
    HELPER 'x'
    INPUT (I INTEGER)
    OUTPUT (Done INTEGER)
    MAP I FROM PROCESS.I
  END_ACTIVITY
  MAP_OUTPUT Done FROM H.Done
END_PROCESS
"""
    )
    text = """
PROCESS Outer
  INPUT (I INTEGER)
  OUTPUT (Done INTEGER)
  BLOCK_ACTIVITY B
    SUBPROCESS Body
    UNTIL Done = 1
    MAP I FROM PROCESS.I
  END_ACTIVITY
  MAP_OUTPUT Done FROM B.Done
END_PROCESS
"""
    processes = parse_fdl(text, library=body)
    assert processes["Outer"].activities[0].subprocess is body["Body"]


def test_comments_and_blank_lines_ignored():
    text = SIMPLE.replace(
        "PROCESS GetSuppQual", "# leading comment\n\nPROCESS GetSuppQual  # trailing"
    )
    assert "GetSuppQual" in parse_fdl(text)


def test_missing_input_clause_rejected():
    broken = SIMPLE.replace("INPUT (SupplierName VARCHAR(40))", "")
    with pytest.raises(FdlSyntaxError):
        parse_fdl(broken)


def test_missing_output_map_is_legal_but_leaves_output_unset():
    # MQWF allows processes whose output members stay unmapped; reading
    # them later fails at the container level, not at parse time.
    broken = SIMPLE.replace("MAP_OUTPUT Qual FROM GetQuality.Qual", "")
    process = parse_fdl(broken)["GetSuppQual"]
    assert process.output_map == {}


def test_missing_program_clause_rejected():
    broken = SIMPLE.replace("PROGRAM 'purchasing.GetSupplierNo'", "")
    with pytest.raises(FdlSyntaxError, match="PROGRAM"):
        parse_fdl(broken)


def test_bad_member_list_rejected():
    with pytest.raises(FdlSyntaxError):
        parse_fdl("PROCESS P\n  INPUT nope\n  OUTPUT (Y INT)\nEND_PROCESS")


def test_empty_document_rejected():
    with pytest.raises(FdlSyntaxError, match="no process"):
        parse_fdl("# nothing here")


def test_round_trip_simple():
    original = parse_fdl(SIMPLE)["GetSuppQual"]
    reparsed = parse_fdl(to_fdl(original))["GetSuppQual"]
    assert [a.name for a in reparsed.activities] == [
        a.name for a in original.activities
    ]
    assert reparsed.output_map.keys() == original.output_map.keys()
    assert reparsed.input_type.members == original.input_type.members


def test_round_trip_emits_subprocesses_first():
    from repro.core.compile_workflow import compile_workflow
    from repro.core.scenario import scenario_functions
    from repro.appsys import (
        ProductDataManagementSystem,
        PurchasingSystem,
        StockKeepingSystem,
    )
    from repro.wfms.programs import ProgramRegistry

    systems = {
        s.name: s
        for s in (
            StockKeepingSystem(),
            PurchasingSystem(),
            ProductDataManagementSystem(),
        )
    }
    fed = next(f for f in scenario_functions() if f.name == "AllCompNames")
    process = compile_workflow(
        fed, lambda sy, fn: systems[sy].function(fn), ProgramRegistry()
    )
    text = to_fdl(process)
    assert text.index("PROCESS AllCompNames_ACN_Body") < text.index(
        "PROCESS AllCompNames\n"
    )
    reparsed = parse_fdl(text)
    assert "AllCompNames" in reparsed
