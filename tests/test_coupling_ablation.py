"""Pooling/caching ablation (E9): baseline parity + acceptance bars."""

import pytest

from repro.bench.experiments import (
    exp_coupling_ablation,
    render_coupling_ablation,
)
from repro.bench.harness import measure_hot
from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario

WFMS = Architecture.WFMS.value
UDTF = Architecture.ENHANCED_SQL_UDTF.value


@pytest.fixture(scope="module")
def ablation(data):
    return exp_coupling_ablation(data=data, repeats=3)


def test_flags_off_is_bit_identical(data):
    """Explicitly disabled pooling/caching yields *exactly* the same
    simulated timings as a default-built scenario."""
    for architecture in (Architecture.WFMS, Architecture.ENHANCED_SQL_UDTF):
        default = build_scenario(architecture, data=data)
        ablated = build_scenario(
            architecture, data=data, pooling=False, result_cache=False
        )
        base = measure_hot(default, "GetNoSuppComp")
        off = measure_hot(ablated, "GetNoSuppComp")
        assert off.runs == base.runs


def test_baseline_cells_match_calibration_anchors(ablation):
    assert ablation.get(WFMS, "baseline").per_call == pytest.approx(
        302.9, abs=1.0
    )
    assert ablation.get(UDTF, "baseline").per_call == pytest.approx(
        101.8, abs=1.0
    )


def test_pooling_reduces_start_share_at_least_2x(ablation):
    for architecture in (WFMS, UDTF):
        baseline = ablation.get(architecture, "baseline")
        pooled = ablation.get(architecture, "pooled")
        assert pooled.per_call < baseline.per_call
        assert baseline.start_share / pooled.start_share >= 2.0


def test_result_rows_identical_across_configs(ablation):
    for architecture in (WFMS, UDTF):
        rows = {
            config: ablation.get(architecture, config).rows
            for config in ("baseline", "pooled", "pooled+cache")
        }
        assert rows["baseline"] == rows["pooled"] == rows["pooled+cache"]


def test_architecture_ranking_preserved(ablation):
    """The paper's factor-3 ranking survives every configuration."""
    baseline_ratio = (
        ablation.get(WFMS, "baseline").per_call
        / ablation.get(UDTF, "baseline").per_call
    )
    assert baseline_ratio == pytest.approx(2.97, abs=0.05)
    for config in ("pooled", "pooled+cache"):
        assert (
            ablation.get(WFMS, config).per_call
            > ablation.get(UDTF, config).per_call
        )


def test_pooled_cells_record_warm_hits(ablation):
    for architecture in (WFMS, UDTF):
        pooled = ablation.get(architecture, "pooled")
        assert pooled.warm_hits > 0
        assert pooled.pool_stats["warm_hits"] == pooled.warm_hits


def test_cache_config_hits_and_is_fastest(ablation):
    cached = ablation.get(UDTF, "pooled+cache")
    assert cached.cache_stats["hits"] > 0
    assert cached.per_call < ablation.get(UDTF, "pooled").per_call


def test_unknown_cell_raises(ablation):
    with pytest.raises(KeyError):
        ablation.get(WFMS, "no-such-config")


def test_render_mentions_every_config(ablation):
    text = render_coupling_ablation(ablation)
    for token in ("baseline", "pooled", "pooled+cache", WFMS, UDTF):
        assert token in text
