"""Activity retry policies — the WfMS error-handling the paper credits."""

import pytest

from repro.errors import ActivityFailedError
from repro.fdbs.types import INTEGER
from repro.simtime.costs import DEFAULT_COSTS
from repro.sysmodel.machine import Machine
from repro.wfms.builder import ProcessBuilder
from repro.wfms.engine import WorkflowEngine
from repro.wfms.fdl import parse_fdl, to_fdl
from repro.wfms.programs import ProgramRegistry


def flaky_registry(fail_times):
    registry = ProgramRegistry()
    state = {"left": fail_times}

    def flaky(inputs):
        if state["left"] > 0:
            state["left"] -= 1
            raise RuntimeError("transient outage")
        return {"Y": inputs["X"] + 1}

    registry.register_program("flaky", flaky)
    return registry, state


def flaky_process(max_retries):
    b = ProcessBuilder("P", [("X", INTEGER)], [("Y", INTEGER)])
    b.program_activity(
        "A", "flaky", [("X", INTEGER)], [("Y", INTEGER)],
        {"X": b.from_input("X")},
        max_retries=max_retries,
    )
    b.map_output("Y", b.from_activity("A", "Y"))
    return b.build()


def test_retry_recovers_from_transient_failure():
    registry, _ = flaky_registry(fail_times=2)
    engine = WorkflowEngine(registry)
    instance = engine.run_process(flaky_process(max_retries=2), {"X": 1})
    assert instance.output.as_dict() == {"Y": 2}
    retried = [e for e in engine.audit.events if e.event == "activity retried"]
    assert len(retried) == 2


def test_exhausted_retries_fail_the_process():
    registry, _ = flaky_registry(fail_times=5)
    engine = WorkflowEngine(registry)
    with pytest.raises(ActivityFailedError):
        engine.run_process(flaky_process(max_retries=2), {"X": 1})


def test_zero_retries_is_the_default():
    registry, _ = flaky_registry(fail_times=1)
    engine = WorkflowEngine(registry)
    with pytest.raises(ActivityFailedError):
        engine.run_process(flaky_process(max_retries=0), {"X": 1})


def test_each_attempt_pays_full_activity_cost():
    machine = Machine()
    registry, _ = flaky_registry(fail_times=2)
    engine = WorkflowEngine(registry, machine)
    start = machine.clock.now
    engine.run_process(flaky_process(max_retries=2), {"X": 1})
    elapsed = machine.clock.now - start
    per_attempt = DEFAULT_COSTS.wf_activity_jvm + DEFAULT_COSTS.wf_activity_container
    assert elapsed >= 3 * per_attempt  # two failures + one success


def test_retries_round_trip_through_fdl():
    process = flaky_process(max_retries=3)
    text = to_fdl(process)
    assert "RETRIES 3" in text
    reparsed = parse_fdl(text)["P"]
    assert reparsed.activities[0].max_retries == 3


def test_fdl_omits_zero_retries():
    assert "RETRIES" not in to_fdl(flaky_process(max_retries=0))
