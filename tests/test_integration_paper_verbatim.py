"""The paper's published SQL statements, executed verbatim.

Every CREATE FUNCTION / SELECT statement printed in the paper's Sect. 2
and 3 must parse and run against this engine (modulo the paper's
shorthand types: bare VARCHAR/INT).  This is the dialect-compatibility
proof for the reproduction.
"""

import pytest

from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario


@pytest.fixture(scope="module")
def server(data):
    # A-UDTFs for all local functions are registered by the server.
    return build_scenario(Architecture.ENHANCED_SQL_UDTF, data=data).server


def test_simple_udtf_architecture_select(server):
    """Sect. 2, the simple UDTF architecture's application statement."""
    result = server.fdbs.execute(
        """
        SELECT DP.Answer
        FROM TABLE (GetQuality(?)) AS GQ,
             TABLE (GetReliability(?)) AS GR,
             TABLE (GetGrade(GQ.Qual, GR.Relia)) AS GG,
             TABLE (GetCompNo(?)) AS GCN,
             TABLE (DecidePurchase(GG.Grade, GCN.No)) AS DP
        """,
        params=[1234, 1234, "gearbox"],
    )
    assert result.rows == [("BUY",)]


def test_buysuppcomp_create_function(server):
    """Sect. 2, the enhanced SQL UDTF architecture's I-UDTF, verbatim
    (SupplierNo/CompName literals replace the paper's free variables)."""
    server.fdbs.execute(
        """
        CREATE FUNCTION BuySuppCompVerbatim (SupplierNo INT, CompName VARCHAR)
        RETURNS TABLE (Decision VARCHAR) LANGUAGE SQL RETURN
        SELECT DP.Answer
        FROM TABLE (GetQuality(BuySuppCompVerbatim.SupplierNo)) AS GQ,
             TABLE (GetReliability(BuySuppCompVerbatim.SupplierNo)) AS GR,
             TABLE (GetGrade(GQ.Qual, GR.Relia)) AS GG,
             TABLE (GetCompNo(BuySuppCompVerbatim.CompName)) AS GCN,
             TABLE (DecidePurchase(GG.Grade, GCN.No)) AS DP
        """
    )
    result = server.fdbs.execute(
        "SELECT BSC.Decision FROM TABLE (BuySuppCompVerbatim(?, ?)) AS BSC",
        params=[1234, "gearbox"],
    )
    assert result.rows == [("BUY",)]


def test_getnumbersupp1234_create_function(server):
    """Sect. 3, simple case: constant parameter + BIGINT cast function."""
    server.fdbs.execute(
        """
        CREATE FUNCTION GetNumberSupp1234V (CompNo INT)
        RETURNS TABLE (Number INT)
        LANGUAGE SQL RETURN
        SELECT BIGINT(GN.Number)
        FROM TABLE (GetNumber(1234, GetNumberSupp1234V.CompNo)) AS GN
        """
    )
    rows = server.fdbs.execute(
        "SELECT * FROM TABLE (GetNumberSupp1234V(1)) AS N"
    ).rows
    assert len(rows) == 1
    assert isinstance(rows[0][0], int)


def test_getsubcompdiscounts_create_function(server):
    """Sect. 3, independent case: join with selection.

    (The paper's listing contains the typo ``GetSupCompNo``; the
    corrected local-function name is used.)"""
    server.fdbs.execute(
        """
        CREATE FUNCTION GetSubCompDiscountsV (CompNo INT, Discount INT)
        RETURNS TABLE (SubCompNo INT, SupplierNo INT)
        LANGUAGE SQL RETURN
        SELECT GSCD.SubCompNo, GCS4D.SupplierNo
        FROM TABLE (GetSubCompNo(GetSubCompDiscountsV.CompNo)) AS GSCD,
             TABLE (GetCompSupp4Discount(GetSubCompDiscountsV.Discount)) AS GCS4D
        WHERE GSCD.SubCompNo=GCS4D.CompNo
        """
    )
    verbatim = server.fdbs.execute(
        "SELECT * FROM TABLE (GetSubCompDiscountsV(1, 5)) AS D"
    ).rows
    compiled = server.call("GetSubCompDiscounts", 1, 5)
    assert sorted(verbatim) == sorted(compiled)


def test_getsuppqual_create_function(server):
    """Sect. 3, linear dependency: execution order defined by input
    parameters."""
    server.fdbs.execute(
        """
        CREATE FUNCTION GetSuppQualV (SupplierName VARCHAR)
        RETURNS TABLE (Qual INT) LANGUAGE SQL RETURN
        SELECT GQ.Qual
        FROM TABLE (GetSupplierNo(GetSuppQualV.SupplierName)) AS GSN,
             TABLE (GetQuality(GSN.SupplierNo)) AS GQ
        """
    )
    rows = server.fdbs.execute(
        "SELECT * FROM TABLE (GetSuppQualV('ACME Industrial')) AS Q"
    ).rows
    assert rows == [(8,)]


def test_compiled_buysuppcomp_matches_verbatim(server):
    """The mapping compiler's output and the paper's hand-written
    statement produce identical results."""
    verbatim = server.fdbs.execute(
        "SELECT BSC.Decision FROM TABLE (BuySuppCompVerbatim(?, ?)) AS BSC",
        params=[1234, "gearbox"],
    ).rows
    compiled = server.call("BuySuppComp", 1234, "gearbox")
    assert verbatim == compiled


def test_german_trivial_case(server):
    """Sect. 3, trivial case: GibKompNr is the German GetCompNo."""
    assert server.call("GibKompNr", "gearbox") == server.fdbs.execute(
        "SELECT * FROM TABLE (GetCompNo('gearbox')) AS C"
    ).rows
