"""Random-query fuzzing: generated SELECTs must plan, run, and respect
basic relational invariants — in every execution mode and under both
optimizers (the cost combos run after RUNSTATS so plan decisions are
statistics-driven, and a small chunk size makes columnar chunking and
all-mode zone pruning real)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fdbs.engine import Database
from repro.fdbs.functions import make_external_function
from repro.fdbs.types import INTEGER

COLUMNS = ["a", "b", "c"]


@pytest.fixture(
    scope="module",
    params=[
        ("row", "syntactic"),
        ("columnar", "syntactic"),
        ("row", "cost"),
        ("columnar", "cost"),
    ],
    ids=lambda p: f"{p[0]}-{p[1]}",
)
def db(request):
    mode, optimizer = request.param
    database = Database("fuzz", execution_mode=mode, chunk_size=5)
    database.execute("CREATE TABLE t (a INT, b INT, c VARCHAR(5))")
    values = [(i, i % 3, f"s{i % 4}") for i in range(12)] + [(99, None, None)]
    for row in values:
        database.execute("INSERT INTO t VALUES (?, ?, ?)", params=list(row))
    # Comma-join partner for the join-strategy sweep (its key column is
    # named ``k`` so the single-table predicates stay unambiguous).
    database.execute("CREATE TABLE u (k INT, d VARCHAR(5))")
    for index in range(8):
        database.execute(
            "INSERT INTO u VALUES (?, ?)", params=[index % 4, f"d{index}"]
        )
    database.execute("INSERT INTO u VALUES (?, ?)", params=[None, "dnull"])
    database.register_external_function(
        make_external_function(
            "Twice", [("x", INTEGER)], [("y", INTEGER)], lambda x: (x or 0) * 2
        )
    )
    database.execute("RUNSTATS ON TABLE t")
    database.execute("RUNSTATS ON TABLE u")
    database.set_optimizer(optimizer)
    return database


int_literals = st.integers(min_value=-5, max_value=15).map(str)

comparisons = st.one_of(
    st.tuples(st.sampled_from(["a", "b"]), st.sampled_from(["=", "<", ">", "<=", ">=", "<>"]), int_literals).map(
        lambda t: f"{t[0]} {t[1]} {t[2]}"
    ),
    st.sampled_from(["b IS NULL", "b IS NOT NULL", "c LIKE 's%'", "a BETWEEN 2 AND 8",
                     "a IN (1, 2, 3)", "c IS NULL"]),
)

predicates = st.recursive(
    comparisons,
    lambda sub: st.one_of(
        st.tuples(sub, sub).map(lambda t: f"({t[0]} AND {t[1]})"),
        st.tuples(sub, sub).map(lambda t: f"({t[0]} OR {t[1]})"),
        sub.map(lambda p: f"NOT ({p})"),
    ),
    max_leaves=4,
)

select_lists = st.lists(
    st.sampled_from(["a", "b", "c", "a + 1", "UPPER(c)", "a * b"]),
    min_size=1,
    max_size=3,
).map(", ".join)


@settings(max_examples=150, deadline=None)
@given(items=select_lists, predicate=predicates, limit=st.integers(0, 20))
def test_generated_queries_run_and_respect_invariants(db, items, predicate, limit):
    base = f"SELECT {items} FROM t"
    unfiltered = db.execute(base).rows
    filtered = db.execute(f"{base} WHERE {predicate}").rows
    # A WHERE clause can only remove rows (multiset containment).
    assert len(filtered) <= len(unfiltered)
    remaining = list(unfiltered)
    for row in filtered:
        assert row in remaining
        remaining.remove(row)
    # LIMIT caps the row count.
    limited = db.execute(f"{base} WHERE {predicate} FETCH FIRST {limit} ROWS ONLY")
    assert len(limited.rows) == min(limit, len(filtered))
    # DISTINCT yields a subset without duplicates.
    distinct = db.execute(f"SELECT DISTINCT {items} FROM t WHERE {predicate}").rows
    assert len(set(distinct)) == len(distinct)
    assert set(distinct) == set(map(tuple, filtered))


@settings(max_examples=60, deadline=None)
@given(predicate=predicates)
def test_where_complement_partitions_rows(db, predicate):
    """rows(p) + rows(NOT p) <= all rows, with the gap being NULL
    (unknown) evaluations — three-valued logic's signature."""
    total = db.execute("SELECT a FROM t").rows
    positive = db.execute(f"SELECT a FROM t WHERE {predicate}").rows
    negative = db.execute(f"SELECT a FROM t WHERE NOT ({predicate})").rows
    assert len(positive) + len(negative) <= len(total)


@settings(max_examples=60, deadline=None)
@given(predicate=predicates)
def test_count_star_matches_row_count(db, predicate):
    rows = db.execute(f"SELECT a FROM t WHERE {predicate}").rows
    count = db.execute(f"SELECT COUNT(*) FROM t WHERE {predicate}").scalar()
    assert count == len(rows)


@settings(max_examples=40, deadline=None)
@given(predicate=predicates)
def test_lateral_function_preserves_cardinality(db, predicate):
    plain = db.execute(f"SELECT a FROM t WHERE {predicate}").rows
    applied = db.execute(
        f"SELECT r.y FROM t, TABLE (Twice(a)) AS r WHERE {predicate}"
    ).rows
    assert len(applied) == len(plain)


@settings(max_examples=40, deadline=None)
@given(predicate=predicates)
def test_join_strategies_produce_identical_rows(db, predicate):
    """Every forced local join strategy returns the same rows as the
    default plan for a comma equi-join, whatever the WHERE clause."""
    sql = (
        "SELECT a, b, u.d FROM t, u "
        f"WHERE b = u.k AND ({predicate}) ORDER BY a, u.d"
    )
    baseline = db.execute(sql).rows
    try:
        for strategy in ("hash", "merge", "indexnlj", "nlj"):
            db.set_join_strategy(strategy)
            assert db.execute(sql).rows == baseline
    finally:
        db.set_join_strategy("auto")


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.sampled_from(["a", "b", "a DESC", "b DESC"]), min_size=1,
                  max_size=2, unique=True)
)
def test_order_by_is_a_permutation(db, keys):
    base = db.execute("SELECT a, b FROM t").rows
    ordered = db.execute(f"SELECT a, b FROM t ORDER BY {', '.join(keys)}").rows
    assert sorted(map(repr, base)) == sorted(map(repr, ordered))
