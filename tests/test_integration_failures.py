"""Failure injection: how each architecture reacts when a local
function misbehaves — the error-handling axis of the paper's Sect. 2
argument for the WfMS."""

import pytest

from repro.appsys.base import ApplicationSystem, LocalFunction
from repro.core.architectures import Architecture
from repro.core.federated_function import FederatedFunction
from repro.core.mapping import FedInput, LocalCall, MappingGraph, NodeOutput, OutputSpec
from repro.core.server import IntegrationServer
from repro.errors import ActivityFailedError, ReproError
from repro.fdbs.types import INTEGER


class FlakySystem(ApplicationSystem):
    """One local function that fails a configurable number of times."""

    def __init__(self, machine=None, fail_times=0):
        self.fail_times = fail_times
        self.invocations = 0
        super().__init__("flaky", machine)

    def _populate(self, database):
        def implementation(x):
            self.invocations += 1
            if self.invocations <= self.fail_times:
                raise RuntimeError("transient backend outage")
            return x + 1

        self.register_function(
            LocalFunction(
                "Step",
                params=[("X", INTEGER)],
                returns=[("Y", INTEGER)],
                implementation=implementation,
            )
        )


def fed(retries: int) -> FederatedFunction:
    return FederatedFunction(
        name="FlakyFed",
        params=[("X", INTEGER)],
        returns=[("Y", INTEGER)],
        mapping=MappingGraph(
            nodes=[
                LocalCall(
                    "S", "flaky", "Step", {"X": FedInput("X")}, retries=retries
                )
            ],
            outputs=[OutputSpec("Y", NodeOutput("S", "Y"))],
        ),
    )


def server_with(architecture, fail_times, retries):
    flaky = {}

    def factory(machine):
        flaky["system"] = FlakySystem(machine, fail_times)
        return flaky["system"]

    server = IntegrationServer(architecture, system_factories=[factory])
    server.deploy(fed(retries))
    return server, flaky["system"]


class TestWfmsErrorHandling:
    def test_retries_recover_transparently(self):
        server, system = server_with(Architecture.WFMS, fail_times=2, retries=2)
        assert server.call("FlakyFed", 1) == [(2,)]
        assert system.invocations == 3

    def test_exhausted_retries_surface_the_failure(self):
        server, _ = server_with(Architecture.WFMS, fail_times=99, retries=1)
        with pytest.raises(ActivityFailedError):
            server.call("FlakyFed", 1)

    def test_failed_process_recorded_in_audit(self):
        server, _ = server_with(Architecture.WFMS, fail_times=99, retries=0)
        with pytest.raises(ActivityFailedError):
            server.call("FlakyFed", 1)
        events = [e.event for e in server.wfms_client.engine.audit.events]
        assert "process failed" in events


class TestUdtfArchitecturesHaveNoRetry:
    @pytest.mark.parametrize(
        "architecture",
        [
            Architecture.ENHANCED_SQL_UDTF,
            Architecture.ENHANCED_JAVA_UDTF,
            Architecture.SIMPLE_UDTF,
        ],
    )
    def test_first_failure_surfaces(self, architecture):
        # The retry policy in the mapping has nowhere to go in SQL:
        # the very first backend failure aborts the statement.
        server, system = server_with(architecture, fail_times=1, retries=5)
        with pytest.raises(ReproError):
            server.call("FlakyFed", 1)
        assert system.invocations == 1

    def test_next_statement_succeeds_after_recovery(self):
        server, system = server_with(
            Architecture.ENHANCED_SQL_UDTF, fail_times=1, retries=0
        )
        with pytest.raises(ReproError):
            server.call("FlakyFed", 1)
        assert server.call("FlakyFed", 1) == [(2,)]


class TestClockIntegrityOnFailure:
    def test_clock_keeps_advancing_after_failures(self):
        server, _ = server_with(Architecture.WFMS, fail_times=99, retries=0)
        before = server.machine.clock.now
        with pytest.raises(ActivityFailedError):
            server.call("FlakyFed", 1)
        after_failure = server.machine.clock.now
        assert after_failure > before
        assert not server.machine.clock.capturing  # capture was released
