"""Predicate pushdown to remote SQL sources (the future-work extension)."""

import pytest

from repro.fdbs import ast
from repro.fdbs.engine import Database
from repro.fdbs.federation import DatabaseEndpoint
from repro.fdbs.parser import parse_expression
from repro.fdbs.pushdown import (
    partition_predicates,
    push_predicates,
    recombine,
    referenced_qualifiers,
    split_conjuncts,
    strip_qualifiers,
)
from repro.sysmodel.machine import Machine


def make_pair(machine=None, n_rows=50):
    remote = Database("remote")
    remote.execute("CREATE TABLE orders (order_no INT PRIMARY KEY, comp_no INT, qty INT)")
    for index in range(n_rows):
        remote.execute(
            "INSERT INTO orders VALUES (?, ?, ?)",
            params=[index, index % 5, index * 10],
        )
    local = Database("local", machine=machine)
    local.execute("CREATE WRAPPER w")
    local.execute("CREATE SERVER s WRAPPER w")
    local.attach_endpoint("s", DatabaseEndpoint(remote))
    local.execute("CREATE NICKNAME n FOR s.orders")
    return local, remote


class TestHelpers:
    def test_split_conjuncts_flattens_ands(self):
        expr = parse_expression("a = 1 AND b = 2 AND c = 3")
        assert len(split_conjuncts(expr)) == 3

    def test_split_does_not_break_or(self):
        expr = parse_expression("a = 1 OR b = 2")
        assert len(split_conjuncts(expr)) == 1

    def test_recombine_round_trip(self):
        expr = parse_expression("a = 1 AND b = 2")
        conjuncts = split_conjuncts(expr)
        combined = recombine(conjuncts)
        assert sorted(c.render() for c in split_conjuncts(combined)) == sorted(
            c.render() for c in conjuncts
        )
        assert recombine([]) is None

    def test_referenced_qualifiers(self):
        assert referenced_qualifiers(parse_expression("n.x = 1")) == {"N"}
        assert referenced_qualifiers(parse_expression("n.x = m.y")) == {"N", "M"}
        assert referenced_qualifiers(parse_expression("1 = 1")) == set()

    def test_unpushable_constructs_return_none(self):
        assert referenced_qualifiers(parse_expression("x = 1")) is None  # unqualified
        assert referenced_qualifiers(parse_expression("n.x = ?")) is None
        assert referenced_qualifiers(parse_expression("UPPER(n.x) = 'A'")) is None
        assert referenced_qualifiers(parse_expression("n.x IN (SELECT 1)")) is None
        assert (
            referenced_qualifiers(parse_expression("CASE WHEN n.x = 1 THEN 1 END"))
            is None
        )

    def test_pushable_predicate_forms(self):
        for text in (
            "n.x BETWEEN 1 AND 3",
            "n.x IS NOT NULL",
            "n.x IN (1, 2, 3)",
            "n.name LIKE 'gear%'",
            "n.x + 1 > n.y * 2",
            "NOT (n.x = 1)",
        ):
            assert referenced_qualifiers(parse_expression(text)) == {"N"}

    def test_strip_qualifiers(self):
        expr = parse_expression("n.x = 1 AND n.y BETWEEN 2 AND n.z")
        assert "n." not in strip_qualifiers(expr).render()

    def test_or_across_aliases_merges_qualifiers(self):
        assert referenced_qualifiers(
            parse_expression("n.x = 1 OR m.y = 2")
        ) == {"N", "M"}

    def test_not_over_subquery_stays_local(self):
        assert (
            referenced_qualifiers(parse_expression("NOT (n.x IN (SELECT 1))"))
            is None
        )

    def test_ambiguous_column_inside_or_stays_local(self):
        # One unqualified leg poisons the whole conjunct.
        assert referenced_qualifiers(parse_expression("n.x = 1 OR y = 2")) is None

    def test_in_list_with_parameter_item_stays_local(self):
        assert referenced_qualifiers(parse_expression("n.x IN (1, ?)")) is None

    def test_strip_qualifiers_preserves_structure(self):
        for text, rendered in (
            ("NOT (n.x = 1)", "(NOT (x = 1))"),
            ("n.x IS NULL", "(x IS NULL)"),
            ("n.x IN (1, n.y)", "(x IN (1, y))"),
            ("n.a LIKE n.b", "(a LIKE b)"),
        ):
            assert strip_qualifiers(parse_expression(text)).render() == rendered


class TestPartitionPredicates:
    def test_split_is_deterministic_and_ordered(self):
        where = parse_expression(
            "n.x = 1 AND w.k = n.x AND n.y > 2 AND w.k = 9"
        )
        first = partition_predicates(where, {"N"})
        second = partition_predicates(where, {"N"})
        assert [(a, c.render()) for a, c in first[0]] == [
            (a, c.render()) for a, c in second[0]
        ]
        assert [c.render() for c in first[1]] == [c.render() for c in second[1]]
        assert [(a, c.render()) for a, c in first[0]] == [
            ("N", "(n.x = 1)"),
            ("N", "(n.y > 2)"),
        ]
        assert [c.render() for c in first[1]] == [
            "(w.k = n.x)",
            "(w.k = 9)",
        ]

    def test_none_where_yields_empty_partition(self):
        assert partition_predicates(None, {"N"}) == ([], [])

    def test_only_candidate_aliases_are_pushed(self):
        where = parse_expression("n.x = 1 AND m.y = 2")
        pushed, residual = partition_predicates(where, {"N"})
        assert [(a, c.render()) for a, c in pushed] == [("N", "(n.x = 1)")]
        assert [c.render() for c in residual] == ["(m.y = 2)"]

    def test_explain_shows_residual_conjuncts(self):
        local, _ = make_pair()
        local.execute("CREATE TABLE watch (comp_no INT)")
        local.execute("INSERT INTO watch VALUES (2)")
        text = local.explain(
            "SELECT o.order_no FROM watch AS w, n AS o "
            "WHERE o.comp_no = 2 AND w.comp_no = o.comp_no"
        )
        assert "pushed: (comp_no = 2)" in text
        assert "[residual: (w.comp_no = o.comp_no)]" in text


class TestEndToEnd:
    def test_results_identical_with_and_without_pushdown(self):
        local, _ = make_pair()
        sql = "SELECT order_no FROM n AS o WHERE o.comp_no = 2 AND o.qty > 100 ORDER BY order_no"
        with_pd = local.execute(sql).rows
        local.pushdown_enabled = False
        without_pd = local.execute(sql).rows
        assert with_pd == without_pd
        assert with_pd  # non-empty

    def test_pushed_predicates_reach_remote_sql(self):
        local, _ = make_pair()
        plan = local._planner().plan_select(
            __import__("repro.fdbs.parser", fromlist=["parse_statement"]).parse_statement(
                "SELECT o.order_no FROM n AS o WHERE o.comp_no = 2"
            )
        )
        text = plan.explain()
        assert "pushed: (comp_no = 2)" in text

    def test_pushdown_counter_increments(self):
        local, _ = make_pair()
        before = local.federation.predicates_pushed
        local.execute("SELECT o.order_no FROM n AS o WHERE o.comp_no = 2")
        assert local.federation.predicates_pushed == before + 1

    def test_mixed_conjuncts_split_between_remote_and_local(self):
        local, _ = make_pair()
        local.execute("CREATE TABLE watch (comp_no INT)")
        local.execute("INSERT INTO watch VALUES (2)")
        result = local.execute(
            "SELECT o.order_no FROM watch AS w, n AS o "
            "WHERE o.comp_no = 2 AND w.comp_no = o.comp_no AND o.qty > 400 "
            "ORDER BY o.order_no"
        )
        assert result.rows == [(42,), (47,)]

    def test_pushdown_saves_transfer_cost(self):
        machine_on = Machine()
        on, _ = make_pair(machine_on, n_rows=200)
        machine_off = Machine()
        off, _ = make_pair(machine_off, n_rows=200)
        off.pushdown_enabled = False
        sql = "SELECT o.order_no FROM n AS o WHERE o.comp_no = 0"

        def hot(db, machine):
            db.execute(sql)
            start = machine.clock.now
            db.execute(sql)
            return machine.clock.now - start

        fast = hot(on, machine_on)
        slow = hot(off, machine_off)
        # 40 rows shipped instead of 200.
        assert fast < slow
        saved = slow - fast
        assert saved == pytest.approx(
            160 * machine_on.costs.remote_row_transfer, rel=0.2
        )

    def test_no_pushdown_under_left_outer_join(self):
        local, _ = make_pair()
        local.execute("CREATE TABLE comps (comp_no INT, label VARCHAR(10))")
        local.execute("INSERT INTO comps VALUES (2, 'two'), (99, 'none')")
        # The nickname sits under an explicit join: conjunct stays local,
        # and LEFT JOIN semantics stay correct.
        result = local.execute(
            "SELECT c.label, o.order_no FROM comps AS c "
            "LEFT OUTER JOIN n AS o ON c.comp_no = o.comp_no "
            "WHERE c.label = 'none'"
        )
        assert result.rows == [("none", None)]
        assert local.federation.predicates_pushed == 0

    def test_or_predicates_are_pushed_whole(self):
        local, _ = make_pair()
        result = local.execute(
            "SELECT o.order_no FROM n AS o "
            "WHERE o.comp_no = 1 OR o.comp_no = 3 ORDER BY o.order_no"
        )
        assert all(row[0] % 5 in (1, 3) for row in result.rows)
        assert local.federation.predicates_pushed == 1
