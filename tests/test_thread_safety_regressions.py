"""Regression tests for the latent data races fixed by the lock work.

Each test hammers one shared component from many threads and asserts an
invariant the pre-lock code violates:

* the LRU pop-then-reinsert dance in :class:`StatementCache`,
  :class:`ResultCache` and :class:`WarmRuntimePool` opens a window in
  which the entry is *absent*: concurrent readers of a resident entry
  come back with misses/cold-starts (and, for :class:`ResultCache`,
  ``KeyError`` when two readers pop the same key);
* counter updates (``+=``) and the :class:`FaultInjector` fault budget
  must be conserved exactly across threads.

The LRU-window tests fail on the unlocked code within a single run on
current CPython (switches land on the call boundary between ``pop`` and
reinsert).  The pure-counter tests document invariants that unlocked
code only violates when a thread switch splits the read-modify-write —
guaranteed by nothing, so they are locked and asserted too.
"""

import sys
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.fdbs.session import StatementCache
from repro.simtime.clock import VirtualClock
from repro.sysmodel.faults import SITE_RMI_UDTF, FaultInjector, RetryPolicy
from repro.sysmodel.pool import WarmRuntimePool
from repro.sysmodel.result_cache import ResultCache
from repro.sysmodel.rmi import RmiChannel

THREADS = 8
JOIN_TIMEOUT = 60.0


def hammer(worker, threads: int = THREADS) -> None:
    """Run ``worker(thread_index)`` on N threads; barrier-aligned start
    so every thread contends, bounded join, exceptions re-raised.

    The GIL switch interval is dropped to 1µs for the duration: with
    the default 5ms interval a non-atomic ``+=`` (several bytecodes)
    almost never loses an update in a short test, which would let the
    unlocked code pass by luck.  At 1µs the pre-lock races fire
    reliably within one run.
    """
    barrier = threading.Barrier(threads)

    def task(index: int):
        barrier.wait(timeout=JOIN_TIMEOUT)
        return worker(index)

    previous_interval = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        with ThreadPoolExecutor(max_workers=threads) as executor:
            futures = [executor.submit(task, i) for i in range(threads)]
            for future in futures:
                future.result(timeout=JOIN_TIMEOUT)
    finally:
        sys.setswitchinterval(previous_interval)


class TestStatementCacheRaces:
    def test_hit_counter_conserved(self):
        """Every one of N*M gets of a resident entry must count as a hit."""
        cache = StatementCache()
        cache.put("SELECT 1", object())
        rounds = 3000

        hammer(lambda i: [cache.get("SELECT 1") for _ in range(rounds)])

        assert cache.stats()["hits"] == THREADS * rounds

    def test_lru_refresh_race_free(self):
        """Concurrent MRU refreshes of shared keys must not corrupt the
        LRU dict (unlocked pop/reinsert raises KeyError) nor lose gets."""
        cache = StatementCache(capacity=4)
        keys = [f"SELECT {n}" for n in range(4)]
        for key in keys:
            cache.put(key, key)
        rounds = 2000

        def worker(index: int):
            for step in range(rounds):
                assert cache.get(keys[(index + step) % len(keys)]) is not None

        hammer(worker)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == THREADS * rounds
        assert stats["misses"] == 0

    def test_concurrent_put_respects_capacity(self):
        cache = StatementCache(capacity=8)
        rounds = 500

        def worker(index: int):
            for step in range(rounds):
                cache.put(f"SELECT {index} /* {step % 16} */", step)

        hammer(worker)
        assert len(cache) <= 8


class TestWarmRuntimePoolRaces:
    def test_resident_runtime_always_warm(self):
        """Acquiring a resident runtime must always be a warm hit.

        The unlocked LRU refresh pops the slot and reinserts it; a
        thread landing in that gap sees the runtime as cold and charges
        a spurious start — this test catches exactly that (cold_starts
        stays at the single priming start).
        """
        pool = WarmRuntimePool(capacity=4, enabled=True)
        assert pool.acquire("audtf:hot") is False  # the priming cold start
        rounds = 4000

        hammer(lambda i: [pool.acquire("audtf:hot") for _ in range(rounds)])
        stats = pool.stats()
        assert stats["warm_hits"] == THREADS * rounds
        assert stats["cold_starts"] == 1

    def test_acquire_counters_conserved(self):
        """warm_hits + cold_starts must equal the number of acquires."""
        pool = WarmRuntimePool(capacity=4, enabled=True)
        rounds = 2000

        def worker(index: int):
            for step in range(rounds):
                pool.acquire(f"audtf:fn{(index + step) % 4}")

        hammer(worker)
        stats = pool.stats()
        assert stats["warm_hits"] + stats["cold_starts"] == THREADS * rounds
        assert stats["size"] <= 4

    def test_lru_refresh_with_concurrent_eviction(self):
        """Hot keys refreshed while others force evictions: no KeyError,
        no counter loss."""
        pool = WarmRuntimePool(capacity=2, enabled=True)
        rounds = 1500

        def worker(index: int):
            for step in range(rounds):
                if index % 2:
                    pool.acquire("audtf:hot")
                else:
                    pool.acquire(f"audtf:cold{step % 8}")

        hammer(worker)
        stats = pool.stats()
        assert stats["warm_hits"] + stats["cold_starts"] == THREADS * rounds


class TestResultCacheRaces:
    def test_get_put_counters_conserved(self):
        cache = ResultCache(enabled=True, capacity=16)
        cache.put("ns", "fn", (1,), [(1, "a")])
        rounds = 2000

        def worker(index: int):
            for _ in range(rounds):
                rows = cache.get("ns", "fn", (1,))
                assert rows == [(1, "a")]

        hammer(worker)
        stats = cache.stats()
        assert stats["hits"] == THREADS * rounds
        assert stats["misses"] == 0

    def test_concurrent_invalidation_and_reads(self):
        """Readers racing invalidate_owner must never see torn entries."""
        cache = ResultCache(enabled=True, capacity=16)
        rounds = 1000

        def worker(index: int):
            for step in range(rounds):
                if index == 0:
                    cache.put("ns", "fn", (step,), [(step,)], owner="STOCK")
                elif index == 1:
                    cache.invalidate_owner("STOCK")
                else:
                    rows = cache.get("ns", "fn", (step % 7,))
                    assert rows is None or rows == [(step % 7,)]

        hammer(worker)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] >= 1


class TestFaultInjectorRaces:
    def test_count_budget_never_overspent(self):
        """A count-limited site must fire exactly ``count`` times, no
        matter how many threads race the budget check."""
        injector = FaultInjector(enabled=True)
        injector.arm(SITE_RMI_UDTF, probability=1.0, count=100)
        fired_per_thread = [0] * THREADS
        rounds = 500

        def worker(index: int):
            for _ in range(rounds):
                if injector.should_fail(SITE_RMI_UDTF):
                    fired_per_thread[index] += 1

        hammer(worker)
        assert sum(fired_per_thread) == 100
        assert injector.injected(SITE_RMI_UDTF) == 100

    def test_retry_counter_conserved(self):
        policy = RetryPolicy()
        policy.configure(active=True, max_attempts=5)
        rounds = 3000

        hammer(lambda i: [policy.note_retry() for _ in range(rounds)])
        assert policy.stats()["retries"] == THREADS * rounds


class TestVirtualClockRaces:
    def test_advances_never_lost(self):
        """N threads advancing by 1.0 M times each must land exactly on
        N*M — a lost read-modify-write shows up as a shortfall."""
        clock = VirtualClock()
        rounds = 5000

        hammer(lambda i: [clock.advance(1.0) for _ in range(rounds)])
        assert clock.now == float(THREADS * rounds)


class TestRmiChannelRaces:
    def test_call_count_conserved(self):
        clock = VirtualClock()
        channel = RmiChannel("test", clock, call_cost=0.0, return_cost=0.0)
        channel.configure(persistent=True)
        rounds = 1500

        hammer(lambda i: [channel.invoke(lambda: None) for _ in range(rounds)])
        stats = channel.stats()
        assert stats["calls"] == THREADS * rounds
        # At most one cold hop per thread can race the established flag;
        # every later hop must observe the persistent connection.
        assert stats["warm_calls"] >= THREADS * rounds - THREADS
        assert stats["established"] == 1
