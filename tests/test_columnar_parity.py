"""Columnar execution parity: bit-identical rows *and* simulated times.

Columnar mode changes only how often Python dispatches — storage column
chunks, zone-map pruning and column-at-a-time operators must never
change result rows, their order, or the simulated cost accounting,
across every architecture and both optimizer modes.  Edge cases cover
all-NULL chunks, empty tables, tombstoned slots after a COW arena
rebuild, stats-less columns, snapshots pinned against an old arena, the
zone-map ablation toggle and non-default chunk sizes.
"""

import pytest

from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario
from repro.fdbs.engine import Database

ARCHITECTURES = [
    Architecture.WFMS,
    Architecture.SIMPLE_UDTF,
    Architecture.ENHANCED_SQL_UDTF,
    Architecture.ENHANCED_JAVA_UDTF,
]

MODES = ("row", "batch", "columnar")

WATCH_SUPPLIERS = [1234, 5001, 1234, 5002, 5001, 5003, 1234, 5004, 5002, 1234]

FEDERATED_QUERY = (
    "SELECT w.pk, w.supplier_no, q.Qual "
    "FROM watch AS w, TABLE (GetQuality(w.supplier_no)) AS q "
    "ORDER BY w.pk"
)

LOCAL_QUERY = (
    "SELECT w.supplier_no, COUNT(*) FROM watch AS w "
    "WHERE w.pk >= 2 AND w.pk <= 8 "
    "GROUP BY w.supplier_no ORDER BY w.supplier_no"
)


def prepare(architecture, optimizer="syntactic", runstats=True):
    """A scenario FDBS with a local ``watch`` table over supplier numbers."""
    scenario = build_scenario(architecture, optimizer=optimizer)
    fdbs = scenario.server.fdbs
    fdbs.execute("CREATE TABLE watch (pk INT PRIMARY KEY, supplier_no INT)")
    for pk, supplier_no in enumerate(WATCH_SUPPLIERS):
        fdbs.execute("INSERT INTO watch VALUES (?, ?)", params=[pk, supplier_no])
    if runstats:
        fdbs.execute("RUNSTATS watch")
    return scenario


def plain_db(mode="columnar", chunk_size=None):
    """A machine-less database with a small mixed-type table."""
    db = Database("parity", execution_mode=mode, chunk_size=chunk_size)
    db.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, v DOUBLE, s CHAR(6), flag INT)"
    )
    return db


class TestScenarioParity:
    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    @pytest.mark.parametrize("optimizer", ["syntactic", "cost"])
    def test_rows_and_time_identical_across_modes(self, architecture, optimizer):
        outcomes = {}
        for mode in MODES:
            scenario = prepare(architecture, optimizer=optimizer)
            fdbs = scenario.server.fdbs
            fdbs.set_execution_mode(mode)
            fdbs.execute(FEDERATED_QUERY)  # same warm-up on every side
            rows, elapsed = scenario.server.elapsed(fdbs.execute, FEDERATED_QUERY)
            outcomes[mode] = (rows.rows, elapsed)
        assert outcomes["columnar"] == outcomes["row"]
        assert outcomes["columnar"] == outcomes["batch"]
        assert len(outcomes["row"][0]) == len(WATCH_SUPPLIERS)

    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    def test_local_pruning_query_identical(self, architecture):
        outcomes = {}
        for mode in MODES:
            scenario = prepare(architecture)
            fdbs = scenario.server.fdbs
            fdbs.set_execution_mode(mode)
            fdbs.execute(LOCAL_QUERY)
            rows, elapsed = scenario.server.elapsed(fdbs.execute, LOCAL_QUERY)
            outcomes[mode] = (rows.rows, elapsed)
        assert outcomes["columnar"] == outcomes["row"]
        assert outcomes["columnar"] == outcomes["batch"]


def fill(db, rows):
    for row in rows:
        db.execute("INSERT INTO t VALUES (?, ?, ?, ?)", params=list(row))


def all_modes(rows, queries, chunk_size=None, mutate=None):
    """Execute ``queries`` in every mode (fresh db each) and compare."""
    results = {}
    for mode in MODES:
        db = plain_db(mode, chunk_size=chunk_size)
        fill(db, rows)
        if mutate is not None:
            mutate(db)
        results[mode] = [db.execute(q).rows for q in queries]
    assert results["columnar"] == results["row"], "columnar vs row rows differ"
    assert results["batch"] == results["row"], "batch vs row rows differ"
    return results["row"]


class TestEdgeCases:
    def test_empty_table(self):
        all_modes(
            [],
            [
                "SELECT * FROM t WHERE id > 5",
                "SELECT COUNT(*), SUM(v) FROM t",
                "SELECT s, COUNT(*) FROM t GROUP BY s",
            ],
        )

    def test_all_null_chunks(self):
        rows = [(i, None, None, None) for i in range(20)]
        baseline = all_modes(
            rows,
            [
                "SELECT id FROM t WHERE v > 1.0",
                "SELECT id FROM t WHERE v IS NULL ORDER BY id",
                "SELECT COUNT(*), COUNT(v), SUM(v) FROM t",
            ],
            chunk_size=4,
        )
        assert baseline[0] == []  # NULL comparisons never match
        assert len(baseline[1]) == 20

    def test_tombstones_after_cow_rebuild(self):
        rows = [(i, float(i), "s%d" % (i % 3), i % 2) for i in range(50)]

        def mutate(db):
            db.execute("DELETE FROM t WHERE id >= 10 AND id < 20")
            db.execute("UPDATE t SET v = 999.0 WHERE id = 30")

        all_modes(
            rows,
            [
                "SELECT id, v FROM t WHERE id BETWEEN 5 AND 35 ORDER BY id",
                "SELECT COUNT(*), SUM(v) FROM t WHERE v >= 100.0",
                "SELECT s, COUNT(*) FROM t GROUP BY s ORDER BY s",
            ],
            chunk_size=8,
            mutate=mutate,
        )

    def test_stats_less_columns_keep_chunks(self):
        # CHAR and mixed-NULL columns never carry value zone checks;
        # predicates on them must still filter correctly.
        rows = [(i, float(i), "k%d" % (i % 4), None) for i in range(30)]
        all_modes(
            rows,
            [
                "SELECT id FROM t WHERE s = 'k1' ORDER BY id",
                "SELECT id FROM t WHERE flag IS NULL AND id < 10 ORDER BY id",
                "SELECT id FROM t WHERE flag IS NOT NULL",
            ],
            chunk_size=7,
        )

    def test_pinned_snapshot_sees_old_arena(self):
        db = plain_db("columnar", chunk_size=4)
        fill(db, [(i, float(i), "x", 0) for i in range(20)])
        snapshot = db.pin_snapshot()
        db.execute("DELETE FROM t WHERE id >= 10")
        db.execute("UPDATE t SET v = -1.0 WHERE id = 0")
        old = db.execute(
            "SELECT id, v FROM t WHERE id >= 0 ORDER BY id", snapshot=snapshot
        )
        assert old.rows == [(i, float(i)) for i in range(20)]
        new = db.execute("SELECT id, v FROM t WHERE id >= 0 ORDER BY id")
        assert new.rows == [(0, -1.0)] + [(i, float(i)) for i in range(1, 10)]

    def test_zone_maps_off_identical_rows(self):
        db = plain_db("columnar", chunk_size=4)
        fill(db, [(i, float(i % 5), "c%d" % (i % 2), i) for i in range(40)])
        query = "SELECT id, v FROM t WHERE id BETWEEN 8 AND 12 ORDER BY id"
        with_maps = db.execute(query).rows
        stats_before = db.columnar_stats()
        assert stats_before["chunks_pruned"] > 0
        db.set_zone_maps(False)
        assert db.execute(query).rows == with_maps
        db.set_zone_maps(True)
        assert db.execute(query).rows == with_maps

    @pytest.mark.parametrize("chunk_size", [1, 3, 1024])
    def test_chunk_sizes(self, chunk_size):
        rows = [(i, float(i), "s%d" % (i % 3), i % 2) for i in range(25)]
        all_modes(
            rows,
            [
                "SELECT id, v, s FROM t WHERE id > 10 AND v < 20.0 ORDER BY id",
                "SELECT flag, COUNT(*), SUM(v) FROM t GROUP BY flag ORDER BY flag",
            ],
            chunk_size=chunk_size,
        )

    def test_set_chunk_size_validation(self):
        from repro.errors import ExecutionError

        db = plain_db("columnar")
        for bad in (0, -5, True, "16", 2**21):
            with pytest.raises(ExecutionError):
                db.set_chunk_size(bad)
        db.set_chunk_size(16)
        assert db.chunk_size == 16
        assert db.catalog.get_table("t").storage.chunk_size == 16


class TestCounters:
    def test_counters_and_explain_suffix(self):
        db = plain_db("columnar", chunk_size=4)
        fill(db, [(i, float(i), "x", 0) for i in range(40)])
        db.execute("SELECT COUNT(*) FROM t WHERE id BETWEEN 0 AND 3")
        stats = db.columnar_stats()
        assert stats["chunks_pruned"] > 0
        assert stats["chunks_scanned"] > 0
        assert stats["chunks_sealed"] > 0
        plan = db.execute(
            "EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE id BETWEEN 0 AND 3"
        )
        text = "\n".join(line for (line,) in plan.rows)
        assert "pruned=" in text
        assert "zone:" in text

    def test_syscat_exposes_columnar_component(self):
        db = plain_db("columnar")
        rows = db.execute(
            "SELECT counter FROM SYSCAT_RUNTIME_STATS "
            "WHERE component = 'columnar'"
        ).rows
        counters = {counter for (counter,) in rows}
        assert {"chunks_scanned", "chunks_pruned", "zone_map_rebuilds"} <= counters

    def test_rebuild_counter_after_cow(self):
        db = plain_db("columnar", chunk_size=4)
        fill(db, [(i, float(i), "x", 0) for i in range(16)])
        db.execute("SELECT COUNT(*) FROM t WHERE id > 0")  # seal chunks
        db.execute("UPDATE t SET v = 0.0 WHERE id = 3")  # COW rebuild
        db.execute("SELECT COUNT(*) FROM t WHERE id > 0")  # reseal
        assert db.columnar_stats()["zone_map_rebuilds"] >= 1
