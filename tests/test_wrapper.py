"""Coupling layer: MED registry, fenced runtime costs, WfMS wrapper."""

import pytest

from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario
from repro.errors import CatalogError, FencedModeError, WorkflowError
from repro.fdbs.catalog import ColumnDef, FunctionParam
from repro.fdbs.engine import Database
from repro.fdbs.types import INTEGER
from repro.simtime.costs import DEFAULT_COSTS
from repro.simtime.trace import TraceRecorder
from repro.wrapper.med import ForeignFunctionMapping, MedRegistry
from repro.wrapper.udtf_runtime import FencedUdtfContext


class TestMedRegistry:
    class EchoWrapper:
        def invoke_foreign(self, function_name, args, trace=None):
            return [(function_name, *args)]

    def make(self):
        registry = MedRegistry()
        registry.create_wrapper("W", "test wrapper")
        registry.create_server("S", "W", self.EchoWrapper())
        registry.create_function_mapping(
            ForeignFunctionMapping(
                "F", [FunctionParam("x", INTEGER)], [ColumnDef("y", INTEGER)], "S"
            )
        )
        return registry

    def test_invoke_routes_to_server_handler(self):
        registry = self.make()
        assert registry.invoke("f", [1]) == [("f", 1)]

    def test_duplicate_wrapper_rejected(self):
        registry = self.make()
        with pytest.raises(CatalogError):
            registry.create_wrapper("w")

    def test_server_requires_wrapper(self):
        with pytest.raises(CatalogError):
            MedRegistry().create_server("S", "missing", self.EchoWrapper())

    def test_mapping_requires_server(self):
        registry = self.make()
        with pytest.raises(CatalogError):
            registry.create_function_mapping(
                ForeignFunctionMapping("G", [], [], "missing")
            )

    def test_unmapped_function_rejected(self):
        with pytest.raises(CatalogError):
            self.make().invoke("ghost", [])


class TestFencedContext:
    def test_in_process_connection_rejected(self):
        context = FencedUdtfContext(Database("x"))
        with pytest.raises(FencedModeError):
            context.connect_in_process()


class TestFencedRuntimeCosts:
    """The Fig. 6 cost structure, asserted per invocation path."""

    def test_access_udtf_charges_full_fenced_path(self, data):
        scenario = build_scenario(Architecture.ENHANCED_SQL_UDTF, data=data)
        server = scenario.server
        server.fdbs.execute("SELECT * FROM TABLE (GetQuality(1234)) AS GQ")
        start = server.machine.clock.now
        server.fdbs.execute("SELECT * FROM TABLE (GetQuality(1234)) AS GQ")
        elapsed = server.machine.clock.now - start
        floor = (
            DEFAULT_COSTS.udtf_prepare_access
            + DEFAULT_COSTS.rmi_call
            + DEFAULT_COSTS.controller_dispatch
            + DEFAULT_COSTS.local_function_base
            + DEFAULT_COSTS.udtf_finish_access
            + DEFAULT_COSTS.rmi_return
        )
        assert elapsed >= floor

    def test_disabled_controller_skips_rmi(self, data):
        with_controller = build_scenario(Architecture.ENHANCED_SQL_UDTF, data=data)
        without = build_scenario(
            Architecture.ENHANCED_SQL_UDTF, data=data, controller_enabled=False
        )

        def hot_time(scenario):
            sql = "SELECT * FROM TABLE (GetQuality(1234)) AS GQ"
            scenario.server.fdbs.execute(sql)
            start = scenario.server.machine.clock.now
            scenario.server.fdbs.execute(sql)
            return scenario.server.machine.clock.now - start

        saved = hot_time(with_controller) - hot_time(without)
        expected = (
            DEFAULT_COSTS.rmi_call
            + DEFAULT_COSTS.rmi_return
            + DEFAULT_COSTS.controller_dispatch
        )
        assert saved == pytest.approx(expected, abs=0.01)

    def test_trace_labels_cover_the_whole_call(self, data):
        scenario = build_scenario(Architecture.ENHANCED_SQL_UDTF, data=data)
        scenario.call("GetSuppQual", "ACME Industrial")
        trace = TraceRecorder(scenario.server.machine.clock)
        with trace.span("TOTAL"):
            scenario.call("GetSuppQual", "ACME Industrial", trace=trace)
        names = set(trace.totals_by_name())
        assert {
            "Start I-UDTF",
            "Prepare A-UDTFs",
            "RMI calls",
            "controller runs",
            "Process activities",
            "Finish A-UDTFs",
            "RMI returns",
            "Finish I-UDTF",
        } <= names


class TestWfmsWrapper:
    def test_registers_connecting_udtf(self, wfms_scenario):
        function = wfms_scenario.server.fdbs.catalog.get_function("BuySuppComp")
        assert function.language == "WFMS"
        assert function.external_name == "wfms:BuySuppComp"

    def test_invoke_foreign_bypasses_sql(self, wfms_scenario):
        rows = wfms_scenario.server.wfms_wrapper.invoke_foreign(
            "BuySuppComp", [1234, "gearbox"]
        )
        assert rows == [("BUY",)]

    def test_invoke_foreign_rejects_non_wfms_functions(self, wfms_scenario):
        with pytest.raises(WorkflowError):
            wfms_scenario.server.wfms_wrapper.invoke_foreign("GetQuality", [1234])

    def test_signature_mismatch_rejected(self, data):
        from repro.wfms.builder import ProcessBuilder

        scenario = build_scenario(Architecture.WFMS, data=data)
        b = ProcessBuilder("Tiny", [("X", INTEGER)], [("Y", INTEGER)])
        b.program_activity(
            "A", "pdm.GetCompName", [("CompNo", INTEGER)], [("CompName", INTEGER)],
            {"CompNo": b.from_input("X")},
        )
        b.map_output("Y", b.from_input("X"))
        with pytest.raises(WorkflowError, match="parameter list"):
            scenario.server.wfms_wrapper.register_federated_function(
                b.build(), params=[], returns=[("Y", INTEGER)]
            )

    def test_wfms_trace_labels(self, data):
        scenario = build_scenario(Architecture.WFMS, data=data)
        scenario.call("GetSuppQual", "ACME Industrial")
        trace = TraceRecorder(scenario.server.machine.clock)
        with trace.span("TOTAL"):
            scenario.call("GetSuppQual", "ACME Industrial", trace=trace)
        names = set(trace.totals_by_name())
        assert {
            "Start UDTF",
            "Process UDTF",
            "RMI call",
            "Controller",
            "Start workflows and Java environment",
            "Process activities",
            "Workflow",
            "RMI return",
            "Finish UDTF",
        } <= names

    def test_disabled_controller_skips_brokerage(self, data):
        with_controller = build_scenario(Architecture.WFMS, data=data)
        without = build_scenario(
            Architecture.WFMS, data=data, controller_enabled=False
        )

        def hot_time(scenario):
            scenario.call("GetSuppQual", "ACME Industrial")
            start = scenario.server.machine.clock.now
            scenario.call("GetSuppQual", "ACME Industrial")
            return scenario.server.machine.clock.now - start

        saved = hot_time(with_controller) - hot_time(without)
        expected = (
            DEFAULT_COSTS.wf_rmi_call
            + DEFAULT_COSTS.wf_rmi_return
            + DEFAULT_COSTS.controller_wfms_brokerage
        )
        assert saved == pytest.approx(expected, abs=0.01)
