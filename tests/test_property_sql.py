"""Property-based tests for the SQL layer (hypothesis)."""

import re

from hypothesis import given, settings, strategies as st

from repro.fdbs import ast
from repro.fdbs.expr import like_to_regex
from repro.fdbs.lexer import KEYWORDS, TokenType, tokenize
from repro.fdbs.parser import parse_expression, parse_statement
from repro.fdbs.types import (
    BIGINT,
    DOUBLE,
    INTEGER,
    SMALLINT,
    VARCHAR,
    cast_value,
    common_supertype,
    implicitly_castable,
    infer_type,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s.upper() not in KEYWORDS
)

safe_strings = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=12
)

literals = st.one_of(
    st.integers(min_value=0, max_value=10**9).map(ast.Literal),
    safe_strings.map(ast.Literal),
    st.just(ast.Literal(None)),
    st.booleans().map(ast.Literal),
)

column_refs = st.builds(
    ast.ColumnRef,
    st.one_of(st.none(), identifiers),
    identifiers,
)


def expressions(depth=2):
    if depth == 0:
        return st.one_of(literals, column_refs)
    sub = expressions(depth - 1)
    return st.one_of(
        literals,
        column_refs,
        st.builds(
            ast.BinaryOp,
            st.sampled_from(["+", "-", "*", "=", "<>", "<", "<=", ">", ">=", "||"]),
            sub,
            sub,
        ),
        st.builds(ast.UnaryOp, st.just("NOT"), sub),
        st.builds(ast.IsNull, sub, st.booleans()),
        st.builds(
            ast.InList, sub, st.lists(sub, min_size=1, max_size=3), st.booleans()
        ),
        st.builds(ast.Between, sub, sub, sub, st.booleans()),
        st.builds(
            ast.FunctionCall,
            st.sampled_from(["UPPER", "LOWER", "ABS", "COALESCE"]),
            st.lists(sub, min_size=1, max_size=2),
        ),
        st.builds(
            ast.Case,
            st.none(),
            st.lists(st.builds(ast.CaseWhen, sub, sub), min_size=1, max_size=2),
            st.one_of(st.none(), sub),
        ),
    )


# ---------------------------------------------------------------------------
# Lexer properties
# ---------------------------------------------------------------------------


@given(safe_strings)
def test_string_literal_lexes_back_to_itself(text):
    escaped = "'" + text.replace("'", "''") + "'"
    tokens = tokenize(escaped)
    assert tokens[0].type is TokenType.STRING
    assert tokens[0].value == text


@given(st.integers(min_value=0, max_value=10**15))
def test_integer_literal_lexes_back_to_itself(value):
    tokens = tokenize(str(value))
    assert tokens[0].type is TokenType.NUMBER
    assert int(tokens[0].value) == value


@given(identifiers)
def test_identifier_lexes_back_to_itself(name):
    tokens = tokenize(name)
    assert tokens[0].type is TokenType.IDENTIFIER
    assert tokens[0].value == name


@given(st.lists(identifiers, min_size=1, max_size=6))
def test_token_count_matches_word_count(names):
    tokens = tokenize(" ".join(names))
    assert len(tokens) == len(names) + 1  # + EOF


# ---------------------------------------------------------------------------
# Parser round-trip properties
# ---------------------------------------------------------------------------


@settings(max_examples=200)
@given(expressions())
def test_expression_render_parse_round_trip(expr):
    rendered = expr.render()
    reparsed = parse_expression(rendered)
    assert reparsed == expr


@settings(max_examples=100)
@given(
    st.lists(identifiers, min_size=1, max_size=4, unique_by=lambda s: s.upper()),
    identifiers,
)
def test_select_render_parse_round_trip(columns, table):
    select = ast.Select(
        items=[ast.SelectItem(ast.ColumnRef(None, c)) for c in columns],
        from_items=[ast.TableRef(table, None)],
    )
    rendered = select.render()
    reparsed = parse_statement(rendered)
    assert reparsed.render() == rendered


# ---------------------------------------------------------------------------
# Type-system properties
# ---------------------------------------------------------------------------

NUMERIC_TYPES = [SMALLINT, INTEGER, BIGINT, DOUBLE]


@given(st.sampled_from(NUMERIC_TYPES), st.sampled_from(NUMERIC_TYPES), st.sampled_from(NUMERIC_TYPES))
def test_implicit_cast_is_transitive(a, b, c):
    if implicitly_castable(a, b) and implicitly_castable(b, c):
        assert implicitly_castable(a, c)


@given(st.sampled_from(NUMERIC_TYPES), st.sampled_from(NUMERIC_TYPES))
def test_common_supertype_commutative_and_absorbing(a, b):
    super_ab = common_supertype(a, b)
    assert super_ab == common_supertype(b, a)
    assert implicitly_castable(a, super_ab)
    assert implicitly_castable(b, super_ab)


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_int_round_trips_through_varchar(value):
    text = cast_value(value, INTEGER, VARCHAR(20))
    back = cast_value(text, VARCHAR(20), INTEGER)
    assert back == value


@given(st.integers(min_value=-(2**15), max_value=2**15 - 1))
def test_promotion_preserves_value(value):
    assert cast_value(value, SMALLINT, BIGINT) == value
    assert cast_value(value, SMALLINT, DOUBLE) == float(value)


@given(st.one_of(st.integers(max_value=10**18, min_value=-(10**18)), st.floats(allow_nan=False, allow_infinity=False), st.text(max_size=5, min_size=1), st.booleans()))
def test_infer_type_accepts_its_own_value(value):
    inferred = infer_type(value)
    from repro.fdbs.types import python_value_matches

    assert python_value_matches(value, inferred)


# ---------------------------------------------------------------------------
# LIKE semantics
# ---------------------------------------------------------------------------


def naive_like(value: str, pattern: str) -> bool:
    """Reference implementation via dynamic programming."""
    regex = ""
    for ch in pattern:
        if ch == "%":
            regex += ".*"
        elif ch == "_":
            regex += "."
        else:
            regex += re.escape(ch)
    return re.fullmatch(regex, value, re.DOTALL) is not None


@given(safe_strings, st.text(alphabet="ab%_", max_size=8))
def test_like_matches_reference(value, pattern):
    assert bool(like_to_regex(pattern).match(value)) == naive_like(value, pattern)


@given(safe_strings)
def test_like_percent_matches_everything(value):
    assert like_to_regex("%").match(value)


@given(safe_strings.filter(lambda s: s))
def test_like_exact_pattern_matches_only_itself(value):
    regex = like_to_regex(value.replace("%", "").replace("_", "") or "x")
    target = value.replace("%", "").replace("_", "") or "x"
    assert regex.match(target)
