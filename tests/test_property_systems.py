"""Property-based tests for the storage, clock, mapping classifier,
workflow scheduler and FDL round trip (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.mapping import (
    FedInput,
    LocalCall,
    MappingGraph,
    NodeOutput,
    OutputSpec,
    classify,
)
from repro.fdbs.catalog import ColumnDef
from repro.fdbs.storage import Table, UndoLog
from repro.fdbs.types import INTEGER, VARCHAR
from repro.simtime.clock import VirtualClock
from repro.simtime.costs import DEFAULT_COSTS
from repro.sysmodel.machine import Machine
from repro.wfms.builder import ProcessBuilder
from repro.wfms.engine import WorkflowEngine
from repro.wfms.fdl import parse_fdl, to_fdl
from repro.wfms.programs import ProgramRegistry

# ---------------------------------------------------------------------------
# Virtual clock
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
def test_clock_advance_sums_exactly(deltas):
    clock = VirtualClock()
    for delta in deltas:
        clock.advance(delta)
    assert clock.now == sum(deltas)


@given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
def test_clock_is_monotone(deltas):
    clock = VirtualClock()
    previous = clock.now
    for delta in deltas:
        clock.advance(delta)
        assert clock.now >= previous
        previous = clock.now


@given(
    st.lists(st.floats(min_value=0, max_value=1e3), max_size=20),
    st.lists(st.floats(min_value=0, max_value=1e3), max_size=20),
)
def test_capture_collects_only_captured_advances(before, inside):
    clock = VirtualClock()
    for delta in before:
        clock.advance(delta)
    with clock.capture() as captured:
        for delta in inside:
            clock.advance(delta)
    assert captured.total == sum(inside)
    assert clock.now == sum(before)


# ---------------------------------------------------------------------------
# Storage vs. model
# ---------------------------------------------------------------------------

ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 9), st.integers(0, 100)),
        st.tuples(st.just("delete"), st.integers(0, 9), st.just(0)),
        st.tuples(st.just("update"), st.integers(0, 9), st.integers(0, 100)),
    ),
    max_size=40,
)


@settings(max_examples=100)
@given(ops)
def test_storage_agrees_with_dict_model(operations):
    table = Table(
        "t",
        [ColumnDef("k", INTEGER, not_null=True), ColumnDef("v", INTEGER)],
        ("k",),
    )
    model: dict[int, int] = {}
    rid_of: dict[int, int] = {}
    for op, key, value in operations:
        if op == "insert":
            if key in model:
                continue
            rid_of[key] = table.insert((key, value))
            model[key] = value
        elif op == "delete":
            if key not in model:
                continue
            table.delete_rid(rid_of.pop(key))
            del model[key]
        else:  # update
            if key not in model:
                continue
            table.update_rid(rid_of[key], (key, value))
            model[key] = value
    assert sorted(table.rows()) == sorted(model.items())
    for key, value in model.items():
        assert table.lookup_pk((key,)) == (key, value)


@settings(max_examples=100)
@given(ops, ops)
def test_undo_restores_pre_transaction_state(committed, uncommitted):
    table = Table(
        "t",
        [ColumnDef("k", INTEGER, not_null=True), ColumnDef("v", INTEGER)],
        ("k",),
    )
    rid_of: dict[int, int] = {}

    def apply(operations, undo):
        for op, key, value in operations:
            exists = table.lookup_pk((key,)) is not None
            if op == "insert" and not exists:
                rid_of[key] = table.insert((key, value), undo=undo)
            elif op == "delete" and exists:
                table.delete_rid(rid_of[key], undo=undo)
            elif op == "update" and exists:
                table.update_rid(rid_of[key], (key, value), undo=undo)

    apply(committed, None)
    snapshot = sorted(table.rows())
    undo = UndoLog()
    apply(uncommitted, undo)
    undo.rollback()
    assert sorted(table.rows()) == snapshot


# ---------------------------------------------------------------------------
# Mapping classification
# ---------------------------------------------------------------------------


def graph_from_edges(n, edges):
    nodes = []
    for index in range(n):
        args = {}
        incoming = [s for s, t in edges if t == index]
        for position, source in enumerate(incoming):
            args[f"p{position}"] = NodeOutput(f"N{source}", "X")
        if not incoming:
            args["p0"] = FedInput("X")
        nodes.append(LocalCall(f"N{index}", "sys", "Fn", args))
    return MappingGraph(
        nodes=nodes, outputs=[OutputSpec("O", NodeOutput(f"N{n-1}", "X"))]
    )


dags = st.integers(min_value=1, max_value=5).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] < e[1]
            ),
            unique=True,
            max_size=6,
        ),
    )
)


@settings(max_examples=150)
@given(dags, st.randoms())
def test_classification_invariant_under_node_order(dag, rng):
    n, edges = dag
    graph = graph_from_edges(n, edges)
    baseline = classify(graph)
    shuffled = list(graph.nodes)
    rng.shuffle(shuffled)
    permuted = MappingGraph(nodes=shuffled, outputs=list(graph.outputs))
    assert classify(permuted) == baseline


@settings(max_examples=150)
@given(dags)
def test_classification_always_produces_a_case(dag):
    n, edges = dag
    assert classify(graph_from_edges(n, edges)) is not None


# ---------------------------------------------------------------------------
# Workflow scheduling: critical path <= makespan <= serial sum
# ---------------------------------------------------------------------------


def build_process(n, edges):
    builder = ProcessBuilder("G", [("X", INTEGER)], [("Y", INTEGER)])
    for index in range(n):
        builder.program_activity(
            f"A{index}", "noop", [("X", INTEGER)], [("Y", INTEGER)],
            {"X": builder.from_input("X")},
        )
    for source, target in edges:
        builder.connect(f"A{source}", f"A{target}")
    builder.map_output("Y", builder.from_activity(f"A{n-1}", "Y"))
    return builder.build()


def critical_path_length(n, edges):
    depth = [1] * n
    for source, target in sorted(edges, key=lambda e: e[1]):
        depth[target] = max(depth[target], depth[source] + 1)
    return max(depth)


@settings(max_examples=60, deadline=None)
@given(dags)
def test_makespan_bounded_by_critical_path_and_serial_sum(dag):
    n, edges = dag
    machine = Machine()
    registry = ProgramRegistry()
    registry.register_program("noop", lambda inp: {"Y": 1})
    engine = WorkflowEngine(registry, machine)
    process = build_process(n, edges)

    start = machine.clock.now
    engine.run_process(process, {"X": 1})
    elapsed = machine.clock.now - start

    per_activity = DEFAULT_COSTS.wf_activity_jvm + DEFAULT_COSTS.wf_activity_container
    nav = n * DEFAULT_COSTS.wf_navigation
    critical = critical_path_length(n, edges) * per_activity
    serial = n * per_activity
    assert elapsed >= nav + critical - 1e-6
    assert elapsed <= nav + serial + 1e-6


@settings(max_examples=60, deadline=None)
@given(dags)
def test_activity_starts_respect_precedence(dag):
    n, edges = dag
    machine = Machine()
    registry = ProgramRegistry()
    registry.register_program("noop", lambda inp: {"Y": 1})
    engine = WorkflowEngine(registry, machine)
    instance = engine.run_process(build_process(n, edges), {"X": 1})
    for source, target in edges:
        pred = instance.activity(f"A{source}")
        succ = instance.activity(f"A{target}")
        assert succ.start_time >= pred.finish_time - 1e-9


# ---------------------------------------------------------------------------
# FDL round trip over generated processes
# ---------------------------------------------------------------------------


@settings(max_examples=60)
@given(dags)
def test_fdl_round_trip_preserves_structure(dag):
    n, edges = dag
    process = build_process(n, edges)
    reparsed = parse_fdl(to_fdl(process))["G"]
    assert [a.name for a in reparsed.activities] == [
        a.name for a in process.activities
    ]
    assert {(c.source, c.target) for c in reparsed.connectors} == {
        (c.source, c.target) for c in process.connectors
    }
    assert reparsed.output_map.keys() == process.output_map.keys()
    # A second round trip is a fixed point.
    assert to_fdl(reparsed) == to_fdl(process)
