"""Batch execution mode: planner selection, EXPLAIN, and satellites.

Covers the execution-mode plumbing (validation, per-mode statement
cache namespacing), hash-join selection and fallback in EXPLAIN output,
StatementCache counters, and deterministic HashIndex lookups.
"""

import pytest

from repro.errors import ExecutionError, PlanError
from repro.fdbs.engine import Database
from repro.fdbs.session import StatementCache
from repro.fdbs.storage import Table
from repro.fdbs.catalog import ColumnDef
from repro.fdbs.types import INTEGER


def make_join_db(mode: str) -> Database:
    db = Database("x", execution_mode=mode)
    db.execute("CREATE TABLE l (a INT, s CHAR(4))")
    db.execute("CREATE TABLE r (b INT, t CHAR(4))")
    return db


class TestExecutionMode:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ExecutionError):
            Database("bad", execution_mode="vectorwise")
        db = Database("ok")
        with pytest.raises(ExecutionError):
            db.set_execution_mode("vector")
        assert db.execution_mode == "row"

    def test_set_execution_mode_switches(self):
        db = make_join_db("row")
        db.set_execution_mode("batch")
        assert db.execution_mode == "batch"
        assert "HashJoin" in db.explain("SELECT * FROM l JOIN r ON a = b")

    def test_statement_cache_is_namespaced_per_mode(self):
        db = make_join_db("row")
        db.execute("SELECT * FROM l")
        assert len(db.statement_cache) == 1  # DDL invalidated earlier entries
        db.set_execution_mode("batch")
        db.execute("SELECT * FROM l")
        assert len(db.statement_cache) == 2  # row entry not reused


class TestExplainOutput:
    def test_explain_shows_mode_header(self):
        row_db = make_join_db("row")
        batch_db = make_join_db("batch")
        sql = "SELECT * FROM l"
        # Line 0 is the MVCC Snapshot(epoch=...) header; the mode header
        # follows it.
        assert row_db.explain(sql).splitlines()[1] == "Execution(mode=row)"
        assert batch_db.explain(sql).splitlines()[1] == "Execution(mode=batch)"

    def test_explain_leads_with_snapshot_epoch(self):
        db = make_join_db("row")
        first = db.explain("SELECT * FROM l").splitlines()[0]
        assert first.startswith("Snapshot(epoch=")

    def test_explain_statement_carries_mode(self):
        db = make_join_db("batch")
        rows = db.execute("EXPLAIN SELECT * FROM l").rows
        assert rows[0][0].startswith("Snapshot(epoch=")
        assert rows[1] == ("Execution(mode=batch)",)

    def test_batch_equi_join_uses_hash_join(self):
        db = make_join_db("batch")
        text = db.explain("SELECT * FROM l JOIN r ON l.a = r.b")
        assert "HashJoin(INNER, on (l.a = r.b), join=hash)" in text
        assert "NestedLoopJoin" not in text

    def test_row_mode_keeps_nested_loop(self):
        db = make_join_db("row")
        text = db.explain("SELECT * FROM l JOIN r ON l.a = r.b")
        assert "NestedLoopJoin(INNER, join=nlj)" in text
        assert "HashJoin" not in text

    def test_non_equi_join_falls_back_to_nlj(self):
        db = make_join_db("batch")
        text = db.explain("SELECT * FROM l JOIN r ON l.a < r.b")
        assert "NestedLoopJoin(INNER, join=nlj)" in text

    def test_residual_conjunct_marked(self):
        db = make_join_db("batch")
        text = db.explain(
            "SELECT * FROM l JOIN r ON l.a = r.b AND l.a + r.b > 3"
        )
        assert "HashJoin(INNER, on (l.a = r.b), residual, join=hash)" in text

    def test_left_outer_equi_join_hashes(self):
        db = make_join_db("batch")
        text = db.explain("SELECT * FROM l LEFT JOIN r ON l.a = r.b")
        assert "HashJoin(LEFT OUTER" in text

    def test_bad_on_clause_errors_match_row_mode(self):
        for mode in ("row", "batch"):
            db = make_join_db(mode)
            with pytest.raises(PlanError):
                db.explain("SELECT * FROM l JOIN r ON l.nope = r.b")


class TestStatementCacheCounters:
    def test_eviction_counter_and_stats(self):
        cache = StatementCache(capacity=2)
        cache.put("SELECT 1", "a")
        cache.put("SELECT 2", "b")
        cache.put("SELECT 3", "c")  # evicts SELECT 1
        assert cache.evictions == 1
        assert cache.get("SELECT 1") is None
        assert cache.get("SELECT 3") == "c"
        stats = cache.stats()
        assert stats == {
            "hits": 1,
            "misses": 1,
            "evictions": 1,
            "size": 2,
            "capacity": 2,
        }

    def test_namespaces_do_not_collide(self):
        cache = StatementCache()
        cache.put("SELECT 1", "row-plan", namespace="row")
        cache.put("SELECT 1", "batch-plan", namespace="batch")
        assert cache.get("SELECT 1", namespace="row") == "row-plan"
        assert cache.get("SELECT 1", namespace="batch") == "batch-plan"

    def test_lru_refresh_protects_hot_entries(self):
        cache = StatementCache(capacity=2)
        cache.put("SELECT 1", "a")
        cache.put("SELECT 2", "b")
        cache.get("SELECT 1")  # refresh: SELECT 2 is now LRU
        cache.put("SELECT 3", "c")
        assert cache.get("SELECT 1") == "a"
        assert cache.get("SELECT 2") is None


class TestHashIndexDeterminism:
    def test_lookup_returns_sorted_rids(self):
        table = Table("t", [ColumnDef("a", INTEGER), ColumnDef("b", INTEGER)])
        for index in range(50):
            table.insert((index % 3, index))
        index = table.create_index("a")
        rids = index.lookup(0)
        assert rids == sorted(rids)
        assert isinstance(rids, list)

    def test_index_scan_rows_in_insertion_order(self):
        table = Table("t", [ColumnDef("a", INTEGER), ColumnDef("b", INTEGER)])
        for index in range(50):
            table.insert((index % 3, index))
        values = [row[1] for row in table.index_lookup("a", 1)]
        assert values == sorted(values)
