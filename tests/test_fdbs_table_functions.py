"""Table functions in the engine: A-UDTFs, SQL I-UDTFs, lateral rules,
and the reproduced DB2 restrictions."""

import pytest

from repro.errors import (
    CallOnlyProcedureError,
    CyclicDependencyError,
    NestedTableFunctionError,
    PlanError,
    ReadOnlyFunctionError,
    TypeError_,
)
from repro.fdbs.engine import Database
from repro.fdbs.functions import make_external_function
from repro.fdbs.types import INTEGER, VARCHAR


@pytest.fixture()
def db():
    database = Database("tf")
    database.register_external_function(
        make_external_function(
            "Doubler", [("X", INTEGER)], [("Y", INTEGER)], lambda x: x * 2
        )
    )
    database.register_external_function(
        make_external_function(
            "Range3",
            [("Base", INTEGER)],
            [("V", INTEGER)],
            lambda base: [(base,), (base + 1,), (base + 2,)],
        )
    )
    database.execute("CREATE TABLE seeds (s INT)")
    database.execute("INSERT INTO seeds VALUES (10), (20)")
    return database


def test_external_function_single_row(db):
    result = db.execute("SELECT D.Y FROM TABLE (Doubler(21)) AS D")
    assert result.rows == [(42,)]


def test_table_valued_function(db):
    result = db.execute("SELECT R.V FROM TABLE (Range3(5)) AS R ORDER BY R.V")
    assert result.rows == [(5,), (6,), (7,)]


def test_lateral_correlation_with_table(db):
    result = db.execute(
        "SELECT s, D.Y FROM seeds, TABLE (Doubler(s)) AS D ORDER BY s"
    )
    assert result.rows == [(10, 20), (20, 40)]


def test_chained_table_functions(db):
    result = db.execute(
        "SELECT B.Y FROM TABLE (Doubler(3)) AS A, TABLE (Doubler(A.Y)) AS B"
    )
    assert result.rows == [(12,)]


def test_sql_iudtf_definition_and_call(db):
    db.execute(
        "CREATE FUNCTION Quad (N INT) RETURNS TABLE (Q INT) LANGUAGE SQL "
        "RETURN SELECT D2.Y FROM TABLE (Doubler(Quad.N)) AS D1, "
        "TABLE (Doubler(D1.Y)) AS D2"
    )
    assert db.execute("SELECT Q.Q FROM TABLE (Quad(5)) AS Q").rows == [(20,)]


def test_sql_iudtf_parameter_qualified_reference(db):
    db.execute(
        "CREATE FUNCTION Echo (N INT) RETURNS TABLE (V INT) LANGUAGE SQL "
        "RETURN SELECT Echo.N + 0 AS V"
    )
    assert db.execute("SELECT E.V FROM TABLE (Echo(7)) AS E").rows == [(7,)]


def test_function_arity_checked(db):
    with pytest.raises(PlanError, match="expects 1"):
        db.execute("SELECT D.Y FROM TABLE (Doubler(1, 2)) AS D")


def test_function_argument_type_checked(db):
    with pytest.raises(TypeError_):
        db.execute("SELECT D.Y FROM TABLE (Doubler('abc')) AS D")


def test_result_width_mismatch_rejected(db):
    db.register_external_function(
        make_external_function(
            "Bad", [], [("A", INTEGER), ("B", INTEGER)], lambda: [(1,)]
        )
    )
    with pytest.raises(Exception, match="width"):
        db.execute("SELECT * FROM TABLE (Bad()) AS B")


def test_result_values_coerced_to_declared_types(db):
    db.register_external_function(
        make_external_function("AsText", [], [("T", VARCHAR(5))], lambda: "ok")
    )
    assert db.execute("SELECT * FROM TABLE (AsText()) AS A").rows == [("ok",)]


# -- reproduced DB2 v7.1 restrictions -----------------------------------------


def test_forward_reference_rejected_left_to_right(db):
    with pytest.raises(PlanError, match="left to right"):
        db.execute(
            "SELECT A.Y FROM TABLE (Doubler(B.Y)) AS A, TABLE (Doubler(1)) AS B"
        )


def test_cyclic_dependency_rejected(db):
    with pytest.raises(CyclicDependencyError):
        db.execute(
            "SELECT A.Y FROM TABLE (Doubler(B.Y)) AS A, TABLE (Doubler(A.Y)) AS B"
        )


def test_nested_table_functions_rejected(db):
    # "Unfortunately, nesting of functions is not supported."
    with pytest.raises(NestedTableFunctionError):
        db.execute("SELECT A.Y FROM TABLE (Doubler(Doubler(1))) AS A")


def test_table_function_in_scalar_context_rejected(db):
    with pytest.raises(NestedTableFunctionError):
        db.execute("SELECT Doubler(1) FROM seeds")


def test_udtfs_are_read_only(db):
    # "UDTFs only support read access."
    with pytest.raises(ReadOnlyFunctionError):
        db.execute("INSERT INTO Doubler VALUES (1, 2)")
    with pytest.raises(ReadOnlyFunctionError):
        db.execute("UPDATE Doubler SET Y = 1")
    with pytest.raises(ReadOnlyFunctionError):
        db.execute("DELETE FROM Doubler")


def test_table_function_not_referencable_as_table(db):
    with pytest.raises(PlanError, match="TABLE"):
        db.execute("SELECT * FROM Doubler")


def test_table_not_callable_as_function(db):
    with pytest.raises(PlanError, match="not a table function"):
        db.execute("SELECT * FROM TABLE (seeds()) AS S")


def test_table_functions_inside_joins_rejected(db):
    with pytest.raises(PlanError, match="JOIN"):
        db.execute(
            "SELECT * FROM seeds INNER JOIN TABLE (Doubler(1)) AS D ON s = D.Y"
        )


def test_procedure_in_from_clause_rejected(db):
    db.execute(
        "CREATE PROCEDURE p (IN a INT, OUT b INT) LANGUAGE SQL BEGIN "
        "SET b = a; END"
    )
    with pytest.raises(CallOnlyProcedureError):
        db.execute("SELECT * FROM TABLE (p(1)) AS x")
    with pytest.raises(CallOnlyProcedureError):
        db.execute("SELECT * FROM p")


def test_function_recursion_depth_guard(db):
    db.execute(
        "CREATE FUNCTION Recur (N INT) RETURNS TABLE (V INT) LANGUAGE SQL "
        "RETURN SELECT R.V FROM TABLE (Recur(Recur.N)) AS R"
    )
    with pytest.raises(Exception, match="recursion"):
        db.execute("SELECT * FROM TABLE (Recur(1)) AS R")


def test_unbound_external_function_reports_clearly():
    db2 = Database("unbound")
    db2.execute(
        "CREATE FUNCTION Ghost (X INT) RETURNS TABLE (Y INT) "
        "LANGUAGE JAVA EXTERNAL NAME 'missing.Impl' FENCED"
    )
    with pytest.raises(Exception, match="no implementation"):
        db2.execute("SELECT * FROM TABLE (Ghost(1)) AS G")


def test_bind_external_attaches_implementation():
    db2 = Database("bind")
    db2.execute(
        "CREATE FUNCTION Late (X INT) RETURNS TABLE (Y INT) "
        "LANGUAGE JAVA EXTERNAL NAME 'late.Impl' FENCED"
    )
    db2.bind_external("Late", lambda x: x + 1)
    assert db2.execute("SELECT * FROM TABLE (Late(1)) AS L").rows == [(2,)]
