"""Process-fault battery: a dying shard must fail clean, not sick.

The contract when a worker process is SIGKILLed mid-workload:

* sessions on *surviving* shards complete unaffected, bit-identical to
  the bare stack;
* results the dead worker already flushed into its pipe are still
  delivered (completed work survives the crash);
* every genuinely unfinished session on the dead shard surfaces a
  *retryable* :class:`~repro.errors.ShardCrashError` promptly — no
  hangs — and new submissions to the dead shard fail the same way;
* the dead process is reaped (no zombies/orphans), the router can
  respawn the shard on the same hash arcs, and resubmitted sessions
  then produce exactly the bare-stack outcome;
* admission accounting drains back to zero through all of it.

Deselected by default behind the ``proc`` marker.
"""

import multiprocessing
import time

import pytest

from repro.appsys.datagen import generate_enterprise_data
from repro.errors import ServingError, ShardCrashError
from repro.serving import ShardedIntegrationServer
from repro.serving.workload import WorkloadCall, make_workload

pytestmark = pytest.mark.proc

SEED = 7
SHARDS = 3
SESSIONS = 9
CALLS = 6
JOIN_TIMEOUT = 90.0


def scripts():
    return make_workload(seed=SEED, sessions=SESSIONS, calls_per_session=CALLS)


def busiest_shard(server, workload):
    """The shard owning the most sessions of this workload."""
    counts = {shard: 0 for shard in range(SHARDS)}
    for script in workload:
        counts[server.route(script.session_id)] += 1
    return max(counts, key=lambda shard: (counts[shard], -shard))


@pytest.fixture(scope="module")
def data():
    return generate_enterprise_data()


def test_kill_mid_workload_contains_the_blast_radius(data):
    workload = scripts()
    with ShardedIntegrationServer(
        shards=SHARDS, data=data, queue_limit=SESSIONS
    ) as server:
        victim = busiest_shard(server, workload)
        victims = [
            s.session_id for s in workload if server.route(s.session_id) == victim
        ]
        assert len(victims) >= 2, "workload must put several sessions on the victim"

        futures = {s.session_id: server.submit(s, timeout=JOIN_TIMEOUT) for s in workload}
        # Wait until the victim is demonstrably mid-workload (it has
        # completed at least one script and still owes more), then kill.
        deadline = time.monotonic() + JOIN_TIMEOUT
        while server.shard_stats()[victim]["completed"] < 1:
            assert time.monotonic() < deadline, "victim never started working"
            time.sleep(0.005)
        server.kill_shard(victim)

        survivors, crashed = [], []
        for session_id, future in futures.items():
            exc = future.exception(timeout=JOIN_TIMEOUT)  # promptly: no hangs
            if exc is None:
                survivors.append(session_id)
            else:
                assert isinstance(exc, ShardCrashError), exc
                assert exc.retryable, "a shard crash must be retryable"
                assert exc.shard_id == victim
                crashed.append(session_id)

        # Only victim sessions may crash; every survivor shard finished all.
        assert all(server.route(s) == victim for s in crashed)
        assert crashed, "the kill landed after the victim drained everything"
        for session_id in survivors:
            done = futures[session_id].result()
            assert len(done.row_sets) == CALLS + 1  # CREATE TABLE + calls
            assert all(rows is not None for rows in done.row_sets)

        # New work for the dead shard fails fast and retryable too.
        dead_script = next(
            s for s in workload if s.session_id in crashed
        )
        with pytest.raises(ShardCrashError):
            server.submit(dead_script, timeout=JOIN_TIMEOUT)

        stats = server.shard_stats()[victim]
        assert not stats["alive"]
        assert stats["pending"] == 0, "dead shard still holds pending futures"
        assert stats["death_cause"] is not None

        # Respawn on the same ring arcs: the crashed sessions rerun to
        # completion and the router is whole again.
        server.respawn_shard(victim)
        redo = [s for s in workload if s.session_id in crashed]
        redone = [server.submit(s, timeout=JOIN_TIMEOUT) for s in redo]
        for script, future in zip(redo, redone):
            done = future.result(timeout=JOIN_TIMEOUT)
            assert done.session_id == script.session_id
            assert len(done.row_sets) == len(script.calls)
        assert server.shard_stats()[victim]["respawns"] == 1

        # Admission drained: nothing in flight once all futures resolved.
        assert server.admission.stats()["in_flight"] == 0
    # Shutdown reaped everything: no orphaned worker processes remain.
    assert not multiprocessing.active_children()
    for stats in server.shard_stats().values():
        assert not stats["alive"]


def test_respawn_requires_a_dead_shard(data):
    with ShardedIntegrationServer(shards=2, data=data) as server:
        with pytest.raises(ServingError):
            server.respawn_shard(0)
        with pytest.raises(ServingError):
            server.respawn_shard(99)


def test_worker_survives_a_failing_script(data):
    """A script that raises inside the worker fails only that script."""
    workload = make_workload(seed=3, sessions=2, calls_per_session=2)
    bogus = workload[0]
    bogus.calls.append(WorkloadCall("bogus-kind", "nope"))
    with ShardedIntegrationServer(
        shards=1, data=data, queue_limit=4
    ) as server:
        bad = server.submit(bogus, timeout=JOIN_TIMEOUT)
        good = server.submit(workload[1], timeout=JOIN_TIMEOUT)
        exc = bad.exception(timeout=JOIN_TIMEOUT)
        assert isinstance(exc, ServingError)
        assert not isinstance(exc, ShardCrashError)
        assert "bogus-kind" in str(exc)
        done = good.result(timeout=JOIN_TIMEOUT)
        assert len(done.row_sets) == len(workload[1].calls)
        assert server.shard_stats()[0]["alive"], "worker must survive"
        assert server.admission.stats()["in_flight"] == 0
    assert not multiprocessing.active_children()


def test_shutdown_is_idempotent_and_graceful(data):
    server = ShardedIntegrationServer(shards=2, data=data)
    result = server.run_workload(
        make_workload(seed=5, sessions=4, calls_per_session=2),
        join_timeout=JOIN_TIMEOUT,
    )
    assert result.calls == 4 * 3
    server.shutdown()
    server.shutdown()  # second call is a no-op
    with pytest.raises(ServingError):
        server.submit(make_workload(seed=5, sessions=1)[0])
    assert server.admission.stats()["in_flight"] == 0
    assert not multiprocessing.active_children()
