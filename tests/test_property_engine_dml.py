"""Model-based property test: the SQL engine's DML against a dict model."""

from hypothesis import given, settings, strategies as st

from repro.fdbs.engine import Database

keys = st.integers(min_value=0, max_value=7)
values = st.integers(min_value=-100, max_value=100)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys, values),
        st.tuples(st.just("update"), keys, values),
        st.tuples(st.just("delete"), keys, values),
        st.tuples(st.just("commit"), st.just(0), st.just(0)),
        st.tuples(st.just("rollback"), st.just(0), st.just(0)),
    ),
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(operations)
def test_engine_dml_agrees_with_dict_model(ops):
    db = Database("model")
    db.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")

    committed: dict[int, int] = {}
    live: dict[int, int] = {}
    for op, key, value in ops:
        if op == "insert":
            if key in live:
                continue
            db.execute("INSERT INTO t VALUES (?, ?)", params=[key, value])
            live[key] = value
        elif op == "update":
            db.execute("UPDATE t SET v = ? WHERE k = ?", params=[value, key])
            if key in live:
                live[key] = value
        elif op == "delete":
            db.execute("DELETE FROM t WHERE k = ?", params=[key])
            live.pop(key, None)
        elif op == "commit":
            db.execute("COMMIT")
            committed = dict(live)
        else:  # rollback
            db.execute("ROLLBACK")
            live = dict(committed)
        rows = sorted(db.execute("SELECT k, v FROM t").rows)
        assert rows == sorted(live.items())

    count = db.execute("SELECT COUNT(*) FROM t").scalar()
    assert count == len(live)
