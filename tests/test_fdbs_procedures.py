"""PSM stored procedures: control flow, variables, nested calls."""

import pytest

from repro.errors import ExecutionError, SignatureError, SqlError
from repro.fdbs.engine import Database


@pytest.fixture()
def db():
    return Database("psm")


def test_out_parameter_returned(db):
    db.execute(
        "CREATE PROCEDURE p (IN a INT, OUT b INT) LANGUAGE SQL BEGIN "
        "SET b = a * 2; END"
    )
    assert db.execute("CALL p(21)").out_params == {"b": 42}


def test_inout_parameter(db):
    db.execute(
        "CREATE PROCEDURE p (INOUT x INT) LANGUAGE SQL BEGIN SET x = x + 1; END"
    )
    assert db.execute("CALL p(9)").out_params == {"x": 10}


def test_while_loop(db):
    db.execute(
        """
        CREATE PROCEDURE sum_to (IN n INT, OUT total INT) LANGUAGE SQL BEGIN
          DECLARE i INT DEFAULT 1;
          SET total = 0;
          WHILE i <= n DO
            SET total = total + i;
            SET i = i + 1;
          END WHILE;
        END
        """
    )
    assert db.execute("CALL sum_to(10)").out_params == {"total": 55}


def test_if_elseif_else(db):
    db.execute(
        """
        CREATE PROCEDURE grade (IN score INT, OUT verdict VARCHAR(10))
        LANGUAGE SQL BEGIN
          IF score >= 8 THEN SET verdict = 'good';
          ELSEIF score >= 4 THEN SET verdict = 'ok';
          ELSE SET verdict = 'poor';
          END IF;
        END
        """
    )
    assert db.execute("CALL grade(9)").out_params == {"verdict": "good"}
    assert db.execute("CALL grade(5)").out_params == {"verdict": "ok"}
    assert db.execute("CALL grade(1)").out_params == {"verdict": "poor"}


def test_procedure_queries_tables_via_scalar_subquery(db):
    db.execute("CREATE TABLE t (v INT)")
    db.execute("INSERT INTO t VALUES (3), (4)")
    db.execute(
        "CREATE PROCEDURE total (OUT s INT) LANGUAGE SQL BEGIN "
        "SET s = (SELECT SUM(v) FROM t); END"
    )
    assert db.execute("CALL total()").out_params == {"s": 7}


def test_nested_call(db):
    db.execute(
        "CREATE PROCEDURE inner_p (IN a INT, OUT b INT) LANGUAGE SQL BEGIN "
        "SET b = a + 1; END"
    )
    db.execute("CREATE TABLE log (v INT)")
    db.execute(
        "CREATE PROCEDURE outer_p (IN a INT) LANGUAGE SQL BEGIN "
        "CALL inner_p(a); END"
    )
    db.execute("CALL outer_p(1)")  # must not raise


def test_declared_variable_types_enforced(db):
    db.execute(
        "CREATE PROCEDURE p (OUT v VARCHAR(3)) LANGUAGE SQL BEGIN "
        "SET v = 'toolong'; END"
    )
    with pytest.raises(Exception):
        db.execute("CALL p()")


def test_wrong_argument_count_rejected(db):
    db.execute(
        "CREATE PROCEDURE p (IN a INT, OUT b INT) LANGUAGE SQL BEGIN "
        "SET b = a; END"
    )
    with pytest.raises(SignatureError):
        db.execute("CALL p(1, 2)")


def test_unknown_variable_rejected(db):
    db.execute(
        "CREATE PROCEDURE p (OUT b INT) LANGUAGE SQL BEGIN SET zzz = 1; END"
    )
    with pytest.raises(ExecutionError, match="unknown variable"):
        db.execute("CALL p()")


def test_call_of_function_rejected(db):
    from repro.fdbs.functions import make_external_function
    from repro.fdbs.types import INTEGER

    db.register_external_function(
        make_external_function("f", [("x", INTEGER)], [("y", INTEGER)], lambda x: x)
    )
    with pytest.raises(SqlError, match="CALL is only valid"):
        db.execute("CALL f(1)")


def test_runaway_loop_guarded(db):
    db.execute(
        "CREATE PROCEDURE forever (OUT x INT) LANGUAGE SQL BEGIN "
        "SET x = 0; WHILE 1 = 1 DO SET x = x + 1; END WHILE; END"
    )
    with pytest.raises(ExecutionError, match="iterations"):
        db.execute("CALL forever()")
