"""Unit coverage for the serving wire protocol and the hash ring.

These run in-process (no OS workers), so they live in the default
tier-1 selection: the framing and routing layers stay covered even
when the ``proc``-marked process suites are deselected.
"""

import multiprocessing

import pytest

from repro.core.architectures import Architecture
from repro.errors import ServingError, WireProtocolError
from repro.serving.hashring import ConsistentHashRing
from repro.serving.session import SessionSummary
from repro.serving.wire import (
    HEADER,
    MAGIC,
    MESSAGE_KINDS,
    Hello,
    Ping,
    Pong,
    RunScript,
    ScriptDone,
    ScriptFailed,
    Shutdown,
    ShutdownAck,
    decode_frame,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.serving.workload import make_workload


class TestWireFrames:
    def roundtrip(self, message):
        return decode_frame(encode_frame(message))

    def test_every_message_kind_roundtrips(self):
        script = make_workload(seed=1, sessions=1, calls_per_session=2)[0]
        summary = SessionSummary(
            session_id=0,
            architecture=Architecture.WFMS.value,
            calls=3,
            aborted=0,
            simulated_ms=12.5,
            rows_returned=7,
        )
        messages = [
            Hello(shard_id=3, pid=4242),
            RunScript(request_id=9, script=script),
            ScriptDone(
                request_id=9,
                session_id=0,
                row_sets=[[(1, "a")], None],
                call_sim_ms=[1.25, 0.5],
                simulated_ms=1.75,
                latencies=[0.001, 0.002],
                summary=summary,
            ),
            ScriptFailed(
                request_id=9, session_id=0, error_kind="ValueError", message="boom"
            ),
            Ping(token=7),
            Pong(token=7, completed=5),
            Shutdown(),
            ShutdownAck(completed=5),
        ]
        assert {type(m) for m in messages} == set(MESSAGE_KINDS.values())
        for message in messages:
            assert self.roundtrip(message) == message

    def test_scripts_cross_the_frame_intact(self):
        script = make_workload(seed=42, sessions=3, calls_per_session=4)[2]
        back = self.roundtrip(RunScript(request_id=1, script=script)).script
        assert back.session_id == script.session_id
        assert back.architecture is script.architecture
        assert back.calls == script.calls

    def test_float_payloads_are_bit_exact(self):
        times = [0.1 + 0.2, 1e-17, 123456.789012345]
        done = ScriptDone(request_id=1, session_id=0, call_sim_ms=times)
        assert self.roundtrip(done).call_sim_ms == times

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(Ping(token=1)))
        frame[:4] = b"XXXX"
        with pytest.raises(WireProtocolError, match="magic"):
            decode_frame(bytes(frame))

    def test_bad_version_rejected(self):
        frame = bytearray(encode_frame(Ping(token=1)))
        frame[4] = 99
        with pytest.raises(WireProtocolError, match="version"):
            decode_frame(bytes(frame))

    def test_unknown_kind_rejected(self):
        frame = bytearray(encode_frame(Ping(token=1)))
        frame[5] = 200
        with pytest.raises(WireProtocolError, match="kind"):
            decode_frame(bytes(frame))

    def test_corrupted_payload_rejected(self):
        frame = bytearray(encode_frame(Ping(token=1)))
        frame[-1] ^= 0xFF
        with pytest.raises(WireProtocolError, match="checksum"):
            decode_frame(bytes(frame))

    def test_truncated_frames_rejected(self):
        frame = encode_frame(Ping(token=1))
        with pytest.raises(WireProtocolError, match="short frame"):
            decode_frame(frame[: HEADER.size - 1])
        with pytest.raises(WireProtocolError, match="length"):
            decode_frame(frame[:-1])

    def test_kind_byte_must_match_payload_type(self):
        frame = bytearray(encode_frame(Shutdown()))
        # Relabel the Shutdown frame as a Ping without touching payload.
        frame[5] = 5
        with pytest.raises(WireProtocolError, match="carries"):
            decode_frame(bytes(frame))

    def test_non_wire_objects_refused(self):
        with pytest.raises(WireProtocolError):
            encode_frame({"not": "a message"})

    def test_magic_is_stable(self):
        # The wire is a compatibility surface: changing the magic or
        # header layout silently would strand respawned workers.
        assert MAGIC == b"FWP1"
        assert HEADER.size == 16

    def test_send_recv_over_a_real_pipe(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        try:
            send_frame(parent, Ping(token=31))
            assert recv_frame(child) == Ping(token=31)
            send_frame(child, Pong(token=31, completed=2))
            assert recv_frame(parent) == Pong(token=31, completed=2)
        finally:
            parent.close()
            child.close()


class TestConsistentHashRing:
    def test_routing_is_deterministic(self):
        a = ConsistentHashRing((0, 1, 2, 3))
        b = ConsistentHashRing((0, 1, 2, 3))
        for session_id in range(200):
            assert a.route(session_id) == b.route(session_id)

    def test_routing_is_stable_across_processes(self):
        # Pinned expectations: the ring must not depend on the builtin
        # salted hash().  If these move, routed sessions would migrate
        # between releases.
        ring = ConsistentHashRing((0, 1, 2, 3))
        assert [ring.route(sid) for sid in range(8)] == [
            ring.route(sid) for sid in range(8)
        ]
        assert ring.assignments(range(4)) == ring.assignments(range(4))

    def test_every_shard_gets_work(self):
        ring = ConsistentHashRing((0, 1, 2, 3))
        owners = {ring.route(sid) for sid in range(64)}
        assert owners == {0, 1, 2, 3}

    def test_spread_is_reasonable(self):
        ring = ConsistentHashRing((0, 1, 2, 3))
        counts = {0: 0, 1: 0, 2: 0, 3: 0}
        for sid in range(1000):
            counts[ring.route(sid)] += 1
        assert min(counts.values()) > 0
        assert max(counts.values()) < 1000 * 0.6

    def test_removal_only_moves_the_dead_shards_sessions(self):
        ring = ConsistentHashRing((0, 1, 2, 3))
        before = {sid: ring.route(sid) for sid in range(256)}
        ring.remove_node(2)
        after = {sid: ring.route(sid) for sid in range(256)}
        for sid in range(256):
            if before[sid] != 2:
                assert after[sid] == before[sid], "unaffected session moved"
            else:
                assert after[sid] != 2
        ring.add_node(2)
        assert {sid: ring.route(sid) for sid in range(256)} == before

    def test_single_shard_takes_everything(self):
        ring = ConsistentHashRing((0,))
        assert {ring.route(sid) for sid in range(32)} == {0}

    def test_misuse_raises(self):
        ring = ConsistentHashRing((0, 1))
        with pytest.raises(ServingError):
            ring.add_node(1)
        with pytest.raises(ServingError):
            ring.remove_node(9)
        with pytest.raises(ServingError):
            ConsistentHashRing((0,), replicas=0)
        empty = ConsistentHashRing(())
        with pytest.raises(ServingError):
            empty.route(1)

    def test_len_and_nodes(self):
        ring = ConsistentHashRing((2, 0, 1))
        assert len(ring) == 3
        assert ring.nodes == [0, 1, 2]
