"""Experiment drivers reproduce the paper's qualitative shapes.

These are the repository's regression net for the reproduction claims;
the benchmarks print the full tables, these tests pin the shapes.
"""

import pytest

from repro.bench import experiments as exp
from repro.bench.harness import measure_hot, measure_situations
from repro.bench.report import format_percent, format_table, linear_fit
from repro.core.architectures import Architecture


@pytest.fixture(scope="module")
def fig5(data):
    return exp.exp_fig5(data=data)


@pytest.fixture(scope="module")
def fig6(data):
    return exp.exp_fig6(data=data)


class TestMappingMatrix:
    def test_only_cyclic_row_unsupported_for_sql_udtf(self):
        result = exp.exp_mapping_matrix()
        udtf = Architecture.ENHANCED_SQL_UDTF.value
        unsupported = [r.function for r in result.rows if r.cells[udtf] == "not supported"]
        assert unsupported == ["AllCompNames"]

    def test_wfms_supports_everything(self):
        result = exp.exp_mapping_matrix()
        wfms = Architecture.WFMS.value
        assert all(r.cells[wfms] != "not supported" for r in result.rows)

    def test_render_contains_paper_cells(self):
        text = exp.render_mapping_matrix(exp.exp_mapping_matrix())
        assert "join with selection" in text
        assert "loop construct with sub-workflow" in text
        assert "not supported" in text


class TestFig5:
    def test_udtf_wins_everywhere(self, fig5):
        assert all(p.udtf < p.wfms for p in fig5.points)

    def test_anchor_ratio_is_about_three(self, fig5):
        anchor = next(p for p in fig5.points if p.function == "GetNoSuppComp")
        assert anchor.ratio == pytest.approx(3.0, abs=0.15)

    def test_wfms_rises_more_steeply_with_function_count(self, fig5):
        """'processing times do not rise as intensely for the UDTF
        approach as for the workflow approach' — compare slopes over the
        sequential cases."""
        one = next(p for p in fig5.points if p.function == "GibKompNr")
        three = next(p for p in fig5.points if p.function == "GetNoSuppComp")
        wfms_rise = three.wfms - one.wfms
        udtf_rise = three.udtf - one.udtf
        assert wfms_rise > udtf_rise

    def test_no_crossover_in_the_sweep(self, fig5):
        assert fig5.max_ratio < 5.0
        assert min(p.ratio for p in fig5.points) > 1.0

    def test_render(self, fig5):
        text = exp.render_fig5(fig5)
        assert "GetNoSuppComp" in text and "WfMS/UDTF" in text


class TestFig6:
    def test_wfms_portions_match_paper(self, fig6):
        portions = {label: frac for label, _, frac in fig6.wfms.steps}
        paper = {
            "Start UDTF": 0.09,
            "Process UDTF": 0.11,
            "RMI call": 0.03,
            "Start workflows and Java environment": 0.10,
            "Process activities": 0.51,
            "Workflow": 0.09,
            "Controller": 0.05,
            "RMI return": 0.00,
            "Finish UDTF": 0.02,
        }
        for label, expected in paper.items():
            assert portions[label] == pytest.approx(expected, abs=0.02), label

    def test_udtf_portions_match_paper(self, fig6):
        portions = {label: frac for label, _, frac in fig6.udtf.steps}
        paper = {
            "Start I-UDTF": 0.11,
            "Prepare A-UDTFs": 0.28,
            "RMI calls": 0.24,
            "controller runs": 0.00,
            "Process activities": 0.06,
            "Finish A-UDTFs": 0.21,
            "RMI returns": 0.01,
            "Finish I-UDTF": 0.09,
        }
        for label, expected in paper.items():
            assert portions[label] == pytest.approx(expected, abs=0.02), label

    def test_totals_anchor_ratio(self, fig6):
        assert fig6.wfms.total / fig6.udtf.total == pytest.approx(3.0, abs=0.15)

    def test_unattributed_time_is_negligible(self, fig6):
        assert fig6.wfms.unattributed / fig6.wfms.total < 0.02
        assert fig6.udtf.unattributed / fig6.udtf.total < 0.02

    def test_render(self, fig6):
        text = exp.render_fig6(fig6)
        assert "Workflow approach" in text and "UDTF approach" in text
        assert "51%" in text  # the paper's headline cell


class TestControllerAblation:
    @pytest.fixture(scope="class")
    def ablation(self, data):
        return exp.exp_controller_ablation(data=data)

    def test_decreases_match_paper(self, ablation):
        assert ablation.wfms_decrease == pytest.approx(0.08, abs=0.02)
        assert ablation.udtf_decrease == pytest.approx(0.25, abs=0.02)

    def test_ratio_widens_toward_3_7(self, ablation):
        assert ablation.ratio_without > ablation.ratio_with
        assert ablation.ratio_without == pytest.approx(3.7, abs=0.15)

    def test_render(self, ablation):
        assert "without" in exp.render_controller_ablation(ablation)


class TestLoopScaling:
    @pytest.fixture(scope="class")
    def scaling(self):
        return exp.exp_cyclic_scaling()

    def test_linear_fit_is_near_perfect(self, scaling):
        assert scaling.r_squared > 0.999

    def test_strictly_increasing(self, scaling):
        times = [t for _, t in scaling.points]
        assert times == sorted(times)
        assert scaling.slope > 0

    def test_render(self, scaling):
        assert "linear fit" in exp.render_cyclic_scaling(scaling)


class TestParallelVsSequential:
    @pytest.fixture(scope="class")
    def result(self, data):
        return exp.exp_parallel_vs_sequential(data=data)

    def test_wfms_profits_from_parallelism(self, result):
        assert result.wfms_parallel < result.wfms_sequential

    def test_udtf_shows_contrary_result(self, result):
        assert result.udtf_parallel > result.udtf_sequential

    def test_render(self, result):
        assert "parallel" in exp.render_parallel_vs_sequential(result)


class TestBootWarmHot:
    def test_cold_warm_hot_ordering(self, data):
        result = exp.exp_boot_warm_hot(data=data)
        for timings in result.timings.values():
            for timing in timings:
                assert timing.cold > timing.warm_other > timing.hot

    def test_render(self, data):
        text = exp.render_boot_warm_hot(exp.exp_boot_warm_hot(data=data))
        assert "after boot" in text


class TestHarness:
    def test_measure_hot_is_deterministic_without_jitter(self, sql_udtf_scenario):
        measurement = measure_hot(sql_udtf_scenario, "GibKompNr")
        assert measurement.minimum == measurement.maximum == measurement.mean

    def test_measure_situations_orders_warmth(self, data):
        from repro.core.scenario import build_scenario

        scenario = build_scenario(Architecture.WFMS, data=data)
        timing = measure_situations(scenario, "GetSuppQual")
        assert timing.cold > timing.warm_other > timing.hot


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_percent_rounds(self):
        assert format_percent(0.506) == "51%"
        assert format_percent(0.004) == "0%"

    def test_linear_fit_recovers_exact_line(self):
        slope, intercept, r2 = linear_fit([(1, 12.0), (2, 14.0), (5, 20.0)])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(10.0)
        assert r2 == pytest.approx(1.0)

    def test_linear_fit_degenerate_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([(1, 1.0)])
        with pytest.raises(ValueError):
            linear_fit([(1, 1.0), (1, 2.0)])
