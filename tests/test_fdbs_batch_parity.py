"""Row-mode vs batch-mode parity across the SQL corpus.

Every query runs against two identically-loaded databases — one in
``"row"`` mode (Volcano + nested-loop joins), one in ``"batch"`` mode
(vectorized chunks + hash equi-joins) — and must produce identical rows:
same order where the query orders, same multiset otherwise.  Lateral
TABLE() correlation and DETERMINISTIC UDTF caching are included because
their fenced/cost semantics are exactly what the batch mode must not
disturb.
"""

from decimal import Decimal

import pytest

from repro.fdbs.engine import Database
from repro.fdbs.functions import make_external_function
from repro.fdbs.types import INTEGER

SETUP = [
    "CREATE TABLE emp (id INT PRIMARY KEY, dept INT, name CHAR(10), "
    "salary DECIMAL(8, 2), bonus DOUBLE)",
    "CREATE TABLE dept (dept INT PRIMARY KEY, dname CHAR(12), region INT)",
    "CREATE TABLE sparse (k INT, v INT)",
]

EMP_ROWS = [
    (1, 10, "ada", Decimal("1000.50"), 1.5),
    (2, 10, "bob", Decimal("2000.00"), None),
    (3, 20, "cyd", Decimal("1500.25"), 0.5),
    (4, 20, "dan", None, 2.5),
    (5, 30, "eve", Decimal("900.75"), 1.0),
    (6, None, "fay", Decimal("1200.00"), None),
    (7, 10, "gus", Decimal("2000.00"), 3.0),
    (8, 40, "hal", Decimal("800.10"), 0.0),
]

DEPT_ROWS = [
    (10, "sales", 1),
    (20, "dev", 1),
    (30, "ops", 2),
    (50, "legal", 3),
]

SPARSE_ROWS = [(1, 10), (1, 20), (2, None), (None, 30), (3, 10)]

ORDERED_QUERIES = [
    "SELECT id, name FROM emp ORDER BY id",
    "SELECT id, salary FROM emp WHERE salary > 1000 ORDER BY salary DESC, id",
    "SELECT name, bonus FROM emp WHERE bonus IS NOT NULL ORDER BY 2, 1",
    "SELECT id FROM emp WHERE name LIKE '%a%' ORDER BY id",
    "SELECT id FROM emp WHERE dept IN (10, 30) ORDER BY id",
    "SELECT id FROM emp WHERE salary BETWEEN 900 AND 1600 ORDER BY id",
    "SELECT id, salary * 2 + 1 FROM emp ORDER BY id",
    "SELECT e.name, d.dname FROM emp AS e JOIN dept AS d "
    "ON e.dept = d.dept ORDER BY e.id",
    "SELECT e.name, d.dname FROM emp AS e LEFT OUTER JOIN dept AS d "
    "ON e.dept = d.dept ORDER BY e.id",
    "SELECT e.name, d.dname FROM emp AS e JOIN dept AS d "
    "ON e.dept = d.dept AND d.region = 1 ORDER BY e.id",
    "SELECT e.id, d.dept FROM emp AS e JOIN dept AS d "
    "ON e.dept < d.dept ORDER BY e.id, d.dept",
    "SELECT e.id, d.dept FROM emp AS e LEFT OUTER JOIN dept AS d "
    "ON e.dept = d.dept AND e.salary > 1000 ORDER BY e.id, d.dept",
    "SELECT dept, COUNT(*), SUM(salary), AVG(bonus), MIN(name), MAX(salary) "
    "FROM emp GROUP BY dept ORDER BY dept",
    "SELECT dept, COUNT(DISTINCT salary) FROM emp GROUP BY dept "
    "HAVING COUNT(*) > 1 ORDER BY dept",
    "SELECT region, COUNT(*) FROM emp AS e JOIN dept AS d "
    "ON e.dept = d.dept GROUP BY region ORDER BY region",
    "SELECT name FROM emp ORDER BY salary DESC, id",
    "SELECT id FROM emp ORDER BY id FETCH FIRST 3 ROWS ONLY",
    "SELECT dept FROM emp WHERE dept IS NOT NULL "
    "UNION SELECT dept FROM dept ORDER BY 1",
    "SELECT id FROM emp WHERE dept IN (SELECT dept FROM dept "
    "WHERE region = 1) ORDER BY id",
    "SELECT id, CASE WHEN salary > 1500 THEN 'high' ELSE 'low' END "
    "FROM emp ORDER BY id",
    "SELECT k, SUM(v) FROM sparse GROUP BY k ORDER BY k",
    "SELECT s.k, e.id FROM sparse AS s JOIN emp AS e ON s.k = e.id "
    "ORDER BY e.id, s.v",
]

UNORDERED_QUERIES = [
    "SELECT DISTINCT dept FROM emp",
    "SELECT name FROM emp WHERE bonus IS NULL",
    "SELECT COUNT(*), SUM(bonus) FROM emp",
    "SELECT e.name FROM emp AS e, dept AS d WHERE e.dept = d.dept",
    "SELECT dept FROM emp UNION ALL SELECT dept FROM dept",
    "SELECT d.dname FROM dept AS d LEFT OUTER JOIN emp AS e "
    "ON d.dept = e.dept AND e.bonus > 1",
]


def load(db: Database) -> None:
    """Create and fill the shared parity schema."""
    for ddl in SETUP:
        db.execute(ddl)
    for row in EMP_ROWS:
        db.execute("INSERT INTO emp VALUES (?, ?, ?, ?, ?)", list(row))
    for row in DEPT_ROWS:
        db.execute("INSERT INTO dept VALUES (?, ?, ?)", list(row))
    for row in SPARSE_ROWS:
        db.execute("INSERT INTO sparse VALUES (?, ?)", list(row))


@pytest.fixture(scope="module")
def twins():
    row_db = Database("row_twin", execution_mode="row")
    batch_db = Database("batch_twin", execution_mode="batch")
    load(row_db)
    load(batch_db)
    return row_db, batch_db


@pytest.mark.parametrize("sql", ORDERED_QUERIES)
def test_ordered_parity(twins, sql):
    row_db, batch_db = twins
    assert row_db.execute(sql).rows == batch_db.execute(sql).rows


@pytest.mark.parametrize("sql", UNORDERED_QUERIES)
def test_unordered_parity(twins, sql):
    row_db, batch_db = twins
    row_result = row_db.execute(sql).rows
    batch_result = batch_db.execute(sql).rows
    assert sorted(map(repr, row_result)) == sorted(map(repr, batch_result))


def _udtf_db(mode: str, deterministic: bool):
    db = Database(f"udtf_{mode}", execution_mode=mode)
    calls = {"n": 0}

    def impl(x):
        calls["n"] += 1
        return x * 2

    db.register_external_function(
        make_external_function(
            "F", [("x", INTEGER)], [("y", INTEGER)], impl,
            deterministic=deterministic,
        )
    )
    db.execute("CREATE TABLE seeds (s INT)")
    db.execute("INSERT INTO seeds VALUES (1), (1), (3), (2), (3)")
    return db, calls


@pytest.mark.parametrize("deterministic", [False, True])
def test_lateral_udtf_parity_and_invocation_counts(deterministic):
    row_db, row_calls = _udtf_db("row", deterministic)
    batch_db, batch_calls = _udtf_db("batch", deterministic)
    sql = "SELECT s, r.y FROM seeds, TABLE (F(s)) AS r"
    assert row_db.execute(sql).rows == batch_db.execute(sql).rows
    # The lateral fold stays row-at-a-time in batch mode, so the UDTF is
    # invoked (and its DETERMINISTIC cache hit) exactly as often.
    assert row_calls["n"] == batch_calls["n"]
    expected = 3 if deterministic else 5
    assert batch_calls["n"] == expected


def test_sql_udtf_lateral_correlation_parity():
    results = []
    for mode in ("row", "batch"):
        db = Database(f"sqludtf_{mode}", execution_mode=mode)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db.execute(
            "CREATE FUNCTION double_it (x INT) RETURNS TABLE (y INT) "
            "LANGUAGE SQL RETURN SELECT double_it.x * 2 AS y"
        )
        results.append(
            db.execute(
                "SELECT t.a, r.y FROM t, TABLE (double_it(t.a)) AS r "
                "ORDER BY t.a"
            ).rows
        )
    assert results[0] == results[1]


def test_simulated_costs_identical_across_modes():
    from repro.sysmodel.machine import Machine

    elapsed = []
    for mode in ("row", "batch"):
        machine = Machine()
        db = Database(f"cost_{mode}", machine=machine, execution_mode=mode)
        load(db)
        sql = (
            "SELECT e.name, d.dname FROM emp AS e JOIN dept AS d "
            "ON e.dept = d.dept ORDER BY e.id"
        )
        db.execute(sql)
        start = machine.clock.now
        db.execute(sql)
        elapsed.append(machine.clock.now - start)
    assert elapsed[0] == elapsed[1]
