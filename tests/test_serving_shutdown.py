"""Regression coverage for the serving teardown and accounting fixes.

The thread-pool server's close path used to have three soft spots: a
``shutdown()`` that closed sessions *before* draining the pool (so a
running script could be poisoned mid-flight with ``SessionClosedError``),
non-reentrant teardown, and admission slots that leaked whenever a
script failed or ``run_workload`` aborted partway through opening
sessions.  These tests pin the fixed contract:

* ``shutdown()`` is idempotent and drains before closing;
* after every ``run_workload`` — successful, failing, or aborted during
  session open — admission ``in_flight`` and open-session counts are
  back to zero and the server is still usable;
* work submitted after shutdown is refused with a clean
  :class:`~repro.errors.ServingError`.
"""

import pytest

from repro.appsys.datagen import generate_enterprise_data
from repro.errors import ServingError
from repro.serving import ConcurrentIntegrationServer
from repro.serving.workload import WorkloadCall, make_workload

SEED = 1105


@pytest.fixture(scope="module")
def data():
    return generate_enterprise_data()


def drained(server):
    """True when both accounting gates are back to zero."""
    return (
        server.admission.stats()["in_flight"] == 0
        and server.sessions.open_count == 0
    )


def test_accounting_drains_after_a_clean_run(data):
    with ConcurrentIntegrationServer(workers=2, data=data) as server:
        result = server.run_workload(
            make_workload(seed=SEED, sessions=4, calls_per_session=2)
        )
        assert result.calls == 4 * 3  # CREATE TABLE + 2 calls per session
        assert drained(server)
        assert server.admission.stats()["admitted"] == 4


def test_accounting_drains_when_a_script_fails(data):
    workload = make_workload(seed=SEED, sessions=3, calls_per_session=2)
    workload[1].calls.insert(1, WorkloadCall("bogus-kind", "nope"))
    with ConcurrentIntegrationServer(workers=2, data=data) as server:
        with pytest.raises(ValueError, match="bogus-kind"):
            server.run_workload(workload)
        assert drained(server)
        # The failure must not have wedged the server: a clean workload
        # (fresh session ids) still runs to completion afterwards.
        again = make_workload(seed=SEED, sessions=2, calls_per_session=2)
        for script in again:
            script.session_id += 100
        result = server.run_workload(again)
        assert result.calls == 2 * 3
        assert drained(server)


def test_accounting_drains_when_session_open_aborts(data):
    workload = make_workload(seed=SEED, sessions=3, calls_per_session=1)
    workload[2].session_id = workload[0].session_id  # duplicate id
    with ConcurrentIntegrationServer(workers=2, data=data) as server:
        with pytest.raises(ServingError, match="already registered"):
            server.run_workload(workload)
        # The sessions opened before the abort were closed again.
        assert drained(server)


def test_shutdown_is_idempotent_and_reentrant(data):
    server = ConcurrentIntegrationServer(workers=2, data=data)
    result = server.run_workload(
        make_workload(seed=SEED, sessions=2, calls_per_session=1)
    )
    assert result.calls == 2 * 2
    assert not server.closed
    server.shutdown()
    assert server.closed
    server.shutdown()  # second (and third) calls are no-ops
    server.shutdown()
    assert drained(server)


def test_work_after_shutdown_is_refused(data):
    server = ConcurrentIntegrationServer(workers=2, data=data)
    server.shutdown()
    with pytest.raises(ServingError, match="shut down"):
        server.run_workload(make_workload(seed=SEED, sessions=1))
    with pytest.raises(ServingError, match="shut down"):
        server.open_session(0, make_workload(seed=SEED, sessions=1)[0].architecture)
    assert drained(server)


def test_context_manager_shuts_down_once(data):
    with ConcurrentIntegrationServer(workers=1, data=data) as server:
        server.run_workload(make_workload(seed=SEED, sessions=1))
        server.shutdown()  # explicit shutdown inside the with-block
    assert server.closed
    assert drained(server)
