"""Runtime introspection: SYSCAT view, shell .stats, EXPLAIN header."""

import io

import pytest

from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario
from repro.errors import ExecutionError
from repro.fdbs.engine import Database
from repro.fdbs.shell import Shell
from repro.sysmodel.machine import Machine


@pytest.fixture()
def pooled_scenario(data):
    scenario = build_scenario(
        Architecture.ENHANCED_SQL_UDTF, data=data,
        pooling=True, result_cache=True,
    )
    scenario.call("GetSuppQual", "ACME Industrial")
    # Different argument: the result cache misses but the pooled A-UDTF
    # runtimes are warm; the repeat of the first argument hits the cache.
    scenario.call("GetSuppQual", "Globex Metals")
    scenario.call("GetSuppQual", "ACME Industrial")
    return scenario


class TestSyscatView:
    def test_view_lists_all_components(self, pooled_scenario):
        rows = pooled_scenario.server.fdbs.execute(
            "SELECT component, counter, value FROM SYSCAT_RUNTIME_STATS"
        ).rows
        components = {component for component, _, _ in rows}
        assert components == {
            "statement_cache",
            "runtime_pool",
            "result_cache",
            "rmi_udtf",
            "rmi_wfms",
            "faults",
            "mvcc",
            "columnar",
            "joins",
        }

    def test_view_reflects_live_counters(self, pooled_scenario):
        rows = pooled_scenario.server.fdbs.execute(
            "SELECT counter, value FROM SYSCAT_RUNTIME_STATS "
            "WHERE component = 'runtime_pool'"
        ).rows
        counters = dict(rows)
        pool_stats = pooled_scenario.server.machine.runtime_pool.stats()
        assert counters == pool_stats
        assert counters["warm_hits"] > 0

    def test_cache_hits_visible(self, pooled_scenario):
        rows = pooled_scenario.server.fdbs.execute(
            "SELECT value FROM SYSCAT_RUNTIME_STATS "
            "WHERE component = 'result_cache' AND counter = 'hits'"
        ).rows
        assert rows[0][0] > 0

    def test_plain_database_exposes_statement_cache_and_mvcc(self):
        db = Database("plain")
        rows = db.execute(
            "SELECT DISTINCT component FROM SYSCAT_RUNTIME_STATS"
        ).rows
        assert sorted(rows) == [
            ("columnar",),
            ("joins",),
            ("mvcc",),
            ("statement_cache",),
        ]


class TestShellStats:
    def test_stats_command_prints_counters(self, pooled_scenario):
        shell = Shell(pooled_scenario.server.fdbs)
        out = io.StringIO()
        shell.run(io.StringIO(".stats\n.quit\n"), out)
        text = out.getvalue()
        assert "runtime_pool" in text
        assert "warm_hits" in text
        assert "result_cache" in text

    def test_help_mentions_stats(self):
        shell = Shell(Database("help-test"))
        out = io.StringIO()
        shell.run(io.StringIO(".help\n.quit\n"), out)
        assert ".stats" in out.getvalue()


class TestExplainHeader:
    def test_no_header_with_features_off(self, data):
        scenario = build_scenario(Architecture.ENHANCED_SQL_UDTF, data=data)
        text = scenario.server.fdbs.explain("SELECT 1 AS one")
        assert "Runtime(" not in text

    def test_header_shows_pool_and_cache_state(self, pooled_scenario):
        db = pooled_scenario.server.fdbs
        text = db.explain("SELECT 1 AS one")
        first = text.splitlines()[0]
        pool = pooled_scenario.server.machine.runtime_pool
        assert first.startswith("Runtime(")
        assert f"pooling=on({len(pool)}/{pool.capacity} warm)" in first
        assert "result_cache=on(" in first

    def test_explain_statement_carries_header_too(self, pooled_scenario):
        rows = pooled_scenario.server.fdbs.execute(
            "EXPLAIN SELECT 1 AS one"
        ).rows
        assert rows[0][0].startswith("Runtime(")

    def test_header_with_only_pooling_on(self):
        db = Database("pool-only", machine=Machine(), pooling=True)
        first = db.explain("SELECT 1 AS one").splitlines()[0]
        assert "pooling=on(" in first
        assert "result_cache=off" in first


class TestConfigureRuntime:
    def test_requires_machine(self):
        with pytest.raises(ExecutionError):
            Database("no-machine").configure_runtime(pooling=True)

    def test_toggle_after_construction(self):
        db = Database("toggle", machine=Machine())
        db.configure_runtime(pooling=True, result_cache=True)
        assert db.machine.runtime_pool.enabled
        assert db.machine.result_cache.enabled
        db.configure_runtime(pooling=False, result_cache=False)
        assert not db.machine.runtime_pool.enabled
        assert not db.machine.result_cache.enabled

    def test_machine_runtime_stats_keys(self):
        machine = Machine()
        stats = machine.runtime_stats()
        assert set(stats) == {
            "runtime_pool", "result_cache", "rmi_udtf", "rmi_wfms", "faults"
        }
