"""Fault injection + retry/recovery: determinism, costs, asymmetry."""

import pytest

from repro.bench.harness import call_args
from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario
from repro.errors import (
    FencedProcessDiedError,
    RmiDroppedError,
    SimulationError,
    StatementAbortedError,
)
from repro.simtime.clock import VirtualClock
from repro.simtime.costs import DEFAULT_COSTS
from repro.simtime.rng import FaultRng
from repro.sysmodel.faults import (
    FAULT_SITES,
    SITE_ACTIVITY_PROGRAM,
    SITE_FENCED_PROCESS,
    SITE_LOCAL_FUNCTION,
    SITE_RMI_UDTF,
    SITE_RMI_WFMS,
    FaultInjector,
    RetryPolicy,
)
from repro.sysmodel.rmi import RmiChannel

ANCHOR = "GetNoSuppComp"


class TestFaultInjector:
    def test_disabled_injector_never_fails_and_never_draws(self):
        injector = FaultInjector(FaultRng(seed=42), enabled=False)
        injector.arm(SITE_RMI_UDTF, probability=0.5)
        assert not any(injector.should_fail(SITE_RMI_UDTF) for _ in range(100))
        # The RNG stream was never consumed: next roll equals a fresh one.
        assert injector.rng.roll() == FaultRng(seed=42).roll()

    def test_probability_zero_site_never_draws(self):
        """Arming a site at 0 must not perturb other sites' decisions."""
        injector = FaultInjector(FaultRng(seed=7), enabled=True)
        injector.arm(SITE_RMI_UDTF, probability=0.0)
        assert not any(injector.should_fail(SITE_RMI_UDTF) for _ in range(100))
        assert injector.rng.roll() == FaultRng(seed=7).roll()

    def test_certain_faults_do_not_draw(self):
        """probability=1.0 is deterministic: no roll is spent on it."""
        injector = FaultInjector(FaultRng(seed=7), enabled=True)
        injector.arm(SITE_RMI_UDTF, probability=1.0)
        assert all(injector.should_fail(SITE_RMI_UDTF) for _ in range(5))
        assert injector.rng.roll() == FaultRng(seed=7).roll()

    def test_same_seed_same_decisions(self):
        def decisions(seed):
            injector = FaultInjector(FaultRng(seed=seed), enabled=True)
            injector.arm(SITE_LOCAL_FUNCTION, probability=0.3)
            return [injector.should_fail(SITE_LOCAL_FUNCTION) for _ in range(200)]

        assert decisions(11) == decisions(11)
        assert decisions(11) != decisions(12)

    def test_fault_budget_exhausts(self):
        injector = FaultInjector(enabled=True)
        injector.arm(SITE_FENCED_PROCESS, probability=1.0, count=2)
        fired = [injector.should_fail(SITE_FENCED_PROCESS) for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert injector.injected(SITE_FENCED_PROCESS) == 2
        assert injector.injected() == 2

    def test_reset_restores_budget_and_stream(self):
        injector = FaultInjector(FaultRng(seed=3), enabled=True)
        injector.arm(SITE_RMI_WFMS, probability=0.5, count=1)
        first = [injector.should_fail(SITE_RMI_WFMS) for _ in range(20)]
        injector.reset()
        assert injector.injected() == 0
        assert [injector.should_fail(SITE_RMI_WFMS) for _ in range(20)] == first

    def test_unknown_site_rejected(self):
        with pytest.raises(SimulationError, match="unknown fault site"):
            FaultInjector().arm("rmi.bogus")

    def test_invalid_probability_rejected(self):
        with pytest.raises(SimulationError, match="probability"):
            FaultInjector().arm(SITE_RMI_UDTF, probability=1.5)

    def test_stats_counts_per_site(self):
        injector = FaultInjector(enabled=True)
        injector.arm(SITE_RMI_UDTF, probability=1.0, count=3)
        for _ in range(4):
            injector.should_fail(SITE_RMI_UDTF)
        stats = injector.stats()
        assert stats[f"injected[{SITE_RMI_UDTF}]"] == 3
        assert stats["injected_total"] == 3
        assert stats["enabled"] == 1

    def test_all_documented_sites_armable(self):
        injector = FaultInjector()
        for site in FAULT_SITES:
            injector.arm(site, probability=0.1)


class TestRetryPolicy:
    def test_inactive_policy_grants_single_attempt(self):
        policy = RetryPolicy(max_attempts=5)
        assert policy.attempts() == 1
        policy.configure(active=True)
        assert policy.attempts() == 5

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base=4.0, multiplier=2.0)
        assert policy.backoff(1, default_base=99.0) == 4.0
        assert policy.backoff(2, default_base=99.0) == 8.0
        assert policy.backoff(3, default_base=99.0) == 16.0

    def test_backoff_falls_back_to_cost_model_base(self):
        policy = RetryPolicy()
        assert policy.backoff(1, default_base=5.0) == 5.0

    def test_configure_validates(self):
        with pytest.raises(SimulationError, match="max_attempts"):
            RetryPolicy().configure(max_attempts=0)
        with pytest.raises(SimulationError, match="backoff_base"):
            RetryPolicy().configure(backoff_base=-1.0)
        with pytest.raises(SimulationError, match="multiplier"):
            RetryPolicy().configure(multiplier=0.5)


def make_channel(clock, persistent=False):
    channel = RmiChannel(
        "test", clock,
        call_cost=10.0, return_cost=7.0,
        warm_call_cost=4.0, warm_return_cost=3.0,
    )
    channel.configure(persistent=persistent)
    return channel


class TestRmiChannelFaults:
    def test_dropped_hop_charges_timeout_and_detection(self):
        clock = VirtualClock()
        channel = make_channel(clock)
        injector = FaultInjector(enabled=True)
        injector.arm(SITE_RMI_UDTF, probability=1.0, count=1)
        channel.bind_faults(injector, SITE_RMI_UDTF, RetryPolicy(), DEFAULT_COSTS)
        with pytest.raises(RmiDroppedError):
            channel.invoke(lambda: "never")
        # Call hop + timeout + fault detection; no return hop, no remote.
        expected = (
            channel.call_cost + DEFAULT_COSTS.rmi_timeout + DEFAULT_COSTS.fault_detection
        )
        assert clock.now == pytest.approx(expected)
        assert channel.stats()["drops"] == 1
        assert channel.stats()["retries"] == 0

    def test_active_policy_redrives_dropped_hop_with_backoff(self):
        clock = VirtualClock()
        channel = make_channel(clock)
        injector = FaultInjector(enabled=True)
        injector.arm(SITE_RMI_UDTF, probability=1.0, count=1)
        policy = RetryPolicy(max_attempts=2, backoff_base=5.0, active=True)
        channel.bind_faults(injector, SITE_RMI_UDTF, policy, DEFAULT_COSTS)
        assert channel.invoke(lambda: "ok") == "ok"
        expected = (
            channel.call_cost  # dropped attempt's call hop
            + DEFAULT_COSTS.rmi_timeout + DEFAULT_COSTS.fault_detection
            + 5.0  # backoff before the retry
            + channel.call_cost + channel.return_cost  # successful attempt
        )
        assert clock.now == pytest.approx(expected)
        assert channel.stats() == {
            "calls": 2, "warm_calls": 0, "drops": 1, "retries": 1,
            "persistent": 0, "established": 0,
        }
        assert policy.retries == 1

    def test_retries_bounded_by_max_attempts(self):
        clock = VirtualClock()
        channel = make_channel(clock)
        injector = FaultInjector(enabled=True)
        injector.arm(SITE_RMI_UDTF, probability=1.0)  # unlimited faults
        policy = RetryPolicy(max_attempts=3, backoff_base=1.0, active=True)
        channel.bind_faults(injector, SITE_RMI_UDTF, policy, DEFAULT_COSTS)
        with pytest.raises(RmiDroppedError):
            channel.invoke(lambda: "never")
        assert channel.call_count == 3
        assert channel.retries == 2

    def test_remote_exceptions_are_not_retried_by_the_channel(self):
        """Failure semantics past the hop belong to the caller's layer:
        only dropped hops are the channel's business."""
        clock = VirtualClock()
        channel = make_channel(clock)
        policy = RetryPolicy(max_attempts=3, active=True)
        channel.bind_faults(
            FaultInjector(enabled=True), SITE_RMI_UDTF, policy, DEFAULT_COSTS
        )
        calls = []
        with pytest.raises(ValueError):
            channel.invoke(lambda: calls.append(1) or (_ for _ in ()).throw(ValueError()))
        assert len(calls) == 1
        assert channel.retries == 0


class TestRmiChannelExceptionSafety:
    def test_raising_remote_still_pays_return_hop(self):
        """Regression: the return hop was charged after the remote call,
        so a raising remote skipped the hop that carries the failure
        back and the failed call was billed too cheap."""
        clock = VirtualClock()
        channel = make_channel(clock)

        def boom():
            raise ValueError("remote failed")

        with pytest.raises(ValueError):
            channel.invoke(boom)
        assert clock.now == pytest.approx(channel.call_cost + channel.return_cost)

    def test_persistent_channel_established_after_call_hop(self):
        """Regression: a persistent channel only flipped established
        after a *successful* call, so a retry after a remote-side
        failure double-paid the cold connection setup."""
        clock = VirtualClock()
        channel = make_channel(clock, persistent=True)

        def boom():
            raise ValueError("remote failed")

        with pytest.raises(ValueError):
            channel.invoke(boom)
        assert channel.established  # connection setup was paid
        start = clock.now
        channel.invoke(lambda: "ok")
        assert clock.now - start == pytest.approx(
            channel.warm_call_cost + channel.warm_return_cost
        )

    def test_dropped_hop_still_tears_down_persistent_connection(self):
        """A drop kills the connection itself: the next attempt must pay
        cold setup again (unlike a remote-side failure)."""
        clock = VirtualClock()
        channel = make_channel(clock, persistent=True)
        channel.invoke(lambda: "warm-up")
        assert channel.established
        injector = FaultInjector(enabled=True)
        injector.arm(SITE_RMI_UDTF, probability=1.0, count=1)
        channel.bind_faults(injector, SITE_RMI_UDTF, RetryPolicy(), DEFAULT_COSTS)
        with pytest.raises(RmiDroppedError):
            channel.invoke(lambda: "never")
        assert not channel.established


class TestFencedProcessFaults:
    def fenced_scenario(self, data):
        scenario = build_scenario(
            Architecture.ENHANCED_SQL_UDTF, data=data, pooling=True
        )
        return scenario, scenario.server

    def test_cold_fenced_death_aborts_statement(self, data):
        scenario, server = self.fenced_scenario(data)
        server.configure_faults(
            enabled=True, sites={SITE_FENCED_PROCESS: (1.0, 1)}
        )
        with pytest.raises(StatementAbortedError, match=SITE_FENCED_PROCESS):
            server.call(ANCHOR, *call_args(ANCHOR))
        assert server.machine.runtime_pool.fault_evictions >= 1

    def test_warm_fenced_death_degrades_to_cold_restart(self, data):
        scenario, server = self.fenced_scenario(data)
        args = call_args(ANCHOR)
        baseline = server.call(ANCHOR, *args)  # populate warm slots
        server.configure_faults(
            enabled=True, sites={SITE_FENCED_PROCESS: (1.0, 1)}
        )
        # The warm slot dies, is evicted, and the hand-over is retried
        # against a freshly fenced (cold) process: the call completes.
        assert server.call(ANCHOR, *args) == baseline
        assert server.machine.runtime_pool.fault_evictions == 1

    def test_warm_fenced_double_death_aborts(self, data):
        scenario, server = self.fenced_scenario(data)
        args = call_args(ANCHOR)
        server.call(ANCHOR, *args)
        server.configure_faults(
            enabled=True, sites={SITE_FENCED_PROCESS: (1.0, 2)}
        )
        with pytest.raises(StatementAbortedError, match="died again"):
            server.call(ANCHOR, *args)


class TestRobustnessAsymmetry:
    """The paper's central claim, as a fast tier-1 check: the same fault
    at the local-function site is absorbed by the WfMS architecture
    (forward recovery from the input container) but aborts the UDTF
    architecture's statement."""

    def test_wfms_forward_recovery_completes_the_call(self, data):
        scenario = build_scenario(Architecture.WFMS, data=data)
        server = scenario.server
        args = call_args(ANCHOR)
        baseline = server.call(ANCHOR, *args)
        _, fault_free = server.elapsed(server.call, ANCHOR, *args)
        server.configure_faults(
            enabled=True,
            sites={SITE_ACTIVITY_PROGRAM: (1.0, 1)},
            forward_recovery=True,
        )
        rows, elapsed = server.elapsed(server.call, ANCHOR, *args)
        assert rows == baseline  # recovery may change time, never answers
        assert elapsed > fault_free  # detection + restart are not free
        events = [e.event for e in server.wfms_client.engine.audit.events]
        assert "activity crashed (injected)" in events
        assert "forward recovery" in events
        assert "activity recovered" in events

    def test_udtf_aborts_on_the_same_fault(self, data):
        scenario = build_scenario(Architecture.ENHANCED_SQL_UDTF, data=data)
        server = scenario.server
        args = call_args(ANCHOR)
        server.call(ANCHOR, *args)
        server.configure_faults(
            enabled=True,
            sites={SITE_LOCAL_FUNCTION: (1.0, 1)},
            retry_attempts=2,
            forward_recovery=True,  # irrelevant: no navigator to use it
        )
        with pytest.raises(StatementAbortedError, match=SITE_LOCAL_FUNCTION):
            server.call(ANCHOR, *args)

    def test_wfms_survives_local_function_fault_via_retry(self, data):
        scenario = build_scenario(Architecture.WFMS, data=data)
        server = scenario.server
        args = call_args(ANCHOR)
        baseline = server.call(ANCHOR, *args)
        server.configure_faults(
            enabled=True,
            sites={SITE_LOCAL_FUNCTION: (1.0, 1)},
            retry_attempts=2,
            forward_recovery=True,
        )
        assert server.call(ANCHOR, *args) == baseline

    def test_runtime_stats_surface_fault_counters(self, data):
        scenario = build_scenario(Architecture.WFMS, data=data)
        server = scenario.server
        server.configure_faults(
            enabled=True, seed=99, sites={SITE_RMI_WFMS: 0.0}
        )
        stats = server.machine.runtime_stats()["faults"]
        assert stats["enabled"] == 1
        assert stats[f"injected[{SITE_RMI_WFMS}]"] == 0
        assert "retry_active" in stats
        assert "forward_recovery" in stats
