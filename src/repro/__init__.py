"""Reproduction of Hergula & Härder, "Coupling of FDBS and WfMS for
Integrating Database and Application Systems: Architecture, Complexity,
Performance" (EDBT 2002).

Quickstart::

    from repro import Architecture, build_scenario

    scenario = build_scenario(Architecture.WFMS)
    rows = scenario.call("BuySuppComp", 1234, "gearbox")
    # -> [('BUY',)]

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.fdbs` — the federated DBMS substrate (SQL dialect,
  planner, executor, UDTFs, stored procedures, SQL/MED federation);
* :mod:`repro.wfms` — the workflow management substrate (process model,
  FDL, navigator with parallel scheduling, do-until loops);
* :mod:`repro.appsys` — the encapsulated application systems;
* :mod:`repro.wrapper` — the FDBS↔WfMS coupling (fenced runtime,
  controller, SQL/MED registry);
* :mod:`repro.udtf` — the UDTF architecture family;
* :mod:`repro.core` — federated functions, mapping graphs, compilers,
  the integration server and the paper's scenario;
* :mod:`repro.simtime` / :mod:`repro.sysmodel` — the deterministic
  virtual-time machine model behind the performance experiments;
* :mod:`repro.bench` — the experiment harness regenerating every table
  and figure.
"""

from repro.core import (
    Architecture,
    FederatedFunction,
    HeterogeneityCase,
    IntegrationServer,
    MappingGraph,
    Scenario,
    build_scenario,
    capability_matrix,
    classify,
)
from repro.fdbs import Database
from repro.simtime import CostModel, TraceRecorder, VirtualClock
from repro.sysmodel import Machine
from repro.wfms import ProcessBuilder, WfmsClient, WorkflowEngine

__version__ = "1.0.0"

__all__ = [
    "Architecture",
    "CostModel",
    "Database",
    "FederatedFunction",
    "HeterogeneityCase",
    "IntegrationServer",
    "Machine",
    "MappingGraph",
    "ProcessBuilder",
    "Scenario",
    "TraceRecorder",
    "VirtualClock",
    "WfmsClient",
    "WorkflowEngine",
    "build_scenario",
    "capability_matrix",
    "classify",
    "__version__",
]
