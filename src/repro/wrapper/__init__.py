"""The SQL/MED-style coupling layer between FDBS and WfMS.

Three pieces, matching the paper's Sect. 2 and the measurement setup of
Sect. 4:

* :mod:`repro.wrapper.med` — wrapper / foreign-server abstractions
  following the SQL/MED draft the paper cites;
* :mod:`repro.wrapper.udtf_runtime` — the *fenced* table-function
  runtime: every UDTF invocation runs isolated from the database
  process and reaches local functions (or the WfMS) through RMI and the
  controller, charging the Fig. 6 step costs;
* :mod:`repro.wrapper.wfms_wrapper` — the unified wrapper that makes a
  workflow process look like a federated function to the FDBS.
"""

from repro.wrapper.med import ForeignFunctionWrapper, MedRegistry
from repro.wrapper.udtf_runtime import FencedFunctionRuntime, FencedUdtfContext
from repro.wrapper.wfms_wrapper import WfmsWrapper

__all__ = [
    "ForeignFunctionWrapper",
    "MedRegistry",
    "FencedFunctionRuntime",
    "FencedUdtfContext",
    "WfmsWrapper",
]
