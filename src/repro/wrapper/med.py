"""SQL/MED-flavoured wrapper interfaces.

The paper plans for wrappers "according to the draft of SQL/MED" and
falls back to UDTFs because no product implemented the draft.  We model
the draft's shape anyway: a *wrapper* is the piece of code the FDBS
loads to talk to a class of foreign servers; a *foreign server* is one
instance of such a source; *function mappings* expose foreign functions
through the wrapper.  The WfMS coupling and the fenced UDTF runtime
both sit behind this interface, so swapping the coupling style is a
registry change, not an engine change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import CatalogError
from repro.fdbs.catalog import ColumnDef, FunctionParam
from repro.simtime.trace import TraceRecorder


class ForeignFunctionWrapper(Protocol):
    """What the FDBS needs from a SQL/MED wrapper: invoke one foreign
    function and get rows back."""

    def invoke_foreign(
        self,
        function_name: str,
        args: list[object],
        trace: TraceRecorder | None = None,
    ) -> list[tuple]:
        """Invoke one foreign function; returns result rows."""
        ...


@dataclass
class ForeignFunctionMapping:
    """One foreign function exposed through a wrapper."""

    name: str
    params: list[FunctionParam]
    returns: list[ColumnDef]
    server: str


@dataclass
class ForeignServerEntry:
    """One foreign server registered under a wrapper."""

    name: str
    wrapper_name: str
    handler: ForeignFunctionWrapper


@dataclass
class MedRegistry:
    """Registry of wrappers, foreign servers and function mappings.

    A thin SQL/MED-shaped bookkeeping layer used by the integration
    server to keep the coupling style explicit and swappable.
    """

    wrappers: dict[str, str] = field(default_factory=dict)  # name -> description
    servers: dict[str, ForeignServerEntry] = field(default_factory=dict)
    function_mappings: dict[str, ForeignFunctionMapping] = field(default_factory=dict)

    def create_wrapper(self, name: str, description: str = "") -> None:
        """Register a wrapper (duplicates rejected)."""
        key = name.upper()
        if key in self.wrappers:
            raise CatalogError(f"wrapper {name!r} already exists")
        self.wrappers[key] = description

    def create_server(
        self, name: str, wrapper_name: str, handler: ForeignFunctionWrapper
    ) -> None:
        """Register a foreign server under an existing wrapper."""
        if wrapper_name.upper() not in self.wrappers:
            raise CatalogError(f"unknown wrapper {wrapper_name!r}")
        key = name.upper()
        if key in self.servers:
            raise CatalogError(f"server {name!r} already exists")
        self.servers[key] = ForeignServerEntry(name, wrapper_name, handler)

    def create_function_mapping(self, mapping: ForeignFunctionMapping) -> None:
        """Expose a foreign function through an existing server."""
        if mapping.server.upper() not in self.servers:
            raise CatalogError(f"unknown server {mapping.server!r}")
        key = mapping.name.upper()
        if key in self.function_mappings:
            raise CatalogError(f"function mapping {mapping.name!r} already exists")
        self.function_mappings[key] = mapping

    def server_for_function(self, function_name: str) -> ForeignServerEntry:
        """The server entry serving a mapped function."""
        mapping = self.function_mappings.get(function_name.upper())
        if mapping is None:
            raise CatalogError(f"no function mapping for {function_name!r}")
        return self.servers[mapping.server.upper()]

    def invoke(
        self,
        function_name: str,
        args: list[object],
        trace: TraceRecorder | None = None,
    ) -> list[tuple]:
        """Route a foreign-function call to its server's wrapper."""
        entry = self.server_for_function(function_name)
        return entry.handler.invoke_foreign(function_name, args, trace)
