"""The fenced UDTF runtime.

DB2's security restriction (paper, Sect. 4): a UDTF may not connect to
a database on the same server from its own process, so every UDTF runs
*fenced* and reaches local functions — or the WfMS — through an RMI hop
to the controller.  This runtime replaces the default in-process
:class:`~repro.fdbs.engine.FunctionRuntime` of the integration FDBS and
charges exactly the step costs of the paper's Fig. 6 breakdown:

UDTF architecture (per federated-function call with *n* A-UDTFs)::

    Start I-UDTF        once      udtf_start_integration
    Prepare A-UDTFs     n times   udtf_prepare_access
    RMI calls           n times   rmi_call
    controller runs     n times   controller_dispatch
    Process activities  n times   local function work (in the app system)
    Finish A-UDTFs      n times   udtf_finish_access
    RMI returns         n times   rmi_return
    Finish I-UDTF       once      udtf_finish_integration

WfMS architecture (per federated-function call)::

    Start UDTF                          wf_udtf_start
    Process UDTF                        wf_udtf_process
    RMI call / RMI return               wf_rmi_call / wf_rmi_return
    Controller                          controller_wfms_brokerage
    Start workflows and Java environment, Process activities, Workflow
                                        (charged inside the WfMS client)
    Finish UDTF                         wf_udtf_finish

With the controller disabled (the paper's ablation) the RMI hops and
controller costs vanish on both paths.
"""

from __future__ import annotations

import threading

from repro.errors import FencedModeError, FencedProcessDiedError
from repro.fdbs.catalog import ExternalTableFunction, SqlTableFunction
from repro.fdbs.engine import Database, FunctionRuntime
from repro.fdbs.expr import EvalContext
from repro.simtime.trace import TraceRecorder, maybe_span
from repro.sysmodel.faults import SITE_FENCED_PROCESS
from repro.sysmodel.machine import Machine

#: Catalog language tag marking the connecting UDTF of the WfMS coupling.
WFMS_LANGUAGE = "WFMS"

from repro.udtf.procedural import PROCEDURAL_LANGUAGE  # noqa: E402


class FencedUdtfContext:
    """Execution context handed to fenced UDTF implementations.

    Its only job is to enforce the fenced-mode security model: an
    implementation that tries to open an in-process connection to the
    hosting database gets :class:`~repro.errors.FencedModeError`, which
    is precisely why the controller exists.
    """

    def __init__(self, database: Database):
        self._database = database

    def connect_in_process(self) -> Database:
        """Always raises FencedModeError (the security rule)."""
        raise FencedModeError(
            "fenced UDTFs cannot connect to the hosting database from their "
            "own process; route the request through the controller"
        )


class FencedFunctionRuntime(FunctionRuntime):
    """Cost-charging, controller-routed table-function runtime."""

    def __init__(self, database: Database, machine: Machine):
        super().__init__(database)
        self.machine = machine
        self.fenced_invocations = 0
        #: Guards the invocation counter under concurrent sessions.
        self._invocation_lock = threading.Lock()

    def _note_invocation(self) -> None:
        with self._invocation_lock:
            self.fenced_invocations += 1

    # -- SQL I-UDTFs -------------------------------------------------------------

    def invoke_sql(
        self, function: SqlTableFunction, args: list[object], ctx: EvalContext
    ) -> list[tuple]:
        """I-UDTF path: start/finish costs around the SQL body."""
        trace = ctx.trace
        self._note_invocation()
        costs = self.machine.costs
        with maybe_span(trace, "Start I-UDTF"):
            self.machine.clock.advance(costs.udtf_start_integration)
        rows = self.database.run_sql_function(function, args, trace=trace)
        with maybe_span(trace, "Finish I-UDTF"):
            self.machine.clock.advance(costs.udtf_finish_integration)
        return rows

    # -- external functions ----------------------------------------------------------

    def invoke_external(
        self, function: ExternalTableFunction, args: list[object], ctx: EvalContext
    ) -> list[tuple]:
        """Dispatch by language tag: WfMS, procedural, or A-UDTF."""
        language = function.language.upper()
        if language == WFMS_LANGUAGE:
            return self._invoke_wfms(function, args, ctx.trace)
        if language == PROCEDURAL_LANGUAGE:
            return self._invoke_procedural(function, args, ctx.trace)
        return self._invoke_access_udtf(function, args, ctx.trace)

    def _invoke_procedural(
        self,
        function: ExternalTableFunction,
        args: list[object],
        trace: TraceRecorder | None,
    ) -> list[tuple]:
        """A procedural ("Java") I-UDTF: integration-UDTF start/finish
        around a multi-statement body; each inner statement and A-UDTF
        pays its own way."""
        self._note_invocation()
        costs = self.machine.costs
        with maybe_span(trace, "Start I-UDTF"):
            self.machine.clock.advance(costs.udtf_start_integration)
        from repro.fdbs.functions import normalize_rows

        assert function.implementation is not None
        rows = normalize_rows(
            function.implementation(*args, trace=trace), function.name
        )
        with maybe_span(trace, "Finish I-UDTF"):
            self.machine.clock.advance(costs.udtf_finish_integration)
        return rows

    def _invoke_access_udtf(
        self,
        function: ExternalTableFunction,
        args: list[object],
        trace: TraceRecorder | None,
    ) -> list[tuple]:
        """One A-UDTF call: fenced process, RMI, controller dispatch.

        With the machine's result cache on, a repeat invocation of a
        deterministic A-UDTF with equal arguments is served from
        integration-server memory — no fenced process, no RMI hop, no
        local-function work.  With the runtime pool on, a resident
        fenced process turns the prepare step into a warm hand-off
        (span labelled ``Prepare A-UDTFs (warm)``).
        """
        self._note_invocation()
        costs = self.machine.costs
        cache = self.machine.result_cache
        runtime_key = f"audtf:{function.name}"
        if cache.enabled and function.source_deterministic:
            cached = cache.get(
                self.machine.result_cache_namespace(), runtime_key, tuple(args)
            )
            if cached is not None:
                with maybe_span(trace, "Result cache"):
                    self.machine.clock.advance(costs.result_cache_hit_cost)
                return cached

        def run() -> list[tuple]:
            # The local function's own work — Fig. 6's 'Process
            # activities' row of the UDTF approach.
            with maybe_span(trace, "Process activities"):
                return self.database.run_external_function(function, args)

        if function.fenced:
            self._prepare_fenced_process(function, runtime_key, trace)
        controller = self.machine.controller
        if function.fenced and controller.enabled:
            rows = self.machine.udtf_rmi.invoke(
                lambda: controller.dispatch(run, trace=trace, label="controller runs"),
                trace=trace,
                call_label="RMI calls",
                return_label="RMI returns",
            )
        else:
            # Unfenced function, or the paper's hypothetical prototype
            # without the controller: call straight through.
            rows = run()
        if function.fenced:
            with maybe_span(trace, "Finish A-UDTFs"):
                self.machine.clock.advance(costs.udtf_finish_access)
        if cache.enabled and function.source_deterministic:
            cache.put(
                self.machine.result_cache_namespace(),
                runtime_key,
                tuple(args),
                rows,
                owner=function.owner_system,
            )
        return rows

    def _prepare_fenced_process(
        self,
        function: ExternalTableFunction,
        runtime_key: str,
        trace: TraceRecorder | None,
    ) -> None:
        """Fenced-process hand-over: warm or cold prepare, with the
        fault-injection retry ladder (warm slot dies -> cold restart;
        cold process dies -> statement aborts)."""
        costs = self.machine.costs
        warm = self.machine.runtime_pool.acquire(runtime_key)
        with maybe_span(
            trace, "Prepare A-UDTFs (warm)" if warm else "Prepare A-UDTFs"
        ):
            self.machine.clock.advance(
                costs.udtf_warm_prepare if warm else costs.udtf_prepare_access
            )
        if self.machine.fault_injector.should_fail(SITE_FENCED_PROCESS):
            with maybe_span(trace, "Fault detection"):
                self.machine.clock.advance(costs.fault_detection)
            self.machine.runtime_pool.evict(runtime_key)
            if warm:
                # Graceful degradation: the warm slot died, retry the
                # hand-over with a freshly fenced process (cold cost).
                self.machine.runtime_pool.acquire(runtime_key)
                with maybe_span(trace, "Prepare A-UDTFs"):
                    self.machine.clock.advance(costs.udtf_prepare_access)
                if self.machine.fault_injector.should_fail(SITE_FENCED_PROCESS):
                    with maybe_span(trace, "Fault detection"):
                        self.machine.clock.advance(costs.fault_detection)
                    self.machine.runtime_pool.evict(runtime_key)
                    raise FencedProcessDiedError(
                        SITE_FENCED_PROCESS,
                        f"fenced process of A-UDTF {function.name!r} "
                        "died again after a cold restart",
                    )
            else:
                # A cold fenced process died during hand-over; the
                # UDTF architecture has no navigation state to
                # recover from, so the statement aborts.
                raise FencedProcessDiedError(
                    SITE_FENCED_PROCESS,
                    f"fenced process of A-UDTF {function.name!r} died "
                    "during process hand-over",
                )

    def invoke_batch(
        self,
        function,
        args_list: list[list[object]],
        ctx: EvalContext,
    ) -> list[list[tuple]]:
        """Batched A-UDTF invocation for UDTF bind joins.

        One fenced-process hand-over, one RMI round trip and one finish
        step are shared by every argument tuple in the batch; only the
        controller dispatch and the local-function work stay per tuple.
        Result-cache hits are served before the batch forms, exactly as
        in the one-at-a-time path.  Non-A-UDTF functions (SQL bodies,
        WfMS connectors, procedural I-UDTFs, unfenced externals) fall
        back to the base-class loop — cost-identical to row-at-a-time.
        """
        if (
            not isinstance(function, ExternalTableFunction)
            or not function.fenced
            or function.language.upper() in (WFMS_LANGUAGE, PROCEDURAL_LANGUAGE)
        ):
            return super().invoke_batch(function, args_list, ctx)
        trace = ctx.trace
        costs = self.machine.costs
        cache = self.machine.result_cache
        runtime_key = f"audtf:{function.name}"
        results: list[list[tuple] | None] = [None] * len(args_list)
        misses: list[int] = []
        for index, args in enumerate(args_list):
            if cache.enabled and function.source_deterministic:
                cached = cache.get(
                    self.machine.result_cache_namespace(), runtime_key, tuple(args)
                )
                if cached is not None:
                    with maybe_span(trace, "Result cache"):
                        self.machine.clock.advance(costs.result_cache_hit_cost)
                    results[index] = cached
                    continue
            misses.append(index)
        if not misses:
            return results  # type: ignore[return-value]
        self._note_invocation()
        self._prepare_fenced_process(function, runtime_key, trace)

        def run_one(args: list[object]) -> list[tuple]:
            with maybe_span(trace, "Process activities"):
                return self.database.run_external_function(function, args)

        controller = self.machine.controller
        if controller.enabled:
            miss_rows = self.machine.udtf_rmi.invoke(
                lambda: [
                    controller.dispatch(
                        lambda args=args_list[index]: run_one(args),
                        trace=trace,
                        label="controller runs",
                    )
                    for index in misses
                ],
                trace=trace,
                call_label="RMI calls",
                return_label="RMI returns",
            )
        else:
            miss_rows = [run_one(args_list[index]) for index in misses]
        with maybe_span(trace, "Finish A-UDTFs"):
            self.machine.clock.advance(costs.udtf_finish_access)
        for index, rows in zip(misses, miss_rows):
            results[index] = rows
            if cache.enabled and function.source_deterministic:
                cache.put(
                    self.machine.result_cache_namespace(),
                    runtime_key,
                    tuple(args_list[index]),
                    rows,
                    owner=function.owner_system,
                )
        return results  # type: ignore[return-value]

    def _invoke_wfms(
        self,
        function: ExternalTableFunction,
        args: list[object],
        trace: TraceRecorder | None,
    ) -> list[tuple]:
        """The connecting UDTF of the WfMS architecture."""
        self._note_invocation()
        costs = self.machine.costs
        with maybe_span(trace, "Start UDTF"):
            self.machine.clock.advance(costs.wf_udtf_start)
        with maybe_span(trace, "Process UDTF"):
            self.machine.clock.advance(costs.wf_udtf_process)
        if function.implementation is None:
            return self.database.run_external_function(function, args)  # raises

        def start() -> list[tuple]:
            # WfMS connecting functions take the trace so the workflow
            # client can attribute its own Fig. 6 steps.
            from repro.fdbs.functions import normalize_rows

            return normalize_rows(
                function.implementation(*args, trace=trace), function.name
            )
        controller = self.machine.controller
        if controller.enabled:
            rows = self.machine.wf_rmi.invoke(
                lambda: controller.broker_workflow(start, trace=trace),
                trace=trace,
                call_label="RMI call",
                return_label="RMI return",
            )
        else:
            rows = start()
        with maybe_span(trace, "Finish UDTF"):
            self.machine.clock.advance(costs.wf_udtf_finish)
        return rows
