"""The unified FDBS→WfMS wrapper.

"A unified wrapper can be used to isolate the FDBS from the intricacies
of the federated function execution and to bridge to the WfMS" (paper,
Sect. 2).  For each federated function the wrapper

1. deploys the workflow process template implementing the mapping,
2. registers a *connecting UDTF* in the FDBS catalog (language tag
   ``WFMS``) whose implementation starts the process through the
   :class:`~repro.wfms.api.WfmsClient` and turns the output container
   into result rows.

The fenced runtime (:mod:`repro.wrapper.udtf_runtime`) adds the RMI and
controller hops around the implementation, so the wrapper itself stays
pure plumbing.
"""

from __future__ import annotations

from repro.errors import WorkflowError
from repro.fdbs.catalog import ColumnDef, ExternalTableFunction, FunctionParam
from repro.fdbs.engine import Database
from repro.fdbs.types import SqlType
from repro.simtime.trace import TraceRecorder
from repro.wfms.api import WfmsClient
from repro.wfms.model import ProcessDefinition
from repro.wrapper.udtf_runtime import WFMS_LANGUAGE


class WfmsWrapper:
    """Bridges federated functions from the FDBS to workflow processes."""

    def __init__(self, database: Database, client: WfmsClient):
        self.database = database
        self.client = client
        self.registered: list[str] = []

    def register_federated_function(
        self,
        definition: ProcessDefinition,
        params: list[tuple[str, SqlType]] | None = None,
        returns: list[tuple[str, SqlType]] | None = None,
    ) -> ExternalTableFunction:
        """Deploy ``definition`` and expose it as a connecting UDTF.

        ``params`` / ``returns`` default to the process input / output
        container members — "the signature of the connecting UDTF hides
        the names of the functions and parameters handled by the
        workflow process" (trivial case), so overriding them is how name
        mappings happen.
        """
        self.client.deploy(definition)
        param_specs = params if params is not None else [
            (name, member_type) for name, member_type in definition.input_type.members
        ]
        return_specs = returns if returns is not None else [
            (name, member_type) for name, member_type in definition.output_type.members
        ]
        if len(param_specs) != len(definition.input_type.members):
            raise WorkflowError(
                f"federated function {definition.name!r}: parameter list must "
                "match the process input container"
            )
        if len(return_specs) != len(definition.output_type.members):
            raise WorkflowError(
                f"federated function {definition.name!r}: return list must "
                "match the process output container"
            )
        input_members = definition.input_type.member_names()
        output_members = definition.output_type.member_names()

        def implementation(*args: object, trace: TraceRecorder | None = None):
            inputs = dict(zip(input_members, args))
            instance = self.client.run_process(definition.name, inputs, trace)
            output = instance.output
            assert output is not None
            if output.rows is not None:
                return output.rows
            return [tuple(output.get(member) for member in output_members)]

        function = ExternalTableFunction(
            name=definition.name,
            params=[FunctionParam(n, t) for n, t in param_specs],
            returns=[ColumnDef(n, t) for n, t in return_specs],
            external_name=f"wfms:{definition.name}",
            language=WFMS_LANGUAGE,
            fenced=True,
            implementation=implementation,
        )
        self.database.register_external_function(function)
        self.registered.append(definition.name)
        return function

    def invoke_foreign(
        self,
        function_name: str,
        args: list[object],
        trace: TraceRecorder | None = None,
    ) -> list[tuple]:
        """SQL/MED wrapper interface: run a federated function directly
        (bypassing SQL), mainly for tests and the pure-WfMS topology."""
        function = self.database.catalog.get_function(function_name)
        if not isinstance(function, ExternalTableFunction) or (
            function.language.upper() != WFMS_LANGUAGE
        ):
            raise WorkflowError(
                f"{function_name!r} is not a WfMS-coupled federated function"
            )
        assert function.implementation is not None
        result = function.implementation(*args, trace=trace)
        from repro.fdbs.functions import normalize_rows

        return normalize_rows(result, function_name)
