"""Warm runtime pool: reusable JVMs / fenced processes.

The paper's Fig. 6 attributes the bulk of per-federated-function latency
to process starts — a fresh JVM per WfMS activity program, a fenced
process hand-over per A-UDTF invocation.  The pool keeps a bounded set
of such runtimes *warm* after first use: a repeat invocation of the same
program (or A-UDTF) finds its runtime resident and pays a small warm
dispatch cost instead of the cold start.  Capacity is bounded and
eviction is LRU — an evicted runtime is cold again, exactly like a plan
falling out of the statement cache.

The pool charges nothing itself; callers ask :meth:`WarmRuntimePool.acquire`
whether the keyed runtime is warm and then charge the appropriate cold or
warm cost (so existing trace-span structure is preserved bit-identically
when pooling is disabled).
"""

from __future__ import annotations

import threading

DEFAULT_POOL_CAPACITY = 8
"""Default number of warm runtimes kept resident."""


class WarmRuntimePool:
    """Bounded LRU pool of warm runtime slots, keyed by runtime identity.

    Keys are free strings; the integration server uses
    ``"program:<id>"`` for WfMS activity programs and ``"audtf:<name>"``
    for fenced A-UDTF processes.  With ``enabled=False`` (the default)
    every :meth:`acquire` reports cold and keeps no slots — only the
    cold-start counter moves, which never touches the virtual clock, so
    the disabled pool is invisible to the cost accounting.
    """

    def __init__(self, capacity: int = DEFAULT_POOL_CAPACITY, enabled: bool = False):
        if capacity < 1:
            raise ValueError("pool capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self._slots: dict[str, int] = {}
        #: Guards slots and counters: concurrent sessions sharing one
        #: machine must not race the LRU pop/reinsert or lose counts.
        self._lock = threading.RLock()
        self.warm_hits = 0
        self.cold_starts = 0
        self.evictions = 0
        self.fault_evictions = 0

    def configure(
        self, enabled: bool | None = None, capacity: int | None = None
    ) -> None:
        """Enable/disable the pool and/or resize it.

        Shrinking evicts least-recently-used slots down to the new
        capacity; disabling empties the pool (nothing stays warm).
        """
        with self._lock:
            if capacity is not None:
                if capacity < 1:
                    raise ValueError("pool capacity must be positive")
                self.capacity = capacity
                while len(self._slots) > self.capacity:
                    self._evict_lru()
            if enabled is not None:
                self.enabled = enabled
                if not enabled:
                    self._slots.clear()

    def acquire(self, key: str) -> bool:
        """Whether the keyed runtime is warm; registers it either way.

        Returns True for a warm hit (LRU position refreshed) and False
        for a cold start (slot inserted, evicting the LRU slot when the
        pool is full).  A disabled pool always reports cold and keeps no
        slots, but still *counts* the cold starts it observes — the
        ablation experiments read the counter deltas to attribute
        start costs identically in both configurations.
        """
        with self._lock:
            if not self.enabled:
                self.cold_starts += 1
                return False
            if key in self._slots:
                self.warm_hits += 1
                self._slots.pop(key)
                self._slots[key] = 1  # move to MRU position
                return True
            self.cold_starts += 1
            if len(self._slots) >= self.capacity:
                self._evict_lru()
            self._slots[key] = 1
            return False

    def is_warm(self, key: str) -> bool:
        """Whether the keyed runtime is currently resident (no side effects)."""
        with self._lock:
            return self.enabled and key in self._slots

    def evict(self, key: str) -> bool:
        """Drop one slot because its runtime died (fault path).

        Returns whether the slot was resident.  Counted separately from
        capacity evictions so the fault experiments can tell crashed
        runtimes apart from LRU pressure.
        """
        with self._lock:
            if key in self._slots:
                del self._slots[key]
                self.fault_evictions += 1
                return True
            return False

    def _evict_lru(self) -> None:
        oldest = next(iter(self._slots))
        del self._slots[oldest]
        self.evictions += 1

    def contents(self) -> list[str]:
        """Resident slot keys, least recently used first."""
        with self._lock:
            return list(self._slots)

    def reset(self) -> None:
        """Evict everything — the machine has been rebooted."""
        with self._lock:
            self._slots.clear()

    def stats(self) -> dict[str, int]:
        """Warm-hit/cold-start/eviction counters plus size and capacity."""
        with self._lock:
            return {
                "warm_hits": self.warm_hits,
                "cold_starts": self.cold_starts,
                "evictions": self.evictions,
                "fault_evictions": self.fault_evictions,
                "size": len(self._slots),
                "capacity": self.capacity,
            }

    def __len__(self) -> int:
        return len(self._slots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<WarmRuntimePool {state} {len(self._slots)}/{self.capacity}>"
