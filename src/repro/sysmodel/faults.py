"""Deterministic fault injection + retry policy for the coupling path.

The paper's central robustness argument: the WfMS owns navigation state,
so a failed federated function can be *restarted* (forward recovery from
the activity's input container), while the pure-UDTF architectures must
abort the whole SQL statement.  SkyQuery makes per-source failure
isolation a first-class mediator concern; this module gives our
IntegrationServer/RmiChannel/appsys stack the same treatment.

A :class:`FaultInjector` decides — driven by the seeded
:class:`~repro.simtime.rng.FaultRng` — whether a pass through a *named
site* fails.  Sites map onto the failure classes the paper discusses:

========================  ==================================================
site                      failure injected
========================  ==================================================
``rmi.udtf``              RMI hop to the controller dropped (A-UDTF path)
``rmi.wfms``              container-shipping RMI hop to the WfMS dropped
``appsys.local_function`` local function of an application system errors
``wfms.activity_program`` activity-program JVM crashes
``udtf.fenced_process``   fenced A-UDTF process dies during hand-over
========================  ==================================================

The injector itself never touches the virtual clock; the component at
each site charges the calibrated fault-detection / timeout costs from
:mod:`repro.simtime.costs` when a fault fires.  With ``enabled=False``
(the default) every :meth:`FaultInjector.should_fail` returns False
without drawing from the RNG, so the disabled harness is invisible —
bit-identical timings, same as pooling.  The same holds for an *armed*
site at probability 0: no draw, no charge, no behavioural change.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.simtime.rng import FaultRng

SITE_RMI_UDTF = "rmi.udtf"
"""RMI hop between a fenced A-UDTF and the controller."""

SITE_RMI_WFMS = "rmi.wfms"
"""Container-shipping RMI hop between the connecting UDTF and the WfMS."""

SITE_LOCAL_FUNCTION = "appsys.local_function"
"""Local-function execution inside an application system."""

SITE_ACTIVITY_PROGRAM = "wfms.activity_program"
"""The fresh JVM running one workflow activity program."""

SITE_FENCED_PROCESS = "udtf.fenced_process"
"""The fenced process hosting one A-UDTF invocation."""

FAULT_SITES = (
    SITE_RMI_UDTF,
    SITE_RMI_WFMS,
    SITE_LOCAL_FUNCTION,
    SITE_ACTIVITY_PROGRAM,
    SITE_FENCED_PROCESS,
)
"""All named injection sites, in documentation order."""


@dataclass
class FaultPlan:
    """Injection plan for one site: probability and an optional budget."""

    probability: float = 0.0
    count: int | None = None
    """Inject at most this many faults at the site (None = unlimited)."""
    injected: int = 0

    def exhausted(self) -> bool:
        """Whether the site's fault budget is used up."""
        return self.count is not None and self.injected >= self.count


class FaultInjector:
    """Seeded, per-site fault decision source.

    ``arm`` configures one site; ``should_fail`` is the single question
    components ask.  Decisions are deterministic given the seed and the
    sequence of calls, which is what makes E10 reproducible.
    """

    def __init__(self, rng: FaultRng | None = None, enabled: bool = False):
        self.rng = rng if rng is not None else FaultRng()
        self.enabled = enabled
        self._plans: dict[str, FaultPlan] = {}
        #: Makes the RNG draw + budget decrement of :meth:`should_fail`
        #: atomic: concurrent sessions must neither over-spend a site's
        #: fault budget nor tear the decision stream mid-draw.
        self._lock = threading.RLock()

    def configure(
        self, enabled: bool | None = None, seed: int | None = None
    ) -> None:
        """Switch the harness on/off and/or reseed the decision stream."""
        if seed is not None:
            self.rng.reseed(seed)
        if enabled is not None:
            self.enabled = enabled

    def arm(
        self,
        site: str,
        probability: float = 1.0,
        count: int | None = None,
    ) -> None:
        """Arm one site: fail each pass with ``probability``, at most
        ``count`` times in total (None = unlimited)."""
        if site not in FAULT_SITES:
            raise SimulationError(
                f"unknown fault site {site!r}; expected one of {FAULT_SITES}"
            )
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(
                f"fault probability must be in [0, 1], got {probability!r}"
            )
        if count is not None and count < 0:
            raise SimulationError(f"fault count must be >= 0, got {count!r}")
        with self._lock:
            self._plans[site] = FaultPlan(probability=probability, count=count)

    def disarm(self, site: str | None = None) -> None:
        """Forget one site's plan (or all plans)."""
        with self._lock:
            if site is None:
                self._plans.clear()
            else:
                self._plans.pop(site, None)

    def should_fail(self, site: str) -> bool:
        """Whether this pass through ``site`` fails (counts the fault).

        Probability-0 and unarmed sites never draw from the RNG, so
        arming a site at probability 0 cannot perturb any other site's
        decision stream.
        """
        if not self.enabled:
            return False
        with self._lock:
            plan = self._plans.get(site)
            if plan is None or plan.probability <= 0.0 or plan.exhausted():
                return False
            if plan.probability < 1.0 and self.rng.roll() >= plan.probability:
                return False
            plan.injected += 1
            return True

    def injected(self, site: str | None = None) -> int:
        """Faults injected at one site (or across all sites)."""
        with self._lock:
            if site is not None:
                plan = self._plans.get(site)
                return plan.injected if plan is not None else 0
            return sum(plan.injected for plan in self._plans.values())

    def reset(self) -> None:
        """Zero the injection counters and restart the RNG stream."""
        with self._lock:
            for plan in self._plans.values():
                plan.injected = 0
            self.rng.reseed(self.rng.seed)

    def stats(self) -> dict[str, int]:
        """Per-site injection counters plus the enabled flag and total."""
        with self._lock:
            counters = {
                f"injected[{site}]": plan.injected
                for site, plan in sorted(self._plans.items())
            }
            counters["injected_total"] = self.injected()
            counters["enabled"] = int(self.enabled)
            return counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<FaultInjector {state} {self.injected()} injected>"


@dataclass
class RetryPolicy:
    """Bounded retries with exponential backoff in virtual time.

    Honored by :meth:`~repro.sysmodel.rmi.RmiChannel.invoke` for dropped
    hops and by the workflow engine for failed program activities.  With
    ``active=False`` (the default) no component retries beyond its
    paper-calibrated behaviour and no backoff is ever charged, keeping
    the disabled policy invisible to the cost accounting.
    """

    max_attempts: int = 3
    backoff_base: float | None = None
    """First retry's backoff; None uses ``costs.retry_backoff_base``."""
    multiplier: float = 2.0
    active: bool = False
    retries: int = 0
    """Total retries granted across all components (stats counter)."""
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def configure(
        self,
        active: bool | None = None,
        max_attempts: int | None = None,
        backoff_base: float | None = None,
        multiplier: float | None = None,
    ) -> None:
        """Adjust the policy in place (all components share one)."""
        if max_attempts is not None:
            if max_attempts < 1:
                raise SimulationError(
                    f"max_attempts must be >= 1, got {max_attempts!r}"
                )
            self.max_attempts = max_attempts
        if backoff_base is not None:
            if backoff_base < 0:
                raise SimulationError(
                    f"backoff_base must be >= 0, got {backoff_base!r}"
                )
            self.backoff_base = backoff_base
        if multiplier is not None:
            if multiplier < 1.0:
                raise SimulationError(
                    f"multiplier must be >= 1, got {multiplier!r}"
                )
            self.multiplier = multiplier
        if active is not None:
            self.active = active

    def attempts(self) -> int:
        """How many attempts a component may make (1 when inactive)."""
        return self.max_attempts if self.active else 1

    def backoff(self, attempt: int, default_base: float) -> float:
        """Virtual-time delay before retry ``attempt`` (1-based)."""
        base = self.backoff_base if self.backoff_base is not None else default_base
        return base * (self.multiplier ** (attempt - 1))

    def note_retry(self) -> None:
        """Record one granted retry (stats)."""
        with self._lock:
            self.retries += 1

    def stats(self) -> dict[str, int]:
        """Policy parameters and the granted-retry counter."""
        with self._lock:
            return {
                "active": int(self.active),
                "max_attempts": self.max_attempts,
                "retries": self.retries,
            }
