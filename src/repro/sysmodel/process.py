"""Simulated OS processes and JVMs.

A process is a named entity with a lifecycle; starting one charges its
start cost to the virtual clock.  The model is intentionally small: the
paper's performance story only needs *when* a process start is paid
(boot vs. per call vs. never) and *how expensive* it is.
"""

from __future__ import annotations

import enum
import threading

from repro.errors import ProcessStateError
from repro.simtime.clock import VirtualClock


class ProcessState(enum.Enum):
    """Lifecycle states of a simulated process."""

    STOPPED = "stopped"
    RUNNING = "running"


class OsProcess:
    """A simulated operating-system process.

    ``start_cost`` is charged to the clock when the process transitions
    from STOPPED to RUNNING.  ``ensure_running`` is the common idiom:
    lazily start on first use, free afterwards — this is what makes the
    first call after machine boot the slowest (Sect. 4, ¶3).
    """

    def __init__(self, name: str, clock: VirtualClock, start_cost: float):
        self.name = name
        self._clock = clock
        self.start_cost = start_cost
        self.state = ProcessState.STOPPED
        self.start_count = 0
        #: Serializes lifecycle check-then-act transitions: two threads
        #: racing through ensure_running must charge exactly one start.
        self._state_lock = threading.RLock()

    @property
    def running(self) -> bool:
        """True while the process is RUNNING."""
        return self.state is ProcessState.RUNNING

    def start(self) -> None:
        """Start the process, charging its start cost."""
        with self._state_lock:
            if self.state is ProcessState.RUNNING:
                raise ProcessStateError(f"process {self.name!r} is already running")
            self._clock.advance(self.start_cost)
            self.state = ProcessState.RUNNING
            self.start_count += 1

    def ensure_running(self) -> bool:
        """Start the process if needed; return True if a start occurred."""
        with self._state_lock:
            if self.running:
                return False
            self.start()
            return True

    def stop(self) -> None:
        """Stop the process (free — teardown time is not modelled)."""
        if self.state is ProcessState.STOPPED:
            raise ProcessStateError(f"process {self.name!r} is not running")
        self.state = ProcessState.STOPPED

    def require_running(self) -> None:
        """Raise unless the process is running."""
        if not self.running:
            raise ProcessStateError(f"process {self.name!r} is not running")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OsProcess {self.name} {self.state.value}>"


class JavaVirtualMachine(OsProcess):
    """A JVM: an OS process whose start cost is the JVM boot time.

    The WfMS boots a *fresh* JVM for every activity program — the paper
    identifies this as the dominant cost of the workflow architecture
    ("the workflow architecture requires the start of a new Java program
    for each single activity including the booting of the Java virtual
    machine").
    """

    def __init__(self, name: str, clock: VirtualClock, boot_cost: float):
        super().__init__(name, clock, start_cost=boot_cost)

    @property
    def boot_cost(self) -> float:
        """The JVM's start cost."""
        return self.start_cost
