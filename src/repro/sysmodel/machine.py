"""The simulated machine hosting the whole integration environment.

One :class:`Machine` owns the shared virtual clock, the cost model, the
warmth state, and every long-lived process of the testbed: the FDBS
server, the WfMS server, the controller, and the application systems.
Processes are started lazily — the first federated-function call after
:meth:`Machine.boot` pays the service-start penalties, reproducing the
paper's boot / warm / hot comparison (Sect. 4, ¶3).
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Callable

from repro.simtime.clock import VirtualClock
from repro.simtime.costs import CostModel, DEFAULT_COSTS, Warmth
from repro.simtime.rng import JitterSource
from repro.sysmodel.controller import Controller
from repro.sysmodel.faults import (
    SITE_RMI_UDTF,
    SITE_RMI_WFMS,
    FaultInjector,
    RetryPolicy,
)
from repro.sysmodel.pool import WarmRuntimePool
from repro.sysmodel.process import OsProcess
from repro.sysmodel.result_cache import ResultCache
from repro.sysmodel.rmi import RmiChannel


class Machine:
    """Hosting environment for the FDBS + WfMS integration server."""

    def __init__(
        self,
        costs: CostModel | None = None,
        controller_enabled: bool = True,
        jitter: JitterSource | None = None,
    ):
        self.costs = costs if costs is not None else DEFAULT_COSTS
        self.jitter = jitter if jitter is not None else JitterSource()
        self.clock = VirtualClock(
            jitter=self.jitter if self.jitter.amplitude > 0 else None
        )
        self.warmth = Warmth()

        self.fdbs_process = OsProcess("fdbs-server", self.clock, self.costs.fdbs_boot)
        self.wfms_process = OsProcess(
            "wfms-server", self.clock, self.costs.wf_server_boot
        )
        self.controller = Controller(self.clock, self.costs, controller_enabled)
        self.appsys_processes: dict[str, OsProcess] = {}

        self.udtf_rmi = RmiChannel(
            "udtf-controller",
            self.clock,
            call_cost=self.costs.rmi_call,
            return_cost=self.costs.rmi_return,
            warm_call_cost=self.costs.rmi_warm_call,
            warm_return_cost=self.costs.rmi_warm_return,
        )
        self.wf_rmi = RmiChannel(
            "udtf-wfms",
            self.clock,
            call_cost=self.costs.wf_rmi_call,
            return_cost=self.costs.wf_rmi_return,
            warm_call_cost=self.costs.wf_rmi_warm_call,
            warm_return_cost=self.costs.wf_rmi_warm_return,
        )

        self.runtime_pool = WarmRuntimePool()
        self.result_cache = ResultCache()
        self.fault_injector = FaultInjector()
        self.retry_policy = RetryPolicy()
        self.forward_recovery = False
        self.udtf_rmi.bind_faults(
            self.fault_injector, SITE_RMI_UDTF, self.retry_policy, self.costs
        )
        self.wf_rmi.bind_faults(
            self.fault_injector, SITE_RMI_WFMS, self.retry_policy, self.costs
        )
        self.architecture_tag = "DEFAULT"
        self.execution_mode_provider: Callable[[], str] | None = None
        #: Extra runtime_stats() sections contributed by components the
        #: machine does not own (e.g. the attached database's MVCC
        #: counters).  Each provider must take only its own leaf locks.
        self.extra_stats_providers: dict[str, Callable[[], dict[str, int]]] = {}

    # -- lifecycle -----------------------------------------------------------

    def register_appsys(self, name: str) -> OsProcess:
        """Create (stopped) the process hosting one application system."""
        if name in self.appsys_processes:
            return self.appsys_processes[name]
        process = OsProcess(f"appsys:{name}", self.clock, self.costs.appsys_boot)
        self.appsys_processes[name] = process
        return process

    def boot(self) -> None:
        """(Re)boot the machine: stop everything and forget all caches.

        Costs are charged lazily when the first call touches each
        process, which is exactly how the paper's 'initial function
        calls are the slowest' behaviour arises.
        """
        for process in self._all_processes():
            if process.running:
                process.stop()
        self.warmth.reset()
        self.runtime_pool.reset()
        self.result_cache.reset()
        self.udtf_rmi.reset()
        self.wf_rmi.reset()
        self.fault_injector.reset()

    def ensure_base_services(self) -> bool:
        """Start the FDBS and controller if cold; True if any start ran."""
        started = self.fdbs_process.ensure_running()
        if self.controller.enabled:
            started = self.controller.ensure_running() or started
        if started:
            self.warmth.machine_cold = False
        return started

    def ensure_wfms(self) -> bool:
        """Start the WfMS server if cold; True if a start ran."""
        return self.wfms_process.ensure_running()

    def ensure_appsys(self, name: str) -> bool:
        """Start one application-system process if cold."""
        if name not in self.appsys_processes:
            self.register_appsys(name)
        return self.appsys_processes[name].ensure_running()

    def _all_processes(self) -> list[OsProcess]:
        return [
            self.fdbs_process,
            self.wfms_process,
            self.controller,
            *self.appsys_processes.values(),
        ]

    # -- runtime pooling & caching --------------------------------------------

    def configure_runtime(
        self,
        pooling: bool | None = None,
        result_cache: bool | None = None,
        pool_capacity: int | None = None,
        cache_capacity: int | None = None,
    ) -> None:
        """Switch the warm runtime pool and/or the result cache on or off.

        Persistent RMI channels ride with the pooling flag: a pooled
        integration server also keeps its controller and WfMS channels
        established.  Both features default to off, in which case every
        cost charged is bit-identical to the unpooled simulation.
        """
        if pooling is not None or pool_capacity is not None:
            self.runtime_pool.configure(enabled=pooling, capacity=pool_capacity)
        if pooling is not None:
            self.udtf_rmi.configure(persistent=pooling)
            self.wf_rmi.configure(persistent=pooling)
        if result_cache is not None or cache_capacity is not None:
            self.result_cache.configure(
                enabled=result_cache, capacity=cache_capacity
            )

    def configure_wall_latency(self, rmi_s: float = 0.0) -> None:
        """Attach real wall-clock latency to every RMI hop.

        Simulated time is untouched — this models the *physical* wire
        delay that lets concurrent sessions overlap under the GIL (the
        sleep releases it), which is what the concurrency scaling bench
        measures.  The default 0.0 never sleeps, keeping single-worker
        wall-clock behaviour identical to the seed.
        """
        self.udtf_rmi.wall_latency_s = rmi_s
        self.wf_rmi.wall_latency_s = rmi_s

    def configure_faults(
        self,
        enabled: bool | None = None,
        seed: int | None = None,
        sites: dict[str, float | tuple[float, int | None]] | None = None,
        retry_attempts: int | None = None,
        backoff_base: float | None = None,
        forward_recovery: bool | None = None,
    ) -> None:
        """Configure the fault-injection harness and recovery policies.

        ``sites`` maps site names (see :data:`repro.sysmodel.faults.FAULT_SITES`)
        to a probability or a ``(probability, count)`` pair.  Passing
        ``retry_attempts`` activates the shared retry policy; forward
        recovery lets the workflow navigator restart failed activities
        from their input containers.  Everything defaults to off, and a
        site armed at probability 0 never draws from the RNG, so the
        disabled (or zero-rate) harness leaves timings bit-identical.
        """
        self.fault_injector.configure(enabled=enabled, seed=seed)
        if sites is not None:
            for site, spec in sites.items():
                if isinstance(spec, tuple):
                    probability, count = spec
                else:
                    probability, count = spec, None
                self.fault_injector.arm(site, probability=probability, count=count)
        if retry_attempts is not None or backoff_base is not None:
            self.retry_policy.configure(
                active=True,
                max_attempts=retry_attempts,
                backoff_base=backoff_base,
            )
        if forward_recovery is not None:
            self.forward_recovery = forward_recovery

    def result_cache_namespace(self) -> str:
        """Cache namespace: architecture tag + current execution mode."""
        mode = (
            self.execution_mode_provider()
            if self.execution_mode_provider is not None
            else "row"
        )
        return f"{self.architecture_tag}:{mode}"

    def runtime_stats(self) -> dict[str, dict[str, int]]:
        """Counters of the pool, result cache and RMI channels, by component.

        The snapshot is *consistent*: every component lock is held (in a
        fixed order, so concurrent snapshots cannot deadlock) while the
        counters are read, so no in-flight call can tear the numbers —
        a conservation invariant that holds per component also holds
        across the components of one snapshot.  The component locks are
        re-entrant, which lets each ``stats()`` re-acquire its own lock.
        """
        with ExitStack() as stack:
            for lock in (
                self.runtime_pool._lock,
                self.result_cache._lock,
                self.udtf_rmi._lock,
                self.wf_rmi._lock,
                self.fault_injector._lock,
                self.retry_policy._lock,
            ):
                stack.enter_context(lock)
            stats = {
                "runtime_pool": self.runtime_pool.stats(),
                "result_cache": self.result_cache.stats(),
                "rmi_udtf": self.udtf_rmi.stats(),
                "rmi_wfms": self.wf_rmi.stats(),
                "faults": {
                    **self.fault_injector.stats(),
                    **{
                        f"retry_{k}": v
                        for k, v in self.retry_policy.stats().items()
                    },
                    "forward_recovery": int(self.forward_recovery),
                },
            }
            for name, provider in self.extra_stats_providers.items():
                stats[name] = provider()
            return stats

    # -- convenience ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.clock.now

    def charge(self, amount: float) -> None:
        """Charge latency to the clock (jitter is applied by the clock
        itself when a jitter source is configured)."""
        self.clock.advance(amount)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = [p.name for p in self._all_processes() if p.running]
        return f"<Machine t={self.clock.now:.1f} running={running}>"
