"""The simulated machine hosting the whole integration environment.

One :class:`Machine` owns the shared virtual clock, the cost model, the
warmth state, and every long-lived process of the testbed: the FDBS
server, the WfMS server, the controller, and the application systems.
Processes are started lazily — the first federated-function call after
:meth:`Machine.boot` pays the service-start penalties, reproducing the
paper's boot / warm / hot comparison (Sect. 4, ¶3).
"""

from __future__ import annotations

from repro.simtime.clock import VirtualClock
from repro.simtime.costs import CostModel, DEFAULT_COSTS, Warmth
from repro.simtime.rng import JitterSource
from repro.sysmodel.controller import Controller
from repro.sysmodel.process import OsProcess
from repro.sysmodel.rmi import RmiChannel


class Machine:
    """Hosting environment for the FDBS + WfMS integration server."""

    def __init__(
        self,
        costs: CostModel | None = None,
        controller_enabled: bool = True,
        jitter: JitterSource | None = None,
    ):
        self.costs = costs if costs is not None else DEFAULT_COSTS
        self.jitter = jitter if jitter is not None else JitterSource()
        self.clock = VirtualClock(
            jitter=self.jitter if self.jitter.amplitude > 0 else None
        )
        self.warmth = Warmth()

        self.fdbs_process = OsProcess("fdbs-server", self.clock, self.costs.fdbs_boot)
        self.wfms_process = OsProcess(
            "wfms-server", self.clock, self.costs.wf_server_boot
        )
        self.controller = Controller(self.clock, self.costs, controller_enabled)
        self.appsys_processes: dict[str, OsProcess] = {}

        self.udtf_rmi = RmiChannel(
            "udtf-controller",
            self.clock,
            call_cost=self.costs.rmi_call,
            return_cost=self.costs.rmi_return,
        )
        self.wf_rmi = RmiChannel(
            "udtf-wfms",
            self.clock,
            call_cost=self.costs.wf_rmi_call,
            return_cost=self.costs.wf_rmi_return,
        )

    # -- lifecycle -----------------------------------------------------------

    def register_appsys(self, name: str) -> OsProcess:
        """Create (stopped) the process hosting one application system."""
        if name in self.appsys_processes:
            return self.appsys_processes[name]
        process = OsProcess(f"appsys:{name}", self.clock, self.costs.appsys_boot)
        self.appsys_processes[name] = process
        return process

    def boot(self) -> None:
        """(Re)boot the machine: stop everything and forget all caches.

        Costs are charged lazily when the first call touches each
        process, which is exactly how the paper's 'initial function
        calls are the slowest' behaviour arises.
        """
        for process in self._all_processes():
            if process.running:
                process.stop()
        self.warmth.reset()

    def ensure_base_services(self) -> bool:
        """Start the FDBS and controller if cold; True if any start ran."""
        started = self.fdbs_process.ensure_running()
        if self.controller.enabled:
            started = self.controller.ensure_running() or started
        if started:
            self.warmth.machine_cold = False
        return started

    def ensure_wfms(self) -> bool:
        """Start the WfMS server if cold; True if a start ran."""
        return self.wfms_process.ensure_running()

    def ensure_appsys(self, name: str) -> bool:
        """Start one application-system process if cold."""
        if name not in self.appsys_processes:
            self.register_appsys(name)
        return self.appsys_processes[name].ensure_running()

    def _all_processes(self) -> list[OsProcess]:
        return [
            self.fdbs_process,
            self.wfms_process,
            self.controller,
            *self.appsys_processes.values(),
        ]

    # -- convenience ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.clock.now

    def charge(self, amount: float) -> None:
        """Charge latency to the clock (jitter is applied by the clock
        itself when a jitter source is configured)."""
        self.clock.advance(amount)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = [p.name for p in self._all_processes() if p.running]
        return f"<Machine t={self.clock.now:.1f} running={running}>"
