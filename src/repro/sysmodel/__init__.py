"""Simulated OS and middleware substrate.

Models the processes of the paper's testbed — the FDBS server, the WfMS
server, the controller, the fenced UDTF processes, the application
systems and the JVMs the workflow engine boots per activity — together
with the RMI hops between them.  Every state change charges latency to a
shared :class:`~repro.simtime.VirtualClock`, which is how the cold /
warm / hot behaviour of Sect. 4 arises.
"""

from repro.sysmodel.process import JavaVirtualMachine, OsProcess, ProcessState
from repro.sysmodel.rmi import RmiChannel
from repro.sysmodel.controller import Controller
from repro.sysmodel.faults import FAULT_SITES, FaultInjector, RetryPolicy
from repro.sysmodel.pool import WarmRuntimePool
from repro.sysmodel.result_cache import ResultCache
from repro.sysmodel.machine import Machine

__all__ = [
    "OsProcess",
    "JavaVirtualMachine",
    "ProcessState",
    "RmiChannel",
    "Controller",
    "FAULT_SITES",
    "FaultInjector",
    "RetryPolicy",
    "WarmRuntimePool",
    "ResultCache",
    "Machine",
]
