"""Memoizing result cache for DETERMINISTIC local functions and UDTFs.

SkyQuery-style federated mediators win by caching remote results; this
cache does the same for the coupling hot path: a repeat invocation of a
DETERMINISTIC A-UDTF (or of a deterministic local function behind a
WfMS activity program) with equal arguments is served from integration-
server memory instead of paying the fenced-process, RMI and
application-system costs again.

Entries are keyed on the function identity plus *normalized* arguments
and namespaced per architecture and per execution mode, so a row-mode
run never serves a batch-mode run (mirroring the statement cache's
per-mode namespacing).  Each entry is tagged with the *owner*
application system; any DML write through one system's local function
invalidates exactly that system's entries — across all namespaces — and
nothing else.  Hit/miss/eviction counters follow the
:class:`~repro.fdbs.session.StatementCache` convention.
"""

from __future__ import annotations

import math
import threading
from fractions import Fraction

DEFAULT_RESULT_CACHE_CAPACITY = 512
"""Default number of memoized results kept resident."""

GLOBAL_OWNER = "_GLOBAL"
"""Owner tag for functions not backed by a specific application system."""


def normalize_args(args: tuple) -> tuple | None:
    """Normalize an argument tuple into a hashable cache key part.

    Numeric values compare across int/float representations (1 and 1.0
    hit the same entry) under *exact* numeric equivalence: large ints
    are never collapsed through float (2**53 and 2**53 + 1 stay
    distinct), and non-integral floats key on their exact binary value
    via :class:`~fractions.Fraction`.  Strings are kept case-sensitively
    (SQL string equality is case-sensitive).  Returns None when any
    argument is unhashable or is NaN (NaN never equals itself, so such
    invocations bypass the cache instead of piling up dead entries).
    """
    normalized: list[object] = []
    for value in args:
        if isinstance(value, bool):  # bool before int: True is not 1 here
            normalized.append(("b", value))
        elif isinstance(value, int):
            normalized.append(("n", value))
        elif isinstance(value, float):
            if math.isnan(value):
                return None
            if math.isinf(value):
                normalized.append(("n", value))
            elif value.is_integer():
                normalized.append(("n", int(value)))
            else:
                # Fraction(float) is exact, so 0.1 and the int/Fraction
                # it does NOT equal can never collide.
                normalized.append(("n", Fraction(value)))
        else:
            normalized.append(value)
    try:
        hash(tuple(normalized))
    except TypeError:
        return None
    return tuple(normalized)


class ResultCache:
    """LRU cache of (namespace, function, args) → result rows.

    With ``enabled=False`` (the default) every lookup misses without
    recording stats and every store is dropped, keeping the disabled
    cache invisible to both results and cost accounting.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_RESULT_CACHE_CAPACITY,
        enabled: bool = False,
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        #: key -> (owner, rows)
        self._entries: dict[tuple, tuple[str, list[tuple]]] = {}
        #: Guards entries and counters against concurrent sessions: the
        #: LRU pop/reinsert on a hit must be atomic, and the counters are
        #: read-modify-write.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def configure(
        self, enabled: bool | None = None, capacity: int | None = None
    ) -> None:
        """Enable/disable the cache and/or resize it (shrink evicts LRU)."""
        with self._lock:
            if capacity is not None:
                if capacity < 1:
                    raise ValueError("cache capacity must be positive")
                self.capacity = capacity
                while len(self._entries) > self.capacity:
                    self._evict_lru()
            if enabled is not None:
                self.enabled = enabled
                if not enabled:
                    # Disabling drops every entry; account for them like any
                    # other bulk invalidation so stats stay conservation-true.
                    self.invalidations += len(self._entries)
                    self._entries.clear()

    @staticmethod
    def _key(namespace: str, function: str, args_key: tuple) -> tuple:
        # Function names are keyed exactly: the catalog preserves the
        # registered casing, and folding here made distinct runtime keys
        # (e.g. "audtf:Foo" vs "audtf:foo") share one entry.
        return (namespace, function, args_key)

    def get(
        self, namespace: str, function: str, args: tuple
    ) -> list[tuple] | None:
        """Cached rows for the invocation, or None (LRU refreshed on hit)."""
        if not self.enabled:
            return None
        args_key = normalize_args(args)
        if args_key is None:
            return None
        key = self._key(namespace, function, args_key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.pop(key)
            self._entries[key] = entry  # move to MRU position
            return list(entry[1])

    def put(
        self,
        namespace: str,
        function: str,
        args: tuple,
        rows: list[tuple],
        owner: str | None = None,
    ) -> None:
        """Memoize the invocation's rows, tagged with the owning system."""
        if not self.enabled:
            return
        args_key = normalize_args(args)
        if args_key is None:
            return
        key = self._key(namespace, function, args_key)
        # Materialize the rows *before* touching the cache: if the rows
        # iterable raises mid-stream (e.g. an injected fault during the
        # fill), the previous entry must survive and no partial result
        # may ever be stored.
        entry = ((owner or GLOBAL_OWNER).upper(), list(rows))
        with self._lock:
            if key in self._entries:
                self._entries.pop(key)
            elif len(self._entries) >= self.capacity:
                self._evict_lru()
            self._entries[key] = entry

    def invalidate_owner(self, owner: str) -> int:
        """Drop every entry owned by one application system.

        Spans *all* namespaces: a write through the row-mode path must
        not leave stale batch-mode (or other-architecture) entries
        behind.  Returns the number of entries dropped.
        """
        target = owner.upper()
        with self._lock:
            doomed = [
                key for key, (entry_owner, _) in self._entries.items()
                if entry_owner == target
            ]
            for key in doomed:
                del self._entries[key]
            if doomed:
                self.invalidations += len(doomed)
            return len(doomed)

    def invalidate(self) -> None:
        """Drop every cached entry (machine reboot / DDL)."""
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    def _evict_lru(self) -> None:
        oldest = next(iter(self._entries))
        del self._entries[oldest]
        self.evictions += 1

    def reset(self) -> None:
        """Forget everything without counting invalidations (reboot)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction/invalidation counters plus size and capacity."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "size": len(self._entries),
                "capacity": self.capacity,
            }

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<ResultCache {state} {len(self._entries)}/{self.capacity}>"
