"""Simulated RMI channels between processes.

The paper's prototypes use Java RMI between the fenced UDTF processes
and the controller, and between the connecting UDTF and the workflow
client.  Only the latency of the hops matters here; the channel charges
``call_cost`` before invoking the remote callable and ``return_cost``
after it returns.

A channel can additionally be made *persistent*: the first hop still
pays the full connection-setup cost, but the established channel is kept
open by the controller and subsequent hops pay only the smaller warm
costs.  Persistence is off by default, in which case every hop pays the
cold costs exactly as before.

Channels are also the first injection site of the fault harness
(:mod:`repro.sysmodel.faults`): a bound injector may *drop* the call
hop, which charges the timeout + fault-detection costs and raises
:class:`~repro.errors.RmiDroppedError`.  A bound retry policy re-drives
dropped hops with exponential backoff in virtual time.

Exception safety: the return hop is charged in a ``finally`` — a raising
remote still pays the hop that carries the failure back — and a
persistent channel counts as established once the call hop completed
(connection setup was paid), so a retry after a remote-side failure pays
the warm costs instead of double-paying cold setup.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import RmiDroppedError
from repro.simtime.clock import VirtualClock
from repro.simtime.trace import TraceRecorder, maybe_span

if TYPE_CHECKING:  # pragma: no cover
    from repro.simtime.costs import CostModel
    from repro.sysmodel.faults import FaultInjector, RetryPolicy


class RmiChannel:
    """A costed request/response channel between two simulated processes."""

    def __init__(
        self,
        name: str,
        clock: VirtualClock,
        call_cost: float,
        return_cost: float,
        warm_call_cost: float | None = None,
        warm_return_cost: float | None = None,
    ):
        self.name = name
        self._clock = clock
        self.call_cost = call_cost
        self.return_cost = return_cost
        self.warm_call_cost = warm_call_cost if warm_call_cost is not None else call_cost
        self.warm_return_cost = (
            warm_return_cost if warm_return_cost is not None else return_cost
        )
        self.persistent = False
        self._established = False
        #: Real wall-clock seconds each hop sleeps (simulated time is
        #: never touched).  Off (0.0) by default — then no sleep ever
        #: runs and wall-clock behaviour is identical to a channel
        #: without the knob.  When set, the sleep releases the GIL, so
        #: concurrent serving sessions overlap their wire time — the
        #: effect the MVCC scaling bench measures.
        self.wall_latency_s = 0.0
        #: Guards the hop counters and the established flag; never held
        #: across the remote callable itself.
        self._lock = threading.RLock()
        self.call_count = 0
        self.warm_calls = 0
        self.drops = 0
        self.retries = 0
        self._injector: "FaultInjector | None" = None
        self._retry_policy: "RetryPolicy | None" = None
        self._fault_costs: "CostModel | None" = None
        self._fault_site: str | None = None

    def configure(self, persistent: bool | None = None) -> None:
        """Switch persistent-channel reuse on or off.

        Turning persistence off also drops the established connection, so
        a later re-enable starts cold again.
        """
        if persistent is not None:
            with self._lock:
                self.persistent = persistent
                if not persistent:
                    self._established = False

    def bind_faults(
        self,
        injector: "FaultInjector",
        site: str,
        retry_policy: "RetryPolicy",
        costs: "CostModel",
    ) -> None:
        """Attach the fault harness: injection site + retry policy.

        The injector and policy objects are shared and mutated in place
        by :meth:`~repro.sysmodel.machine.Machine.configure_faults`, so
        binding once at machine construction suffices.
        """
        self._injector = injector
        self._fault_site = site
        self._retry_policy = retry_policy
        self._fault_costs = costs

    @property
    def established(self) -> bool:
        """Whether a persistent connection is currently open."""
        return self._established

    def invoke(
        self,
        remote: Callable[..., Any],
        *args: Any,
        trace: TraceRecorder | None = None,
        call_label: str | None = None,
        return_label: str | None = None,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``remote(*args, **kwargs)`` across the channel.

        Charges the call hop, runs the remote side (which charges its own
        costs), then charges the return hop.  Optional trace labels let
        callers attribute the hops to the paper's Fig. 6 step names.  On
        a persistent channel every hop after the first pays the warm
        costs instead of re-doing connection setup.

        Dropped hops (injected faults) are retried per the bound retry
        policy, each retry waiting out an exponential backoff in virtual
        time.  Exceptions raised by ``remote`` itself are never retried
        here — failure semantics belong to the caller's layer.
        """
        policy = self._retry_policy
        attempt = 1
        while True:
            try:
                return self._invoke_once(
                    remote, args, kwargs, trace, call_label, return_label
                )
            except RmiDroppedError:
                if (
                    policy is None
                    or not policy.active
                    or attempt >= policy.max_attempts
                ):
                    raise
                assert self._fault_costs is not None
                backoff = policy.backoff(
                    attempt, self._fault_costs.retry_backoff_base
                )
                with self._lock:
                    self.retries += 1
                policy.note_retry()
                with maybe_span(trace, f"rmi backoff:{self.name}"):
                    self._clock.advance(backoff)
                attempt += 1

    def _invoke_once(
        self,
        remote: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        trace: TraceRecorder | None,
        call_label: str | None,
        return_label: str | None,
    ) -> Any:
        with self._lock:
            self.call_count += 1
            warm = self.persistent and self._established
            if warm:
                self.warm_calls += 1
        with maybe_span(trace, call_label or f"rmi call:{self.name}"):
            self._clock.advance(self.warm_call_cost if warm else self.call_cost)
        if self.wall_latency_s > 0.0:
            time.sleep(self.wall_latency_s)
        if self.persistent:
            # Connection setup was paid with the call hop; a failure on
            # the remote side must not force a retry to pay it again.
            with self._lock:
                self._established = True
        if self._injector is not None and self._fault_site is not None:
            if self._injector.should_fail(self._fault_site):
                with self._lock:
                    self.drops += 1
                    # The hop died with the connection: a persistent
                    # channel must re-establish before the next
                    # (warm-free) attempt.
                    self._established = False
                assert self._fault_costs is not None
                with maybe_span(trace, f"rmi timeout:{self.name}"):
                    self._clock.advance(
                        self._fault_costs.rmi_timeout
                        + self._fault_costs.fault_detection
                    )
                raise RmiDroppedError(
                    self._fault_site,
                    f"RMI hop dropped on channel {self.name!r} "
                    f"(call #{self.call_count})",
                )
        try:
            return remote(*args, **kwargs)
        finally:
            # The return hop carries results *and* failures back; charge
            # it either way so a raising remote cannot skip the hop.
            if self.wall_latency_s > 0.0:
                time.sleep(self.wall_latency_s)
            with maybe_span(trace, return_label or f"rmi return:{self.name}"):
                self._clock.advance(
                    self.warm_return_cost if warm else self.return_cost
                )

    def reset(self) -> None:
        """Drop the established connection (machine reboot)."""
        with self._lock:
            self._established = False

    def stats(self) -> dict[str, int]:
        """Hop counters plus the channel's persistence state."""
        with self._lock:
            return {
                "calls": self.call_count,
                "warm_calls": self.warm_calls,
                "drops": self.drops,
                "retries": self.retries,
                "persistent": int(self.persistent),
                "established": int(self._established),
            }
