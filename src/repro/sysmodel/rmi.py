"""Simulated RMI channels between processes.

The paper's prototypes use Java RMI between the fenced UDTF processes
and the controller, and between the connecting UDTF and the workflow
client.  Only the latency of the hops matters here; the channel charges
``call_cost`` before invoking the remote callable and ``return_cost``
after it returns.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.simtime.clock import VirtualClock
from repro.simtime.trace import TraceRecorder, maybe_span


class RmiChannel:
    """A costed request/response channel between two simulated processes."""

    def __init__(
        self,
        name: str,
        clock: VirtualClock,
        call_cost: float,
        return_cost: float,
    ):
        self.name = name
        self._clock = clock
        self.call_cost = call_cost
        self.return_cost = return_cost
        self.call_count = 0

    def invoke(
        self,
        remote: Callable[..., Any],
        *args: Any,
        trace: TraceRecorder | None = None,
        call_label: str | None = None,
        return_label: str | None = None,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``remote(*args, **kwargs)`` across the channel.

        Charges the call hop, runs the remote side (which charges its own
        costs), then charges the return hop.  Optional trace labels let
        callers attribute the hops to the paper's Fig. 6 step names.
        """
        self.call_count += 1
        with maybe_span(trace, call_label or f"rmi call:{self.name}"):
            self._clock.advance(self.call_cost)
        result = remote(*args, **kwargs)
        with maybe_span(trace, return_label or f"rmi return:{self.name}"):
            self._clock.advance(self.return_cost)
        return result
