"""Simulated RMI channels between processes.

The paper's prototypes use Java RMI between the fenced UDTF processes
and the controller, and between the connecting UDTF and the workflow
client.  Only the latency of the hops matters here; the channel charges
``call_cost`` before invoking the remote callable and ``return_cost``
after it returns.

A channel can additionally be made *persistent*: the first hop still
pays the full connection-setup cost, but the established channel is kept
open by the controller and subsequent hops pay only the smaller warm
costs.  Persistence is off by default, in which case every hop pays the
cold costs exactly as before.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.simtime.clock import VirtualClock
from repro.simtime.trace import TraceRecorder, maybe_span


class RmiChannel:
    """A costed request/response channel between two simulated processes."""

    def __init__(
        self,
        name: str,
        clock: VirtualClock,
        call_cost: float,
        return_cost: float,
        warm_call_cost: float | None = None,
        warm_return_cost: float | None = None,
    ):
        self.name = name
        self._clock = clock
        self.call_cost = call_cost
        self.return_cost = return_cost
        self.warm_call_cost = warm_call_cost if warm_call_cost is not None else call_cost
        self.warm_return_cost = (
            warm_return_cost if warm_return_cost is not None else return_cost
        )
        self.persistent = False
        self._established = False
        self.call_count = 0
        self.warm_calls = 0

    def configure(self, persistent: bool | None = None) -> None:
        """Switch persistent-channel reuse on or off.

        Turning persistence off also drops the established connection, so
        a later re-enable starts cold again.
        """
        if persistent is not None:
            self.persistent = persistent
            if not persistent:
                self._established = False

    @property
    def established(self) -> bool:
        """Whether a persistent connection is currently open."""
        return self._established

    def invoke(
        self,
        remote: Callable[..., Any],
        *args: Any,
        trace: TraceRecorder | None = None,
        call_label: str | None = None,
        return_label: str | None = None,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``remote(*args, **kwargs)`` across the channel.

        Charges the call hop, runs the remote side (which charges its own
        costs), then charges the return hop.  Optional trace labels let
        callers attribute the hops to the paper's Fig. 6 step names.  On
        a persistent channel every hop after the first pays the warm
        costs instead of re-doing connection setup.
        """
        self.call_count += 1
        warm = self.persistent and self._established
        if warm:
            self.warm_calls += 1
        with maybe_span(trace, call_label or f"rmi call:{self.name}"):
            self._clock.advance(self.warm_call_cost if warm else self.call_cost)
        result = remote(*args, **kwargs)
        with maybe_span(trace, return_label or f"rmi return:{self.name}"):
            self._clock.advance(self.warm_return_cost if warm else self.return_cost)
        if self.persistent:
            self._established = True
        return result

    def reset(self) -> None:
        """Drop the established connection (machine reboot)."""
        self._established = False

    def stats(self) -> dict[str, int]:
        """Hop counters plus the channel's persistence state."""
        return {
            "calls": self.call_count,
            "warm_calls": self.warm_calls,
            "persistent": int(self.persistent),
            "established": int(self._established),
        }
