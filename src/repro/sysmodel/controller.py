"""The controller process of Sect. 4.

DB2's fenced-mode security restriction forbids a UDTF process from
connecting to a database on the same server; the paper introduces a
*controller* that (a) isolates the UDTF process from the process holding
the connection, and (b) is started exactly once when the environment
boots, keeping the WfMS connection alive so that each federated-function
call is spared the connect cost.

For the ablation experiment (E6) the controller can be disabled, in
which case callers short-circuit the RMI hop and the dispatch costs —
the hypothetical "prototype without the controller" of the paper.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.simtime.clock import VirtualClock
from repro.simtime.costs import CostModel
from repro.simtime.trace import TraceRecorder, maybe_span
from repro.sysmodel.process import OsProcess


class Controller(OsProcess):
    """Connection broker between fenced UDTFs and the FDBS / WfMS."""

    def __init__(self, clock: VirtualClock, costs: CostModel, enabled: bool = True):
        super().__init__("controller", clock, start_cost=costs.controller_boot)
        self._costs = costs
        self.enabled = enabled
        self.dispatch_count = 0
        self.brokerage_count = 0
        #: Guards the two counters; never held across the target call.
        self._counter_lock = threading.Lock()

    def dispatch(
        self,
        target: Callable[..., Any],
        *args: Any,
        trace: TraceRecorder | None = None,
        label: str = "controller run",
        **kwargs: Any,
    ) -> Any:
        """Forward one A-UDTF request to ``target`` (a local function or
        an in-FDBS statement), charging the per-dispatch overhead."""
        self.require_running()
        with self._counter_lock:
            self.dispatch_count += 1
        with maybe_span(trace, label):
            self._clock.advance(self._costs.controller_dispatch)
        return target(*args, **kwargs)

    def broker_workflow(
        self,
        start: Callable[..., Any],
        *args: Any,
        trace: TraceRecorder | None = None,
        label: str = "Controller",
        **kwargs: Any,
    ) -> Any:
        """Broker one workflow start through the live WfMS connection."""
        self.require_running()
        with self._counter_lock:
            self.brokerage_count += 1
        with maybe_span(trace, label):
            self._clock.advance(self._costs.controller_wfms_brokerage)
        return start(*args, **kwargs)
