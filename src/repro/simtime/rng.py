"""Seeded jitter for simulated latencies.

Real middleware latencies are noisy; the paper averages repeated calls.
We add small, *deterministic* multiplicative jitter so that repeated
measurements exercise the averaging code paths in the benchmark harness
without making results machine-dependent.  Jitter defaults to zero for
unit tests (exact assertions) and is switched on by the harness.
"""

from __future__ import annotations

import random


class JitterSource:
    """Deterministic multiplicative jitter around 1.0.

    ``amplitude`` is the half-width of the uniform factor range:
    ``amplitude=0.05`` yields factors in ``[0.95, 1.05]``.
    """

    def __init__(self, seed: int = 0, amplitude: float = 0.0):
        if amplitude < 0 or amplitude >= 1:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude!r}")
        self._rng = random.Random(seed)
        self.amplitude = amplitude

    def factor(self) -> float:
        """Next jitter factor; exactly 1.0 when amplitude is zero."""
        if self.amplitude == 0.0:
            return 1.0
        return 1.0 + self._rng.uniform(-self.amplitude, self.amplitude)

    def jitter(self, value: float) -> float:
        """Apply the next factor to ``value``."""
        return value * self.factor()


class FaultRng:
    """Seeded uniform RNG driving deterministic fault injection.

    Kept separate from :class:`JitterSource` so arming the fault
    injector never perturbs the jitter stream (and vice versa): the
    probability-0 parity contract depends on the two streams being
    independent.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def reseed(self, seed: int) -> None:
        """Restart the stream from a new seed (reproducible runs)."""
        self.seed = seed
        self._rng = random.Random(seed)

    def roll(self) -> float:
        """Next uniform draw in [0, 1)."""
        return self._rng.random()
