"""Span recording for per-step latency breakdowns (Fig. 6).

Components open named spans around the work they charge to the virtual
clock; the recorder turns the resulting span tree into the flat
step-name → time-portion tables the paper prints.  Span names are free
strings; the Fig. 6 experiment maps them onto the paper's exact row
labels ("Start UDTF", "Process activities", ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simtime.clock import VirtualClock


@dataclass
class Span:
    """A named interval of virtual time, possibly with children."""

    name: str
    start: float
    end: float | None = None
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Elapsed virtual time of the (closed) span."""
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    @property
    def self_duration(self) -> float:
        """Duration not covered by child spans."""
        return self.duration - sum(child.duration for child in self.children)

    def walk(self):
        """Yield this span and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()


class TraceRecorder:
    """Collects a forest of spans against a virtual clock.

    The recorder is optional everywhere: components call
    :meth:`span` with a recorder that may be ``None`` via the module-level
    :func:`maybe_span` helper, keeping the hot path allocation-free when
    tracing is off.
    """

    def __init__(self, clock: VirtualClock):
        self._clock = clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    class _SpanContext:
        def __init__(self, recorder: "TraceRecorder", name: str):
            self._recorder = recorder
            self._name = name
            self._span: Span | None = None

        def __enter__(self) -> Span:
            self._span = self._recorder._open(self._name)
            return self._span

        def __exit__(self, *exc) -> None:
            assert self._span is not None
            self._recorder._close(self._span)

    def span(self, name: str) -> "TraceRecorder._SpanContext":
        """Context manager recording one named span."""
        return TraceRecorder._SpanContext(self, name)

    def _open(self, name: str) -> Span:
        span = Span(name=name, start=self._clock.now)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ValueError(f"span {span.name!r} closed out of order")
        span.end = self._clock.now
        self._stack.pop()

    def add_leaf(self, name: str, start: float, end: float) -> Span:
        """Record a pre-timed leaf span (used by schedulers that compute
        branch times themselves under a frozen clock)."""
        span = Span(name=name, start=start, end=end)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    # -- aggregation ---------------------------------------------------------

    def totals_by_name(self) -> dict[str, float]:
        """Sum of *self* durations (excluding children) per span name."""
        totals: dict[str, float] = {}
        for root in self.roots:
            for span in root.walk():
                totals[span.name] = totals.get(span.name, 0.0) + span.self_duration
        return totals

    def total(self) -> float:
        """Sum of root span durations."""
        return sum(root.duration for root in self.roots)

    def portions(self) -> dict[str, float]:
        """Fractions of total time per span name (self durations)."""
        total = self.total()
        if total == 0:
            return {}
        return {name: t / total for name, t in self.totals_by_name().items()}


class _NullSpan:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return None


_NULL_SPAN = _NullSpan()


def maybe_span(recorder: TraceRecorder | None, name: str):
    """Open a span on ``recorder`` or do nothing when tracing is off."""
    if recorder is None:
        return _NULL_SPAN
    return recorder.span(name)
