"""Deterministic virtual-time substrate.

The paper measures elapsed time on an IBM DB2 + MQSeries Workflow testbed.
We replace wall-clock time with a :class:`~repro.simtime.clock.VirtualClock`
that every simulated component charges against, and a calibrated
:class:`~repro.simtime.costs.CostModel` holding the per-step constants.
Benchmarks therefore reproduce the *shape* of the paper's measurements
deterministically on any machine.
"""

from repro.simtime.clock import VirtualClock
from repro.simtime.costs import CostModel
from repro.simtime.rng import FaultRng, JitterSource
from repro.simtime.trace import Span, TraceRecorder

__all__ = [
    "VirtualClock",
    "CostModel",
    "FaultRng",
    "JitterSource",
    "Span",
    "TraceRecorder",
]
