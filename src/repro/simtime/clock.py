"""A deterministic, monotonically advancing virtual clock.

All simulated latencies in the reproduction are expressed in *simulated
milliseconds* (``su`` in DESIGN.md) charged against one shared clock.
Components never sleep; they call :meth:`VirtualClock.advance`.

The clock also supports *marks* — cheap checkpoints used by the trace
recorder to attribute elapsed spans to the paper's step names (Fig. 6) —
and *frozen sections* used by the workflow engine's critical-path
scheduler, which computes branch finish times itself and then advances
the shared clock once by the makespan.

Advances are atomic: concurrent sessions of the serving layer may share
one machine (and thus one clock), and ``_now += delta`` is a
read-modify-write that would lose updates without the internal lock.
Captures and frozen sections are **per-thread**: each serving worker
navigating a workflow on a shared machine gets its own capture/freeze
state, so one thread's critical-path accounting never swallows another
thread's advances (and concurrent captures don't collide as "nested").
"""

from __future__ import annotations

import threading

from repro.errors import ClockError


class _ThreadState(threading.local):
    """Per-thread capture/freeze state of one clock."""

    def __init__(self):
        self.frozen = 0
        self.capture: "ClockCapture | None" = None


class VirtualClock:
    """Monotonic virtual clock measured in simulated milliseconds."""

    def __init__(self, start: float = 0.0, jitter=None):
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)
        self._local = _ThreadState()
        self._lock = threading.RLock()
        #: Optional JitterSource applied to every advance() delta —
        #: deterministic measurement noise for the averaging paths.
        self.jitter = jitter

    @property
    def now(self) -> float:
        """Current virtual time in simulated milliseconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Advance the clock by ``delta`` ms and return the new time.

        Raises :class:`~repro.errors.ClockError` for negative deltas and
        ignores advances while the calling thread holds a frozen section
        (the freezer is accounting for the time itself).  While the
        calling thread has a capture active the delta accumulates into
        the capture instead of moving the clock.
        """
        if delta < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta!r}")
        local = self._local
        with self._lock:
            if self.jitter is not None and delta > 0:
                delta = self.jitter.jitter(delta)
            if local.capture is not None:
                local.capture.total += delta
                return self._now
            if local.frozen:
                return self._now
            self._now += delta
            return self._now

    @property
    def capturing(self) -> bool:
        """True while the calling thread has a capture active."""
        return self._local.capture is not None

    def capture_total(self) -> float:
        """Accumulated total of this thread's active capture (0.0 when none)."""
        capture = self._local.capture
        return capture.total if capture is not None else 0.0

    def capture(self) -> "ClockCapture":
        """Context manager measuring cost without advancing the clock.

        Used by the workflow navigator: each activity's execution cost is
        captured, branch finish times are computed with critical-path
        scheduling, and the clock is advanced once by the makespan —
        which is how parallel activities overlap in virtual time.
        Captures cannot nest (within one thread).
        """
        return ClockCapture(self)

    def advance_to(self, when: float) -> float:
        """Advance the clock to absolute time ``when`` (never backwards)."""
        with self._lock:
            if when < self._now:
                raise ClockError(
                    f"cannot move clock backwards from {self._now!r} to {when!r}"
                )
            if not self._local.frozen:
                self._now = when
            return self._now

    # -- frozen sections ---------------------------------------------------

    def freeze(self) -> None:
        """Suspend this thread's implicit advances (re-entrant)."""
        self._local.frozen += 1

    def unfreeze(self) -> None:
        """Re-enable this thread's implicit advances."""
        if self._local.frozen == 0:
            raise ClockError("unfreeze() without matching freeze()")
        self._local.frozen -= 1

    @property
    def frozen(self) -> bool:
        """True while the calling thread holds a frozen section."""
        return self._local.frozen > 0

    class _FrozenSection:
        def __init__(self, clock: "VirtualClock"):
            self._clock = clock

        def __enter__(self) -> "VirtualClock":
            self._clock.freeze()
            return self._clock

        def __exit__(self, *exc) -> None:
            self._clock.unfreeze()

    def frozen_section(self) -> "VirtualClock._FrozenSection":
        """Context manager during which ``advance()`` calls are no-ops.

        Used by schedulers that account for elapsed time themselves (e.g.
        parallel workflow branches) while still executing real component
        code that would otherwise double-charge the clock.
        """
        return VirtualClock._FrozenSection(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " frozen" if self._local.frozen else ""
        return f"<VirtualClock now={self._now:.3f}{state}>"


class ClockCapture:
    """Accumulates suppressed clock advances; see VirtualClock.capture."""

    def __init__(self, clock: VirtualClock):
        self._clock = clock
        self.total = 0.0

    def __enter__(self) -> "ClockCapture":
        local = self._clock._local
        if local.capture is not None:
            raise ClockError("clock captures cannot nest")
        local.capture = self
        return self

    def __exit__(self, *exc) -> None:
        self._clock._local.capture = None
