"""Calibrated cost model for the simulated middleware stack.

Every constant below is a latency contribution in simulated milliseconds,
charged against the shared :class:`~repro.simtime.clock.VirtualClock` by
the component that incurs it.  The calibration anchor is the paper's
Fig. 6: a *hot* call of the federated function ``GetNoSuppComp`` (three
local functions) costs ≈300 su through the WfMS architecture and ≈100 su
through the enhanced SQL UDTF architecture, split over the paper's step
names in the published proportions.  Everything else (Fig. 5 sweep, the
controller ablation, loop scaling, parallel vs. sequential) *emerges*
from running the engines under this single profile — no experiment
hard-codes its expected numbers.

Derivation of the defaults (see DESIGN.md Sect. 6):

WfMS path, hot anchor (3 activities), paper percentages in parentheses::

    start connecting UDTF        27.0   (9 %)
    process connecting UDTF      33.0   (11 %)
    RMI call to controller        9.0   (3 %)
    controller brokerage         15.0   (5 %)
    start workflow + Java env    30.0   (10 %)   constant per call
    process activities     3 × 51.0     (51 %)   fresh JVM + containers + work
    workflow navigation    3 ×  9.0     (9 %)
    RMI return                    1.5   (0 %)
    finish connecting UDTF        6.0   (2 %)
                               ------
                              ≈ 301.5

UDTF path, hot anchor (3 A-UDTFs)::

    start I-UDTF                 11.0   (11 %)
    prepare A-UDTFs        3 ×  9.3     (28 %)   fenced process setup
    RMI calls              3 ×  8.0     (24 %)
    controller dispatches  3 ×  0.15    (0 %)
    local-function work    3 ×  2.0     (6 %)
    finish A-UDTFs         3 ×  7.0     (21 %)
    RMI returns            3 ×  0.35    (1 %)
    finish I-UDTF                 9.0   (9 %)
                               ------
                              ≈ 100.4
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace


@dataclass(frozen=True)
class CostModel:
    """All simulated latency constants, in simulated milliseconds."""

    # -- generic OS / runtime substrate -------------------------------------
    os_process_start: float = 60.0
    """Spawning a plain OS process (cold boot of services)."""

    jvm_boot: float = 40.0
    """Booting a Java virtual machine.  The WfMS starts a fresh JVM for
    every activity program (the paper's dominant WfMS cost)."""

    rmi_call: float = 8.0
    """One RMI request hop between two processes."""

    rmi_return: float = 0.35
    """One RMI response hop (results travel back almost for free)."""

    rmi_warm_call: float = 2.0
    """One RMI request hop over an already-established persistent channel
    (no connection setup, no stub lookup); only charged when the runtime
    pooling feature holds channels open."""

    rmi_warm_return: float = 0.35
    """Response hop over a persistent channel (returns were already almost
    free, so reuse does not change them)."""

    # -- controller (Sect. 4's process-isolation broker) ---------------------
    controller_dispatch: float = 0.15
    """Controller forwarding one A-UDTF request to a local function."""

    controller_wfms_brokerage: float = 15.0
    """Controller brokering one workflow start (keeps the WfMS connection
    alive; charged once per federated-function call through the WfMS)."""

    controller_boot: float = 120.0
    """Starting the controller and connecting it to the WfMS; paid once
    when the machine boots, not per call (the paper's optimization)."""

    # -- FDBS side ------------------------------------------------------------
    udtf_start_integration: float = 11.0
    """Starting (fencing in) an integration UDTF in the UDTF architecture."""

    udtf_finish_integration: float = 9.0
    """Tearing down an integration UDTF and returning its result table."""

    udtf_prepare_access: float = 9.3
    """Preparing one fenced A-UDTF invocation (process hand-over, argument
    marshalling)."""

    udtf_warm_prepare: float = 1.8
    """Preparing an A-UDTF invocation whose fenced process is resident in
    the warm runtime pool: only argument marshalling remains, the process
    hand-over is skipped."""

    udtf_finish_access: float = 7.0
    """Finishing one A-UDTF invocation (result marshalling back)."""

    udtf_row_overhead: float = 0.02
    """Per returned row transfer overhead of any table function."""

    join_composition: float = 4.0
    """Composing two independent result sets with a join-plus-selection
    (the 'helper join' of the independent case).  Charged per composed
    branch pair; makes the UDTF parallel case *slower* than the
    sequential one, as observed in the paper (Sect. 4)."""

    plan_compile: float = 50.0
    """Compiling a statement plan on first use (statement-cache miss)."""

    fdbs_query_base: float = 1.2
    """Fixed FDBS query-processor overhead per executed statement."""

    fdbs_row_cost: float = 0.01
    """Per-row processing cost inside the FDBS executor."""

    result_cache_hit_cost: float = 0.5
    """Serving a memoized DETERMINISTIC function result from the
    integration server's result cache (lookup + copy-out) instead of
    re-invoking the backend."""

    runstats_base: float = 20.0
    """Fixed overhead of one RUNSTATS utility run (catalog update,
    snapshot bookkeeping).  Remote-table scans additionally pay the
    ordinary federation fetch costs."""

    runstats_row_cost: float = 0.02
    """Per-row statistics collection cost during RUNSTATS (distinct-value
    hashing plus min/max maintenance across all columns)."""

    # -- fault detection & recovery (only charged when faults occur) ----------
    fault_detection: float = 6.0
    """Detecting one failed call or crashed process (error propagation,
    state bookkeeping).  Charged at the moment a fault surfaces; never
    charged on the fault-free path."""

    rmi_timeout: float = 24.0
    """Waiting out a dropped RMI hop before the failure is detected (the
    paper's middleware uses connection timeouts, not failure signals)."""

    retry_backoff_base: float = 5.0
    """First retry's backoff delay in virtual time; the retry policy
    doubles it per subsequent attempt (exponential backoff)."""

    wf_forward_recovery: float = 12.0
    """Navigator bookkeeping for one forward-recovery restart: reloading
    the failed activity's input container and rescheduling it.  The
    restarted attempt then re-pays the JVM start and container handling,
    per the paper's cost model."""

    # -- connecting UDTF of the WfMS architecture -----------------------------
    wf_udtf_start: float = 27.0
    """Starting the connecting UDTF that bridges FDBS → WfMS."""

    wf_udtf_process: float = 33.0
    """Processing inside the connecting UDTF (container marshalling,
    workflow API calls)."""

    wf_udtf_finish: float = 6.0
    """Finishing the connecting UDTF."""

    wf_rmi_call: float = 9.0
    """RMI hop from the connecting UDTF to the controller (heavier than a
    plain RMI call: it ships workflow input containers)."""

    wf_rmi_return: float = 1.5
    """RMI hop returning the output container."""

    wf_rmi_warm_call: float = 3.0
    """Container-shipping RMI hop over a persistent channel — the setup
    share disappears, the container marshalling stays."""

    wf_rmi_warm_return: float = 1.5
    """Output-container return hop over a persistent channel."""

    # -- WfMS side -------------------------------------------------------------
    wf_env_start: float = 30.0
    """Starting the workflow process instance and the Java environment of
    the WfMS client API; constant per call, independent of #activities."""

    wf_activity_jvm: float = 40.0
    """Fresh JVM boot for one activity program."""

    jvm_warm_dispatch: float = 4.0
    """Dispatching an activity program into a JVM kept warm by the runtime
    pool (classloading and JIT state survive; only the invocation hand-off
    remains)."""

    wf_activity_container: float = 9.0
    """Handling the input and output containers of one activity."""

    wf_navigation: float = 9.0
    """Navigator work (evaluating control connectors, state transitions)
    per activity instance."""

    wf_template_load: float = 35.0
    """Loading a process template on first instantiation (cold miss)."""

    wf_server_boot: float = 200.0
    """Booting the workflow server itself (machine boot)."""

    # -- application systems ----------------------------------------------------
    local_function_base: float = 2.0
    """Executing one local function inside its application system."""

    local_function_row_cost: float = 0.05
    """Per result row produced by a local function."""

    appsys_boot: float = 80.0
    """Booting one application system (machine boot)."""

    fdbs_boot: float = 150.0
    """Booting the FDBS server (machine boot)."""

    # -- remote SQL federation ---------------------------------------------------
    remote_sql_roundtrip: float = 5.0
    """Shipping a pushed-down subquery to a remote SQL source and back."""

    remote_row_transfer: float = 0.08
    """Transferring one result row back from a remote SQL source; what
    makes predicate pushdown (the paper's future-work 'query
    optimization' item) measurable."""

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every constant multiplied by ``factor``.

        Useful for sensitivity analyses (ablation benches) — the paper's
        qualitative results should be invariant under uniform scaling.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor!r}")
        return replace(
            self, **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    def replace(self, **overrides: float) -> "CostModel":
        """Return a copy with the named constants overridden."""
        return replace(self, **overrides)


DEFAULT_COSTS = CostModel()
"""The calibrated default profile used by all experiments."""


@dataclass
class Warmth:
    """Cache-warmth state used to model the paper's boot/other/repeated
    timing comparison (Sect. 4, ¶3).

    * ``machine_cold`` — nothing has run since boot; the first call pays
      the service-start penalties.
    * per-function first call — pays plan compilation (FDBS statement
      cache miss) and, on the WfMS path, the process-template load.
    """

    machine_cold: bool = True
    compiled_statements: set[str] = field(default_factory=set)
    loaded_templates: set[str] = field(default_factory=set)

    def statement_is_hot(self, key: str) -> bool:
        """Whether this statement's plan was compiled since boot."""
        return key in self.compiled_statements

    def note_statement(self, key: str) -> None:
        """Record a statement's plan as compiled."""
        self.compiled_statements.add(key)

    def template_is_hot(self, key: str) -> bool:
        """Whether this process template was loaded since boot."""
        return key in self.loaded_templates

    def note_template(self, key: str) -> None:
        """Record a process template as loaded."""
        self.loaded_templates.add(key)

    def reset(self) -> None:
        """Forget everything — the machine has been rebooted."""
        self.machine_cold = True
        self.compiled_statements.clear()
        self.loaded_templates.clear()
