"""Wire protocol between the shard router and its worker processes.

The process-sharded server talks to each OS worker over a byte pipe.
Every message is one *frame*::

    +-------+---------+------+-----+-------------+----------+
    | magic | version | kind | pad | payload len | crc32    |  header
    +-------+---------+------+-----+-------------+----------+
    | pickled message payload ...                           |  body
    +-------------------------------------------------------+

The 16-byte header carries 4 magic bytes (``FWP1``), a protocol
version, the message kind, the payload length and a CRC32 of the
payload; the body is the pickled message dataclass.  ``decode_frame``
verifies all four before unpickling, so a torn or corrupted frame
surfaces as a :class:`~repro.errors.WireProtocolError` instead of a
pickle error deep inside the router — the router treats that like a
dead shard.

Messages are deliberately plain data: scripts go down as
:class:`~repro.serving.workload.SessionScript` (architecture enum,
call list), results come back as rows / floats / a
:class:`~repro.serving.session.SessionSummary` — everything pickles
without touching live engine objects, so the same frames work under
both the ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import WireProtocolError
from repro.serving.session import SessionSummary
from repro.serving.workload import SessionScript

#: Frame magic: Federated Wire Protocol, revision 1.
MAGIC = b"FWP1"

#: Protocol version; bumped on any incompatible header/payload change.
VERSION = 1

#: Header layout: magic, version, kind, 2 pad bytes, payload length, crc32.
HEADER = struct.Struct(">4sBBxxII")


@dataclass(frozen=True)
class Hello:
    """Worker -> router: the shard booted and is ready for frames."""

    shard_id: int
    pid: int


@dataclass(frozen=True)
class RunScript:
    """Router -> worker: run one session script on a fresh shard server."""

    request_id: int
    script: SessionScript


@dataclass(frozen=True)
class ScriptDone:
    """Worker -> router: one script completed; the picklable outcome.

    ``row_sets`` / ``call_sim_ms`` / ``latencies`` are per call, in
    script order; ``simulated_ms`` is the session total (the parity
    gates compare it bit-for-bit against the bare stack).
    """

    request_id: int
    session_id: int
    row_sets: list = field(default_factory=list)
    call_sim_ms: list = field(default_factory=list)
    simulated_ms: float = 0.0
    latencies: list = field(default_factory=list)
    summary: SessionSummary | None = None


@dataclass(frozen=True)
class ScriptFailed:
    """Worker -> router: the script raised; the worker itself survives."""

    request_id: int
    session_id: int
    error_kind: str
    message: str


@dataclass(frozen=True)
class Ping:
    """Router -> worker: liveness probe."""

    token: int


@dataclass(frozen=True)
class Pong:
    """Worker -> router: liveness reply with the scripts-completed count."""

    token: int
    completed: int


@dataclass(frozen=True)
class Shutdown:
    """Router -> worker: drain and exit.

    Frames are delivered in order, so a ``Shutdown`` sent after a batch
    of ``RunScript`` frames is only seen once the worker has finished
    them — the graceful-drain path needs no extra bookkeeping.
    """


@dataclass(frozen=True)
class ShutdownAck:
    """Worker -> router: drained; exiting after this frame."""

    completed: int


#: kind byte <-> message class (the wire's closed vocabulary).
MESSAGE_KINDS: dict[int, type] = {
    1: Hello,
    2: RunScript,
    3: ScriptDone,
    4: ScriptFailed,
    5: Ping,
    6: Pong,
    7: Shutdown,
    8: ShutdownAck,
}
_KIND_OF = {cls: kind for kind, cls in MESSAGE_KINDS.items()}


def encode_frame(message: object) -> bytes:
    """Serialize one message into a checksummed wire frame."""
    try:
        kind = _KIND_OF[type(message)]
    except KeyError:
        raise WireProtocolError(
            f"{type(message).__name__} is not a wire message"
        ) from None
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    header = HEADER.pack(MAGIC, VERSION, kind, len(payload), zlib.crc32(payload))
    return header + payload


def decode_frame(frame: bytes) -> object:
    """Parse and verify one wire frame back into its message."""
    if len(frame) < HEADER.size:
        raise WireProtocolError(
            f"short frame: {len(frame)} bytes < {HEADER.size}-byte header"
        )
    magic, version, kind, length, crc = HEADER.unpack(frame[: HEADER.size])
    if magic != MAGIC:
        raise WireProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise WireProtocolError(
            f"unsupported protocol version {version} (speaking {VERSION})"
        )
    if kind not in MESSAGE_KINDS:
        raise WireProtocolError(f"unknown message kind {kind}")
    payload = frame[HEADER.size:]
    if len(payload) != length:
        raise WireProtocolError(
            f"payload length {len(payload)} != declared {length}"
        )
    if zlib.crc32(payload) != crc:
        raise WireProtocolError("payload checksum mismatch")
    message = pickle.loads(payload)
    if type(message) is not MESSAGE_KINDS[kind]:
        raise WireProtocolError(
            f"kind byte {kind} carries a {type(message).__name__} payload"
        )
    return message


def send_frame(conn, message: object) -> None:
    """Encode and send one message over a multiprocessing connection."""
    conn.send_bytes(encode_frame(message))


def recv_frame(conn) -> object:
    """Receive and decode the next message from a connection.

    Propagates ``EOFError``/``OSError`` from a closed or broken pipe —
    the router maps those to shard death.
    """
    return decode_frame(conn.recv_bytes())


__all__ = [
    "HEADER",
    "MAGIC",
    "MESSAGE_KINDS",
    "VERSION",
    "Hello",
    "Ping",
    "Pong",
    "RunScript",
    "ScriptDone",
    "ScriptFailed",
    "Shutdown",
    "ShutdownAck",
    "decode_frame",
    "encode_frame",
    "recv_frame",
    "send_frame",
]
