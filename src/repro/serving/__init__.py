"""Concurrent multi-session serving layer.

The paper's integration server is a middle tier that many client
applications call at once.  This package adds that serving story on top
of the single-caller :class:`~repro.core.server.IntegrationServer`:

* :class:`~repro.serving.server.ConcurrentIntegrationServer` — accepts
  N client sessions on a bounded worker pool with admission control and
  backpressure;
* :class:`~repro.serving.session.ClientSession` — one client's view:
  an isolated virtual clock and trace recorder, a per-call log, and
  statement-level fault containment;
* :mod:`~repro.serving.workload` — seeded, reproducible multi-client
  workloads (mixed architectures, read/DML mix) for the concurrency
  benchmark and the stress/parity suites;
* :class:`~repro.serving.router.ShardedIntegrationServer` — the
  scale-out mode: sessions consistent-hashed onto N OS worker
  processes (:mod:`~repro.serving.shard`), each building isolated
  per-session shards, framed over the wire protocol of
  :mod:`~repro.serving.wire` with crash detection and respawn.
"""

from repro.serving.hashring import ConsistentHashRing
from repro.serving.router import ShardedIntegrationServer
from repro.serving.server import (
    AdmissionController,
    ConcurrentIntegrationServer,
    SessionManager,
    WorkloadRunResult,
)
from repro.serving.session import CallRecord, ClientSession
from repro.serving.shard import ShardConfig
from repro.serving.workload import (
    SessionScript,
    WorkloadCall,
    make_workload,
    supported_functions,
)

__all__ = [
    "AdmissionController",
    "CallRecord",
    "ClientSession",
    "ConcurrentIntegrationServer",
    "ConsistentHashRing",
    "SessionManager",
    "SessionScript",
    "ShardConfig",
    "ShardedIntegrationServer",
    "WorkloadCall",
    "WorkloadRunResult",
    "make_workload",
    "supported_functions",
]
