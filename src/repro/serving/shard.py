"""The shard worker: one OS process owning isolated server shards.

Each worker process runs :func:`shard_worker_main`: a receive loop over
the wire protocol of :mod:`repro.serving.wire`.  For every
:class:`~repro.serving.wire.RunScript` frame it stands up a *fresh*
isolated :class:`~repro.core.server.IntegrationServer` (own Database,
Machine and VirtualClock) via :func:`~repro.core.scenario
.build_scenario`, drives the script through a
:class:`~repro.serving.session.ClientSession` — the same containment
and MVCC-retry semantics as the thread-mode serving layer — and ships
the picklable outcome back as a :class:`~repro.serving.wire.ScriptDone`.

Because every session gets its own shard server built from the same
:class:`ShardConfig`, a session's rows and simulated times depend only
on its own call sequence: the cross-process parity suite demands they
match the bare single-process stack bit-for-bit at any shard count.

A script that raises is answered with ``ScriptFailed`` and the worker
keeps serving; only a hard kill (the fault battery's SIGKILL) or a
closed pipe ends the loop.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

from repro.appsys.datagen import EnterpriseData
from repro.core.scenario import build_scenario
from repro.core.server import IntegrationServer
from repro.serving.session import ClientSession
from repro.serving.wire import (
    Hello,
    Ping,
    Pong,
    RunScript,
    ScriptDone,
    ScriptFailed,
    Shutdown,
    ShutdownAck,
    recv_frame,
    send_frame,
)
from repro.serving.workload import SessionScript
from repro.simtime.costs import CostModel


@dataclass(frozen=True)
class ShardConfig:
    """Everything a worker needs to bootstrap session shards.

    The whole object crosses the process boundary once, at worker
    start, so every field must pickle: the enterprise universe, the
    cost model and the plain scenario knobs all do.  ``setup_sql``
    statements run on each fresh shard server before its script (the
    battery-through-serving suite uses this for DDL/loads/RUNSTATS);
    ``execution_mode`` selects row/batch/columnar after setup.
    """

    data: EnterpriseData | None = None
    costs: CostModel | None = None
    controller_enabled: bool = True
    pooling: bool = False
    result_cache: bool = False
    optimizer: str = "syntactic"
    chunk_size: int | None = None
    heterogeneous: bool = False
    execution_mode: str | None = None
    rmi_wall_latency_s: float = 0.0
    setup_sql: tuple[str, ...] = field(default_factory=tuple)


def build_shard_server(
    config: ShardConfig, script: SessionScript
) -> IntegrationServer:
    """Stand up one isolated server shard for one session script."""
    scenario = build_scenario(
        script.architecture,
        costs=config.costs,
        controller_enabled=config.controller_enabled,
        data=config.data,
        pooling=config.pooling,
        result_cache=config.result_cache,
        faults=script.faults,
        optimizer=config.optimizer,
        chunk_size=config.chunk_size,
        heterogeneous=config.heterogeneous,
    )
    server = scenario.server
    server.machine.configure_wall_latency(config.rmi_wall_latency_s)
    for statement in config.setup_sql:
        server.fdbs.execute(statement)
    if config.execution_mode is not None:
        server.fdbs.set_execution_mode(config.execution_mode)
    return server


def run_script(config: ShardConfig, script: SessionScript) -> ClientSession:
    """Run one script on a fresh shard server; returns the session."""
    server = build_shard_server(config, script)
    session = ClientSession(
        script.session_id, script.architecture, server, isolated=True
    )
    latencies: list[float] = []
    for call in script.calls:
        started = time.perf_counter()
        session.perform(call)
        latencies.append(time.perf_counter() - started)
    session.close()
    # Stash wall latencies on the session for the reply assembly.
    session.wall_latencies = latencies  # type: ignore[attr-defined]
    return session


def _script_done(request_id: int, session: ClientSession) -> ScriptDone:
    """Assemble the picklable outcome frame for one finished session."""
    return ScriptDone(
        request_id=request_id,
        session_id=session.session_id,
        row_sets=session.row_sets,
        call_sim_ms=[record.simulated_ms for record in session.records],
        simulated_ms=session.simulated_time,
        latencies=list(getattr(session, "wall_latencies", [])),
        summary=session.summary(),
    )


def shard_worker_main(conn, shard_id: int, config: ShardConfig) -> None:
    """Entry point of a worker process: serve frames until shutdown.

    The loop answers ``RunScript`` with ``ScriptDone``/``ScriptFailed``,
    ``Ping`` with ``Pong`` and ``Shutdown`` with ``ShutdownAck`` (then
    exits).  Pipe frames are ordered, so a shutdown sent behind queued
    scripts drains them first.  SIGINT is ignored — a Ctrl-C against
    the router must not tear workers out from under the drain path.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    completed = 0
    send_frame(conn, Hello(shard_id=shard_id, pid=os.getpid()))
    while True:
        try:
            message = recv_frame(conn)
        except (EOFError, OSError):
            break
        if isinstance(message, RunScript):
            try:
                session = run_script(config, message.script)
            except Exception as exc:  # noqa: BLE001 - contained per script
                send_frame(
                    conn,
                    ScriptFailed(
                        request_id=message.request_id,
                        session_id=message.script.session_id,
                        error_kind=type(exc).__name__,
                        message=str(exc),
                    ),
                )
            else:
                completed += 1
                send_frame(conn, _script_done(message.request_id, session))
        elif isinstance(message, Ping):
            send_frame(conn, Pong(token=message.token, completed=completed))
        elif isinstance(message, Shutdown):
            send_frame(conn, ShutdownAck(completed=completed))
            break
        # Unknown-but-valid frames (e.g. a future router speaking new
        # optional messages) are ignored; the wire layer already
        # rejects anything outside the protocol vocabulary.
    conn.close()


__all__ = [
    "ShardConfig",
    "build_shard_server",
    "run_script",
    "shard_worker_main",
]
