"""One client's view of the concurrent integration server.

A :class:`ClientSession` wraps an :class:`~repro.core.server
.IntegrationServer` — its *own* isolated server in the default sharded
mode (own machine, own virtual clock, own warm pool/caches), or a
shared per-architecture server in shared mode — and gives the client:

* a per-session :class:`~repro.simtime.trace.TraceRecorder` (isolated
  mode: recorded against the session's private clock);
* a per-call log of rows and simulated elapsed time;
* statement-level fault containment: an injected fault that aborts one
  statement is recorded against that call and the session continues —
  it never poisons another session's channels, pool entries or cache
  namespaces (isolated sessions do not even share them).

Calls within one session are strictly sequential (the serving layer
drives each session from a single worker), so the session object itself
needs no locking beyond what the underlying stack provides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.architectures import Architecture
from repro.core.server import IntegrationServer
from repro.errors import (
    SessionClosedError,
    StatementAbortedError,
    WriteConflictError,
)
from repro.fdbs.session import Result
from repro.serving.workload import WorkloadCall
from repro.simtime.trace import TraceRecorder

#: How many times a session re-drives a statement that lost a
#: first-writer-wins MVCC conflict before giving up and re-raising.
MAX_CONFLICT_RETRIES = 8


@dataclass
class CallRecord:
    """Outcome of one session call: rows, simulated time, fault state."""

    label: str
    rows: list[tuple] | None
    simulated_ms: float
    aborted: bool = False
    error: str | None = None


@dataclass
class SessionSummary:
    """Aggregate view of a finished (or running) session."""

    session_id: int
    architecture: str
    calls: int
    aborted: int
    simulated_ms: float
    rows_returned: int


class ClientSession:
    """One admitted client session routed through an integration server."""

    def __init__(
        self,
        session_id: int,
        architecture: Architecture,
        server: IntegrationServer,
        isolated: bool = True,
    ):
        self.session_id = session_id
        self.architecture = architecture
        self.server = server
        self.isolated = isolated
        """Whether this session owns its server (and thus its clock)."""
        self.trace = TraceRecorder(server.machine.clock)
        self.records: list[CallRecord] = []
        self.closed = False
        self._start_time = server.machine.clock.now

    # -- invocation ---------------------------------------------------------

    def _ensure_open(self) -> None:
        if self.closed:
            raise SessionClosedError(
                f"session {self.session_id} is closed; no further calls "
                "may be routed through it"
            )

    def call(self, name: str, *args: object) -> list[tuple]:
        """Invoke a deployed federated function; logs rows and timing.

        A :class:`~repro.errors.StatementAbortedError` (the UDTF
        architectures' unrecovered-fault outcome) is *contained*: the
        abort is recorded against this call, ``None`` is returned, and
        the session stays usable — matching a real client that retries
        or moves on after a failed statement.
        """
        self._ensure_open()
        clock = self.server.machine.clock
        start = clock.now
        try:
            rows = self.server.call(name, *args, trace=self.trace)
        except StatementAbortedError as exc:
            self.records.append(
                CallRecord(
                    label=f"{name}{args!r}",
                    rows=None,
                    simulated_ms=clock.now - start,
                    aborted=True,
                    error=str(exc),
                )
            )
            return []
        self.records.append(
            CallRecord(
                label=f"{name}{args!r}",
                rows=rows,
                simulated_ms=clock.now - start,
            )
        )
        return rows

    def execute(self, sql: str, params: tuple = ()) -> Result:
        """Run one SQL statement through the session's FDBS (DML mix).

        A statement that loses an MVCC first-writer-wins conflict is
        retryable by definition (the error means "your snapshot is
        stale, pin a fresh one"), so the session re-drives it a bounded
        number of times before surfacing the conflict to the client.
        On a single worker no conflict can ever arise and this path is
        exactly one ``execute`` call.
        """
        self._ensure_open()
        clock = self.server.machine.clock
        start = clock.now
        fdbs = self.server.fdbs
        for attempt in range(MAX_CONFLICT_RETRIES + 1):
            try:
                result = fdbs.execute(sql, params=list(params))
                break
            except WriteConflictError:
                if attempt >= MAX_CONFLICT_RETRIES:
                    raise
                fdbs.note_conflict_retry()
        self.records.append(
            CallRecord(
                label=sql.split(None, 2)[0] if sql else "SQL",
                rows=list(result.rows),
                simulated_ms=clock.now - start,
            )
        )
        return result

    def perform(self, call: WorkloadCall) -> CallRecord:
        """Execute one workload step and return its record."""
        if call.kind == "call":
            self.call(call.target, *call.args)
        elif call.kind == "sql":
            self.execute(call.target, call.args)
        else:
            raise ValueError(f"unknown workload call kind {call.kind!r}")
        return self.records[-1]

    def configure_faults(self, **kwargs) -> None:
        """Arm the fault harness for this session.

        Only meaningful on isolated sessions (each owns its machine and
        injector); on a shared server this configures the *shared*
        harness, affecting every session behind it.
        """
        self.server.configure_faults(**kwargs)

    # -- introspection ------------------------------------------------------

    @property
    def simulated_time(self) -> float:
        """Total simulated time attributed to this session's calls."""
        return sum(record.simulated_ms for record in self.records)

    @property
    def row_sets(self) -> list[list[tuple] | None]:
        """Rows of every call, in order (None for aborted statements)."""
        return [record.rows for record in self.records]

    def summary(self) -> SessionSummary:
        """Aggregate counters for reports and stress assertions."""
        return SessionSummary(
            session_id=self.session_id,
            architecture=self.architecture.value,
            calls=len(self.records),
            aborted=sum(1 for r in self.records if r.aborted),
            simulated_ms=self.simulated_time,
            rows_returned=sum(
                len(r.rows) for r in self.records if r.rows is not None
            ),
        )

    def close(self) -> None:
        """Mark the session closed (idempotent)."""
        self.closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return (
            f"<ClientSession {self.session_id} {self.architecture.value} "
            f"{state} calls={len(self.records)}>"
        )


__all__ = ["CallRecord", "ClientSession", "SessionSummary"]
