"""Concurrent multi-session front end for the integration server.

The paper's middle tier serves many client applications at once; the
single-caller :class:`~repro.core.server.IntegrationServer` models one
of them.  :class:`ConcurrentIntegrationServer` adds the serving story:

* a bounded worker pool (``workers`` threads) executes session scripts;
* an :class:`AdmissionController` applies backpressure — under the
  ``"block"`` policy a submitter waits for a slot, under ``"reject"``
  it gets an :class:`~repro.errors.AdmissionError`;
* a :class:`SessionManager` gates how many sessions may be open at once
  and owns their lifecycle.

Two sharing modes:

``"isolated"`` (default)
    Every session gets its *own* integration-server shard (own machine,
    own virtual clock, pools, caches, fault injector) built over one
    shared read-only :class:`~repro.appsys.datagen.EnterpriseData`.
    Each application system copies the enterprise data into its private
    database at construction, so concurrent shards never touch shared
    mutable state.  Because a session's simulated time depends only on
    its own call sequence, per-session results and simulated times are
    **bit-identical for any worker count** — the concurrency parity
    gate relies on this.

``"shared"``
    One integration server *per architecture*, shared by every session
    of that architecture.  Sessions contend on the real shared state —
    warm pool, result cache, statement cache, RMI channels, clock —
    and correctness rests on the component locks.  Rows stay
    deterministic (reads against static data, DML on session-private
    scratch tables); timings do not (the clock interleaves).  This is
    the stress-test mode.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.appsys.datagen import EnterpriseData, generate_enterprise_data
from repro.core.architectures import Architecture
from repro.core.scenario import build_scenario
from repro.core.server import IntegrationServer
from repro.errors import AdmissionError, ServingError
from repro.serving.session import ClientSession, SessionSummary
from repro.serving.workload import SessionScript
from repro.simtime.costs import CostModel


class AdmissionController:
    """Bounded admission with either backpressure or rejection.

    ``capacity`` in-flight units run at once; up to ``queue_limit`` more
    may be admitted and queued.  Beyond that, ``admit()`` blocks under
    the ``"block"`` policy (backpressure on the submitter) or raises
    :class:`~repro.errors.AdmissionError` under ``"reject"``.
    """

    def __init__(
        self,
        capacity: int,
        queue_limit: int = 0,
        policy: str = "block",
    ):
        if capacity < 1:
            raise ServingError(f"capacity must be >= 1, got {capacity!r}")
        if queue_limit < 0:
            raise ServingError(f"queue_limit must be >= 0, got {queue_limit!r}")
        if policy not in ("block", "reject"):
            raise ServingError(
                f"admission policy must be 'block' or 'reject', got {policy!r}"
            )
        self.capacity = capacity
        self.queue_limit = queue_limit
        self.policy = policy
        self._cond = threading.Condition()
        self._in_flight = 0
        self.admitted = 0
        self.rejected = 0
        self.blocked = 0
        self.peak_in_flight = 0

    @property
    def limit(self) -> int:
        """Total units that may be admitted at once (running + queued)."""
        return self.capacity + self.queue_limit

    def admit(self, timeout: float | None = None) -> None:
        """Take one admission slot; blocks or raises when full."""
        with self._cond:
            if self._in_flight >= self.limit:
                if self.policy == "reject":
                    self.rejected += 1
                    raise AdmissionError(
                        f"admission refused: {self._in_flight} in flight "
                        f">= limit {self.limit} (policy 'reject')"
                    )
                self.blocked += 1
                deadline = None if timeout is None else time.monotonic() + timeout
                while self._in_flight >= self.limit:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise AdmissionError(
                            f"admission timed out after {timeout}s "
                            f"({self._in_flight} in flight >= limit {self.limit})"
                        )
                    self._cond.wait(remaining)
            self._in_flight += 1
            self.admitted += 1
            self.peak_in_flight = max(self.peak_in_flight, self._in_flight)

    def release(self) -> None:
        """Return one admission slot and wake a blocked submitter."""
        with self._cond:
            if self._in_flight <= 0:
                raise ServingError("release() without a matching admit()")
            self._in_flight -= 1
            self._cond.notify()

    def stats(self) -> dict[str, int]:
        """Admission counters: capacity, in-flight, admitted/rejected/blocked."""
        with self._cond:
            return {
                "capacity": self.capacity,
                "queue_limit": self.queue_limit,
                "in_flight": self._in_flight,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "blocked": self.blocked,
                "peak_in_flight": self.peak_in_flight,
            }


class SessionManager:
    """Owns session lifecycle and enforces the max-open-sessions gate."""

    def __init__(self, max_sessions: int = 64):
        if max_sessions < 1:
            raise ServingError(f"max_sessions must be >= 1, got {max_sessions!r}")
        self.max_sessions = max_sessions
        self._lock = threading.RLock()
        self._sessions: dict[int, ClientSession] = {}
        self.total_opened = 0

    def register(self, session: ClientSession) -> ClientSession:
        """Admit one session, enforcing the max-open-sessions gate."""
        with self._lock:
            if len(self._open_ids()) >= self.max_sessions:
                raise AdmissionError(
                    f"session limit reached: {self.max_sessions} open sessions"
                )
            if session.session_id in self._sessions:
                raise ServingError(
                    f"session id {session.session_id} is already registered"
                )
            self._sessions[session.session_id] = session
            self.total_opened += 1
            return session

    def _open_ids(self) -> list[int]:
        return [sid for sid, s in self._sessions.items() if not s.closed]

    def get(self, session_id: int) -> ClientSession:
        """Look a session up by id (raises for unknown ids)."""
        with self._lock:
            if session_id not in self._sessions:
                raise ServingError(f"unknown session id {session_id}")
            return self._sessions[session_id]

    def close(self, session_id: int) -> None:
        """Close one session, freeing its slot at the gate."""
        with self._lock:
            self.get(session_id).close()

    def close_all(self) -> None:
        """Close every registered session (shutdown path)."""
        with self._lock:
            for session in self._sessions.values():
                session.close()

    @property
    def open_count(self) -> int:
        """How many registered sessions are currently open."""
        with self._lock:
            return len(self._open_ids())

    def summaries(self) -> list[SessionSummary]:
        """Per-session aggregate summaries, ordered by session id."""
        with self._lock:
            return [
                self._sessions[sid].summary() for sid in sorted(self._sessions)
            ]


@dataclass
class WorkloadRunResult:
    """Everything a workload run produced, keyed by session id."""

    workers: int
    mode: str
    wall_seconds: float
    latencies: list[float]
    """Per-call wall-clock latency (seconds), submission order not
    guaranteed — use the percentiles, not positions."""
    row_sets: dict[int, list[list[tuple] | None]]
    simulated_ms: dict[int, float]
    summaries: dict[int, SessionSummary]
    admission: dict[str, int] = field(default_factory=dict)
    call_sim_ms: dict[int, list[float]] = field(default_factory=dict)
    """Per-call simulated times by session, in script order (the
    battery-through-serving suite compares these per statement)."""
    shard_assignments: dict[int, int] = field(default_factory=dict)
    """session id -> shard id (process-sharded runs only; empty for
    thread-pool runs, where every session shares one pool)."""

    @property
    def calls(self) -> int:
        """Total calls completed across every session."""
        return len(self.latencies)

    @property
    def throughput(self) -> float:
        """Completed calls per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.calls / self.wall_seconds

    def latency_percentile(self, pct: float) -> float:
        """Nearest-rank percentile of per-call wall latency, in seconds."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(0, min(len(ordered) - 1, int(round(pct / 100.0 * len(ordered))) - 1))
        return ordered[rank]


class ConcurrentIntegrationServer:
    """Serve N client sessions over a bounded worker pool."""

    MODES = ("isolated", "shared")

    def __init__(
        self,
        workers: int = 4,
        mode: str = "isolated",
        max_sessions: int = 64,
        queue_limit: int | None = None,
        admission_policy: str = "block",
        pooling: bool = False,
        result_cache: bool = False,
        costs: CostModel | None = None,
        controller_enabled: bool = True,
        data: EnterpriseData | None = None,
        optimizer: str = "syntactic",
        rmi_wall_latency_s: float = 0.0,
        heterogeneous: bool = False,
        execution_mode: str | None = None,
        setup_sql: tuple[str, ...] = (),
    ):
        if workers < 1:
            raise ServingError(f"workers must be >= 1, got {workers!r}")
        if mode not in self.MODES:
            raise ServingError(
                f"mode must be one of {self.MODES}, got {mode!r}"
            )
        self.workers = workers
        self.mode = mode
        self.pooling = pooling
        self.result_cache = result_cache
        self.costs = costs
        self.controller_enabled = controller_enabled
        self.optimizer = optimizer
        #: Attach the three heterogeneous source profiles to every shard
        #: (the battery-through-serving suite needs the nicknames).
        self.heterogeneous = heterogeneous
        #: Execution mode applied to every shard after setup (None keeps
        #: the engine default); ``setup_sql`` statements run on each
        #: fresh shard before its script — DDL, loads, RUNSTATS.
        self.execution_mode = execution_mode
        self.setup_sql = tuple(setup_sql)
        #: Real wall-clock seconds per RMI hop (simulated time is never
        #: touched); 0.0 keeps wall-clock behaviour identical to a
        #: server without the knob.  See Machine.configure_wall_latency.
        self.rmi_wall_latency_s = rmi_wall_latency_s
        # One read-only enterprise universe shared by every shard: each
        # application system copies it into its private database, so the
        # shared object is never mutated after generation.
        self.data = data if data is not None else generate_enterprise_data()
        self.sessions = SessionManager(max_sessions=max_sessions)
        self.admission = AdmissionController(
            capacity=workers,
            queue_limit=workers if queue_limit is None else queue_limit,
            policy=admission_policy,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serving"
        )
        self._shared_lock = threading.RLock()
        self._shared_servers: dict[Architecture, IntegrationServer] = {}
        self._shutdown_lock = threading.Lock()
        self._closed = False

    # -- session plumbing ---------------------------------------------------

    def _build_isolated_server(
        self, architecture: Architecture, faults: dict | None
    ) -> IntegrationServer:
        scenario = build_scenario(
            architecture,
            costs=self.costs,
            controller_enabled=self.controller_enabled,
            data=self.data,
            pooling=self.pooling,
            result_cache=self.result_cache,
            faults=faults,
            optimizer=self.optimizer,
            heterogeneous=self.heterogeneous,
        )
        self._prepare_server(scenario.server)
        return scenario.server

    def _prepare_server(self, server: IntegrationServer) -> None:
        """Apply the serving-level knobs to a freshly built server."""
        server.machine.configure_wall_latency(self.rmi_wall_latency_s)
        for statement in self.setup_sql:
            server.fdbs.execute(statement)
        if self.execution_mode is not None:
            server.fdbs.set_execution_mode(self.execution_mode)

    def _shared_server(self, architecture: Architecture) -> IntegrationServer:
        with self._shared_lock:
            if architecture not in self._shared_servers:
                scenario = build_scenario(
                    architecture,
                    costs=self.costs,
                    controller_enabled=self.controller_enabled,
                    data=self.data,
                    pooling=self.pooling,
                    result_cache=self.result_cache,
                    optimizer=self.optimizer,
                    heterogeneous=self.heterogeneous,
                )
                self._prepare_server(scenario.server)
                self._shared_servers[architecture] = scenario.server
            return self._shared_servers[architecture]

    def open_session(
        self,
        session_id: int,
        architecture: Architecture,
        faults: dict | None = None,
    ) -> ClientSession:
        """Open one client session (sequential, in the caller's thread).

        Isolated mode builds the session's private server shard here, so
        construction order — and therefore every shard's initial state —
        is deterministic regardless of worker count.
        """
        if self._closed:
            raise ServingError("server is shut down")
        if self.mode == "isolated":
            server = self._build_isolated_server(architecture, faults)
            session = ClientSession(
                session_id, architecture, server, isolated=True
            )
        else:
            server = self._shared_server(architecture)
            session = ClientSession(
                session_id, architecture, server, isolated=False
            )
            if faults:
                # On a shared server the fault harness is shared too.
                server.configure_faults(**faults)
        return self.sessions.register(session)

    # -- workload execution -------------------------------------------------

    def _run_session(
        self, session: ClientSession, script: SessionScript
    ) -> list[float]:
        """Run one script to completion on a worker; returns latencies."""
        latencies: list[float] = []
        try:
            for call in script.calls:
                started = time.perf_counter()
                session.perform(call)
                latencies.append(time.perf_counter() - started)
        finally:
            self.admission.release()
        return latencies

    def run_workload(
        self,
        scripts: list[SessionScript],
        join_timeout: float = 120.0,
    ) -> WorkloadRunResult:
        """Run every session script; concurrently across sessions, in
        order within each.  ``join_timeout`` bounds the wait for any one
        session (a deadlock therefore fails fast instead of hanging).

        Accounting is exception-safe: whatever a script or the pool
        does, every admitted slot is released and every opened session
        closed before this method returns or re-raises — the admission
        and session gates always drain back to zero.
        """
        if self._closed:
            raise ServingError("server is shut down")
        sessions: list[ClientSession] = []
        futures = []
        try:
            for script in scripts:
                sessions.append(
                    self.open_session(
                        script.session_id, script.architecture, script.faults
                    )
                )
            wall_start = time.perf_counter()
            for session, script in zip(sessions, scripts):
                self.admission.admit(timeout=join_timeout)
                try:
                    futures.append(
                        self._executor.submit(self._run_session, session, script)
                    )
                except BaseException:
                    # submit() itself failed (e.g. pool shut down), so
                    # _run_session's finally will never release the slot.
                    self.admission.release()
                    raise
            latencies: list[float] = []
            for future in futures:
                latencies.extend(future.result(timeout=join_timeout))
            wall_seconds = time.perf_counter() - wall_start
            return WorkloadRunResult(
                workers=self.workers,
                mode=self.mode,
                wall_seconds=wall_seconds,
                latencies=latencies,
                row_sets={s.session_id: s.row_sets for s in sessions},
                simulated_ms={s.session_id: s.simulated_time for s in sessions},
                summaries={s.session_id: s.summary() for s in sessions},
                admission=self.admission.stats(),
                call_sim_ms={
                    s.session_id: [r.simulated_ms for r in s.records]
                    for s in sessions
                },
            )
        finally:
            # A script that never started would leak its admission slot:
            # cancel it and release on its behalf; then wait out the
            # rest so their own finally-blocks have run before we report
            # the gates as drained.
            for future in futures:
                if future.cancel():
                    self.admission.release()
            for future in futures:
                if not future.cancelled():
                    try:
                        future.result(timeout=join_timeout)
                    except Exception:
                        pass
            for session in sessions:
                session.close()

    # -- introspection & lifecycle ------------------------------------------

    def runtime_stats(self) -> dict[str, dict]:
        """Consistent runtime counters: per shared architecture server in
        shared mode, per session shard in isolated mode."""
        if self.mode == "shared":
            with self._shared_lock:
                return {
                    arch.value: server.machine.runtime_stats()
                    for arch, server in self._shared_servers.items()
                }
        with self.sessions._lock:
            return {
                f"session_{sid}": self.sessions._sessions[sid]
                .server.machine.runtime_stats()
                for sid in sorted(self.sessions._sessions)
            }

    @property
    def closed(self) -> bool:
        """Whether the server has been shut down."""
        return self._closed

    def shutdown(self) -> None:
        """Drain and tear the server down (idempotent, thread-safe).

        New work is refused first, then the worker pool drains — every
        in-flight script finishes and releases its admission slot —
        and only then are the sessions closed, so a shutdown never
        poisons a running script with ``SessionClosedError``.  After
        return the admission gate is at zero in flight and no session
        is open.
        """
        with self._shutdown_lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=True)
        self.sessions.close_all()

    def __enter__(self) -> "ConcurrentIntegrationServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


__all__ = [
    "AdmissionController",
    "ConcurrentIntegrationServer",
    "SessionManager",
    "WorkloadRunResult",
]
