"""Consistent-hash routing of sessions onto shard workers.

The sharded server owns one :class:`ConsistentHashRing`: every shard id
is hashed onto a ring at ``replicas`` virtual points, and a session is
routed to the first shard point at or after the hash of its session id.
Two properties matter here:

* **Determinism across processes.**  Hashes come from SHA-1, never the
  builtin ``hash()`` (which is salted per process) — the same session
  id maps to the same shard in the router, in a respawned router, and
  in any test that wants to predict placement.
* **Stability under membership change.**  Adding or removing one shard
  only moves the sessions whose arc it owned; everything else keeps its
  placement.  The fault path relies on this: a respawned shard takes
  back exactly the sessions of the shard it replaces (same id, same
  ring points).
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ServingError

#: Virtual points per shard; more points -> smoother load spread.
DEFAULT_REPLICAS = 128


def _hash(key: str) -> int:
    """Stable 64-bit ring position for a key (SHA-1, process-independent)."""
    return int.from_bytes(hashlib.sha1(key.encode()).digest()[:8], "big")


class ConsistentHashRing:
    """Maps hashable keys onto a fixed set of shard ids."""

    def __init__(self, nodes: tuple[int, ...] = (), replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ServingError(f"replicas must be >= 1, got {replicas!r}")
        self.replicas = replicas
        self._points: list[int] = []
        self._owner: dict[int, int] = {}
        self._nodes: set[int] = set()
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> list[int]:
        """The shard ids currently on the ring, sorted."""
        return sorted(self._nodes)

    def add_node(self, node: int) -> None:
        """Place one shard id on the ring at ``replicas`` virtual points."""
        if node in self._nodes:
            raise ServingError(f"shard {node} is already on the ring")
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = _hash(f"shard:{node}#{replica}")
            # SHA-1 collisions across distinct keys are not a practical
            # concern, but keep ownership deterministic anyway: lowest
            # shard id wins a contested point.
            if point in self._owner:
                self._owner[point] = min(self._owner[point], node)
            else:
                self._owner[point] = node
                bisect.insort(self._points, point)

    def remove_node(self, node: int) -> None:
        """Take one shard id off the ring (its arcs fall to successors)."""
        if node not in self._nodes:
            raise ServingError(f"shard {node} is not on the ring")
        self._nodes.discard(node)
        for replica in range(self.replicas):
            point = _hash(f"shard:{node}#{replica}")
            if self._owner.get(point) == node:
                del self._owner[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    def route(self, session_id: int) -> int:
        """The shard id owning this session (clockwise successor rule)."""
        if not self._points:
            raise ServingError("cannot route: the ring has no shards")
        point = _hash(f"session:{session_id}")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owner[self._points[index]]

    def assignments(self, session_ids) -> dict[int, int]:
        """Route many sessions at once: ``{session_id: shard_id}``."""
        return {sid: self.route(sid) for sid in session_ids}

    def __len__(self) -> int:
        return len(self._nodes)


__all__ = ["ConsistentHashRing", "DEFAULT_REPLICAS"]
