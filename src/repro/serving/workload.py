"""Seeded multi-client workloads for the concurrent serving layer.

A workload is a list of :class:`SessionScript` objects — one per client
session — each naming an architecture and a fixed sequence of
:class:`WorkloadCall` steps (federated-function reads plus a DML mix
against a session-private scratch table).  Scripts are generated from a
single seed, so the same seed always produces the same per-session call
sequences: the concurrency parity suite replays one workload under
different worker counts and demands bit-identical per-session results.

Argument values are drawn from small pools anchored on the pinned
entities of :func:`~repro.appsys.datagen.generate_enterprise_data`
(supplier 1234 / 'ACME Industrial', component 1 / 'gearbox'), so every
generated call is valid against the default enterprise universe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.architectures import Architecture, supports
from repro.core.scenario import scenario_functions

#: Architectures the default mixed workload cycles through.
DEFAULT_ARCHITECTURES = (
    Architecture.WFMS,
    Architecture.ENHANCED_SQL_UDTF,
    Architecture.ENHANCED_JAVA_UDTF,
    Architecture.SIMPLE_UDTF,
)

#: Architectures the MVCC scaling benchmark cycles through.  A subset of
#: :data:`DEFAULT_ARCHITECTURES`: one WfMS-coupled and two UDTF-coupled
#: shapes keep the shared-server matrix small while still exercising both
#: integration paths under contention.
SCALING_ARCHITECTURES = (
    Architecture.WFMS,
    Architecture.ENHANCED_JAVA_UDTF,
    Architecture.SIMPLE_UDTF,
)

#: Named workload mixes for the concurrency scaling benchmark, as the
#: ``dml_fraction`` passed to :func:`make_workload`.  ``read_heavy`` is
#: pure federated-function reads (the MVCC fast path: snapshot pins,
#: zero write latches); ``write_heavy`` spends most steps on scratch-table
#: DML, where per-table latches and first-writer-wins checks dominate.
WORKLOAD_PROFILES: dict[str, float] = {
    "read_heavy": 0.0,
    "mixed": 0.35,
    "write_heavy": 0.85,
}

#: Argument pools per federated function (all valid against the default
#: enterprise universe; variety exercises caches without breaking rows).
ARG_POOLS: dict[str, tuple[tuple, ...]] = {
    "GibKompNr": (("gearbox",), ("axle",), ("piston",)),
    "GetNumberSupp1234": ((1,), (2,), (3,)),
    "GetSuppQual": (("ACME Industrial",), ("Globex Metals",)),
    "GetSuppQualRelia": ((1234,), (5001,), (5002,)),
    "GetSubCompDiscounts": ((1, 5), (1, 10), (2, 5)),
    "GetSuppGrade": ((1234,), (5001,)),
    "GetSuppQualReliaByName": (("ACME Industrial",), ("Initech Parts",)),
    "GetNoSuppComp": (("gearbox",), ("axle",)),
    "BuySuppComp": ((1234, "gearbox"), (5001, "axle")),
    "AllCompNames": ((1, 4), (2, 6)),
}


@dataclass(frozen=True)
class WorkloadCall:
    """One step of a session script.

    ``kind`` is ``"call"`` (federated-function invocation through the
    FDBS) or ``"sql"`` (a raw statement — the DML mix).  ``target`` is
    the function name or the SQL text; ``args`` the call arguments or
    statement parameters.
    """

    kind: str
    target: str
    args: tuple = ()

    def label(self) -> str:
        """Short human-readable step label (for traces and reports)."""
        if self.kind == "call":
            return f"{self.target}{self.args!r}"
        return self.target.split(None, 2)[0] if self.target else "SQL"


@dataclass
class SessionScript:
    """One client session's deterministic call sequence."""

    session_id: int
    architecture: Architecture
    calls: list[WorkloadCall] = field(default_factory=list)
    faults: dict | None = None
    """Optional fault configuration forwarded to the session's server
    (isolated sessions only — each has its own injector)."""

    @property
    def scratch_table(self) -> str:
        """The session-private DML target (unique per session id)."""
        return f"SCRATCH_S{self.session_id}"


def supported_functions(architecture: Architecture) -> list[str]:
    """Scenario function names the architecture can deploy, in order."""
    return [
        fed.name
        for fed in scenario_functions()
        if supports(architecture, fed.case)
    ]


def _dml_steps(script: SessionScript, rng: random.Random, step: int) -> WorkloadCall:
    """One DML step against the session's private scratch table."""
    table = script.scratch_table
    choice = rng.randrange(3)
    if choice == 0:
        return WorkloadCall(
            "sql",
            f"INSERT INTO {table} (ID, VAL) VALUES (?, ?)",
            (step, rng.randrange(1000)),
        )
    if choice == 1:
        return WorkloadCall(
            "sql",
            f"UPDATE {table} SET VAL = VAL + ? WHERE ID < ?",
            (rng.randrange(10), step),
        )
    return WorkloadCall(
        "sql", f"SELECT ID, VAL FROM {table} ORDER BY ID", ()
    )


def make_workload(
    seed: int,
    sessions: int = 8,
    calls_per_session: int = 12,
    architectures: tuple[Architecture, ...] | None = None,
    dml_fraction: float = 0.25,
) -> list[SessionScript]:
    """Generate a deterministic mixed workload.

    Sessions cycle through ``architectures`` round-robin; each session's
    calls mix federated-function reads (arguments drawn from
    :data:`ARG_POOLS`) with DML against its private scratch table.  The
    first step of every session creates that table, so scripts are
    self-contained on a fresh server — shared or isolated.
    """
    if sessions < 1:
        raise ValueError(f"need at least one session, got {sessions!r}")
    if calls_per_session < 1:
        raise ValueError(
            f"need at least one call per session, got {calls_per_session!r}"
        )
    if not 0.0 <= dml_fraction <= 1.0:
        raise ValueError(f"dml_fraction must be in [0, 1], got {dml_fraction!r}")
    archs = architectures if architectures is not None else DEFAULT_ARCHITECTURES
    rng = random.Random(seed)
    scripts: list[SessionScript] = []
    for session_id in range(sessions):
        architecture = archs[session_id % len(archs)]
        script = SessionScript(session_id=session_id, architecture=architecture)
        script.calls.append(
            WorkloadCall(
                "sql",
                f"CREATE TABLE {script.scratch_table} "
                "(ID INTEGER PRIMARY KEY, VAL INTEGER)",
            )
        )
        functions = supported_functions(architecture)
        for step in range(calls_per_session):
            if rng.random() < dml_fraction:
                script.calls.append(_dml_steps(script, rng, step))
            else:
                name = functions[rng.randrange(len(functions))]
                pool = ARG_POOLS[name]
                script.calls.append(
                    WorkloadCall("call", name, pool[rng.randrange(len(pool))])
                )
        scripts.append(script)
    return scripts


def make_profile_workload(
    profile: str,
    seed: int,
    sessions: int = 8,
    calls_per_session: int = 12,
) -> list[SessionScript]:
    """Generate a deterministic workload for a named scaling profile.

    ``profile`` keys :data:`WORKLOAD_PROFILES`; sessions cycle through
    :data:`SCALING_ARCHITECTURES`.  Everything else matches
    :func:`make_workload`, so the same seed and profile always replay
    the identical call sequences — the scaling benchmark relies on this
    to compare worker counts on exactly the same work.
    """
    try:
        dml_fraction = WORKLOAD_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown workload profile {profile!r}; "
            f"expected one of {sorted(WORKLOAD_PROFILES)}"
        ) from None
    return make_workload(
        seed,
        sessions=sessions,
        calls_per_session=calls_per_session,
        architectures=SCALING_ARCHITECTURES,
        dml_fraction=dml_fraction,
    )
