"""Process-sharded serving: consistent-hash routing over OS workers.

:class:`ShardedIntegrationServer` is the scale-out sibling of the
thread-pool :class:`~repro.serving.server.ConcurrentIntegrationServer`.
Threads top out against the GIL; here every shard is a real OS process
(:func:`~repro.serving.shard.shard_worker_main`) owning isolated
per-session server shards, so CPU work and injected wall latency both
overlap across shards.

The front end is a thin, selector-based event loop:

* **Routing** — sessions map onto shards by consistent hashing on the
  session id (:class:`~repro.serving.hashring.ConsistentHashRing`);
  placement is deterministic across runs and processes.
* **Admission** — the same :class:`~repro.serving.server
  .AdmissionController` bounds scripts in flight (block or reject).
* **Multiplexing** — one collector thread waits on every worker pipe
  *and* process sentinel with :func:`multiprocessing.connection.wait`
  (a selector under the hood), resolving per-script futures as
  :class:`~repro.serving.wire.ScriptDone` frames arrive.
* **Fault handling** — a dead worker (EOF, broken pipe, wire-protocol
  violation or sentinel) first has its already-buffered results
  drained, then every outstanding script on it fails with a clean,
  retryable :class:`~repro.errors.ShardCrashError`; nothing hangs and
  the process is reaped.  ``respawn_shard`` brings the shard back on
  the same ring points, so resubmitted sessions land exactly where
  they did before.
* **Drain/shutdown** — ``shutdown()`` stops new admissions, waits for
  in-flight scripts, then sends ``Shutdown`` down each pipe; ordered
  frames make the worker drain its queue before acking and exiting.

Isolated shards make cross-process parity testable: rows and
per-session simulated times must match the bare single-process stack
bit-for-bit at any shard count (``tests/test_process_parity.py``).
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from concurrent.futures import Future
from multiprocessing.connection import wait as connection_wait

from repro.appsys.datagen import EnterpriseData, generate_enterprise_data
from repro.errors import ServingError, ShardCrashError, WireProtocolError
from repro.serving.hashring import DEFAULT_REPLICAS, ConsistentHashRing
from repro.serving.server import AdmissionController, WorkloadRunResult
from repro.serving.shard import ShardConfig, shard_worker_main
from repro.serving.wire import (
    Hello,
    Pong,
    RunScript,
    ScriptDone,
    ScriptFailed,
    Shutdown,
    ShutdownAck,
    recv_frame,
    send_frame,
)
from repro.serving.workload import SessionScript
from repro.simtime.costs import CostModel


def _default_start_method() -> str:
    """Prefer fork (cheap, inherits the universe); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class _ShardHandle:
    """Router-side state for one worker process (internal)."""

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.process = None
        self.conn = None
        self.pid: int | None = None
        self.alive = False
        self.ready = False
        self.completed = 0
        self.respawns = 0
        #: Bumped on every (re)spawn; stale pipe/sentinel events from a
        #: previous incarnation must never kill the current one.
        self.generation = 0
        self.death_cause: str | None = None
        self.pending: dict[int, Future] = {}


class ShardedIntegrationServer:
    """Serve session scripts across N single-process server shards."""

    MODE = "process"

    def __init__(
        self,
        shards: int = 4,
        *,
        data: EnterpriseData | None = None,
        queue_limit: int | None = None,
        admission_policy: str = "block",
        replicas: int = DEFAULT_REPLICAS,
        start_method: str | None = None,
        costs: CostModel | None = None,
        controller_enabled: bool = True,
        pooling: bool = False,
        result_cache: bool = False,
        optimizer: str = "syntactic",
        chunk_size: int | None = None,
        heterogeneous: bool = False,
        execution_mode: str | None = None,
        rmi_wall_latency_s: float = 0.0,
        setup_sql: tuple[str, ...] = (),
    ):
        if shards < 1:
            raise ServingError(f"shards must be >= 1, got {shards!r}")
        self.shards = shards
        self.config = ShardConfig(
            data=data if data is not None else generate_enterprise_data(),
            costs=costs,
            controller_enabled=controller_enabled,
            pooling=pooling,
            result_cache=result_cache,
            optimizer=optimizer,
            chunk_size=chunk_size,
            heterogeneous=heterogeneous,
            execution_mode=execution_mode,
            rmi_wall_latency_s=rmi_wall_latency_s,
            setup_sql=tuple(setup_sql),
        )
        self.ring = ConsistentHashRing(tuple(range(shards)), replicas=replicas)
        self.admission = AdmissionController(
            capacity=shards,
            queue_limit=shards if queue_limit is None else queue_limit,
            policy=admission_policy,
        )
        self._ctx = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self._lock = threading.RLock()
        self._request_ids = itertools.count(1)
        self._closed = False
        self._handles: dict[int, _ShardHandle] = {}
        for shard_id in range(shards):
            handle = _ShardHandle(shard_id)
            self._handles[shard_id] = handle
            self._start_worker(handle)
        self._collector_stop = threading.Event()
        self._collector = threading.Thread(
            target=self._collect_loop, name="shard-router", daemon=True
        )
        self._collector.start()

    # -- worker lifecycle ---------------------------------------------------

    def _start_worker(self, handle: _ShardHandle) -> None:
        """Fork/spawn one worker process behind a fresh duplex pipe."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(child_conn, handle.shard_id, self.config),
            name=f"shard-{handle.shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.pid = process.pid
        handle.alive = True
        handle.ready = False
        handle.generation += 1
        handle.death_cause = None
        handle.pending = {}

    def _mark_dead(
        self, handle: _ShardHandle, cause: str, generation: int
    ) -> None:
        """Reap a dead shard: drain buffered results, fail the rest."""
        with self._lock:
            if not handle.alive or handle.generation != generation:
                return
            handle.alive = False
            handle.death_cause = cause
        # Results the worker flushed before dying are still in the pipe;
        # deliver them so only genuinely unfinished sessions fail.
        while True:
            try:
                if not handle.conn.poll(0):
                    break
                message = recv_frame(handle.conn)
            except (EOFError, OSError, WireProtocolError):
                break
            self._dispatch(handle, message)
        with self._lock:
            failed = list(handle.pending.items())
            handle.pending = {}
        for _, future in failed:
            if future.set_running_or_notify_cancel():
                future.set_exception(
                    ShardCrashError(
                        handle.shard_id,
                        f"shard {handle.shard_id} died ({cause}) with the "
                        "session outstanding; the script is retryable — "
                        "respawn the shard and resubmit",
                    )
                )
            self.admission.release()
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.process.join(timeout=5.0)
        if handle.process.is_alive():  # pragma: no cover - defensive
            handle.process.terminate()
            handle.process.join(timeout=5.0)

    def kill_shard(self, shard_id: int) -> None:
        """Hard-kill one worker (SIGKILL) — the fault battery's hammer.

        Detection, draining of already-completed results and the
        failing of outstanding sessions all happen on the collector
        path, exactly as for a real crash.
        """
        handle = self._handle(shard_id)
        handle.process.kill()

    def respawn_shard(self, shard_id: int) -> None:
        """Bring a dead shard back on the same consistent-hash arcs."""
        handle = self._handle(shard_id)
        with self._lock:
            if self._closed:
                raise ServingError("server is shut down")
            if handle.alive:
                raise ServingError(f"shard {shard_id} is still alive")
            handle.respawns += 1
            self._start_worker(handle)

    def _handle(self, shard_id: int) -> _ShardHandle:
        try:
            return self._handles[shard_id]
        except KeyError:
            raise ServingError(f"unknown shard id {shard_id}") from None

    # -- the selector loop --------------------------------------------------

    def _collect_loop(self) -> None:
        """Multiplex every worker pipe + process sentinel until stopped."""
        while not self._collector_stop.is_set():
            with self._lock:
                by_object = {}
                for handle in self._handles.values():
                    if handle.alive:
                        entry = (handle, handle.generation)
                        by_object[handle.conn] = entry
                        by_object[handle.process.sentinel] = entry
            if not by_object:
                time.sleep(0.01)
                continue
            for obj in connection_wait(list(by_object), timeout=0.05):
                handle, generation = by_object[obj]
                if obj is handle.conn:
                    try:
                        message = recv_frame(handle.conn)
                    except (EOFError, OSError, WireProtocolError) as exc:
                        self._mark_dead(
                            handle, f"pipe broke: {exc}", generation
                        )
                        continue
                    self._dispatch(handle, message)
                else:
                    self._mark_dead(
                        handle, "worker process exited", generation
                    )

    def _dispatch(self, handle: _ShardHandle, message: object) -> None:
        """Resolve one worker frame against the pending-future table."""
        if isinstance(message, Hello):
            handle.ready = True
            handle.pid = message.pid
        elif isinstance(message, ScriptDone):
            with self._lock:
                future = handle.pending.pop(message.request_id, None)
                handle.completed += 1
            if future is not None:
                if future.set_running_or_notify_cancel():
                    future.set_result(message)
                self.admission.release()
        elif isinstance(message, ScriptFailed):
            with self._lock:
                future = handle.pending.pop(message.request_id, None)
            if future is not None:
                if future.set_running_or_notify_cancel():
                    future.set_exception(
                        ServingError(
                            f"shard {handle.shard_id} failed the script "
                            f"for session {message.session_id}: "
                            f"{message.error_kind}: {message.message}"
                        )
                    )
                self.admission.release()
        elif isinstance(message, (Pong, ShutdownAck)):
            # Liveness / drain acks carry no future to resolve; the
            # shutdown path reads its ack synchronously off-collector.
            pass

    # -- submission ---------------------------------------------------------

    def route(self, session_id: int) -> int:
        """The shard id a session is (deterministically) routed to."""
        return self.ring.route(session_id)

    def submit(
        self, script: SessionScript, timeout: float | None = None
    ) -> Future:
        """Admit and route one script; returns a future of ScriptDone.

        The future raises :class:`~repro.errors.ShardCrashError` if the
        owning shard dies first (retryable: respawn and resubmit), or
        :class:`~repro.errors.ServingError` if the script itself failed
        inside the worker.
        """
        with self._lock:
            if self._closed:
                raise ServingError("server is shut down")
        self.admission.admit(timeout=timeout)
        future: Future = Future()
        try:
            with self._lock:
                if self._closed:
                    raise ServingError("server is shut down")
                handle = self._handle(self.route(script.session_id))
                if not handle.alive:
                    raise ShardCrashError(
                        handle.shard_id,
                        f"shard {handle.shard_id} is dead "
                        f"({handle.death_cause}); respawn_shard() first",
                    )
                request_id = next(self._request_ids)
                handle.pending[request_id] = future
                try:
                    send_frame(
                        handle.conn,
                        RunScript(request_id=request_id, script=script),
                    )
                except (OSError, ValueError) as exc:
                    handle.pending.pop(request_id, None)
                    raise ShardCrashError(
                        handle.shard_id,
                        f"shard {handle.shard_id} pipe rejected the "
                        f"script: {exc}",
                    ) from exc
        except BaseException:
            self.admission.release()
            raise
        return future

    def run_workload(
        self,
        scripts: list[SessionScript],
        join_timeout: float = 120.0,
    ) -> WorkloadRunResult:
        """Run every script across the shards; collect one result.

        Mirrors the thread server's ``run_workload`` contract: scripts
        run concurrently across sessions, strictly in order within
        each, and ``join_timeout`` bounds the wait for any one session
        so a wedged shard fails fast instead of hanging.
        """
        wall_start = time.perf_counter()
        futures = [
            self.submit(script, timeout=join_timeout) for script in scripts
        ]
        outcomes: list[ScriptDone] = [
            future.result(timeout=join_timeout) for future in futures
        ]
        wall_seconds = time.perf_counter() - wall_start
        latencies: list[float] = []
        for outcome in outcomes:
            latencies.extend(outcome.latencies)
        return WorkloadRunResult(
            workers=self.shards,
            mode=self.MODE,
            wall_seconds=wall_seconds,
            latencies=latencies,
            row_sets={o.session_id: o.row_sets for o in outcomes},
            simulated_ms={o.session_id: o.simulated_ms for o in outcomes},
            summaries={o.session_id: o.summary for o in outcomes},
            admission=self.admission.stats(),
            call_sim_ms={o.session_id: o.call_sim_ms for o in outcomes},
            shard_assignments={
                script.session_id: self.route(script.session_id)
                for script in scripts
            },
        )

    # -- introspection & lifecycle ------------------------------------------

    def shard_stats(self) -> dict[int, dict]:
        """Per-shard counters: pid, liveness, completions, respawns."""
        with self._lock:
            return {
                shard_id: {
                    "pid": handle.pid,
                    "alive": handle.alive,
                    "ready": handle.ready,
                    "completed": handle.completed,
                    "pending": len(handle.pending),
                    "respawns": handle.respawns,
                    "death_cause": handle.death_cause,
                }
                for shard_id, handle in sorted(self._handles.items())
            }

    def runtime_stats(self) -> dict[str, dict]:
        """Router-level stats: admission counters plus per-shard state."""
        return {
            "admission": self.admission.stats(),
            "shards": {
                f"shard_{sid}": stats for sid, stats in self.shard_stats().items()
            },
        }

    def drain(self, timeout: float = 60.0) -> None:
        """Block until no script is outstanding on any live shard."""
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                pending = [
                    future
                    for handle in self._handles.values()
                    for future in handle.pending.values()
                ]
            if not pending:
                return
            if time.monotonic() >= deadline:
                raise ServingError(
                    f"drain timed out with {len(pending)} scripts in flight"
                )
            pending[0].exception(timeout=max(0.0, deadline - time.monotonic()))

    def shutdown(self, timeout: float = 30.0) -> None:
        """Graceful teardown: drain, stop workers, reap (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self.drain(timeout=timeout)
        except ServingError:  # pragma: no cover - wedged-shard fallback
            pass
        self._collector_stop.set()
        self._collector.join(timeout=timeout)
        for handle in self._handles.values():
            if not handle.alive:
                continue
            try:
                send_frame(handle.conn, Shutdown())
                deadline = time.monotonic() + timeout
                while time.monotonic() < deadline:
                    if not handle.conn.poll(0.05):
                        continue
                    if isinstance(recv_frame(handle.conn), ShutdownAck):
                        break
            except (EOFError, OSError, WireProtocolError):
                pass
            handle.alive = False
        for handle in self._handles.values():
            if handle.process is None:
                continue
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():  # pragma: no cover - defensive
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ShardedIntegrationServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


__all__ = ["ShardedIntegrationServer"]
