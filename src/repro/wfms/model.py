"""Workflow process model.

Mirrors the production-workflow concepts of MQSeries Workflow that the
paper's mapping uses:

* **containers** — typed records passed into and out of activities;
* **program activities** — invoke a registered program (here: a local
  function of an application system) in a fresh JVM;
* **helper activities** — the paper's "helper functions" for type
  conversions and result composition, run inside the engine;
* **block activities** — sub-processes, optionally iterated as a
  do-until loop (the cyclic mapping case);
* **control connectors** — the precedence graph, with optional
  transition conditions;
* **data sources** — where each input-container member comes from
  (process input, another activity's output, or a constant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar

from repro.errors import ContainerError, ProcessDefinitionError
from repro.fdbs.types import SqlType, coerce_into


@dataclass(frozen=True)
class ContainerType:
    """A typed record schema: ordered (name, type) members."""

    name: str
    members: tuple[tuple[str, SqlType], ...]

    def member_names(self) -> list[str]:
        """Member names in declaration order."""
        return [name for name, _ in self.members]

    def member_type(self, name: str) -> SqlType:
        """The declared type of a member (raises if unknown)."""
        target = name.upper()
        for member_name, member_type in self.members:
            if member_name.upper() == target:
                return member_type
        raise ContainerError(
            f"container type {self.name!r} has no member {name!r}"
        )

    def has_member(self, name: str) -> bool:
        """True if a member of that name is declared."""
        target = name.upper()
        return any(m.upper() == target for m, _ in self.members)

    def new_container(self) -> "Container":
        """A fresh, empty container of this type."""
        return Container(self)


class Container:
    """One instance of a container type."""

    def __init__(self, type_: ContainerType):
        self.type = type_
        self._values: dict[str, object] = {}
        #: Optional table-valued payload (the paper's independent case
        #: composes *result sets*; containers carry scalars, so multi-row
        #: results travel as an attachment under the ``ROWS`` convention).
        self.rows: list[tuple] | None = None
        #: Untyped side-channel for FromActivityRows inputs.
        self.attachments: dict[str, object] = {}

    def set(self, name: str, value: object) -> None:
        """Assign a member (value coerced into the member type)."""
        member_type = self.type.member_type(name)
        self._values[name.upper()] = coerce_into(value, member_type)

    def get(self, name: str) -> object:
        """Read a member (raises ContainerError when unset)."""
        self.type.member_type(name)  # validate the member exists
        key = name.upper()
        if key not in self._values:
            raise ContainerError(
                f"member {name!r} of container {self.type.name!r} is unset"
            )
        return self._values[key]

    def is_set(self, name: str) -> bool:
        """True if the member has been assigned."""
        return name.upper() in self._values

    def as_dict(self) -> dict[str, object]:
        """Values keyed by declared member names (declaration order)."""
        return {
            name: self._values[name.upper()]
            for name, _ in self.type.members
            if name.upper() in self._values
        }

    def fill(self, values: dict[str, object]) -> "Container":
        """Assign several members from a dict; returns self."""
        for name, value in values.items():
            self.set(name, value)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Container {self.type.name} {self.as_dict()!r}>"


# -- data sources --------------------------------------------------------------


@dataclass(frozen=True)
class FromProcessInput:
    """Input member fed from the process input container."""

    member: str


@dataclass(frozen=True)
class FromActivityOutput:
    """Input member fed from another activity's output container."""

    activity: str
    member: str


@dataclass(frozen=True)
class Constant:
    """Input member fed a constant value (the paper's simple case:
    'the workflow solution can supply a constant value when calling the
    local function')."""

    value: object


@dataclass(frozen=True)
class FromAnyActivity:
    """Input member fed from the first *finished* producer in the list.

    The data-side companion of an OR-join: after an exclusive choice
    (conditional routing), the merge activity takes its input from
    whichever branch actually ran.
    """

    choices: tuple[FromActivityOutput, ...]


@dataclass(frozen=True)
class FromActivityRows:
    """Input attachment fed from another activity's *row set*.

    Containers carry scalars; composition helpers (the independent
    case's "join with selection" counterpart) receive whole result sets
    through this untyped attachment channel.
    """

    activity: str


DataSource = (
    FromProcessInput
    | FromActivityOutput
    | Constant
    | FromActivityRows
    | FromAnyActivity
)


# -- activities ------------------------------------------------------------------


@dataclass
class Activity:
    """Base class of all activity kinds.

    ``join`` decides when the activity may run given its incoming
    control connectors: ``"AND"`` (default) requires *every* inbound
    path to be alive and true; ``"OR"`` requires at least one — the
    merge side of conditional routing.
    """

    name: str
    input_type: ContainerType
    output_type: ContainerType
    input_map: dict[str, DataSource] = field(default_factory=dict)
    join: str = "AND"


@dataclass
class ProgramActivity(Activity):
    """Invokes a registered program (a local function call).

    Executing a program activity boots a fresh JVM and handles the
    input/output containers — the cost structure the paper measures.

    ``max_retries`` is the error-handling policy the paper credits the
    WfMS with ("copes with different kinds of error handling"): a
    failing program is re-invoked up to that many extra times (each
    attempt pays the full activity cost) before the activity — and the
    process — fail.
    """

    program: str = ""
    max_retries: int = 0


@dataclass
class HelperActivity(Activity):
    """The paper's helper function: type conversions and result
    composition, executed inside the engine (no fresh JVM)."""

    helper: str = ""


@dataclass
class BlockActivity(Activity):
    """A sub-process, optionally iterated as a do-until loop.

    ``until`` is a predicate over the sub-process output container; the
    block repeats until it returns True.  ``carry`` maps sub-process
    input members from the previous iteration's output members, which is
    how a loop advances its induction values.
    """

    subprocess: "ProcessDefinition | None" = None
    until: "Condition | None" = None
    carry: dict[str, str] = field(default_factory=dict)
    max_iterations: int = 10_000
    collect_rows: bool = False
    """Concatenate the row attachments of all iterations into the
    block's own row attachment (used by cyclic table-valued mappings
    like the paper's AllCompNames)."""


# -- control flow -----------------------------------------------------------------


@dataclass(frozen=True)
class Condition:
    """A transition / loop condition over a container.

    ``member op value`` with op in ``= <> < <= > >=``; evaluated with
    SQL-ish semantics (an unset/NULL member makes the condition False).
    """

    member: str
    op: str
    value: object

    _OPS: ClassVar[tuple[str, ...]] = ("=", "<>", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ProcessDefinitionError(f"unsupported condition operator {self.op!r}")

    def evaluate(self, container: Container) -> bool:
        """Evaluate against a container (unset/NULL member -> False)."""
        if not container.type.has_member(self.member):
            raise ContainerError(
                f"condition references unknown member {self.member!r}"
            )
        if not container.is_set(self.member):
            return False
        actual = container.get(self.member)
        expected = self.value
        if actual is None:
            return False
        if self.op == "=":
            return actual == expected
        if self.op == "<>":
            return actual != expected
        if self.op == "<":
            return actual < expected  # type: ignore[operator]
        if self.op == "<=":
            return actual <= expected  # type: ignore[operator]
        if self.op == ">":
            return actual > expected  # type: ignore[operator]
        return actual >= expected  # type: ignore[operator]

    def render(self) -> str:
        """FDL text of the condition."""
        if isinstance(self.value, str):
            return f"{self.member} {self.op} '{self.value}'"
        return f"{self.member} {self.op} {self.value}"


@dataclass(frozen=True)
class ControlConnector:
    """A directed precedence edge, optionally guarded by a transition
    condition evaluated on the *source* activity's output container."""

    source: str
    target: str
    condition: Condition | None = None


# -- process ------------------------------------------------------------------------


@dataclass
class ProcessDefinition:
    """A complete workflow process (the paper's mapping graph)."""

    name: str
    input_type: ContainerType
    output_type: ContainerType
    activities: list[Activity] = field(default_factory=list)
    connectors: list[ControlConnector] = field(default_factory=list)
    output_map: dict[str, FromActivityOutput | FromProcessInput | Constant] = field(
        default_factory=dict
    )
    #: Name of the activity whose attached row set (``ROWS``) becomes the
    #: table-valued result of the process; None for scalar-row results.
    rows_from: str | None = None

    def activity(self, name: str) -> Activity:
        """Look up an activity by name."""
        target = name.upper()
        for activity in self.activities:
            if activity.name.upper() == target:
                return activity
        raise ProcessDefinitionError(
            f"process {self.name!r} has no activity {name!r}"
        )

    def has_activity(self, name: str) -> bool:
        """True if an activity of that name exists."""
        target = name.upper()
        return any(a.name.upper() == target for a in self.activities)

    def predecessors(self, name: str) -> list[ControlConnector]:
        """Inbound control connectors of an activity."""
        target = name.upper()
        return [c for c in self.connectors if c.target.upper() == target]

    def successors(self, name: str) -> list[ControlConnector]:
        """Outbound control connectors of an activity."""
        source = name.upper()
        return [c for c in self.connectors if c.source.upper() == source]

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Check structural consistency; raises ProcessDefinitionError."""
        seen: set[str] = set()
        for activity in self.activities:
            key = activity.name.upper()
            if key in seen:
                raise ProcessDefinitionError(
                    f"duplicate activity name {activity.name!r} in {self.name!r}"
                )
            seen.add(key)
            if activity.join not in ("AND", "OR"):
                raise ProcessDefinitionError(
                    f"activity {activity.name!r} has unknown join kind "
                    f"{activity.join!r} (use 'AND' or 'OR')"
                )
        for connector in self.connectors:
            if not self.has_activity(connector.source):
                raise ProcessDefinitionError(
                    f"connector source {connector.source!r} is not an activity"
                )
            if not self.has_activity(connector.target):
                raise ProcessDefinitionError(
                    f"connector target {connector.target!r} is not an activity"
                )
            if connector.source.upper() == connector.target.upper():
                raise ProcessDefinitionError(
                    f"self-loop on activity {connector.source!r}; use a "
                    "do-until block for iteration"
                )
        self._check_acyclic()
        self._check_data_sources()

    def _check_acyclic(self) -> None:
        """The control graph must be a DAG (loops only via blocks)."""
        order = self.topological_order()
        if len(order) != len(self.activities):
            raise ProcessDefinitionError(
                f"control-flow cycle in process {self.name!r}; express "
                "iteration with a do-until block activity"
            )

    def topological_order(self) -> list[Activity]:
        """Kahn topological order of activities (partial if cyclic)."""
        indegree: dict[str, int] = {a.name.upper(): 0 for a in self.activities}
        for connector in self.connectors:
            indegree[connector.target.upper()] += 1
        ready = [a for a in self.activities if indegree[a.name.upper()] == 0]
        order: list[Activity] = []
        while ready:
            activity = ready.pop(0)
            order.append(activity)
            for connector in self.successors(activity.name):
                key = connector.target.upper()
                indegree[key] -= 1
                if indegree[key] == 0:
                    ready.append(self.activity(connector.target))
        return order

    def _check_data_sources(self) -> None:
        for activity in self.activities:
            for member, source in activity.input_map.items():
                if isinstance(source, FromActivityRows):
                    # Row attachments bypass the typed container members.
                    if not self.has_activity(source.activity):
                        raise ProcessDefinitionError(
                            f"activity {activity.name!r} takes rows from "
                            f"unknown activity {source.activity!r}"
                        )
                    continue
                if not activity.input_type.has_member(member):
                    raise ProcessDefinitionError(
                        f"activity {activity.name!r} maps unknown input "
                        f"member {member!r}"
                    )
                self._check_source(source, f"activity {activity.name!r}")
            if isinstance(activity, BlockActivity):
                if activity.subprocess is None:
                    raise ProcessDefinitionError(
                        f"block activity {activity.name!r} has no sub-process"
                    )
                for target_member in activity.carry.values():
                    if not activity.subprocess.output_type.has_member(target_member):
                        raise ProcessDefinitionError(
                            f"block {activity.name!r} carries unknown "
                            f"sub-process output member {target_member!r}"
                        )
        for member, source in self.output_map.items():
            if not self.output_type.has_member(member):
                raise ProcessDefinitionError(
                    f"process {self.name!r} maps unknown output member {member!r}"
                )
            self._check_source(source, "process output")
        if self.rows_from is not None and not self.has_activity(self.rows_from):
            raise ProcessDefinitionError(
                f"rows_from references unknown activity {self.rows_from!r}"
            )

    def _check_source(self, source: DataSource, where: str) -> None:
        if isinstance(source, FromAnyActivity):
            if not source.choices:
                raise ProcessDefinitionError(
                    f"{where}: FromAnyActivity needs at least one choice"
                )
            for choice in source.choices:
                self._check_source(choice, where)
            return
        if isinstance(source, FromProcessInput):
            if not self.input_type.has_member(source.member):
                raise ProcessDefinitionError(
                    f"{where} references unknown process input {source.member!r}"
                )
        elif isinstance(source, FromActivityOutput):
            if not self.has_activity(source.activity):
                raise ProcessDefinitionError(
                    f"{where} references unknown activity {source.activity!r}"
                )
            producer = self.activity(source.activity)
            if not producer.output_type.has_member(source.member):
                raise ProcessDefinitionError(
                    f"{where} references unknown output member "
                    f"{source.activity}.{source.member}"
                )
        elif not isinstance(source, Constant):  # pragma: no cover - defensive
            raise ProcessDefinitionError(f"{where} has unsupported source {source!r}")

    def program_activity_count(self) -> int:
        """Number of program activities (recursing into blocks once)."""
        count = 0
        for activity in self.activities:
            if isinstance(activity, ProgramActivity):
                count += 1
            elif isinstance(activity, BlockActivity) and activity.subprocess:
                count += activity.subprocess.program_activity_count()
        return count


HelperFn = Callable[[dict[str, object]], dict[str, object]]
