"""Program and helper registries.

A *program* is what a program activity invokes — in the paper, a Java
program calling one local function of an application system.  The
registry maps program identifiers (``"stock.GetQuality"``) to callables
taking the input-container values and returning the output-container
values.

:class:`LocalFunctionProgram` adapts an application-system local
function to this interface, including the single-row/first-row
convention the paper's workflows use (activities pass scalar container
members, not tables; table-valued helpers aggregate).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ActivityFailedError, WorkflowError

if TYPE_CHECKING:  # pragma: no cover
    from repro.appsys.base import ApplicationSystem

ProgramFn = Callable[[dict[str, object]], dict[str, object]]


class ProgramRegistry:
    """Maps program / helper identifiers to callables."""

    def __init__(self) -> None:
        self._programs: dict[str, ProgramFn] = {}
        self._helpers: dict[str, ProgramFn] = {}

    def register_program(self, name: str, fn: ProgramFn) -> None:
        """Register a program implementation (duplicates rejected)."""
        key = name.upper()
        if key in self._programs:
            raise WorkflowError(f"program {name!r} is already registered")
        self._programs[key] = fn

    def register_helper(self, name: str, fn: ProgramFn) -> None:
        """Register a helper implementation (duplicates rejected)."""
        key = name.upper()
        if key in self._helpers:
            raise WorkflowError(f"helper {name!r} is already registered")
        self._helpers[key] = fn

    def program(self, name: str) -> ProgramFn:
        """Look up a program by identifier."""
        try:
            return self._programs[name.upper()]
        except KeyError:
            raise WorkflowError(f"unknown program {name!r}") from None

    def helper(self, name: str) -> ProgramFn:
        """Look up a helper by identifier."""
        try:
            return self._helpers[name.upper()]
        except KeyError:
            raise WorkflowError(f"unknown helper {name!r}") from None

    def has_program(self, name: str) -> bool:
        """True if a program with that identifier exists."""
        return name.upper() in self._programs

    def has_helper(self, name: str) -> bool:
        """True if a helper with that identifier exists."""
        return name.upper() in self._helpers


class LocalFunctionProgram:
    """Adapts one application-system local function to a program.

    ``param_order`` lists the input-container members in the positional
    order of the local function's parameters; ``output_names`` names the
    output-container members in result-column order.  If the local
    function returns several rows, the *first* row feeds the scalar
    output members and the full row list is exposed under
    ``output_names[i] + '_ROWS'`` when ``expose_rows`` is set (used by
    table-valued mappings).
    """

    def __init__(
        self,
        appsys: "ApplicationSystem",
        function_name: str,
        param_order: list[str],
        output_names: list[str],
        expose_rows: bool = False,
    ):
        self.appsys = appsys
        self.function_name = function_name
        self.param_order = param_order
        self.output_names = output_names
        self.expose_rows = expose_rows

    @property
    def identifier(self) -> str:
        """'system.Function' registry identifier."""
        return f"{self.appsys.name}.{self.function_name}"

    def __call__(self, inputs: dict[str, object]) -> dict[str, object]:
        upper_inputs = {k.upper(): v for k, v in inputs.items()}
        args = []
        for member in self.param_order:
            key = member.upper()
            if key not in upper_inputs:
                raise ActivityFailedError(
                    self.identifier,
                    WorkflowError(f"input member {member!r} is unset"),
                )
            args.append(upper_inputs[key])
        rows = self.appsys.call(self.function_name, *args)
        outputs: dict[str, object] = {}
        if rows:
            first = rows[0]
            if len(first) != len(self.output_names):
                raise ActivityFailedError(
                    self.identifier,
                    WorkflowError(
                        f"{self.function_name} returned rows of width "
                        f"{len(first)}, expected {len(self.output_names)}"
                    ),
                )
            for name, value in zip(self.output_names, first):
                outputs[name] = value
        else:
            for name in self.output_names:
                outputs[name] = None
        if self.expose_rows:
            outputs["ROWS"] = rows
        return outputs
