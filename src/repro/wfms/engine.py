"""The workflow engine: navigator, scheduler, container plumbing.

Execution model (matching the paper's observations):

* every **program activity** boots a fresh JVM and handles its input
  and output containers — the dominant per-activity cost;
* **helper activities** run inside the engine (container cost only);
* **independent activities overlap**: the navigator computes each
  activity's earliest start from its predecessors' finish times and
  advances the shared virtual clock once by the resulting makespan
  (critical-path scheduling), which is why the parallel variant of a
  mapping is faster than the sequential one on the WfMS — and only
  there;
* **do-until blocks** iterate their sub-process sequentially, giving the
  linear loop scaling of the paper's AllCompNames measurement;
* transition conditions that evaluate to false put the target activity
  (and transitively its successors) on a **dead path** (SKIPPED).
"""

from __future__ import annotations

import threading

from repro.errors import (
    ActivityFailedError,
    ActivityProgramCrashError,
    ContainerError,
    NavigationError,
    WorkflowError,
)
from repro.simtime.trace import TraceRecorder, maybe_span
from repro.sysmodel.faults import SITE_ACTIVITY_PROGRAM
from repro.sysmodel.machine import Machine
from repro.wfms.audit import AuditTrail
from repro.wfms.instance import (
    ActivityInstance,
    ActivityState,
    ProcessInstance,
    ProcessState,
)
from repro.wfms.model import (
    Activity,
    BlockActivity,
    Constant,
    Container,
    FromActivityOutput,
    FromActivityRows,
    FromAnyActivity,
    FromProcessInput,
    HelperActivity,
    ProcessDefinition,
    ProgramActivity,
)
from repro.wfms.programs import ProgramRegistry


class WorkflowEngine:
    """Executes process definitions against a program registry."""

    #: How many finished/failed instances the engine remembers.
    INSTANCE_HISTORY_LIMIT = 256

    def __init__(self, registry: ProgramRegistry, machine: Machine | None = None):
        self.registry = registry
        self.machine = machine
        self.audit = AuditTrail()
        self.processes_run = 0
        self.instances: list[ProcessInstance] = []
        self._next_instance_id = 1
        #: Guards instance-id allocation, the run counter and the
        #: bounded history list against concurrent navigations.
        self._instances_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run_process(
        self,
        definition: ProcessDefinition,
        inputs: dict[str, object],
        trace: TraceRecorder | None = None,
    ) -> ProcessInstance:
        """Create and navigate one process instance to completion."""
        definition.validate()
        input_container = definition.input_type.new_container().fill(inputs)
        with self._instances_lock:
            self.processes_run += 1
            instance = ProcessInstance(
                definition, input_container, instance_id=self._next_instance_id
            )
            self._next_instance_id += 1
            self.instances.append(instance)
            if len(self.instances) > self.INSTANCE_HISTORY_LIMIT:
                del self.instances[: -self.INSTANCE_HISTORY_LIMIT]
        instance.state = ProcessState.RUNNING
        instance.start_time = self._now()
        self.audit.record(self._now(), definition.name, "process started")
        try:
            self._navigate(instance, trace)
        except WorkflowError as exc:
            # Any workflow-level failure — a failed activity, but also a
            # container or navigation error — must leave the instance in
            # a terminal FAILED state with an audit record, never stuck
            # RUNNING without a finish time.
            instance.state = ProcessState.FAILED
            instance.error = exc
            instance.finish_time = self._now()
            self.audit.record(
                self._now(), definition.name, "process failed", detail=str(exc)
            )
            raise
        instance.state = ProcessState.FINISHED
        instance.finish_time = self._now()
        self.audit.record(self._now(), definition.name, "process finished")
        return instance

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------

    def _now(self) -> float:
        return self.machine.clock.now if self.machine is not None else 0.0

    def _navigate(self, instance: ProcessInstance, trace: TraceRecorder | None) -> None:
        definition = instance.definition
        parallel = self.machine is not None and not self.machine.clock.capturing
        t0 = self._now()
        finish_times: dict[str, float] = {}

        order = definition.topological_order()
        durations: dict[str, float] = {}
        for activity in order:
            ai = ActivityInstance(activity.name)
            instance.activities[activity.name.upper()] = ai
            if self._on_dead_path(instance, activity):
                ai.state = ActivityState.SKIPPED
                self.audit.record(
                    self._now(), definition.name, "activity skipped", activity.name
                )
                continue

            # Serial navigator work per activity.
            with maybe_span(trace, "Workflow"):
                self._charge(self._nav_cost())
            ai.input = self._build_input(instance, activity)
            ai.state = ActivityState.RUNNING
            self.audit.record(
                self._now(), definition.name, "activity started", activity.name
            )
            try:
                output, cost = self._execute_activity(activity, ai)
            except ActivityFailedError as exc:
                output, cost = self._forward_recover(
                    instance, activity, ai, trace, exc
                )
            ai.output = output
            ai.state = ActivityState.FINISHED
            durations[activity.name.upper()] = cost

            if parallel:
                start = t0
                for connector in definition.predecessors(activity.name):
                    pred = instance.activity(connector.source)
                    if pred.state is ActivityState.FINISHED:
                        assert pred.finish_time is not None
                        start = max(start, pred.finish_time)
                ai.start_time = start
                ai.finish_time = start + cost
                finish_times[activity.name.upper()] = ai.finish_time
            else:
                ai.start_time = self._now() - cost
                ai.finish_time = self._now()
            self.audit.record(
                ai.finish_time if ai.finish_time is not None else self._now(),
                definition.name,
                "activity finished",
                activity.name,
            )

        if parallel and finish_times:
            makespan_end = max(finish_times.values())
            nav_now = self._now()  # navigation costs already moved the clock
            target = max(makespan_end, t0) + (nav_now - t0)
            start_activities = nav_now
            self.machine.clock.advance_to(max(target, nav_now))
            if trace is not None and self._now() > start_activities:
                trace.add_leaf("Process activities", start_activities, self._now())

        self._fill_process_output(instance)

    def _forward_recover(
        self,
        instance: ProcessInstance,
        activity: Activity,
        ai: ActivityInstance,
        trace: TraceRecorder | None,
        exc: ActivityFailedError,
    ) -> tuple[Container, float]:
        """Restart a failed activity from its input container, or give up.

        This is the paper's key robustness asymmetry: the WfMS owns the
        navigation state and the activity's input container, so a failed
        program activity can be re-scheduled (paying the navigator
        bookkeeping plus a fresh JVM start) instead of aborting the whole
        statement.  When forward recovery is off — the default — the
        failure propagates exactly as before.
        """
        machine = self.machine
        if (
            machine is not None
            and machine.forward_recovery
            and isinstance(activity, ProgramActivity)
        ):
            restarts = max(machine.retry_policy.attempts() - 1, 1)
            for restart in range(1, restarts + 1):
                with maybe_span(trace, "Forward recovery"):
                    machine.clock.advance(machine.costs.wf_forward_recovery)
                self.audit.record(
                    self._now(),
                    instance.definition.name,
                    "forward recovery",
                    activity.name,
                    detail=f"restart {restart} from input container",
                )
                try:
                    output, cost = self._execute_activity(activity, ai)
                except ActivityFailedError as retry_exc:
                    exc = retry_exc
                    continue
                self.audit.record(
                    self._now(),
                    instance.definition.name,
                    "activity recovered",
                    activity.name,
                )
                return output, cost
        ai.state = ActivityState.FAILED
        self.audit.record(
            self._now(), instance.definition.name, "activity failed", activity.name
        )
        raise exc

    def _nav_cost(self) -> float:
        return self.machine.costs.wf_navigation if self.machine is not None else 0.0

    def _charge(self, amount: float) -> None:
        if self.machine is not None and amount:
            self.machine.clock.advance(amount)

    def _on_dead_path(self, instance: ProcessInstance, activity: Activity) -> bool:
        """Whether the activity sits on a dead path.

        AND-join (default): any dead inbound connector kills it.
        OR-join: it runs as long as at least one inbound path is alive —
        the merge side of conditional routing.
        """
        connectors = instance.definition.predecessors(activity.name)
        if not connectors:
            return False
        alive = 0
        for connector in connectors:
            source = instance.activity(connector.source)
            dead = source.state in (ActivityState.SKIPPED, ActivityState.FAILED)
            if not dead and connector.condition is not None:
                dead = source.output is None or not connector.condition.evaluate(
                    source.output
                )
            if dead:
                if activity.join == "AND":
                    return True
            else:
                alive += 1
        return alive == 0

    # ------------------------------------------------------------------
    # Data plumbing
    # ------------------------------------------------------------------

    def _build_input(self, instance: ProcessInstance, activity: Activity) -> Container:
        container = activity.input_type.new_container()
        for member, source in activity.input_map.items():
            if isinstance(source, FromActivityRows):
                producer = instance.activity(source.activity)
                if producer.output is None:
                    raise NavigationError(
                        f"{activity.name}: producer {source.activity!r} has "
                        "no output yet (check the control connectors)"
                    )
                container.attachments[member.upper()] = list(producer.output.rows or [])
                continue
            container.set(member, self._resolve(instance, source, activity.name))
        return container

    def _resolve(self, instance: ProcessInstance, source, where: str) -> object:
        if isinstance(source, FromAnyActivity):
            for choice in source.choices:
                producer = instance.activities.get(choice.activity.upper())
                if (
                    producer is not None
                    and producer.state is ActivityState.FINISHED
                    and producer.output is not None
                ):
                    return producer.output.get(choice.member)
            raise NavigationError(
                f"{where}: no finished producer among "
                f"{[c.activity for c in source.choices]}"
            )
        if isinstance(source, Constant):
            return source.value
        if isinstance(source, FromProcessInput):
            return instance.input.get(source.member)
        if isinstance(source, FromActivityOutput):
            producer = instance.activity(source.activity)
            if producer.output is None:
                raise NavigationError(
                    f"{where}: producer activity {source.activity!r} has no "
                    "output yet (check the control connectors)"
                )
            return producer.output.get(source.member)
        raise NavigationError(f"{where}: unsupported data source {source!r}")

    def _fill_process_output(self, instance: ProcessInstance) -> None:
        output = instance.definition.output_type.new_container()
        for member, source in instance.definition.output_map.items():
            if isinstance(source, FromActivityOutput):
                producer = instance.activities.get(source.activity.upper())
                if producer is not None and producer.state is ActivityState.SKIPPED:
                    # Dead path: the member stays unset (MQWF leaves
                    # output-container members empty on skipped paths).
                    continue
            output.set(member, self._resolve(instance, source, "process output"))
        rows_from = instance.definition.rows_from
        if rows_from is not None:
            producer = instance.activity(rows_from)
            if producer.state is ActivityState.FINISHED:
                assert producer.output is not None
                output.rows = producer.output.rows
            else:
                output.rows = []
        instance.output = output

    # ------------------------------------------------------------------
    # Activity execution
    # ------------------------------------------------------------------

    def _execute_activity(
        self, activity: Activity, ai: ActivityInstance
    ) -> tuple[Container, float]:
        """Run one activity; returns (output container, virtual cost)."""
        assert ai.input is not None
        if self.machine is None:
            outputs = self._run_body(activity, ai)
            return self._as_output(activity, outputs), 0.0
        clock = self.machine.clock
        if clock.capturing:
            # Nested (inside a block iteration): charge straight through.
            before = clock.capture_total()
            outputs = self._run_body(activity, ai)
            return self._as_output(activity, outputs), clock.capture_total() - before
        with clock.capture() as captured:
            outputs = self._run_body(activity, ai)
        return self._as_output(activity, outputs), captured.total

    def _run_body(self, activity: Activity, ai: ActivityInstance) -> dict[str, object]:
        assert ai.input is not None
        inputs = ai.input.as_dict()
        if ai.input.attachments:
            inputs.update(ai.input.attachments)
        if isinstance(activity, ProgramActivity):
            program = self.registry.program(activity.program)
            attempts = activity.max_retries + 1
            policy = self.machine.retry_policy if self.machine is not None else None
            if policy is not None and policy.active:
                attempts = max(attempts, policy.attempts())
            for attempt in range(1, attempts + 1):
                if self.machine is not None:
                    # Fresh JVM per attempt + container handling: the
                    # paper's dominant workflow cost, paid per retry too —
                    # unless the runtime pool holds this program's JVM
                    # warm, in which case only the dispatch is charged.
                    pool = self.machine.runtime_pool
                    warm = pool.acquire(f"program:{activity.program}")
                    self.machine.clock.advance(
                        self.machine.costs.jvm_warm_dispatch
                        if warm
                        else self.machine.costs.wf_activity_jvm
                    )
                    if pool.enabled:
                        self.audit.record(
                            self._now(),
                            "-",
                            "jvm warm dispatch" if warm else "jvm cold start",
                            activity.name,
                            detail=f"program {activity.program}",
                        )
                    self.machine.clock.advance(
                        self.machine.costs.wf_activity_container
                    )
                try:
                    if (
                        self.machine is not None
                        and self.machine.fault_injector.should_fail(
                            SITE_ACTIVITY_PROGRAM
                        )
                    ):
                        self.machine.clock.advance(
                            self.machine.costs.fault_detection
                        )
                        self.audit.record(
                            self._now(),
                            "-",
                            "activity crashed (injected)",
                            activity.name,
                            detail=f"attempt {attempt} of {attempts}",
                        )
                        raise ActivityFailedError(
                            activity.name,
                            ActivityProgramCrashError(
                                SITE_ACTIVITY_PROGRAM,
                                f"activity program {activity.program!r} "
                                "crashed",
                            ),
                        )
                    return self._invoke(program, activity.name, inputs)
                except ActivityFailedError:
                    if attempt == attempts:
                        raise
                    if policy is not None and policy.active:
                        # Exponential backoff in virtual time before the
                        # re-attempt; never charged with the policy off.
                        self.machine.clock.advance(
                            policy.backoff(
                                attempt, self.machine.costs.retry_backoff_base
                            )
                        )
                        policy.note_retry()
                    self.audit.record(
                        self._now(),
                        "-",
                        "activity retried",
                        activity.name,
                        detail=f"attempt {attempt} of {attempts}",
                    )
            raise AssertionError("unreachable")  # pragma: no cover
        if isinstance(activity, HelperActivity):
            if self.machine is not None:
                self.machine.clock.advance(self.machine.costs.wf_activity_container)
            helper = self.registry.helper(activity.helper)
            return self._invoke(helper, activity.name, inputs)
        if isinstance(activity, BlockActivity):
            return self._run_block(activity, ai, inputs)
        raise NavigationError(f"unsupported activity kind {type(activity).__name__}")

    def _invoke(self, fn, activity_name: str, inputs: dict[str, object]) -> dict[str, object]:
        try:
            return fn(inputs)
        except ActivityFailedError:
            raise
        except Exception as exc:
            raise ActivityFailedError(activity_name, exc) from exc

    def _run_block(
        self, activity: BlockActivity, ai: ActivityInstance, inputs: dict[str, object]
    ) -> dict[str, object]:
        """Do-until loop: iterate the sub-process until the condition
        holds on its output (at least one iteration)."""
        assert activity.subprocess is not None
        sub_inputs = dict(inputs)
        last_output: Container | None = None
        collected: list[tuple] = []
        iterations = 0
        while True:
            sub_instance = self.run_process(activity.subprocess, sub_inputs)
            iterations += 1
            last_output = sub_instance.output
            assert last_output is not None
            if activity.collect_rows and last_output.rows is not None:
                collected.extend(last_output.rows)
            if activity.until is None or activity.until.evaluate(last_output):
                break
            if iterations >= activity.max_iterations:
                raise ActivityFailedError(
                    activity.name,
                    NavigationError(
                        f"do-until block exceeded {activity.max_iterations} "
                        "iterations"
                    ),
                )
            for input_member, output_member in activity.carry.items():
                sub_inputs[input_member] = last_output.get(output_member)
        ai.iterations = iterations
        result = last_output.as_dict()
        if activity.collect_rows:
            result["ROWS"] = collected
        return result

    def _as_output(self, activity: Activity, values: dict[str, object]) -> Container:
        container = activity.output_type.new_container()
        upper = {k.upper(): v for k, v in values.items()}
        if "ROWS" in upper:
            rows = upper.pop("ROWS")
            container.rows = list(rows) if rows is not None else []
        for name, _ in activity.output_type.members:
            if name.upper() in upper:
                container.set(name, upper[name.upper()])
        # Unset members stay unset; reading them raises ContainerError,
        # which is the honest failure mode for a mis-wired mapping.
        extra = set(upper) - {n.upper() for n, _ in activity.output_type.members}
        if extra:
            raise ContainerError(
                f"activity {activity.name!r} produced unknown output "
                f"member(s) {sorted(extra)}"
            )
        return container
