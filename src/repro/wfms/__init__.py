"""A production-workflow management system (MQSeries-Workflow-like).

Implements the concepts the paper's coupling relies on: process
definitions made of program/helper/block activities wired by control
connectors (with transition conditions) and data mappings over typed
input/output containers; do-until loop blocks for cyclic mappings;
parallel execution of independent activities; an FDL-like text format;
and a navigator that schedules activities in virtual time (parallel
branches overlap — the reason the WfMS wins the paper's parallel-vs-
sequential comparison).
"""

from repro.wfms.model import (
    Activity,
    BlockActivity,
    Constant,
    ContainerType,
    Container,
    ControlConnector,
    FromActivityOutput,
    FromProcessInput,
    HelperActivity,
    ProcessDefinition,
    ProgramActivity,
)
from repro.wfms.builder import ProcessBuilder
from repro.wfms.engine import WorkflowEngine
from repro.wfms.programs import LocalFunctionProgram, ProgramRegistry
from repro.wfms.api import WfmsClient

__all__ = [
    "Activity",
    "BlockActivity",
    "Constant",
    "Container",
    "ContainerType",
    "ControlConnector",
    "FromActivityOutput",
    "FromProcessInput",
    "HelperActivity",
    "ProcessBuilder",
    "ProcessDefinition",
    "ProgramActivity",
    "ProgramRegistry",
    "LocalFunctionProgram",
    "WfmsClient",
    "WorkflowEngine",
]
