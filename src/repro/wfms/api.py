"""Client API of the WfMS (the MQWF Java-API stand-in).

This is what the FDBS-side wrapper talks to: deploy process templates,
start a process instance with an input container, wait for its output.
Per-call it charges the 'Start workflows and Java environment' cost the
paper identifies as constant per call (it "will always take the same
constant time, irrespective of how many activities have to be
executed"), plus a one-time template-load cost on the first
instantiation of each template after boot.
"""

from __future__ import annotations

from repro.errors import WorkflowError
from repro.simtime.trace import TraceRecorder, maybe_span
from repro.sysmodel.machine import Machine
from repro.wfms.engine import WorkflowEngine
from repro.wfms.instance import ProcessInstance, ProcessState
from repro.wfms.model import ProcessDefinition
from repro.wfms.programs import ProgramRegistry


class WfmsClient:
    """Connection-oriented client façade over the workflow engine."""

    def __init__(self, machine: Machine | None = None, registry: ProgramRegistry | None = None):
        self.machine = machine
        self.registry = registry if registry is not None else ProgramRegistry()
        self.engine = WorkflowEngine(self.registry, machine)
        self._templates: dict[str, ProcessDefinition] = {}

    # -- deployment ------------------------------------------------------------

    def deploy(self, definition: ProcessDefinition) -> None:
        """Deploy (or replace) a process template."""
        definition.validate()
        self._templates[definition.name.upper()] = definition

    def template(self, name: str) -> ProcessDefinition:
        """Look up a deployed process template by name."""
        try:
            return self._templates[name.upper()]
        except KeyError:
            raise WorkflowError(f"no deployed process template {name!r}") from None

    def templates(self) -> list[str]:
        """Names of all deployed templates."""
        return [d.name for d in self._templates.values()]

    # -- execution --------------------------------------------------------------

    def run_process(
        self,
        name: str,
        inputs: dict[str, object],
        trace: TraceRecorder | None = None,
    ) -> ProcessInstance:
        """Start a process instance and navigate it to completion."""
        definition = self.template(name)
        if self.machine is not None:
            self.machine.ensure_wfms()
            with maybe_span(trace, "Start workflows and Java environment"):
                self.machine.clock.advance(self.machine.costs.wf_env_start)
                key = definition.name.upper()
                if not self.machine.warmth.template_is_hot(key):
                    self.machine.clock.advance(self.machine.costs.wf_template_load)
                    self.machine.warmth.note_template(key)
        return self.engine.run_process(definition, inputs, trace)

    def run_to_output(
        self,
        name: str,
        inputs: dict[str, object],
        trace: TraceRecorder | None = None,
    ) -> dict[str, object]:
        """Run a process and return its output container as a dict."""
        instance = self.run_process(name, inputs, trace)
        assert instance.output is not None
        return instance.output.as_dict()

    # -- instance administration ---------------------------------------------

    def instances(
        self,
        name: str | None = None,
        state: "ProcessState | None" = None,
    ) -> list[ProcessInstance]:
        """Query the engine's instance history (newest last)."""
        results = list(self.engine.instances)
        if name is not None:
            results = [
                i for i in results
                if i.definition.name.upper() == name.upper()
            ]
        if state is not None:
            results = [i for i in results if i.state is state]
        return results

    def instance(self, instance_id: int) -> ProcessInstance:
        """Fetch one instance by its id."""
        for candidate in self.engine.instances:
            if candidate.instance_id == instance_id:
                return candidate
        raise WorkflowError(f"no process instance {instance_id}")
