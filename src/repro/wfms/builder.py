"""Fluent builder for process definitions.

Used by :mod:`repro.core.compile_workflow` to turn mapping graphs into
workflow processes, and by tests/examples that author processes in
Python instead of FDL.
"""

from __future__ import annotations

from repro.errors import ProcessDefinitionError
from repro.fdbs.types import SqlType
from repro.wfms.model import (
    BlockActivity,
    Condition,
    Constant,
    ContainerType,
    ControlConnector,
    DataSource,
    FromActivityOutput,
    FromProcessInput,
    HelperActivity,
    ProcessDefinition,
    ProgramActivity,
)


def container_type(name: str, members: list[tuple[str, SqlType]]) -> ContainerType:
    """Build a container type from a (name, type) list."""
    return ContainerType(name, tuple(members))


class ProcessBuilder:
    """Accumulates a :class:`ProcessDefinition` step by step."""

    def __init__(
        self,
        name: str,
        inputs: list[tuple[str, SqlType]],
        outputs: list[tuple[str, SqlType]],
    ):
        self._definition = ProcessDefinition(
            name=name,
            input_type=container_type(f"{name}_IN", inputs),
            output_type=container_type(f"{name}_OUT", outputs),
        )

    # -- sources ---------------------------------------------------------------

    @staticmethod
    def from_input(member: str) -> FromProcessInput:
        """Source: a process input member."""
        return FromProcessInput(member)

    @staticmethod
    def from_activity(activity: str, member: str) -> FromActivityOutput:
        """Source: another activity's output member."""
        return FromActivityOutput(activity, member)

    @staticmethod
    def constant(value: object) -> Constant:
        """Source: a constant value."""
        return Constant(value)

    # -- activities ---------------------------------------------------------------

    def program_activity(
        self,
        name: str,
        program: str,
        inputs: list[tuple[str, SqlType]],
        outputs: list[tuple[str, SqlType]],
        input_map: dict[str, DataSource],
        max_retries: int = 0,
    ) -> "ProcessBuilder":
        """Add a program activity (one local-function call)."""
        self._definition.activities.append(
            ProgramActivity(
                name=name,
                input_type=container_type(f"{name}_IN", inputs),
                output_type=container_type(f"{name}_OUT", outputs),
                input_map=dict(input_map),
                program=program,
                max_retries=max_retries,
            )
        )
        return self

    def helper_activity(
        self,
        name: str,
        helper: str,
        inputs: list[tuple[str, SqlType]],
        outputs: list[tuple[str, SqlType]],
        input_map: dict[str, DataSource],
    ) -> "ProcessBuilder":
        """Add a helper activity (type conversion / composition)."""
        self._definition.activities.append(
            HelperActivity(
                name=name,
                input_type=container_type(f"{name}_IN", inputs),
                output_type=container_type(f"{name}_OUT", outputs),
                input_map=dict(input_map),
                helper=helper,
            )
        )
        return self

    def block_activity(
        self,
        name: str,
        subprocess: ProcessDefinition,
        input_map: dict[str, DataSource],
        until: Condition | None = None,
        carry: dict[str, str] | None = None,
        outputs: list[tuple[str, SqlType]] | None = None,
        max_iterations: int = 10_000,
        collect_rows: bool = False,
    ) -> "ProcessBuilder":
        """Add a (do-until) block activity wrapping ``subprocess``."""
        output_type = (
            container_type(f"{name}_OUT", outputs)
            if outputs is not None
            else subprocess.output_type
        )
        self._definition.activities.append(
            BlockActivity(
                name=name,
                input_type=subprocess.input_type,
                output_type=output_type,
                input_map=dict(input_map),
                subprocess=subprocess,
                until=until,
                carry=dict(carry or {}),
                max_iterations=max_iterations,
                collect_rows=collect_rows,
            )
        )
        return self

    # -- control flow -----------------------------------------------------------------

    def connect(
        self, source: str, target: str, condition: Condition | None = None
    ) -> "ProcessBuilder":
        """Add a control connector (precedence edge)."""
        self._definition.connectors.append(
            ControlConnector(source, target, condition)
        )
        return self

    def sequence(self, *names: str) -> "ProcessBuilder":
        """Chain activities into a sequential control path."""
        if len(names) < 2:
            raise ProcessDefinitionError("sequence() needs at least two activities")
        for source, target in zip(names, names[1:]):
            self.connect(source, target)
        return self

    # -- output ----------------------------------------------------------------------

    def map_output(self, member: str, source: DataSource) -> "ProcessBuilder":
        """Map a process output member from an activity output / input /
        constant."""
        self._definition.output_map[member] = source
        return self

    def result_rows_from(self, activity: str) -> "ProcessBuilder":
        """Declare the activity whose attached row set is the process's
        table-valued result (multi-row federated functions)."""
        self._definition.rows_from = activity
        return self

    def build(self) -> ProcessDefinition:
        """Validate and return the process definition."""
        self._definition.validate()
        return self._definition
