"""Audit trail: ordered event log of workflow execution.

Production workflow systems persist an audit trail of every state
transition; the reproduction keeps it in memory.  Events carry the
virtual timestamp, which the tests use to assert scheduling properties
(parallel activities share start times, loop iterations are ordered).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AuditEvent:
    """One audit record."""

    timestamp: float
    process: str
    activity: str | None
    event: str
    detail: str = ""


class AuditTrail:
    """Append-only audit event log."""

    def __init__(self) -> None:
        self.events: list[AuditEvent] = []

    def record(
        self,
        timestamp: float,
        process: str,
        event: str,
        activity: str | None = None,
        detail: str = "",
    ) -> None:
        """Append one audit event."""
        self.events.append(AuditEvent(timestamp, process, activity, event, detail))

    def for_process(self, process: str) -> list[AuditEvent]:
        """Events of one process, in order."""
        return [e for e in self.events if e.process.upper() == process.upper()]

    def for_activity(self, activity: str) -> list[AuditEvent]:
        """Events of one activity, in order."""
        return [
            e
            for e in self.events
            if e.activity is not None and e.activity.upper() == activity.upper()
        ]

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
