"""Graphviz (DOT) export of workflow processes.

The paper's Fig. 1 draws the BuySuppComp precedence graph; this module
regenerates such figures for any process definition::

    from repro.wfms.viz import to_dot
    open("buysuppcomp.dot", "w").write(to_dot(process))
    # dot -Tsvg buysuppcomp.dot > buysuppcomp.svg

Program activities render as boxes, helper activities as ellipses,
blocks as double octagons (with their sub-process in a cluster), data
sources as dashed edges from an input node, and transition conditions
as edge labels.
"""

from __future__ import annotations

from repro.wfms.model import (
    BlockActivity,
    Constant,
    FromActivityOutput,
    FromActivityRows,
    FromProcessInput,
    HelperActivity,
    ProcessDefinition,
    ProgramActivity,
)


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def _node_id(process: str, activity: str) -> str:
    return _quote(f"{process}.{activity}")


def to_dot(definition: ProcessDefinition, include_data_edges: bool = True) -> str:
    """Render one process (and nested sub-processes) as a DOT digraph."""
    lines: list[str] = [
        "digraph workflow {",
        "  rankdir=TB;",
        '  node [fontname="Helvetica"];',
    ]
    lines.extend(_render_process(definition, include_data_edges, top=True))
    lines.append("}")
    return "\n".join(lines) + "\n"


def _render_process(
    definition: ProcessDefinition, include_data_edges: bool, top: bool
) -> list[str]:
    name = definition.name
    lines: list[str] = []
    indent = "  "
    input_node = _quote(f"{name}.__input__")
    output_node = _quote(f"{name}.__output__")
    members = ", ".join(definition.input_type.member_names())
    lines.append(
        f"{indent}{input_node} [shape=parallelogram, "
        f"label={_quote(f'{name}({members})')}];"
    )

    for activity in definition.activities:
        node = _node_id(name, activity.name)
        if isinstance(activity, ProgramActivity):
            label = f"{activity.name}\\n[{activity.program}]"
            lines.append(f"{indent}{node} [shape=box, label={_quote(label)}];")
        elif isinstance(activity, HelperActivity):
            label = f"{activity.name}\\n(helper)"
            lines.append(f"{indent}{node} [shape=ellipse, label={_quote(label)}];")
        elif isinstance(activity, BlockActivity):
            until = activity.until.render() if activity.until else "once"
            label = f"{activity.name}\\n(do-until {until})"
            lines.append(
                f"{indent}{node} [shape=doubleoctagon, label={_quote(label)}];"
            )
            assert activity.subprocess is not None
            lines.append(f"{indent}subgraph cluster_{activity.subprocess.name} {{")
            lines.append(f"{indent}  label={_quote(activity.subprocess.name)};")
            lines.append(f"{indent}  style=dashed;")
            for inner in _render_process(
                activity.subprocess, include_data_edges, top=False
            ):
                lines.append("  " + inner)
            lines.append(f"{indent}}}")
            first = activity.subprocess.topological_order()
            if first:
                lines.append(
                    f"{indent}{node} -> "
                    f"{_node_id(activity.subprocess.name, first[0].name)} "
                    f"[style=dotted, label=iterates];"
                )

    for connector in definition.connectors:
        edge = (
            f"{indent}{_node_id(name, connector.source)} -> "
            f"{_node_id(name, connector.target)}"
        )
        if connector.condition is not None:
            edge += f" [label={_quote(connector.condition.render())}]"
        lines.append(edge + ";")

    if include_data_edges:
        for activity in definition.activities:
            node = _node_id(name, activity.name)
            for member, source in activity.input_map.items():
                if isinstance(source, FromProcessInput):
                    lines.append(
                        f"{indent}{input_node} -> {node} "
                        f"[style=dashed, label={_quote(member)}];"
                    )
                elif isinstance(source, Constant):
                    const_node = _quote(f"{name}.{activity.name}.{member}.const")
                    lines.append(
                        f"{indent}{const_node} [shape=plaintext, "
                        f"label={_quote(repr(source.value))}];"
                    )
                    lines.append(
                        f"{indent}{const_node} -> {node} "
                        f"[style=dashed, label={_quote(member)}];"
                    )
                elif isinstance(source, FromActivityRows):
                    lines.append(
                        f"{indent}{_node_id(name, source.activity)} -> {node} "
                        f"[style=dashed, label={_quote(member + ' (rows)')}];"
                    )
                # FromActivityOutput data edges usually coincide with
                # control connectors; draw them only when no control
                # edge exists (keeps Fig. 1 readable).
                elif isinstance(source, FromActivityOutput):
                    has_control = any(
                        c.source.upper() == source.activity.upper()
                        and c.target.upper() == activity.name.upper()
                        for c in definition.connectors
                    )
                    if not has_control:
                        lines.append(
                            f"{indent}{_node_id(name, source.activity)} -> {node} "
                            f"[style=dashed, label={_quote(member)}];"
                        )

    terminal = [
        activity.name
        for activity in definition.activities
        if not definition.successors(activity.name)
    ]
    lines.append(
        f"{indent}{output_node} [shape=parallelogram, "
        f"label={_quote('output: ' + ', '.join(definition.output_type.member_names()))}];"
    )
    for activity_name in terminal:
        lines.append(
            f"{indent}{_node_id(name, activity_name)} -> {output_node} "
            f"[style=dashed];"
        )
    return lines
