"""FDL-like textual process definition format.

MQSeries Workflow processes were authored in FDL; this module gives the
reproduction an equivalent plain-text format with a parser and a
serializer (round-trip safe), e.g.::

    PROCESS GetSuppQual
      INPUT (SupplierName VARCHAR(40))
      OUTPUT (Qual INTEGER)

      PROGRAM_ACTIVITY GetSupplierNo
        PROGRAM 'purchasing.GetSupplierNo'
        INPUT (SupplierName VARCHAR(40))
        OUTPUT (SupplierNo INTEGER)
        MAP SupplierName FROM PROCESS.SupplierName
      END_ACTIVITY

      PROGRAM_ACTIVITY GetQuality
        PROGRAM 'stock.GetQuality'
        INPUT (SupplierNo INTEGER)
        OUTPUT (Qual INTEGER)
        MAP SupplierNo FROM GetSupplierNo.SupplierNo
      END_ACTIVITY

      CONTROL FROM GetSupplierNo TO GetQuality
      MAP_OUTPUT Qual FROM GetQuality.Qual
    END_PROCESS

Comments start with ``#``.  A document may define several processes;
``BLOCK_ACTIVITY`` bodies reference sub-processes by name (defined in
the same document or supplied via ``library``).
"""

from __future__ import annotations

import re

from repro.errors import FdlSyntaxError
from repro.fdbs.types import SqlType, parse_type
from repro.wfms.model import (
    Activity,
    BlockActivity,
    Condition,
    Constant,
    ContainerType,
    ControlConnector,
    DataSource,
    FromActivityOutput,
    FromActivityRows,
    FromAnyActivity,
    FromProcessInput,
    HelperActivity,
    ProcessDefinition,
    ProgramActivity,
)

_MEMBER_LIST = re.compile(r"^\((.*)\)$", re.DOTALL)
_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"


def _parse_members(text: str, line_no: int) -> tuple[tuple[str, SqlType], ...]:
    match = _MEMBER_LIST.match(text.strip())
    if not match:
        raise FdlSyntaxError(f"line {line_no}: expected '(name TYPE, ...)', got {text!r}")
    inner = match.group(1).strip()
    if not inner:
        return ()
    members: list[tuple[str, SqlType]] = []
    for part in _split_top_level(inner):
        tokens = part.strip().split(None, 1)
        if len(tokens) != 2:
            raise FdlSyntaxError(
                f"line {line_no}: expected 'name TYPE' in member list, got {part!r}"
            )
        name, type_text = tokens
        members.append((name, _parse_type_text(type_text.strip(), line_no)))
    return tuple(members)


def _split_top_level(text: str) -> list[str]:
    """Split on commas not inside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return parts


def _parse_type_text(text: str, line_no: int) -> SqlType:
    match = re.match(rf"^({_IDENT})\s*(?:\(\s*(\d+)\s*(?:,\s*(\d+)\s*)?\))?$", text)
    if not match:
        raise FdlSyntaxError(f"line {line_no}: bad type {text!r}")
    name, p1, p2 = match.groups()
    params = [int(p) for p in (p1, p2) if p is not None]
    return parse_type(name, *params)


def _parse_literal(text: str, line_no: int) -> object:
    text = text.strip()
    if text.startswith("'") and text.endswith("'") and len(text) >= 2:
        return text[1:-1].replace("''", "'")
    if text.upper() == "NULL":
        return None
    if text.upper() == "TRUE":
        return True
    if text.upper() == "FALSE":
        return False
    try:
        if "." in text or "e" in text or "E" in text:
            return float(text)
        return int(text)
    except ValueError:
        raise FdlSyntaxError(f"line {line_no}: bad literal {text!r}") from None


def _parse_source(text: str, line_no: int) -> DataSource:
    text = text.strip()
    if text.upper().startswith("CONSTANT "):
        return Constant(_parse_literal(text[9:], line_no))
    any_match = re.match(
        rf"^FROM_ANY\s+({_IDENT}\.{_IDENT}(?:\s*\|\s*{_IDENT}\.{_IDENT})*)$",
        text,
        re.IGNORECASE,
    )
    if any_match:
        choices = []
        for part in any_match.group(1).split("|"):
            owner, member = part.strip().split(".")
            choices.append(FromActivityOutput(owner, member))
        return FromAnyActivity(tuple(choices))
    rows_match = re.match(rf"^ROWS_FROM\s+({_IDENT})$", text, re.IGNORECASE)
    if rows_match:
        return FromActivityRows(rows_match.group(1))
    match = re.match(rf"^FROM\s+({_IDENT})\.({_IDENT})$", text, re.IGNORECASE)
    if not match:
        raise FdlSyntaxError(
            f"line {line_no}: expected 'FROM <Activity>.<Member>', "
            f"'FROM PROCESS.<Member>', 'ROWS_FROM <Activity>' or "
            f"'CONSTANT <literal>', got {text!r}"
        )
    owner, member = match.groups()
    if owner.upper() == "PROCESS":
        return FromProcessInput(member)
    return FromActivityOutput(owner, member)


def _parse_condition(text: str, line_no: int) -> Condition:
    match = re.match(
        rf"^({_IDENT})\s*(<>|<=|>=|=|<|>)\s*(.+)$", text.strip()
    )
    if not match:
        raise FdlSyntaxError(f"line {line_no}: bad condition {text!r}")
    member, op, literal = match.groups()
    return Condition(member, op, _parse_literal(literal, line_no))


class _Lines:
    """Comment-stripped, non-empty source lines with positions."""

    def __init__(self, text: str):
        self.items: list[tuple[int, str]] = []
        for number, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if line:
                self.items.append((number, line))
        self.pos = 0

    def peek(self) -> tuple[int, str] | None:
        return self.items[self.pos] if self.pos < len(self.items) else None

    def next(self) -> tuple[int, str]:
        item = self.peek()
        if item is None:
            raise FdlSyntaxError("unexpected end of FDL document")
        self.pos += 1
        return item


def parse_fdl(
    text: str, library: dict[str, ProcessDefinition] | None = None
) -> dict[str, ProcessDefinition]:
    """Parse an FDL document into process definitions keyed by name.

    ``library`` supplies already-known processes that BLOCK_ACTIVITY
    bodies may reference in addition to those defined in the document.
    """
    lines = _Lines(text)
    known: dict[str, ProcessDefinition] = {
        k.upper(): v for k, v in (library or {}).items()
    }
    parsed: dict[str, ProcessDefinition] = {}
    while lines.peek() is not None:
        definition = _parse_process(lines, known)
        parsed[definition.name] = definition
        known[definition.name.upper()] = definition
    if not parsed:
        raise FdlSyntaxError("FDL document defines no process")
    return parsed


def _keyword_rest(line: str, keyword: str) -> str | None:
    if line.upper() == keyword:
        return ""
    if line.upper().startswith(keyword + " "):
        return line[len(keyword) + 1 :].strip()
    return None


def _parse_process(
    lines: _Lines, known: dict[str, ProcessDefinition]
) -> ProcessDefinition:
    line_no, line = lines.next()
    name = _keyword_rest(line, "PROCESS")
    if not name:
        raise FdlSyntaxError(f"line {line_no}: expected 'PROCESS <name>', got {line!r}")

    input_members: tuple[tuple[str, SqlType], ...] | None = None
    output_members: tuple[tuple[str, SqlType], ...] | None = None
    activities: list[Activity] = []
    connectors: list[ControlConnector] = []
    output_map: dict[str, DataSource] = {}

    while True:
        line_no, line = lines.next()
        upper = line.upper()
        if upper == "END_PROCESS":
            break
        rest = _keyword_rest(line, "INPUT")
        if rest is not None:
            input_members = _parse_members(rest, line_no)
            continue
        rest = _keyword_rest(line, "OUTPUT")
        if rest is not None:
            output_members = _parse_members(rest, line_no)
            continue
        rest = _keyword_rest(line, "PROGRAM_ACTIVITY")
        if rest is not None:
            activities.append(_parse_activity(lines, rest, line_no, "PROGRAM"))
            continue
        rest = _keyword_rest(line, "HELPER_ACTIVITY")
        if rest is not None:
            activities.append(_parse_activity(lines, rest, line_no, "HELPER"))
            continue
        rest = _keyword_rest(line, "BLOCK_ACTIVITY")
        if rest is not None:
            activities.append(_parse_block(lines, rest, line_no, known))
            continue
        rest = _keyword_rest(line, "CONTROL")
        if rest is not None:
            connectors.append(_parse_control(rest, line_no))
            continue
        rest = _keyword_rest(line, "MAP_OUTPUT")
        if rest is not None:
            member, source = _parse_map(rest, line_no)
            output_map[member] = source
            continue
        raise FdlSyntaxError(f"line {line_no}: unexpected {line!r} in PROCESS body")

    if input_members is None or output_members is None:
        raise FdlSyntaxError(
            f"process {name!r} needs both INPUT (...) and OUTPUT (...) clauses"
        )
    definition = ProcessDefinition(
        name=name,
        input_type=ContainerType(f"{name}_IN", input_members),
        output_type=ContainerType(f"{name}_OUT", output_members),
        activities=activities,
        connectors=connectors,
        output_map=output_map,
    )
    definition.validate()
    return definition


def _parse_map(rest: str, line_no: int) -> tuple[str, DataSource]:
    tokens = rest.split(None, 1)
    if len(tokens) != 2:
        raise FdlSyntaxError(f"line {line_no}: expected 'MAP <member> FROM ...'")
    return tokens[0], _parse_source(tokens[1], line_no)


def _parse_control(rest: str, line_no: int) -> ControlConnector:
    match = re.match(
        rf"^FROM\s+({_IDENT})\s+TO\s+({_IDENT})(?:\s+WHEN\s+(.+))?$",
        rest,
        re.IGNORECASE,
    )
    if not match:
        raise FdlSyntaxError(
            f"line {line_no}: expected 'CONTROL FROM <a> TO <b> [WHEN <cond>]'"
        )
    source, target, condition_text = match.groups()
    condition = (
        _parse_condition(condition_text, line_no) if condition_text else None
    )
    return ControlConnector(source, target, condition)


def _parse_activity(
    lines: _Lines, name: str, start_line: int, kind: str
) -> Activity:
    program: str | None = None
    inputs: tuple[tuple[str, SqlType], ...] = ()
    outputs: tuple[tuple[str, SqlType], ...] = ()
    input_map: dict[str, DataSource] = {}
    max_retries = 0
    join = "AND"
    while True:
        line_no, line = lines.next()
        if line.upper() == "END_ACTIVITY":
            break
        rest = _keyword_rest(line, kind)  # PROGRAM '<id>' / HELPER '<id>'
        if rest is not None:
            literal = _parse_literal(rest, line_no)
            if not isinstance(literal, str):
                raise FdlSyntaxError(
                    f"line {line_no}: {kind} expects a quoted identifier"
                )
            program = literal
            continue
        rest = _keyword_rest(line, "INPUT")
        if rest is not None:
            inputs = _parse_members(rest, line_no)
            continue
        rest = _keyword_rest(line, "OUTPUT")
        if rest is not None:
            outputs = _parse_members(rest, line_no)
            continue
        rest = _keyword_rest(line, "RETRIES")
        if rest is not None:
            try:
                max_retries = int(rest)
            except ValueError:
                raise FdlSyntaxError(
                    f"line {line_no}: RETRIES expects an integer"
                ) from None
            continue
        rest = _keyword_rest(line, "JOIN")
        if rest is not None:
            if rest.upper() not in ("AND", "OR"):
                raise FdlSyntaxError(f"line {line_no}: JOIN expects AND or OR")
            join = rest.upper()
            continue
        rest = _keyword_rest(line, "MAP")
        if rest is not None:
            member, source = _parse_map(rest, line_no)
            input_map[member] = source
            continue
        raise FdlSyntaxError(f"line {line_no}: unexpected {line!r} in activity body")
    if program is None:
        raise FdlSyntaxError(
            f"activity {name!r} (line {start_line}) is missing its {kind} clause"
        )
    common = dict(
        name=name,
        input_type=ContainerType(f"{name}_IN", inputs),
        output_type=ContainerType(f"{name}_OUT", outputs),
        input_map=input_map,
        join=join,
    )
    if kind == "PROGRAM":
        return ProgramActivity(program=program, max_retries=max_retries, **common)
    return HelperActivity(helper=program, **common)


def _parse_block(
    lines: _Lines,
    name: str,
    start_line: int,
    known: dict[str, ProcessDefinition],
) -> BlockActivity:
    subprocess_name: str | None = None
    until: Condition | None = None
    carry: dict[str, str] = {}
    input_map: dict[str, DataSource] = {}
    outputs: tuple[tuple[str, SqlType], ...] | None = None
    while True:
        line_no, line = lines.next()
        if line.upper() == "END_ACTIVITY":
            break
        rest = _keyword_rest(line, "SUBPROCESS")
        if rest is not None:
            subprocess_name = rest
            continue
        rest = _keyword_rest(line, "UNTIL")
        if rest is not None:
            until = _parse_condition(rest, line_no)
            continue
        rest = _keyword_rest(line, "CARRY")
        if rest is not None:
            match = re.match(rf"^({_IDENT})\s+FROM\s+({_IDENT})$", rest, re.IGNORECASE)
            if not match:
                raise FdlSyntaxError(
                    f"line {line_no}: expected 'CARRY <input> FROM <output>'"
                )
            carry[match.group(1)] = match.group(2)
            continue
        rest = _keyword_rest(line, "OUTPUT")
        if rest is not None:
            outputs = _parse_members(rest, line_no)
            continue
        rest = _keyword_rest(line, "MAP")
        if rest is not None:
            member, source = _parse_map(rest, line_no)
            input_map[member] = source
            continue
        raise FdlSyntaxError(f"line {line_no}: unexpected {line!r} in block body")
    if subprocess_name is None:
        raise FdlSyntaxError(
            f"block activity {name!r} (line {start_line}) needs a SUBPROCESS"
        )
    subprocess = known.get(subprocess_name.upper())
    if subprocess is None:
        raise FdlSyntaxError(
            f"block activity {name!r} references unknown process "
            f"{subprocess_name!r} (define it earlier or pass it via library)"
        )
    return BlockActivity(
        name=name,
        input_type=subprocess.input_type,
        output_type=(
            ContainerType(f"{name}_OUT", outputs)
            if outputs is not None
            else subprocess.output_type
        ),
        input_map=input_map,
        subprocess=subprocess,
        until=until,
        carry=carry,
    )


# ---------------------------------------------------------------------------
# Serializer
# ---------------------------------------------------------------------------


def _render_members(members: tuple[tuple[str, SqlType], ...]) -> str:
    return "(" + ", ".join(f"{n} {t.render()}" for n, t in members) + ")"


def _render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


def _render_source(source: DataSource) -> str:
    if isinstance(source, Constant):
        return f"CONSTANT {_render_literal(source.value)}"
    if isinstance(source, FromAnyActivity):
        choices = " | ".join(
            f"{c.activity}.{c.member}" for c in source.choices
        )
        return f"FROM_ANY {choices}"
    if isinstance(source, FromProcessInput):
        return f"FROM PROCESS.{source.member}"
    if isinstance(source, FromActivityRows):
        return f"ROWS_FROM {source.activity}"
    assert isinstance(source, FromActivityOutput)
    return f"FROM {source.activity}.{source.member}"


def to_fdl(definition: ProcessDefinition) -> str:
    """Serialize a process definition (and its sub-processes) to FDL.

    Sub-processes referenced by block activities are emitted first, so
    the document re-parses standalone.
    """
    chunks: list[str] = []
    emitted: set[str] = set()

    def emit(process: ProcessDefinition) -> None:
        for activity in process.activities:
            if isinstance(activity, BlockActivity) and activity.subprocess:
                if activity.subprocess.name.upper() not in emitted:
                    emit(activity.subprocess)
        if process.name.upper() in emitted:
            return
        emitted.add(process.name.upper())
        chunks.append(_render_process(process))

    emit(definition)
    return "\n\n".join(chunks) + "\n"


def _render_process(process: ProcessDefinition) -> str:
    out: list[str] = [f"PROCESS {process.name}"]
    out.append(f"  INPUT {_render_members(process.input_type.members)}")
    out.append(f"  OUTPUT {_render_members(process.output_type.members)}")
    for activity in process.activities:
        out.append("")
        out.extend(_render_activity(activity))
    if process.connectors:
        out.append("")
    for connector in process.connectors:
        line = f"  CONTROL FROM {connector.source} TO {connector.target}"
        if connector.condition is not None:
            line += f" WHEN {connector.condition.render()}"
        out.append(line)
    for member, source in process.output_map.items():
        out.append(f"  MAP_OUTPUT {member} {_render_source(source)}")
    out.append("END_PROCESS")
    return "\n".join(out)


def _render_activity(activity: Activity) -> list[str]:
    out: list[str] = []
    if isinstance(activity, ProgramActivity):
        out.append(f"  PROGRAM_ACTIVITY {activity.name}")
        out.append(f"    PROGRAM {_render_literal(activity.program)}")
        if activity.max_retries:
            out.append(f"    RETRIES {activity.max_retries}")
        if activity.join != "AND":
            out.append(f"    JOIN {activity.join}")
    elif isinstance(activity, HelperActivity):
        out.append(f"  HELPER_ACTIVITY {activity.name}")
        out.append(f"    HELPER {_render_literal(activity.helper)}")
    elif isinstance(activity, BlockActivity):
        out.append(f"  BLOCK_ACTIVITY {activity.name}")
        assert activity.subprocess is not None
        out.append(f"    SUBPROCESS {activity.subprocess.name}")
        if activity.until is not None:
            out.append(f"    UNTIL {activity.until.render()}")
        for input_member, output_member in activity.carry.items():
            out.append(f"    CARRY {input_member} FROM {output_member}")
        for member, source in activity.input_map.items():
            out.append(f"    MAP {member} {_render_source(source)}")
        out.append("  END_ACTIVITY")
        return out
    else:  # pragma: no cover - defensive
        raise FdlSyntaxError(f"cannot serialize activity {activity!r}")
    if activity.input_type.members:
        out.append(f"    INPUT {_render_members(activity.input_type.members)}")
    if activity.output_type.members:
        out.append(f"    OUTPUT {_render_members(activity.output_type.members)}")
    for member, source in activity.input_map.items():
        out.append(f"    MAP {member} {_render_source(source)}")
    out.append("  END_ACTIVITY")
    return out
