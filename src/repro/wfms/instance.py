"""Process and activity instances: runtime state of one workflow run."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import NavigationError
from repro.wfms.model import Container, ProcessDefinition


class ActivityState(enum.Enum):
    """Lifecycle of one activity instance (MQWF-flavoured subset)."""

    READY = "ready"
    RUNNING = "running"
    FINISHED = "finished"
    SKIPPED = "skipped"  # dead path: an inbound transition was false
    FAILED = "failed"


class ProcessState(enum.Enum):
    """Lifecycle of one process instance."""

    CREATED = "created"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class ActivityInstance:
    """Runtime record of one activity within a process instance."""

    name: str
    state: ActivityState = ActivityState.READY
    start_time: float | None = None
    finish_time: float | None = None
    input: Container | None = None
    output: Container | None = None
    iterations: int = 0  # >1 only for do-until blocks

    @property
    def duration(self) -> float:
        """Virtual elapsed time of the activity."""
        if self.start_time is None or self.finish_time is None:
            raise NavigationError(f"activity {self.name!r} has no recorded times")
        return self.finish_time - self.start_time


@dataclass
class ProcessInstance:
    """Runtime record of one workflow execution."""

    definition: ProcessDefinition
    input: Container
    instance_id: int = 0
    state: ProcessState = ProcessState.CREATED
    output: Container | None = None
    activities: dict[str, ActivityInstance] = field(default_factory=dict)
    start_time: float | None = None
    finish_time: float | None = None
    error: Exception | None = None

    def activity(self, name: str) -> ActivityInstance:
        """The activity instance named ``name``."""
        try:
            return self.activities[name.upper()]
        except KeyError:
            raise NavigationError(
                f"no activity instance {name!r} in process "
                f"{self.definition.name!r}"
            ) from None

    @property
    def makespan(self) -> float:
        """Virtual elapsed time of the whole instance."""
        if self.start_time is None or self.finish_time is None:
            raise NavigationError("process instance has no recorded times")
        return self.finish_time - self.start_time
