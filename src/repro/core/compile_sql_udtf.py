"""Mapping graph → SQL (the UDTF architectures' artefacts).

Two outputs:

* :func:`compile_sql_udtf` — the ``CREATE FUNCTION ... LANGUAGE SQL
  RETURN SELECT ...`` text of the enhanced SQL UDTF architecture
  (paper, Sect. 2), with federated parameters referenced as
  ``FnName.ParamName``;
* :func:`compile_simple_select` — the bare application-side SELECT of
  the *simple* UDTF architecture, with ``?`` parameter markers and the
  binding order, because there the integration logic lives in the
  application code.

Both raise :class:`~repro.errors.UnsupportedMappingError` for cyclic
mappings: "there are no control structures like a loop which are needed
to iterate the cycle" (paper, Sect. 3).
"""

from __future__ import annotations

from typing import Callable

from repro.appsys.base import LocalFunction
from repro.core.federated_function import FederatedFunction
from repro.core.mapping import (
    Const,
    FedInput,
    LocalCall,
    LoopCall,
    NodeOutput,
    Source,
)
from repro.errors import MappingGraphError, UnsupportedMappingError
from repro.fdbs.expr import CAST_FUNCTION_NAMES
from repro.fdbs.types import SqlType

FunctionResolver = Callable[[str, str], LocalFunction]
"""Resolves (system name, function name) to the local function's
signature — the compilers need parameter order and result columns."""


def _render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


def _render_cast(expr: str, target: SqlType) -> str:
    """Use the DB2-style cast function when one exists (``BIGINT(x)``),
    CAST syntax otherwise."""
    if target.name in CAST_FUNCTION_NAMES and target.length is None and (
        target.precision is None
    ):
        return f"{target.name}({expr})"
    return f"CAST({expr} AS {target.render()})"


class _SqlRenderer:
    """Shared rendering for both SQL artefacts."""

    def __init__(
        self,
        fed: FederatedFunction,
        resolver: FunctionResolver,
        param_style: str,  # "qualified" (I-UDTF body) or "marker" (app SQL)
    ):
        fed.validate()
        self.fed = fed
        self.resolver = resolver
        self.param_style = param_style
        self.param_order: list[str] = []  # binding order for "marker" style

    def render_source(self, source: Source) -> str:
        if isinstance(source, Const):
            return _render_literal(source.value)
        if isinstance(source, FedInput):
            if self.param_style == "qualified":
                return f"{self.fed.name}.{source.name}"
            self.param_order.append(source.name)
            return "?"
        assert isinstance(source, NodeOutput)
        return f"{source.node}.{source.column}"

    def render_select(self) -> str:
        graph = self.fed.mapping
        from_parts: list[str] = []
        for node in graph.topological_order():
            if isinstance(node, LoopCall):
                raise UnsupportedMappingError(
                    f"federated function {self.fed.name!r} needs a loop over "
                    f"{node.function!r}; cyclic dependencies cannot be "
                    "expressed in the UDTF approach (SQL has no loop "
                    "construct outside PSM procedures)",
                    case="dependent: cyclic",
                )
            assert isinstance(node, LocalCall)
            local = self.resolver(node.system, node.function)
            wired = {k.upper(): v for k, v in node.args.items()}
            args: list[str] = []
            for param_name, _ in local.params:
                source = wired.get(param_name.upper())
                if source is None:
                    raise MappingGraphError(
                        f"node {node.id!r} does not wire parameter "
                        f"{param_name!r} of {node.function}"
                    )
                args.append(self.render_source(source))
            from_parts.append(
                f"TABLE ({node.function}({', '.join(args)})) AS {node.id}"
            )
        select_parts: list[str] = []
        for output in self.fed.mapping.outputs:
            expr = self.render_source(output.source)
            if output.cast is not None:
                expr = _render_cast(expr, output.cast)
            select_parts.append(f"{expr} AS {output.name}")
        sql = f"SELECT {', '.join(select_parts)} FROM {', '.join(from_parts)}"
        if graph.joins:
            predicates = [
                f"{self.render_source(j.left)} = {self.render_source(j.right)}"
                for j in graph.joins
            ]
            sql += " WHERE " + " AND ".join(predicates)
        return sql


def compile_sql_udtf(fed: FederatedFunction, resolver: FunctionResolver) -> str:
    """CREATE FUNCTION text for the enhanced SQL UDTF architecture."""
    renderer = _SqlRenderer(fed, resolver, param_style="qualified")
    body = renderer.render_select()
    params = ", ".join(f"{n} {t.render()}" for n, t in fed.params)
    returns = ", ".join(f"{n} {t.render()}" for n, t in fed.returns)
    return (
        f"CREATE FUNCTION {fed.name} ({params}) "
        f"RETURNS TABLE ({returns}) LANGUAGE SQL RETURN {body}"
    )


def compile_simple_select(
    fed: FederatedFunction, resolver: FunctionResolver
) -> tuple[str, list[str]]:
    """The simple-UDTF-architecture application query.

    Returns ``(sql, binding_order)``: the SELECT text with ``?`` markers
    and the federated-parameter name for each marker in order.
    """
    renderer = _SqlRenderer(fed, resolver, param_style="marker")
    sql = renderer.render_select()
    return sql, renderer.param_order
