"""Mapping graphs: federated function → local functions.

A :class:`MappingGraph` is the architecture-neutral description of one
federated function's mapping (the paper's Fig. 1 precedence graph).  It
consists of *call nodes* (one per local-function invocation), optional
*loop nodes* (the cyclic case), data sources wiring parameters, output
projections with optional casts, and join conditions for composing the
result sets of independent branches.

:func:`classify` derives the paper's heterogeneity case (Sect. 3):
trivial, simple, independent, dependent (linear / 1:n / n:1 / cyclic),
or general.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import MappingGraphError
from repro.fdbs.types import SqlType


# -- data sources ------------------------------------------------------------------


@dataclass(frozen=True)
class FedInput:
    """A parameter of the federated function."""

    name: str


@dataclass(frozen=True)
class NodeOutput:
    """An output column of another call node."""

    node: str
    column: str


@dataclass(frozen=True)
class Const:
    """A constant value (the simple case supplies constants)."""

    value: object


Source = FedInput | NodeOutput | Const


# -- nodes --------------------------------------------------------------------------


@dataclass
class LocalCall:
    """One local-function invocation.

    ``args`` wires each parameter of the local function (by name, in
    declaration order) to a source.  ``id`` is the node name used by
    :class:`NodeOutput` references; it doubles as the FROM-clause
    correlation name / workflow activity name in the compilers.

    ``retries`` is an error-handling policy that only the WfMS
    architecture can honor ("copes with different kinds of error
    handling", paper Sect. 2); the SQL compilers have nowhere to put it
    and ignore it.
    """

    id: str
    system: str
    function: str
    args: dict[str, Source] = field(default_factory=dict)
    retries: int = 0


@dataclass
class LoopCall:
    """An iterated local-function invocation (the cyclic case).

    The function is called once per counter value in
    ``[start, end]`` (inclusive), with the counter bound to
    ``counter_param``; row results of all iterations are concatenated.
    Only the WfMS (do-until block) and the procedural architecture can
    execute this.
    """

    id: str
    system: str
    function: str
    counter_param: str
    start: Source = Const(1)
    end: Source = Const(1)
    args: dict[str, Source] = field(default_factory=dict)


Node = LocalCall | LoopCall


# -- outputs and joins ----------------------------------------------------------------


@dataclass(frozen=True)
class OutputSpec:
    """One output column of the federated function."""

    name: str
    source: Source
    cast: SqlType | None = None
    """Explicit result cast (the simple case: INT -> BIGINT)."""


@dataclass(frozen=True)
class JoinCondition:
    """Equality predicate composing two independent branches'
    result sets ("join with selection", paper Sect. 3)."""

    left: NodeOutput
    right: NodeOutput


# -- the graph ---------------------------------------------------------------------------


class HeterogeneityCase(enum.Enum):
    """The paper's mapping-complexity classification (Sect. 3)."""

    TRIVIAL = "trivial"
    SIMPLE = "simple"
    INDEPENDENT = "independent"
    DEPENDENT_LINEAR = "dependent: linear"
    DEPENDENT_1N = "dependent: (1:n)"
    DEPENDENT_N1 = "dependent: (n:1)"
    DEPENDENT_CYCLIC = "dependent: cyclic"
    GENERAL = "general"


@dataclass
class MappingGraph:
    """The full mapping of one federated function."""

    nodes: list[Node] = field(default_factory=list)
    outputs: list[OutputSpec] = field(default_factory=list)
    joins: list[JoinCondition] = field(default_factory=list)

    def node(self, node_id: str) -> Node:
        """Look up a node by id."""
        target = node_id.upper()
        for node in self.nodes:
            if node.id.upper() == target:
                return node
        raise MappingGraphError(f"no mapping node {node_id!r}")

    def has_node(self, node_id: str) -> bool:
        """True if a node with that id exists."""
        target = node_id.upper()
        return any(n.id.upper() == target for n in self.nodes)

    def dependency_edges(self) -> set[tuple[str, str]]:
        """(producer, consumer) pairs induced by NodeOutput sources."""
        edges: set[tuple[str, str]] = set()
        for node in self.nodes:
            sources = list(node.args.values())
            if isinstance(node, LoopCall):
                sources.extend([node.start, node.end])
            for source in sources:
                if isinstance(source, NodeOutput):
                    edges.add((source.node.upper(), node.id.upper()))
        return edges

    def topological_order(self) -> list[Node]:
        """Nodes in dependency order; raises on cycles."""
        edges = self.dependency_edges()
        indegree = {n.id.upper(): 0 for n in self.nodes}
        for _, consumer in edges:
            indegree[consumer] += 1
        ready = [n for n in self.nodes if indegree[n.id.upper()] == 0]
        order: list[Node] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for producer, consumer in sorted(edges):
                if producer == node.id.upper():
                    indegree[consumer] -= 1
                    if indegree[consumer] == 0:
                        ready.append(self.node(consumer))
        if len(order) != len(self.nodes):
            raise MappingGraphError(
                "mapping graph has a dependency cycle between call nodes"
            )
        return order

    # -- validation --------------------------------------------------------------------

    def validate(self) -> None:
        """Structural checks; raises MappingGraphError."""
        if not self.nodes:
            raise MappingGraphError("a mapping needs at least one call node")
        seen: set[str] = set()
        for node in self.nodes:
            key = node.id.upper()
            if key in seen:
                raise MappingGraphError(f"duplicate node id {node.id!r}")
            seen.add(key)
        for node in self.nodes:
            sources = list(node.args.values())
            if isinstance(node, LoopCall):
                sources.extend([node.start, node.end])
                if node.counter_param in node.args:
                    raise MappingGraphError(
                        f"loop node {node.id!r}: counter parameter "
                        f"{node.counter_param!r} must not also be wired in args"
                    )
            for source in sources:
                self._check_source(source, f"node {node.id!r}")
        if not self.outputs:
            raise MappingGraphError("a mapping needs at least one output")
        for output in self.outputs:
            self._check_source(output.source, f"output {output.name!r}")
        for join in self.joins:
            for side in (join.left, join.right):
                if not self.has_node(side.node):
                    raise MappingGraphError(
                        f"join references unknown node {side.node!r}"
                    )
        self.topological_order()  # raises on cycles

    def _check_source(self, source: Source, where: str) -> None:
        if isinstance(source, NodeOutput) and not self.has_node(source.node):
            raise MappingGraphError(
                f"{where} references unknown node {source.node!r}"
            )

    # -- metrics --------------------------------------------------------------------------

    def local_function_count(self) -> int:
        """Static number of local-function call sites (loops count once)."""
        return len(self.nodes)

    def has_loop(self) -> bool:
        """True if the mapping contains a loop node (cyclic case)."""
        return any(isinstance(n, LoopCall) for n in self.nodes)

    def has_helpers(self) -> bool:
        """True when the mapping needs helper work: casts or constants."""
        if any(o.cast is not None for o in self.outputs):
            return True
        for node in self.nodes:
            if any(isinstance(s, Const) for s in node.args.values()):
                return True
        return False


def classify(graph: MappingGraph) -> HeterogeneityCase:
    """Derive the paper's heterogeneity case for a mapping graph."""
    graph.validate()
    if graph.has_loop():
        return HeterogeneityCase.DEPENDENT_CYCLIC
    if len(graph.nodes) == 1:
        return (
            HeterogeneityCase.SIMPLE
            if graph.has_helpers()
            else HeterogeneityCase.TRIVIAL
        )
    edges = graph.dependency_edges()
    if not edges:
        return HeterogeneityCase.INDEPENDENT
    node_ids = [n.id.upper() for n in graph.nodes]
    indegree = {n: 0 for n in node_ids}
    outdegree = {n: 0 for n in node_ids}
    for producer, consumer in edges:
        outdegree[producer] += 1
        indegree[consumer] += 1
    max_in = max(indegree.values())
    max_out = max(outdegree.values())
    if max_in <= 1 and max_out <= 1:
        # A set of chains; a single connected chain is the linear case,
        # several disjoint chains mix independence in: general.
        chains = sum(1 for n in node_ids if indegree[n] == 0)
        return (
            HeterogeneityCase.DEPENDENT_LINEAR
            if chains == 1
            else HeterogeneityCase.GENERAL
        )
    if max_in > 1:
        # One node consumes several producers: (1:n) — provided the rest
        # of the graph is flat (producers are themselves independent).
        fan_in_nodes = [n for n in node_ids if indegree[n] > 1]
        if (
            len(fan_in_nodes) == 1
            and max_out <= 1
            and all(indegree[n] <= 1 or n in fan_in_nodes for n in node_ids)
            and all(
                indegree[producer] == 0
                for producer, consumer in edges
                if consumer == fan_in_nodes[0]
            )
        ):
            return HeterogeneityCase.DEPENDENT_1N
        return HeterogeneityCase.GENERAL
    # max_out > 1: one producer feeds several consumers: (n:1).
    fan_out_nodes = [n for n in node_ids if outdegree[n] > 1]
    if len(fan_out_nodes) == 1 and all(
        outdegree[consumer] == 0
        for producer, consumer in edges
        if producer == fan_out_nodes[0]
    ):
        return HeterogeneityCase.DEPENDENT_N1
    return HeterogeneityCase.GENERAL
