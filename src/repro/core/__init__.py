"""The paper's contribution: federated functions over FDBS + WfMS.

Public surface:

* :class:`~repro.core.mapping.MappingGraph` — the precedence graph
  mapping one federated function to local functions (Fig. 1);
* :class:`~repro.core.federated_function.FederatedFunction` — the
  federated function specification (signature + mapping);
* :mod:`repro.core.architectures` — the architecture spectrum and its
  mapping-complexity capability matrix (Sect. 3 table);
* compilers turning a mapping graph into each architecture's artefact:
  :func:`~repro.core.compile_sql_udtf.compile_sql_udtf` (CREATE
  FUNCTION text), :func:`~repro.core.compile_sql_udtf.compile_simple_select`
  (the simple-UDTF-architecture application query),
  :func:`~repro.core.compile_workflow.compile_workflow` (a process
  definition), :func:`~repro.core.compile_procedural.compile_procedural`
  (a procedural body);
* :class:`~repro.core.server.IntegrationServer` — the assembled
  three-tier middleware;
* :mod:`repro.core.scenario` — the paper's purchasing scenario with all
  named federated functions.
"""

from repro.core.mapping import (
    Const,
    FedInput,
    HeterogeneityCase,
    LocalCall,
    LoopCall,
    MappingGraph,
    NodeOutput,
    classify,
)
from repro.core.federated_function import FederatedFunction
from repro.core.architectures import Architecture, supports, capability_matrix
from repro.core.compile_sql_udtf import compile_simple_select, compile_sql_udtf
from repro.core.compile_workflow import compile_workflow
from repro.core.compile_procedural import compile_procedural
from repro.core.server import IntegrationServer
from repro.core.scenario import Scenario, build_scenario

__all__ = [
    "Architecture",
    "Const",
    "FedInput",
    "FederatedFunction",
    "HeterogeneityCase",
    "IntegrationServer",
    "LocalCall",
    "LoopCall",
    "MappingGraph",
    "NodeOutput",
    "Scenario",
    "build_scenario",
    "capability_matrix",
    "classify",
    "compile_procedural",
    "compile_simple_select",
    "compile_sql_udtf",
    "compile_workflow",
    "supports",
]
