"""Mapping graph → workflow process definition (the WfMS architecture).

"As a key concept of our approach, we use a WfMS as the engine
processing such a graph-based mapping where its activities embody the
local function calls and where the WfMS controls the parameter transfer
together with the precedence structure" (paper, Sect. 2).

Compilation rules per heterogeneity case (Sect. 3):

* trivial / simple — signature hiding happens in the connecting UDTF;
  constants are supplied directly to the input container; result casts
  become *helper activities*;
* independent — program activities with no connectors between them run
  in parallel; table-valued composition uses a *join helper* activity;
* dependent — data dependencies become control connectors;
* cyclic — a do-until *block activity* around a one-call sub-process
  with an *advance* helper driving the counter.

Helpers are registered in the program registry under deterministic
identifiers (``helper:<fed>.<name>``) at compile time.
"""

from __future__ import annotations

from repro.core.compile_sql_udtf import FunctionResolver
from repro.core.federated_function import FederatedFunction
from repro.core.mapping import (
    Const,
    FedInput,
    LocalCall,
    LoopCall,
    MappingGraph,
    NodeOutput,
    Source,
)
from repro.errors import MappingGraphError, UnsupportedMappingError
from repro.fdbs.types import INTEGER, SqlType, cast_value
from repro.wfms.builder import ProcessBuilder
from repro.wfms.model import (
    Condition,
    DataSource,
    FromActivityRows,
    ProcessDefinition,
)
from repro.wfms.programs import ProgramRegistry


def program_id(system: str, function: str) -> str:
    """The registry identifier of a local-function program."""
    return f"{system}.{function}"


def compile_workflow(
    fed: FederatedFunction,
    resolver: FunctionResolver,
    registry: ProgramRegistry,
) -> ProcessDefinition:
    """Compile a federated function into a deployable process."""
    fed.validate()
    compiler = _WorkflowCompiler(fed, resolver, registry)
    return compiler.compile()


class _WorkflowCompiler:
    def __init__(
        self,
        fed: FederatedFunction,
        resolver: FunctionResolver,
        registry: ProgramRegistry,
    ):
        self.fed = fed
        self.resolver = resolver
        self.registry = registry
        self.builder = ProcessBuilder(fed.name, fed.params, fed.returns)
        self.graph: MappingGraph = fed.mapping

    # -- source translation ----------------------------------------------------------

    def _translate(self, source: Source) -> DataSource:
        if isinstance(source, FedInput):
            return ProcessBuilder.from_input(source.name)
        if isinstance(source, Const):
            return ProcessBuilder.constant(source.value)
        assert isinstance(source, NodeOutput)
        return ProcessBuilder.from_activity(source.node, source.column)

    def _register_helper(self, name: str, fn) -> str:
        identifier = f"helper:{self.fed.name}.{name}"
        if not self.registry.has_helper(identifier):
            self.registry.register_helper(identifier, fn)
        return identifier

    # -- main -------------------------------------------------------------------------

    def compile(self) -> ProcessDefinition:
        for node in self.graph.topological_order():
            if isinstance(node, LoopCall):
                self._compile_loop(node)
            else:
                assert isinstance(node, LocalCall)
                self._compile_call(node)
        self._compile_control_flow()
        if self.graph.joins:
            self._compile_join_composition()
        else:
            self._compile_scalar_outputs()
        return self.builder.build()

    def _compile_call(self, node: LocalCall) -> None:
        local = self.resolver(node.system, node.function)
        wired = {k.upper(): v for k, v in node.args.items()}
        input_map: dict[str, DataSource] = {}
        for param_name, _ in local.params:
            source = wired.get(param_name.upper())
            if source is None:
                raise MappingGraphError(
                    f"node {node.id!r} does not wire parameter "
                    f"{param_name!r} of {node.function}"
                )
            input_map[param_name] = self._translate(source)
        self.builder.program_activity(
            node.id,
            program_id(node.system, node.function),
            inputs=list(local.params),
            outputs=list(local.returns),
            input_map=input_map,
            max_retries=node.retries,
        )

    def _compile_control_flow(self) -> None:
        for producer, consumer in sorted(self.graph.dependency_edges()):
            self.builder.connect(producer, consumer)

    # -- outputs -----------------------------------------------------------------------

    def _compile_scalar_outputs(self) -> None:
        """Map process outputs, inserting cast helper activities where
        the mapping declares result casts (the simple case)."""
        loop_nodes = [n for n in self.graph.nodes if isinstance(n, LoopCall)]
        for output, (return_name, _) in zip(self.graph.outputs, self.fed.returns):
            source = self._translate(output.source)
            if output.cast is not None:
                source = self._insert_cast_helper(output, source)
            self.builder.map_output(return_name, source)
        if len(loop_nodes) == 1 and not any(
            isinstance(s, NodeOutput) and s.node.upper() != loop_nodes[0].id.upper()
            for s in (o.source for o in self.graph.outputs)
        ):
            # A pure loop mapping returns the concatenated iteration rows.
            self.builder.result_rows_from(loop_nodes[0].id)

    def _insert_cast_helper(self, output, source: DataSource) -> DataSource:
        """The paper's simple case: 'helper functions which are defined
        as additional activities ... implement the required type
        conversions'."""
        assert output.cast is not None
        target: SqlType = output.cast
        helper_name = f"Cast{output.name}"

        def cast_helper(inputs: dict[str, object]) -> dict[str, object]:
            value = inputs.get("VALUE", inputs.get("Value"))
            from repro.fdbs.types import infer_type

            source_type = infer_type(value) if value is not None else target
            return {"Value": cast_value(value, source_type, target)}

        identifier = self._register_helper(helper_name, cast_helper)
        source_member_type = self._source_type(output.source)
        self.builder.helper_activity(
            helper_name,
            identifier,
            inputs=[("Value", source_member_type)],
            outputs=[("Value", target)],
            input_map={"Value": source},
        )
        if isinstance(output.source, NodeOutput):
            self.builder.connect(output.source.node, helper_name)
        return ProcessBuilder.from_activity(helper_name, "Value")

    def _source_type(self, source: Source) -> SqlType:
        if isinstance(source, NodeOutput):
            node = self.graph.node(source.node)
            local = self.resolver(node.system, node.function)
            for column, column_type in local.returns:
                if column.upper() == source.column.upper():
                    return column_type
            raise MappingGraphError(
                f"{source.node}.{source.column} is not a result column of "
                f"{node.function}"
            )
        if isinstance(source, FedInput):
            for name, param_type in self.fed.params:
                if name.upper() == source.name.upper():
                    return param_type
        return INTEGER

    # -- independent-case composition ------------------------------------------------------

    def _compile_join_composition(self) -> None:
        """Compose two branches' result sets with a join helper —
        'parallel activities whose results are combined by a helper
        function' (paper, Sect. 3)."""
        joins = self.graph.joins
        sides = {joins[0].left.node.upper(), joins[0].right.node.upper()}
        for join in joins:
            sides |= {join.left.node.upper(), join.right.node.upper()}
        if len(sides) != 2:
            raise UnsupportedMappingError(
                f"federated function {self.fed.name!r}: the workflow "
                "composition helper joins exactly two branches; found "
                f"{len(sides)}"
            )
        left_id, right_id = sorted(sides)
        left_node = self.graph.node(left_id)
        right_node = self.graph.node(right_id)
        assert isinstance(left_node, LocalCall) and isinstance(right_node, LocalCall)
        left_cols = [
            c.upper() for c, _ in self.resolver(left_node.system, left_node.function).returns
        ]
        right_cols = [
            c.upper()
            for c, _ in self.resolver(right_node.system, right_node.function).returns
        ]

        key_pairs: list[tuple[int, int]] = []
        for join in joins:
            a, b = join.left, join.right
            if a.node.upper() == right_id:
                a, b = b, a
            key_pairs.append(
                (left_cols.index(a.column.upper()), right_cols.index(b.column.upper()))
            )

        projection: list[tuple[str, int]] = []  # (side, column index)
        for output in self.graph.outputs:
            source = output.source
            if not isinstance(source, NodeOutput):
                raise UnsupportedMappingError(
                    f"federated function {self.fed.name!r}: joined outputs "
                    "must come from the joined branches"
                )
            if source.node.upper() == left_id:
                projection.append(("L", left_cols.index(source.column.upper())))
            else:
                projection.append(("R", right_cols.index(source.column.upper())))

        def join_helper(inputs: dict[str, object]) -> dict[str, object]:
            left_rows = inputs.get("LEFT") or []
            right_rows = inputs.get("RIGHT") or []
            joined: list[tuple] = []
            for lrow in left_rows:  # type: ignore[union-attr]
                for rrow in right_rows:  # type: ignore[union-attr]
                    if all(lrow[li] == rrow[ri] for li, ri in key_pairs):
                        joined.append(
                            tuple(
                                lrow[index] if side == "L" else rrow[index]
                                for side, index in projection
                            )
                        )
            return {"ROWS": joined}

        identifier = self._register_helper("JoinResults", join_helper)
        helper_name = "CombineResults"
        self.builder.helper_activity(
            helper_name,
            identifier,
            inputs=[],
            outputs=[],
            input_map={
                "LEFT": FromActivityRows(left_id),
                "RIGHT": FromActivityRows(right_id),
            },
        )
        self.builder.connect(left_id, helper_name)
        self.builder.connect(right_id, helper_name)
        self.builder.result_rows_from(helper_name)

    # -- cyclic case -------------------------------------------------------------------------

    def _compile_loop(self, node: LoopCall) -> None:
        """Do-until block: 'sub-workflows containing activities to be
        invoked several times ... activated in a do-until-loop which
        realizes the cycle' (paper, Sect. 3)."""
        local = self.resolver(node.system, node.function)
        body_name = f"{self.fed.name}_{node.id}_Body"
        counter = node.counter_param

        body = ProcessBuilder(
            body_name,
            inputs=[(counter, INTEGER), ("LoopEnd", INTEGER)]
            + [(p, t) for p, t in local.params if p.upper() != counter.upper()],
            outputs=list(local.returns) + [("NextValue", INTEGER), ("Done", INTEGER)],
        )
        call_input_map: dict[str, DataSource] = {}
        for param_name, _ in local.params:
            if param_name.upper() == counter.upper():
                call_input_map[param_name] = ProcessBuilder.from_input(counter)
            else:
                call_input_map[param_name] = ProcessBuilder.from_input(param_name)
        body.program_activity(
            node.id,
            program_id(node.system, node.function),
            inputs=list(local.params),
            outputs=list(local.returns),
            input_map=call_input_map,
        )

        def advance_helper(inputs: dict[str, object]) -> dict[str, object]:
            current = inputs["Counter"] if "Counter" in inputs else inputs["COUNTER"]
            end = inputs["LoopEnd"] if "LoopEnd" in inputs else inputs["LOOPEND"]
            next_value = int(current) + 1  # type: ignore[arg-type]
            return {
                "NextValue": next_value,
                "Done": 1 if next_value > int(end) else 0,  # type: ignore[arg-type]
            }

        identifier = self._register_helper(f"{node.id}Advance", advance_helper)
        body.helper_activity(
            "Advance",
            identifier,
            inputs=[("Counter", INTEGER), ("LoopEnd", INTEGER)],
            outputs=[("NextValue", INTEGER), ("Done", INTEGER)],
            input_map={
                "Counter": ProcessBuilder.from_input(counter),
                "LoopEnd": ProcessBuilder.from_input("LoopEnd"),
            },
        )
        body.connect(node.id, "Advance")
        for column, _ in local.returns:
            body.map_output(column, ProcessBuilder.from_activity(node.id, column))
        body.map_output("NextValue", ProcessBuilder.from_activity("Advance", "NextValue"))
        body.map_output("Done", ProcessBuilder.from_activity("Advance", "Done"))
        body.result_rows_from(node.id)
        body_def = body.build()

        block_input_map: dict[str, DataSource] = {
            counter: self._translate(node.start),
            "LoopEnd": self._translate(node.end),
        }
        wired = {k.upper(): v for k, v in node.args.items()}
        for param_name, _ in local.params:
            if param_name.upper() == counter.upper():
                continue
            source = wired.get(param_name.upper())
            if source is None:
                raise MappingGraphError(
                    f"loop node {node.id!r} does not wire parameter "
                    f"{param_name!r} of {node.function}"
                )
            block_input_map[param_name] = self._translate(source)
        self.builder.block_activity(
            node.id,
            body_def,
            input_map=block_input_map,
            until=Condition("Done", "=", 1),
            carry={counter: "NextValue"},
            collect_rows=True,
        )
