"""The architecture spectrum and its capability matrix (Sect. 2 + 3).

:func:`supports` answers "can this architecture express this
heterogeneity case?", and :func:`capability_matrix` reconstructs the
paper's Sect. 3 summary table — including the footnote that the
dependent cases rest on a product-specific behaviour ("not supported in
general") and the cyclic row where the UDTF approach gives up.

The enhanced *Java* (here: procedural) architecture goes beyond the
paper's two-column table: host-language control structures make the
cyclic case expressible there, which we mark as an extension.
"""

from __future__ import annotations

import enum

from repro.core.mapping import HeterogeneityCase


class Architecture(enum.Enum):
    """The integration architectures of Sect. 2."""

    SIMPLE_UDTF = "simple UDTF"
    ENHANCED_SQL_UDTF = "enhanced SQL UDTF"
    ENHANCED_JAVA_UDTF = "enhanced Java UDTF"
    WFMS = "WfMS"


_SQL_MECHANISMS = {
    HeterogeneityCase.TRIVIAL: "hidden behind the federated function's signature",
    HeterogeneityCase.SIMPLE: "cast functions, supply of constant parameters",
    HeterogeneityCase.INDEPENDENT: "join with selection",
    HeterogeneityCase.DEPENDENT_LINEAR: (
        "join with selection; execution order defined by input parameters*"
    ),
    HeterogeneityCase.DEPENDENT_1N: (
        "join with selection; execution order defined by input parameters*"
    ),
    HeterogeneityCase.DEPENDENT_N1: (
        "join with selection; execution order defined by input parameters*"
    ),
    HeterogeneityCase.DEPENDENT_CYCLIC: "not supported",
    HeterogeneityCase.GENERAL: (
        "join with selection; execution order defined by input parameters*"
    ),
}

_WFMS_MECHANISMS = {
    HeterogeneityCase.TRIVIAL: "hidden behind the federated function's signature",
    HeterogeneityCase.SIMPLE: "helper functions",
    HeterogeneityCase.INDEPENDENT: "parallel execution of activities",
    HeterogeneityCase.DEPENDENT_LINEAR: "sequential execution of activities",
    HeterogeneityCase.DEPENDENT_1N: "parallel and sequential execution of activities",
    HeterogeneityCase.DEPENDENT_N1: "parallel and sequential execution of activities",
    HeterogeneityCase.DEPENDENT_CYCLIC: "loop construct with sub-workflow",
    HeterogeneityCase.GENERAL: "combination of control-flow constructs",
}

_PROCEDURAL_MECHANISMS = {
    case: "host-language statements and control structures"
    for case in HeterogeneityCase
}


def supports(architecture: Architecture, case: HeterogeneityCase) -> bool:
    """Whether an architecture can express a heterogeneity case."""
    if case is HeterogeneityCase.DEPENDENT_CYCLIC:
        return architecture in (
            Architecture.WFMS,
            Architecture.ENHANCED_JAVA_UDTF,  # extension beyond the paper's table
        )
    return True


def mechanism(architecture: Architecture, case: HeterogeneityCase) -> str:
    """How an architecture implements a case (the table's cell text)."""
    if architecture in (Architecture.SIMPLE_UDTF, Architecture.ENHANCED_SQL_UDTF):
        return _SQL_MECHANISMS[case]
    if architecture is Architecture.ENHANCED_JAVA_UDTF:
        if case is HeterogeneityCase.DEPENDENT_CYCLIC:
            return "host-language loop (extension beyond the paper's table)"
        return _PROCEDURAL_MECHANISMS[case]
    return _WFMS_MECHANISMS[case]


#: The order the paper's table lists the cases in.
TABLE_CASE_ORDER = [
    HeterogeneityCase.TRIVIAL,
    HeterogeneityCase.SIMPLE,
    HeterogeneityCase.INDEPENDENT,
    HeterogeneityCase.DEPENDENT_LINEAR,
    HeterogeneityCase.DEPENDENT_1N,
    HeterogeneityCase.DEPENDENT_N1,
    HeterogeneityCase.DEPENDENT_CYCLIC,
    HeterogeneityCase.GENERAL,
]


def capability_matrix(
    architectures: list[Architecture] | None = None,
) -> list[dict[str, str]]:
    """Rows of the Sect. 3 table: case + one mechanism cell per
    architecture (with 'not supported' where applicable)."""
    chosen = architectures or [Architecture.ENHANCED_SQL_UDTF, Architecture.WFMS]
    rows: list[dict[str, str]] = []
    for case in TABLE_CASE_ORDER:
        row = {"case": case.value}
        for architecture in chosen:
            cell = (
                mechanism(architecture, case)
                if supports(architecture, case)
                else "not supported"
            )
            row[architecture.value] = cell
        rows.append(row)
    return rows


FOOTNOTE = "* Not supported in general (product-specific behaviour)."
