"""The integration server: the assembled three-tier middleware.

One :class:`IntegrationServer` hosts the whole stack of Fig. 2 on one
simulated machine: the FDBS (with the fenced UDTF runtime), the WfMS
(client + engine + program registry), the controller, the SQL/MED
bookkeeping, and the three application systems.  ``deploy()`` compiles
a federated function for the selected architecture; ``call()`` runs it
the way an application would — through a SELECT statement against the
FDBS.
"""

from __future__ import annotations

from typing import Callable

from repro.appsys.base import ApplicationSystem, LocalFunction
from repro.appsys.datagen import EnterpriseData, generate_enterprise_data
from repro.appsys.pdm import ProductDataManagementSystem
from repro.appsys.purchasing import PurchasingSystem
from repro.appsys.stock import StockKeepingSystem
from repro.core.architectures import Architecture
from repro.core.compile_procedural import compile_procedural
from repro.core.compile_sql_udtf import compile_simple_select, compile_sql_udtf
from repro.core.compile_workflow import compile_workflow, program_id
from repro.core.federated_function import FederatedFunction
from repro.errors import MappingError
from repro.fdbs.engine import Database
from repro.simtime.costs import CostModel
from repro.simtime.rng import JitterSource
from repro.simtime.trace import TraceRecorder
from repro.sysmodel.machine import Machine
from repro.udtf.access import register_access_udtfs
from repro.udtf.procedural import register_procedural_iudtf
from repro.udtf.sql_iudtf import create_sql_iudtf
from repro.wfms.api import WfmsClient
from repro.wfms.programs import LocalFunctionProgram, ProgramRegistry
from repro.wrapper.med import MedRegistry
from repro.wrapper.udtf_runtime import FencedFunctionRuntime
from repro.wrapper.wfms_wrapper import WfmsWrapper


class IntegrationServer:
    """The paper's middle tier, configured for one architecture."""

    def __init__(
        self,
        architecture: Architecture,
        costs: CostModel | None = None,
        controller_enabled: bool = True,
        data: EnterpriseData | None = None,
        jitter: JitterSource | None = None,
        system_factories: list[Callable[[Machine], ApplicationSystem]] | None = None,
        pooling: bool = False,
        result_cache: bool = False,
        optimizer: str = "syntactic",
        chunk_size: int | None = None,
    ):
        """``system_factories`` replaces the paper's three application
        systems with custom ones (each factory receives the machine);
        when omitted, the purchasing-scenario trio is built.  ``pooling``
        and ``result_cache`` switch on the warm runtime pool / memoizing
        result cache (both off by default: the paper's measured
        configuration).  ``optimizer`` selects the FDBS planning mode
        (``"syntactic"`` or the RUNSTATS-fed ``"cost"``); ``chunk_size``
        overrides the FDBS rows-per-chunk knob for batch/columnar
        execution."""
        self.architecture = architecture
        self.machine = Machine(
            costs=costs, controller_enabled=controller_enabled, jitter=jitter
        )
        self.machine.architecture_tag = architecture.name
        self.data = data if data is not None else generate_enterprise_data()

        # Bottom tier: the encapsulated application systems.
        if system_factories is None:
            self.stock = StockKeepingSystem(self.machine, self.data)
            self.purchasing = PurchasingSystem(self.machine, self.data)
            self.pdm = ProductDataManagementSystem(self.machine, self.data)
            systems: list[ApplicationSystem] = [
                self.stock, self.purchasing, self.pdm
            ]
        else:
            systems = [factory(self.machine) for factory in system_factories]
        self.systems: dict[str, ApplicationSystem] = {
            system.name: system for system in systems
        }

        # Middle tier: FDBS with the fenced runtime.
        self.fdbs = Database(
            "integration-fdbs",
            machine=self.machine,
            pooling=pooling,
            result_cache=result_cache,
            optimizer=optimizer,
            chunk_size=chunk_size,
        )
        self.fdbs.function_runtime = FencedFunctionRuntime(self.fdbs, self.machine)

        # WfMS side: program registry + client + wrapper.
        self.registry = ProgramRegistry()
        for system in self.systems.values():
            for function in system.functions():
                self.registry.register_program(
                    program_id(system.name, function.name),
                    LocalFunctionProgram(
                        system,
                        function.name,
                        [p for p, _ in function.params],
                        [r for r, _ in function.returns],
                        expose_rows=True,
                    ),
                )
        self.wfms_client = WfmsClient(self.machine, self.registry)
        self.wfms_wrapper = WfmsWrapper(self.fdbs, self.wfms_client)

        # SQL/MED bookkeeping (the coupling made explicit).
        self.med = MedRegistry()
        self.med.create_wrapper("WFMS_WRAPPER", "bridges to the workflow engine")
        self.med.create_server("WFMS_SERVER", "WFMS_WRAPPER", self.wfms_wrapper)

        # A-UDTFs: the UDTF architectures build on them; registering them
        # in every configuration also allows mixed queries in examples.
        for system in self.systems.values():
            register_access_udtfs(self.fdbs, system)

        self.deployed: dict[str, FederatedFunction] = {}
        self._simple_queries: dict[str, tuple[str, list[str]]] = {}

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def resolver(self, system: str, function: str) -> LocalFunction:
        """Resolve a local function's signature for the compilers."""
        try:
            appsys = self.systems[system]
        except KeyError:
            raise MappingError(f"unknown application system {system!r}") from None
        return appsys.function(function)

    def deploy(self, fed: FederatedFunction) -> None:
        """Compile and register a federated function for the selected
        architecture.  Raises
        :class:`~repro.errors.UnsupportedMappingError` where the paper's
        Sect. 3 table says 'not supported'."""
        fed.validate()
        if self.architecture is Architecture.WFMS:
            definition = compile_workflow(fed, self.resolver, self.registry)
            self.wfms_wrapper.register_federated_function(
                definition, fed.params, fed.returns
            )
        elif self.architecture is Architecture.ENHANCED_SQL_UDTF:
            ddl = compile_sql_udtf(fed, self.resolver)
            create_sql_iudtf(self.fdbs, ddl)
        elif self.architecture is Architecture.ENHANCED_JAVA_UDTF:
            body = compile_procedural(fed, self.resolver)
            register_procedural_iudtf(
                self.fdbs, fed.name, fed.params, fed.returns, body
            )
        elif self.architecture is Architecture.SIMPLE_UDTF:
            self._simple_queries[fed.name.upper()] = compile_simple_select(
                fed, self.resolver
            )
        else:  # pragma: no cover - enum is closed
            raise MappingError(f"unknown architecture {self.architecture!r}")
        self.deployed[fed.name.upper()] = fed

    # ------------------------------------------------------------------
    # Invocation (the application's view)
    # ------------------------------------------------------------------

    def call(
        self,
        name: str,
        *args: object,
        trace: TraceRecorder | None = None,
    ) -> list[tuple]:
        """Invoke a deployed federated function through the FDBS."""
        fed = self.deployed.get(name.upper())
        if fed is None:
            raise MappingError(f"federated function {name!r} is not deployed")
        if self.architecture is Architecture.SIMPLE_UDTF:
            sql, binding = self._simple_queries[name.upper()]
            by_name = {
                param_name.upper(): value
                for (param_name, _), value in zip(fed.params, args)
            }
            params = [by_name[b.upper()] for b in binding]
            return self.fdbs.execute(sql, params=params, trace=trace).rows
        markers = ", ".join("?" for _ in fed.params)
        sql = f"SELECT * FROM TABLE ({fed.name}({markers})) AS R"
        return self.fdbs.execute(sql, params=list(args), trace=trace).rows

    def call_sql(self, name: str, *args: object) -> str:
        """The SQL text ``call()`` issues (for documentation/tests)."""
        fed = self.deployed.get(name.upper())
        if fed is None:
            raise MappingError(f"federated function {name!r} is not deployed")
        if self.architecture is Architecture.SIMPLE_UDTF:
            return self._simple_queries[name.upper()][0]
        markers = ", ".join("?" for _ in fed.params)
        return f"SELECT * FROM TABLE ({fed.name}({markers})) AS R"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def configure_faults(self, **kwargs) -> None:
        """Configure the fault-injection harness on the server's machine
        (see :meth:`repro.sysmodel.machine.Machine.configure_faults`)."""
        self.machine.configure_faults(**kwargs)

    def boot(self) -> None:
        """(Re)boot the machine: processes stop, caches empty.

        The next ``call()`` pays the start penalties — the paper's
        'right after the entire system has been booted' situation.
        """
        self.machine.boot()
        self.fdbs.statement_cache.invalidate()
        self.fdbs._function_plan_cache.clear()

    @property
    def now(self) -> float:
        """Current virtual time of the server's machine."""
        return self.machine.clock.now

    def elapsed(self, fn, *args, **kwargs) -> tuple[object, float]:
        """Run ``fn`` and return (result, virtual elapsed time)."""
        start = self.machine.clock.now
        result = fn(*args, **kwargs)
        return result, self.machine.clock.now - start

    def source_stats(self) -> dict:
        """Per-source federation counters keyed by ``source:<server>``.

        Populated when heterogeneous sources are attached (requests,
        pages, rows, rate-limit waits, cache hits per foreign server);
        empty for plain scenarios.  The same counters appear in
        ``SYSCAT_RUNTIME_STATS``.
        """
        return self.fdbs.federation.stats()
