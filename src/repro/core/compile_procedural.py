"""Mapping graph → procedural I-UDTF body (enhanced Java UDTF
architecture).

The paper's Java I-UDTFs "issue as many SQL statements as needed" via
JDBC, each statement referencing one A-UDTF.  The compiled body does
exactly that: one ``SELECT * FROM TABLE (Fn(?, ...)) AS T`` per call
node, host-language data flow between them, a host-language loop for
the cyclic case (the capability the paper says lifts the SQL
restriction), and a host-language join for the independent case.
"""

from __future__ import annotations

from typing import Callable

from repro.core.compile_sql_udtf import FunctionResolver
from repro.core.federated_function import FederatedFunction
from repro.core.mapping import (
    Const,
    FedInput,
    LocalCall,
    LoopCall,
    NodeOutput,
    Source,
)
from repro.errors import ExecutionError, MappingGraphError, UnsupportedMappingError
from repro.fdbs.types import cast_value, infer_type
from repro.udtf.procedural import ProceduralConnection

ProceduralBody = Callable[..., list[tuple]]


def compile_procedural(
    fed: FederatedFunction, resolver: FunctionResolver
) -> ProceduralBody:
    """Compile a federated function into a procedural I-UDTF body."""
    fed.validate()
    graph = fed.mapping
    param_names = [n for n, _ in fed.params]
    order = graph.topological_order()

    def body(connection: ProceduralConnection, *args: object) -> list[tuple]:
        if len(args) != len(param_names):
            raise ExecutionError(
                f"{fed.name} expects {len(param_names)} argument(s), "
                f"got {len(args)}"
            )
        env = {name.upper(): value for name, value in zip(param_names, args)}
        first_rows: dict[str, dict[str, object]] = {}
        all_rows: dict[str, list[tuple]] = {}
        columns: dict[str, list[str]] = {}

        def resolve(source: Source) -> object:
            if isinstance(source, Const):
                return source.value
            if isinstance(source, FedInput):
                return env[source.name.upper()]
            assert isinstance(source, NodeOutput)
            node_values = first_rows.get(source.node.upper())
            if node_values is None:
                raise ExecutionError(
                    f"{fed.name}: node {source.node!r} produced no row"
                )
            return node_values[source.column.upper()]

        def run_call(node_id: str, system: str, function: str, arg_values: list[object]) -> None:
            local = resolver(system, function)
            markers = ", ".join("?" for _ in arg_values)
            alias = "T"
            sql = f"SELECT * FROM TABLE ({function}({markers})) AS {alias}"
            rows = connection.query_rows(sql, params=arg_values)
            cols = [c.upper() for c, _ in local.returns]
            columns[node_id.upper()] = cols
            bucket = all_rows.setdefault(node_id.upper(), [])
            bucket.extend(rows)
            if rows:
                first_rows[node_id.upper()] = dict(zip(cols, rows[0]))
            else:
                first_rows.setdefault(
                    node_id.upper(), {c: None for c in cols}
                )

        def wired_args(node, local) -> list[object]:
            wired = {k.upper(): v for k, v in node.args.items()}
            values: list[object] = []
            for param_name, _ in local.params:
                if (
                    isinstance(node, LoopCall)
                    and param_name.upper() == node.counter_param.upper()
                ):
                    values.append(None)  # placeholder, patched per iteration
                    continue
                source = wired.get(param_name.upper())
                if source is None:
                    raise MappingGraphError(
                        f"node {node.id!r} does not wire parameter "
                        f"{param_name!r} of {node.function}"
                    )
                values.append(resolve(source))
            return values

        for node in order:
            local = resolver(node.system, node.function)
            if isinstance(node, LoopCall):
                start = int(resolve(node.start))  # type: ignore[arg-type]
                end = int(resolve(node.end))  # type: ignore[arg-type]
                counter_index = [
                    index
                    for index, (param_name, _) in enumerate(local.params)
                    if param_name.upper() == node.counter_param.upper()
                ]
                if not counter_index:
                    raise MappingGraphError(
                        f"loop node {node.id!r}: {node.function} has no "
                        f"parameter {node.counter_param!r}"
                    )
                template = wired_args(node, local)
                # The host-language loop the SQL architecture lacks.
                for value in range(start, end + 1):
                    arg_values = list(template)
                    arg_values[counter_index[0]] = value
                    run_call(node.id, node.system, node.function, arg_values)
            else:
                assert isinstance(node, LocalCall)
                run_call(node.id, node.system, node.function, wired_args(node, local))

        return _project(fed, graph, first_rows, all_rows, columns)

    body.__name__ = f"procedural_{fed.name}"
    return body


def _project(fed, graph, first_rows, all_rows, columns) -> list[tuple]:
    """Build the result rows: joined, looped, or scalar."""
    if graph.joins:
        return _project_join(fed, graph, all_rows, columns)
    loop_nodes = [n for n in graph.nodes if isinstance(n, LoopCall)]
    if len(loop_nodes) == 1 and all(
        isinstance(o.source, NodeOutput)
        and o.source.node.upper() == loop_nodes[0].id.upper()
        for o in graph.outputs
    ):
        node_id = loop_nodes[0].id.upper()
        cols = columns[node_id]
        indices = [
            cols.index(o.source.column.upper())  # type: ignore[union-attr]
            for o in graph.outputs
        ]
        rows = [tuple(row[i] for i in indices) for row in all_rows.get(node_id, [])]
        return _apply_casts(fed, graph, rows)
    row: list[object] = []
    for output in graph.outputs:
        if isinstance(output.source, Const):
            row.append(output.source.value)
        elif isinstance(output.source, FedInput):
            raise UnsupportedMappingError(
                f"{fed.name}: echoing federated inputs as outputs is not "
                "part of the paper's mapping cases"
            )
        else:
            source = output.source
            row.append(first_rows[source.node.upper()][source.column.upper()])
    return _apply_casts(fed, graph, [tuple(row)])


def _project_join(fed, graph, all_rows, columns) -> list[tuple]:
    sides: set[str] = set()
    for join in graph.joins:
        sides |= {join.left.node.upper(), join.right.node.upper()}
    if len(sides) != 2:
        raise UnsupportedMappingError(
            f"{fed.name}: the procedural composition joins exactly two branches"
        )
    left_id, right_id = sorted(sides)
    left_cols, right_cols = columns[left_id], columns[right_id]
    key_pairs = []
    for join in graph.joins:
        a, b = join.left, join.right
        if a.node.upper() == right_id:
            a, b = b, a
        key_pairs.append(
            (left_cols.index(a.column.upper()), right_cols.index(b.column.upper()))
        )
    projection = []
    for output in graph.outputs:
        source = output.source
        assert isinstance(source, NodeOutput)
        if source.node.upper() == left_id:
            projection.append(("L", left_cols.index(source.column.upper())))
        else:
            projection.append(("R", right_cols.index(source.column.upper())))
    joined: list[tuple] = []
    for lrow in all_rows.get(left_id, []):
        for rrow in all_rows.get(right_id, []):
            if all(lrow[li] == rrow[ri] for li, ri in key_pairs):
                joined.append(
                    tuple(
                        lrow[index] if side == "L" else rrow[index]
                        for side, index in projection
                    )
                )
    return _apply_casts(fed, graph, joined)


def _apply_casts(fed, graph, rows: list[tuple]) -> list[tuple]:
    casts = [o.cast for o in graph.outputs]
    if not any(c is not None for c in casts):
        return rows
    adjusted: list[tuple] = []
    for row in rows:
        adjusted.append(
            tuple(
                cast_value(value, infer_type(value), cast)
                if cast is not None and value is not None
                else value
                for value, cast in zip(row, casts)
            )
        )
    return adjusted
