"""The paper's purchasing scenario: all named federated functions.

Builds the mapping graphs for every federated function the paper
mentions (plus the two fan-shaped dependent cases its Sect. 3 text
describes without naming), ordered by mapping complexity:

========================  =====================  ==================
federated function        heterogeneity case     #local functions
========================  =====================  ==================
GibKompNr                 trivial                1
GetNumberSupp1234         simple                 1
GetSuppQual               dependent: linear      2
GetSuppQualRelia          independent            2
GetSubCompDiscounts       independent (join)     2
GetSuppGrade              dependent: (1:n)       3
GetSuppQualReliaByName    dependent: (n:1)       3
GetNoSuppComp             general                3   (Fig. 6 anchor)
BuySuppComp               general                5   (Fig. 1)
AllCompNames              dependent: cyclic      1 (iterated)
========================  =====================  ==================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from decimal import Decimal

from repro.appsys.datagen import EnterpriseData, generate_enterprise_data
from repro.core.architectures import Architecture, supports
from repro.core.federated_function import FederatedFunction
from repro.core.mapping import (
    Const,
    FedInput,
    JoinCondition,
    LocalCall,
    LoopCall,
    MappingGraph,
    NodeOutput,
    OutputSpec,
)
from repro.core.server import IntegrationServer
from repro.fdbs.federation import (
    ARCHIVE_PROFILE,
    CACHE_FRONTED_PROFILE,
    WEB_API_PROFILE,
    DatabaseEndpoint,
    SourceProfile,
)
from repro.fdbs.types import BIGINT, INTEGER, VARCHAR
from repro.simtime.costs import CostModel
from repro.simtime.rng import JitterSource


def scenario_functions() -> list[FederatedFunction]:
    """All federated functions of the scenario, simplest first."""
    functions: list[FederatedFunction] = []

    # Trivial: the German GibKompNr maps 1:1 onto GetCompNo.
    functions.append(
        FederatedFunction(
            name="GibKompNr",
            params=[("KompName", VARCHAR(60))],
            returns=[("Nr", INTEGER)],
            mapping=MappingGraph(
                nodes=[
                    LocalCall(
                        "GKN", "pdm", "GetCompNo",
                        args={"CompName": FedInput("KompName")},
                    )
                ],
                outputs=[OutputSpec("Nr", NodeOutput("GKN", "No"))],
            ),
            description="German rename of GetCompNo (trivial case)",
        )
    )

    # Simple: constant supplier 1234 plus an INT -> BIGINT result cast.
    functions.append(
        FederatedFunction(
            name="GetNumberSupp1234",
            params=[("CompNo", INTEGER)],
            returns=[("Number", BIGINT)],
            mapping=MappingGraph(
                nodes=[
                    LocalCall(
                        "GN", "stock", "GetNumber",
                        args={
                            "SupplierNo": Const(1234),
                            "CompNo": FedInput("CompNo"),
                        },
                    )
                ],
                outputs=[
                    OutputSpec("Number", NodeOutput("GN", "Number"), cast=BIGINT)
                ],
            ),
            description="stock number for supplier 1234 (simple case)",
        )
    )

    # Dependent, linear: supplier name -> number -> quality.
    functions.append(
        FederatedFunction(
            name="GetSuppQual",
            params=[("SupplierName", VARCHAR(60))],
            returns=[("Qual", INTEGER)],
            mapping=MappingGraph(
                nodes=[
                    LocalCall(
                        "GSN", "purchasing", "GetSupplierNo",
                        args={"SupplierName": FedInput("SupplierName")},
                    ),
                    LocalCall(
                        "GQ", "stock", "GetQuality",
                        args={"SupplierNo": NodeOutput("GSN", "SupplierNo")},
                    ),
                ],
                outputs=[OutputSpec("Qual", NodeOutput("GQ", "Qual"))],
            ),
            description="supplier quality by name (linear dependency)",
        )
    )

    # Independent: quality and reliability in parallel.
    functions.append(
        FederatedFunction(
            name="GetSuppQualRelia",
            params=[("SupplierNo", INTEGER)],
            returns=[("Qual", INTEGER), ("Relia", INTEGER)],
            mapping=MappingGraph(
                nodes=[
                    LocalCall(
                        "GQ", "stock", "GetQuality",
                        args={"SupplierNo": FedInput("SupplierNo")},
                    ),
                    LocalCall(
                        "GR", "purchasing", "GetReliability",
                        args={"SupplierNo": FedInput("SupplierNo")},
                    ),
                ],
                outputs=[
                    OutputSpec("Qual", NodeOutput("GQ", "Qual")),
                    OutputSpec("Relia", NodeOutput("GR", "Relia")),
                ],
            ),
            description="quality and reliability (independent case)",
        )
    )

    # Independent with join composition (the paper's Sect. 3 example).
    functions.append(
        FederatedFunction(
            name="GetSubCompDiscounts",
            params=[("CompNo", INTEGER), ("Discount", INTEGER)],
            returns=[("SubCompNo", INTEGER), ("SupplierNo", INTEGER)],
            mapping=MappingGraph(
                nodes=[
                    LocalCall(
                        "GSCD", "pdm", "GetSubCompNo",
                        args={"CompNo": FedInput("CompNo")},
                    ),
                    LocalCall(
                        "GCS4D", "purchasing", "GetCompSupp4Discount",
                        args={"Discount": FedInput("Discount")},
                    ),
                ],
                outputs=[
                    OutputSpec("SubCompNo", NodeOutput("GSCD", "SubCompNo")),
                    OutputSpec("SupplierNo", NodeOutput("GCS4D", "SupplierNo")),
                ],
                joins=[
                    JoinCondition(
                        NodeOutput("GSCD", "SubCompNo"),
                        NodeOutput("GCS4D", "CompNo"),
                    )
                ],
            ),
            description="discounted sub-components (independent + join)",
        )
    )

    # Dependent (1:n): GetGrade consumes two parallel producers.
    functions.append(
        FederatedFunction(
            name="GetSuppGrade",
            params=[("SupplierNo", INTEGER)],
            returns=[("Grade", INTEGER)],
            mapping=MappingGraph(
                nodes=[
                    LocalCall(
                        "GQ", "stock", "GetQuality",
                        args={"SupplierNo": FedInput("SupplierNo")},
                    ),
                    LocalCall(
                        "GR", "purchasing", "GetReliability",
                        args={"SupplierNo": FedInput("SupplierNo")},
                    ),
                    LocalCall(
                        "GG", "purchasing", "GetGrade",
                        args={
                            "Qual": NodeOutput("GQ", "Qual"),
                            "Relia": NodeOutput("GR", "Relia"),
                        },
                    ),
                ],
                outputs=[OutputSpec("Grade", NodeOutput("GG", "Grade"))],
            ),
            description="supplier grade (dependent 1:n)",
        )
    )

    # Dependent (n:1): one lookup feeds two consumers.
    functions.append(
        FederatedFunction(
            name="GetSuppQualReliaByName",
            params=[("SupplierName", VARCHAR(60))],
            returns=[("Qual", INTEGER), ("Relia", INTEGER)],
            mapping=MappingGraph(
                nodes=[
                    LocalCall(
                        "GSN", "purchasing", "GetSupplierNo",
                        args={"SupplierName": FedInput("SupplierName")},
                    ),
                    LocalCall(
                        "GQ", "stock", "GetQuality",
                        args={"SupplierNo": NodeOutput("GSN", "SupplierNo")},
                    ),
                    LocalCall(
                        "GR", "purchasing", "GetReliability",
                        args={"SupplierNo": NodeOutput("GSN", "SupplierNo")},
                    ),
                ],
                outputs=[
                    OutputSpec("Qual", NodeOutput("GQ", "Qual")),
                    OutputSpec("Relia", NodeOutput("GR", "Relia")),
                ],
            ),
            description="quality and reliability by name (dependent n:1)",
        )
    )

    # General, 3 calls: the Fig. 6 anchor function.
    functions.append(
        FederatedFunction(
            name="GetNoSuppComp",
            params=[("CompName", VARCHAR(60))],
            returns=[("Number", INTEGER), ("SupplierNo", INTEGER)],
            mapping=MappingGraph(
                nodes=[
                    LocalCall(
                        "GCN", "pdm", "GetCompNo",
                        args={"CompName": FedInput("CompName")},
                    ),
                    LocalCall(
                        "GS", "stock", "GetSupplier",
                        args={"CompNo": NodeOutput("GCN", "No")},
                    ),
                    LocalCall(
                        "GN", "stock", "GetNumber",
                        args={
                            "SupplierNo": NodeOutput("GS", "SupplierNo"),
                            "CompNo": NodeOutput("GCN", "No"),
                        },
                    ),
                ],
                outputs=[
                    OutputSpec("Number", NodeOutput("GN", "Number")),
                    OutputSpec("SupplierNo", NodeOutput("GS", "SupplierNo")),
                ],
            ),
            description="stock number and supplier for a component "
            "(general case, Fig. 6 anchor)",
        )
    )

    # General, 5 calls: the Fig. 1 flagship BuySuppComp.
    functions.append(
        FederatedFunction(
            name="BuySuppComp",
            params=[("SupplierNo", INTEGER), ("CompName", VARCHAR(60))],
            returns=[("Answer", VARCHAR(40))],
            mapping=MappingGraph(
                nodes=[
                    LocalCall(
                        "GQ", "stock", "GetQuality",
                        args={"SupplierNo": FedInput("SupplierNo")},
                    ),
                    LocalCall(
                        "GR", "purchasing", "GetReliability",
                        args={"SupplierNo": FedInput("SupplierNo")},
                    ),
                    LocalCall(
                        "GG", "purchasing", "GetGrade",
                        args={
                            "Qual": NodeOutput("GQ", "Qual"),
                            "Relia": NodeOutput("GR", "Relia"),
                        },
                    ),
                    LocalCall(
                        "GCN", "pdm", "GetCompNo",
                        args={"CompName": FedInput("CompName")},
                    ),
                    LocalCall(
                        "DP", "purchasing", "DecidePurchase",
                        args={
                            "Grade": NodeOutput("GG", "Grade"),
                            "No": NodeOutput("GCN", "No"),
                        },
                    ),
                ],
                outputs=[OutputSpec("Answer", NodeOutput("DP", "Answer"))],
            ),
            description="the Fig. 1 purchase decision (general case)",
        )
    )

    # Dependent, cyclic: iterate GetCompName over a component range.
    functions.append(
        FederatedFunction(
            name="AllCompNames",
            params=[("FromNo", INTEGER), ("ToNo", INTEGER)],
            returns=[("CompName", VARCHAR(60))],
            mapping=MappingGraph(
                nodes=[
                    LoopCall(
                        "ACN", "pdm", "GetCompName",
                        counter_param="CompNo",
                        start=FedInput("FromNo"),
                        end=FedInput("ToNo"),
                    )
                ],
                outputs=[OutputSpec("CompName", NodeOutput("ACN", "CompName"))],
            ),
            description="all component names via a do-until loop "
            "(cyclic case; WfMS / procedural only)",
        )
    )

    for fed in functions:
        fed.validate()
    return functions


@dataclass
class Scenario:
    """A deployed scenario: server + functions (+ what was skipped)."""

    server: IntegrationServer
    functions: dict[str, FederatedFunction] = field(default_factory=dict)
    skipped: dict[str, str] = field(default_factory=dict)
    """Functions the architecture cannot express, with the reason."""

    def function(self, name: str) -> FederatedFunction:
        """The deployed federated function named ``name``."""
        return self.functions[name.upper()]

    def call(self, name: str, *args: object, trace=None) -> list[tuple]:
        """Invoke a deployed federated function through the server."""
        return self.server.call(name, *args, trace=trace)


def build_scenario(
    architecture: Architecture,
    costs: CostModel | None = None,
    controller_enabled: bool = True,
    data: EnterpriseData | None = None,
    jitter: JitterSource | None = None,
    pooling: bool = False,
    result_cache: bool = False,
    faults: dict | None = None,
    optimizer: str = "syntactic",
    chunk_size: int | None = None,
    heterogeneous: bool = False,
) -> Scenario:
    """Stand up an integration server and deploy every federated
    function the architecture supports; unsupported ones (the cyclic
    case outside WfMS/procedural) are recorded in ``skipped``.
    ``pooling``/``result_cache`` switch on the integration server's warm
    runtime pool and memoizing result cache (both off by default);
    ``faults`` is forwarded to
    :meth:`~repro.core.server.IntegrationServer.configure_faults`;
    ``optimizer`` selects the FDBS planning mode (``"syntactic"`` or
    ``"cost"``); ``chunk_size`` overrides the FDBS rows-per-chunk knob
    for batch/columnar execution; ``heterogeneous`` additionally
    federates the three heterogeneous source profiles (see
    :func:`attach_heterogeneous_sources`)."""
    server = IntegrationServer(
        architecture,
        costs=costs,
        controller_enabled=controller_enabled,
        data=data if data is not None else generate_enterprise_data(),
        jitter=jitter,
        pooling=pooling,
        result_cache=result_cache,
        optimizer=optimizer,
        chunk_size=chunk_size,
    )
    if faults:
        server.configure_faults(**faults)
    if heterogeneous:
        attach_heterogeneous_sources(server.fdbs, data=server.data)
    scenario = Scenario(server)
    for fed in scenario_functions():
        if not supports(architecture, fed.case):
            scenario.skipped[fed.name.upper()] = (
                f"{fed.case.value} is not supported by the "
                f"{architecture.value} architecture"
            )
            continue
        server.deploy(fed)
        scenario.functions[fed.name.upper()] = fed
    return scenario


# ===========================================================================
# Heterogeneous federated sources (three distinct cost profiles)
# ===========================================================================

#: Foreign server name -> (profile, nickname, remote table).
HETEROGENEOUS_SOURCES: dict[str, tuple[SourceProfile, str, str]] = {
    "RATINGS_API": (WEB_API_PROFILE, "api_ratings", "ratings"),
    "ORDER_ARCHIVE": (ARCHIVE_PROFILE, "arch_orders", "orders_hist"),
    "COMP_CATALOG": (CACHE_FRONTED_PROFILE, "cat_components", "catalog_comp"),
}


def attach_heterogeneous_sources(fdbs, data: EnterpriseData | None = None, seed: int = 7):
    """Federate three heterogeneous sources into ``fdbs``.

    Creates one foreign server per :data:`HETEROGENEOUS_SOURCES` entry,
    each backed by its own in-process remote database and priced by its
    own :class:`~repro.fdbs.federation.SourceProfile`:

    * ``RATINGS_API`` / nickname ``api_ratings`` — a web-API-style
      supplier-rating service (expensive paged requests, rate-limit
      budget with retry/backoff);
    * ``ORDER_ARCHIVE`` / nickname ``arch_orders`` — an order-history
      archive (bulk scans nearly free, predicated lookups expensive);
    * ``COMP_CATALOG`` / nickname ``cat_components`` — the component
      catalog behind a response cache (repeating the same SQL is
      almost free).

    The remote rows are deterministic for a given ``seed`` and drawn
    from the enterprise universe (``data``), NULL-heavy with DECIMAL
    and VARCHAR columns.  Returns the remote databases by server name.
    Per-source counters appear in SYSCAT_RUNTIME_STATS as
    ``source:<server>`` components.
    """
    from repro.fdbs.engine import Database

    if data is None:
        data = generate_enterprise_data()
    rng = random.Random(seed)
    supplier_nos = [supplier.supplier_no for supplier in data.suppliers]

    ratings = Database("remote-ratings-api")
    ratings.execute(
        "CREATE TABLE ratings (supplier_no INT, score DECIMAL(6,2), "
        "reviewer VARCHAR(12), note VARCHAR(20))"
    )
    reviewers = ["auditor", "field", "panel", None]
    notes = ["prompt", "late", "damaged", "spotless", None, None]
    for _ in range(120):
        score = (
            None
            if rng.random() < 0.2
            else Decimal(rng.randint(0, 1000)) / Decimal(100)
        )
        ratings.execute(
            "INSERT INTO ratings VALUES (?, ?, ?, ?)",
            params=[
                rng.choice(supplier_nos),
                score,
                rng.choice(reviewers),
                rng.choice(notes),
            ],
        )

    archive = Database("remote-order-archive")
    archive.execute(
        "CREATE TABLE orders_hist (order_no INT PRIMARY KEY, supplier_no INT, "
        "comp_no INT, qty INT, price DECIMAL(8,2))"
    )
    for order_no in range(1, 241):
        price = (
            None
            if rng.random() < 0.1
            else Decimal(rng.randint(100, 999999)) / Decimal(100)
        )
        archive.execute(
            "INSERT INTO orders_hist VALUES (?, ?, ?, ?, ?)",
            params=[
                order_no,
                rng.choice(supplier_nos),
                rng.choice(data.components).comp_no,
                rng.randint(1, 500),
                price,
            ],
        )

    catalog = Database("remote-comp-catalog")
    catalog.execute(
        "CREATE TABLE catalog_comp (comp_no INT PRIMARY KEY, "
        "name VARCHAR(30), weight DECIMAL(7,3))"
    )
    for component in data.components:
        weight = (
            None
            if rng.random() < 0.1
            else Decimal(rng.randint(1, 500000)) / Decimal(1000)
        )
        catalog.execute(
            "INSERT INTO catalog_comp VALUES (?, ?, ?)",
            params=[component.comp_no, component.name, weight],
        )

    remotes = {
        "RATINGS_API": ratings,
        "ORDER_ARCHIVE": archive,
        "COMP_CATALOG": catalog,
    }
    fdbs.execute("CREATE WRAPPER hetero_wrapper")
    for server_name, (profile, nickname, remote_table) in HETEROGENEOUS_SOURCES.items():
        fdbs.execute(f"CREATE SERVER {server_name} WRAPPER hetero_wrapper")
        fdbs.attach_endpoint(
            server_name, DatabaseEndpoint(remotes[server_name]), profile=profile
        )
        fdbs.execute(
            f"CREATE NICKNAME {nickname} FOR {server_name}.{remote_table}"
        )
    return remotes
