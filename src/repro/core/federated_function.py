"""Federated function specification.

A federated function is a name, a SQL signature, and a mapping graph —
"federated functions combining functionality of one or more application
system calls" (paper, abstract).  The compilers in
:mod:`repro.core.compile_sql_udtf`, :mod:`repro.core.compile_workflow`
and :mod:`repro.core.compile_procedural` turn the same specification
into each architecture's artefact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapping import HeterogeneityCase, MappingGraph, classify
from repro.errors import MappingGraphError
from repro.fdbs.types import SqlType


@dataclass
class FederatedFunction:
    """One federated function: signature plus mapping graph."""

    name: str
    params: list[tuple[str, SqlType]]
    returns: list[tuple[str, SqlType]]
    mapping: MappingGraph
    description: str = ""

    def validate(self) -> None:
        """Check signature/mapping consistency."""
        self.mapping.validate()
        if len(self.returns) != len(self.mapping.outputs):
            raise MappingGraphError(
                f"federated function {self.name!r} declares "
                f"{len(self.returns)} result column(s) but the mapping "
                f"produces {len(self.mapping.outputs)}"
            )
        param_names = {n.upper() for n, _ in self.params}
        for node in self.mapping.nodes:
            for source in node.args.values():
                self._check_fed_input(source, param_names, f"node {node.id!r}")
        for output in self.mapping.outputs:
            self._check_fed_input(output.source, param_names, f"output {output.name!r}")

    def _check_fed_input(self, source, param_names: set[str], where: str) -> None:
        from repro.core.mapping import FedInput

        if isinstance(source, FedInput) and source.name.upper() not in param_names:
            raise MappingGraphError(
                f"{where} of {self.name!r} references unknown federated "
                f"parameter {source.name!r}"
            )

    @property
    def case(self) -> HeterogeneityCase:
        """The heterogeneity case of this function's mapping."""
        return classify(self.mapping)

    def local_function_count(self) -> int:
        """Static number of local-function call sites."""
        return self.mapping.local_function_count()

    def signature(self) -> str:
        """Human-readable signature text."""
        inner = ", ".join(f"{n} {t.render()}" for n, t in self.params)
        outer = ", ".join(f"{n} {t.render()}" for n, t in self.returns)
        return f"{self.name}({inner}) -> TABLE({outer})"
