"""Exception hierarchy shared by every subsystem of the reproduction.

The hierarchy deliberately mirrors the failure classes the paper talks
about: SQL-level errors raised by the FDBS, restrictions of the UDTF
architecture (one-statement bodies, no nesting, no cycles, CALL-only
procedures), workflow-level failures, and encapsulation violations of the
application systems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# --------------------------------------------------------------------------
# FDBS / SQL errors
# --------------------------------------------------------------------------


class SqlError(ReproError):
    """Base class for errors raised by the FDBS SQL engine."""


class LexerError(SqlError):
    """Invalid token in SQL text."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SqlError):
    """SQL text does not conform to the supported dialect."""


class CatalogError(SqlError):
    """Unknown or duplicate catalog object (table, function, server...)."""


class TypeError_(SqlError):
    """SQL type-system violation (incompatible types, bad cast...).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class PlanError(SqlError):
    """The query cannot be planned (unresolved column, bad reference...)."""


class ExecutionError(SqlError):
    """Runtime failure while executing a plan."""


class ConstraintError(SqlError):
    """Integrity constraint violated (duplicate key, NOT NULL...)."""


class WriteConflictError(SqlError):
    """First-writer-wins conflict under MVCC snapshot isolation.

    A DML statement pinned a table version at statement start, but
    another writer published a newer version of the same table before
    this statement reached its write latch.  The loser's statement is
    rolled up into this error; the statement may simply be retried
    against a fresh snapshot (``retryable`` is True).
    """

    retryable = True

    def __init__(self, table: str, expected_version: int, found_version: int):
        super().__init__(
            f"write conflict on table {table!r}: statement pinned version "
            f"{expected_version} but version {found_version} is current "
            "(first writer wins; retry against a fresh snapshot)"
        )
        self.table = table
        self.expected_version = expected_version
        self.found_version = found_version


class AuthorizationError(SqlError):
    """The current user lacks a required privilege."""


# --- Restrictions reproduced from DB2 UDB v7.1 / the paper -----------------


class RestrictionError(SqlError):
    """Base for restrictions the paper's host DBMS imposes."""


class OneStatementError(RestrictionError):
    """A SQL function body may contain exactly one SQL statement."""


class NestedTableFunctionError(RestrictionError):
    """Table functions cannot be nested: ``TABLE(f(g(x)))`` is invalid."""


class CyclicDependencyError(RestrictionError):
    """UDTF parameter references form a cycle; not expressible in SQL."""


class CallOnlyProcedureError(RestrictionError):
    """Stored procedures can only be invoked by CALL, never in FROM."""


class ReadOnlyFunctionError(RestrictionError):
    """UDTFs support read access only; no insert/update/delete."""


class FencedModeError(RestrictionError):
    """A fenced UDTF tried to open an in-process database connection."""


# --------------------------------------------------------------------------
# WfMS errors
# --------------------------------------------------------------------------


class WorkflowError(ReproError):
    """Base class for workflow-management-system errors."""


class ProcessDefinitionError(WorkflowError):
    """Malformed process model (dangling connector, unknown activity...)."""


class FdlSyntaxError(ProcessDefinitionError):
    """The FDL-like process definition text could not be parsed."""


class ContainerError(WorkflowError):
    """Container member missing or of the wrong type."""


class NavigationError(WorkflowError):
    """The navigator reached an inconsistent instance state."""


class ActivityFailedError(WorkflowError):
    """An activity's program raised; carries the failing activity name."""

    def __init__(self, activity: str, cause: Exception):
        super().__init__(f"activity {activity!r} failed: {cause}")
        self.activity = activity
        self.cause = cause


# --------------------------------------------------------------------------
# Application-system errors
# --------------------------------------------------------------------------


class ApplicationSystemError(ReproError):
    """Base class for encapsulated application-system errors."""


class EncapsulationError(ApplicationSystemError):
    """Something tried to bypass the predefined-function interface."""


class UnknownFunctionError(ApplicationSystemError):
    """No local function with that name is exported."""


class SignatureError(ApplicationSystemError):
    """Arguments do not match the local function's signature."""


# --------------------------------------------------------------------------
# Integration / mapping errors
# --------------------------------------------------------------------------


class MappingError(ReproError):
    """Base class for federated-function mapping errors."""


class UnsupportedMappingError(MappingError):
    """The mapping cannot be expressed in the selected architecture.

    E.g. a cyclic dependency compiled for the enhanced SQL UDTF
    architecture (the paper's Sect. 3 table marks it 'not supported').
    """

    def __init__(self, message: str, case: str | None = None):
        super().__init__(message)
        self.case = case


class MappingGraphError(MappingError):
    """The mapping graph itself is malformed."""


# --------------------------------------------------------------------------
# Injected middleware faults (the fault-injection harness)
# --------------------------------------------------------------------------


class TransientFaultError(ReproError):
    """Base class for faults injected by the fault-injection harness.

    Each carries the *site* name it was injected at (see
    :mod:`repro.sysmodel.faults`).  Transient means a retry may succeed:
    the WfMS recovers from them via retry/forward recovery, while the
    pure-UDTF architectures have no recovery mechanism and abort the
    whole SQL statement.
    """

    def __init__(self, site: str, message: str):
        super().__init__(message)
        self.site = site


class RmiDroppedError(TransientFaultError):
    """An RMI hop was dropped: the request timed out on the wire."""


class FencedProcessDiedError(TransientFaultError):
    """The fenced A-UDTF process died during the invocation hand-over."""


class LocalFunctionFaultError(TransientFaultError):
    """An application system's local function failed transiently."""


class ActivityProgramCrashError(TransientFaultError):
    """The JVM running a workflow activity program crashed."""


class StatementAbortedError(ExecutionError):
    """The whole SQL statement was aborted by an unrecovered fault.

    This is the paper's robustness asymmetry made explicit: a failure
    inside a UDTF-architecture federated function cannot be restarted by
    the FDBS, so the statement fails as a unit.
    """


# --------------------------------------------------------------------------
# Simulation substrate errors
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for virtual-time / machine-model errors."""


class ClockError(SimulationError):
    """Virtual clock misuse (negative advance, nested run conflicts)."""


# --------------------------------------------------------------------------
# Serving-layer errors
# --------------------------------------------------------------------------


class ServingError(ReproError):
    """Base class for concurrent-serving-layer errors."""


class AdmissionError(ServingError):
    """The serving layer refused work: session or queue capacity is full.

    Raised by the admission controller under the ``"reject"`` policy;
    the ``"block"`` policy applies backpressure (the caller waits)
    instead of raising.
    """


class SessionClosedError(ServingError):
    """A call was routed through a session that has been closed."""


class WireProtocolError(ServingError):
    """A frame on the router<->shard wire violated the protocol.

    Raised for bad magic bytes, an unsupported protocol version, an
    unknown message kind, or a checksum mismatch.  The router treats a
    wire violation like a dead shard: the connection is unusable.
    """


class ShardCrashError(ServingError):
    """A shard worker process died with work outstanding.

    Sessions routed to the dead shard fail with this error; it is
    *retryable* — each session ran on its own isolated server inside
    the worker, so nothing partial survives the crash and the script
    may simply be resubmitted once the router respawns the shard.
    """

    retryable = True

    def __init__(self, shard_id: int, message: str):
        super().__init__(message)
        self.shard_id = shard_id


class ProcessStateError(SimulationError):
    """Simulated OS process used in the wrong state (not started, dead)."""
