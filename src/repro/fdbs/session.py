"""Query results and the statement (plan) cache.

The statement cache is what makes *repeated* federated-function calls
the fastest in the paper's boot/other/repeated comparison: a cache miss
pays :attr:`~repro.simtime.costs.CostModel.plan_compile`, a hit pays
nothing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ExecutionError


@dataclass
class Result:
    """Outcome of one statement execution."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0
    out_params: dict[str, object] = field(default_factory=dict)
    statement_type: str = "SELECT"

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> object:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() needs exactly one row and column, got "
                f"{len(self.rows)} row(s) x {len(self.columns)} column(s)"
            )
        return self.rows[0][0]

    def first(self) -> tuple | None:
        """First row, or None."""
        return self.rows[0] if self.rows else None

    def to_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[object]:
        """All values of one named column."""
        target = name.upper()
        for index, column in enumerate(self.columns):
            if column.upper() == target:
                return [row[index] for row in self.rows]
        raise ExecutionError(f"result has no column {name!r}")


class StatementCache:
    """Caches compiled plans by statement text.

    Eviction is LRU with a configurable capacity; any DDL invalidates
    the whole cache (catalog objects may have changed shape).  Entries
    may be *namespaced* (the engine namespaces by execution mode, so a
    row-mode plan is never served to a batch-mode execution); hit, miss
    and eviction counters are exposed through :meth:`stats`.

    Lookups, stores and the hit/miss/eviction counters are guarded by an
    internal lock: concurrent sessions sharing one FDBS must neither
    lose counter updates nor race the LRU pop/reinsert (which would
    raise ``KeyError`` or corrupt the recency order).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: dict[str, object] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def normalize(sql: str) -> str:
        """Cache key: whitespace-insensitive statement text."""
        return " ".join(sql.split())

    def _key(self, sql: str, namespace: str | None) -> str:
        normalized = self.normalize(sql)
        if namespace is None:
            return normalized
        return f"{namespace}\x00{normalized}"

    def get(self, sql: str, namespace: str | None = None) -> object | None:
        """Cached entry for the statement text, or None (LRU refresh)."""
        key = self._key(sql, namespace)
        with self._lock:
            if key in self._entries:
                self.hits += 1
                value = self._entries.pop(key)
                self._entries[key] = value  # move to MRU position
                return value
            self.misses += 1
            return None

    def put(self, sql: str, value: object, namespace: str | None = None) -> None:
        """Cache an entry, evicting the least recently used if full."""
        key = self._key(sql, namespace)
        with self._lock:
            if key in self._entries:
                self._entries.pop(key)
            elif len(self._entries) >= self.capacity:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self.evictions += 1
            self._entries[key] = value

    def invalidate(self) -> None:
        """Drop every cached entry (DDL happened)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current size and capacity."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
            }

    def __contains__(self, sql: str) -> bool:
        return self.normalize(sql) in self._entries

    def __len__(self) -> int:
        return len(self._entries)
