"""Predicate pushdown to remote SQL sources.

The paper leaves "query optimization" as future work (Sect. 6); this
module implements the classic first step for the federation side:
conjuncts of the WHERE clause that reference exactly one nickname's
columns — and contain only operations a plain SQL source understands —
are rendered to SQL text and shipped inside the remote statement,
instead of filtering locally after transferring every row.

Safety rules:

* only scans in the top-level (comma) FROM list are candidates; scans
  under an explicit OUTER JOIN keep their conjuncts local (pushing them
  below a LEFT JOIN would change NULL-padding semantics);
* a conjunct must reference at least one column of the target scan and
  nothing else (no other aliases, no statement parameters, no
  subqueries, no user-defined functions);
* allowed node types: literals, column refs, comparisons, arithmetic,
  AND/OR/NOT, IS NULL, IN lists, LIKE, BETWEEN.
"""

from __future__ import annotations

from repro.fdbs import ast
from repro.fdbs.executor import RemoteScanPlan


def split_conjuncts(expr: ast.Expression) -> list[ast.Expression]:
    """Flatten a tree of ANDs into its conjuncts."""
    if isinstance(expr, ast.BinaryOp) and expr.op.upper() == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def recombine(conjuncts: list[ast.Expression]) -> ast.Expression | None:
    """AND the conjuncts back together (None when empty)."""
    if not conjuncts:
        return None
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = ast.BinaryOp("AND", combined, conjunct)
    return combined


_PUSHABLE_OPS = frozenset(
    {"=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", "AND", "OR", "||"}
)


def referenced_qualifiers(expr: ast.Expression) -> set[str] | None:
    """Upper-cased qualifiers of all column refs; None when the
    expression contains something that cannot ship (parameter,
    subquery, function call, unqualified column...)."""
    if isinstance(expr, ast.Literal):
        return set()
    if isinstance(expr, ast.ColumnRef):
        if expr.qualifier is None:
            return None  # ambiguous without the local layout; keep local
        return {expr.qualifier.upper()}
    if isinstance(expr, ast.BinaryOp):
        if expr.op.upper() not in _PUSHABLE_OPS:
            return None
        return _merge(referenced_qualifiers(expr.left), referenced_qualifiers(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return referenced_qualifiers(expr.operand)
    if isinstance(expr, ast.IsNull):
        return referenced_qualifiers(expr.operand)
    if isinstance(expr, ast.InList):
        result = referenced_qualifiers(expr.operand)
        for item in expr.items:
            result = _merge(result, referenced_qualifiers(item))
        return result
    if isinstance(expr, ast.Like):
        return _merge(
            referenced_qualifiers(expr.operand), referenced_qualifiers(expr.pattern)
        )
    if isinstance(expr, ast.Between):
        result = _merge(
            referenced_qualifiers(expr.operand), referenced_qualifiers(expr.low)
        )
        return _merge(result, referenced_qualifiers(expr.high))
    # Parameters, subqueries, CASE, casts, function calls: keep local.
    return None


def _merge(a: set[str] | None, b: set[str] | None) -> set[str] | None:
    if a is None or b is None:
        return None
    return a | b


def strip_qualifiers(expr: ast.Expression) -> ast.Expression:
    """Clone the expression with all column qualifiers removed (the
    remote statement scans a single table)."""
    import copy

    if isinstance(expr, ast.ColumnRef):
        return ast.ColumnRef(None, expr.name)
    clone = copy.copy(expr)
    if isinstance(clone, ast.BinaryOp):
        clone.left = strip_qualifiers(clone.left)
        clone.right = strip_qualifiers(clone.right)
    elif isinstance(clone, ast.UnaryOp):
        clone.operand = strip_qualifiers(clone.operand)
    elif isinstance(clone, ast.IsNull):
        clone.operand = strip_qualifiers(clone.operand)
    elif isinstance(clone, ast.InList):
        clone.operand = strip_qualifiers(clone.operand)
        clone.items = [strip_qualifiers(i) for i in clone.items]
    elif isinstance(clone, ast.Like):
        clone.operand = strip_qualifiers(clone.operand)
        clone.pattern = strip_qualifiers(clone.pattern)
    elif isinstance(clone, ast.Between):
        clone.operand = strip_qualifiers(clone.operand)
        clone.low = strip_qualifiers(clone.low)
        clone.high = strip_qualifiers(clone.high)
    return clone


def partition_predicates(
    where: ast.Expression | None,
    candidate_aliases: "set[str] | frozenset[str]",
) -> tuple[list[tuple[str, ast.Expression]], list[ast.Expression]]:
    """Deterministic pushed-vs-residual split of the WHERE conjuncts.

    Pure function of the expression tree: conjuncts are visited in WHERE
    order (left to right through the AND tree), so repeated calls always
    produce the same partition.  Returns ``(pushed, residual)`` where
    ``pushed`` pairs each shippable conjunct with its (upper-cased)
    target alias and ``residual`` keeps the local conjuncts, both in
    original order.
    """
    pushed: list[tuple[str, ast.Expression]] = []
    residual: list[ast.Expression] = []
    if where is None:
        return pushed, residual
    for conjunct in split_conjuncts(where):
        qualifiers = referenced_qualifiers(conjunct)
        if (
            qualifiers is not None
            and len(qualifiers) == 1
            and next(iter(qualifiers)) in candidate_aliases
        ):
            pushed.append((next(iter(qualifiers)), conjunct))
        else:
            residual.append(conjunct)
    return pushed, residual


def push_predicates(
    where: ast.Expression | None,
    candidates: dict[str, RemoteScanPlan],
    counter=None,
) -> ast.Expression | None:
    """Push eligible conjuncts into their remote scans.

    ``candidates`` maps upper-cased FROM aliases to their scans.
    Returns the remaining local WHERE expression (None if everything was
    pushed).  ``counter`` (a FederationLayer, optional) gets its
    ``predicates_pushed`` statistic bumped.
    """
    if where is None or not candidates:
        return where
    pushed, residual = partition_predicates(where, set(candidates))
    for alias, conjunct in pushed:
        scan = candidates[alias]
        scan.pushed_predicates.append(strip_qualifiers(conjunct).render())
        if counter is not None:
            counter.predicates_pushed += 1
    return recombine(residual)


# ---------------------------------------------------------------------------
# Zone-map prune-check compilation (columnar execution mode)
# ---------------------------------------------------------------------------
#
# A prune check is the zone-map analogue of pushing a predicate into a
# remote source: instead of shipping SQL text it compiles a WHERE
# conjunct against the per-chunk (min, max, null_count) statistics of a
# *local* columnar scan.  The contract is conservative may-match: the
# check receives one chunk's zone entry and returns False only when NO
# row of the chunk can satisfy the conjunct — the conjunct itself stays
# in the filter, so a check that keeps too much costs time, never
# correctness.

#: A compiled prune check: ``check(lo, hi, nulls, count) -> bool`` where
#: True means the chunk may contain matching rows (keep it).
ZoneCheck = "Callable[[object, object, int, int], bool]"

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}


def _zone_value(value: object) -> bool:
    """True when a literal is safe for raw min/max comparison.

    Mirrors the batch compiler's ``_plain_numeric`` gate: only plain
    ints and floats (not bools, not Decimal, not strings) compare under
    raw Python operators exactly as the row-mode ``_align`` semantics —
    CHAR values pad-strip in comparisons and DECIMAL operands are
    re-aligned through ``Decimal(str(x))``, both of which raw bounds
    comparisons would not reproduce.
    """
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def zone_target(conjunct: ast.Expression) -> ast.ColumnRef | None:
    """The single column a zone check could prune on (None if none).

    Recognised shapes: ``col <op> literal`` / ``literal <op> col`` for
    the six comparison operators, ``col [NOT] BETWEEN lit AND lit``,
    ``col IN (lit, ...)`` (non-negated), and ``col IS [NOT] NULL``.
    """
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op.upper() in _FLIPPED:
        if isinstance(conjunct.left, ast.ColumnRef) and isinstance(
            conjunct.right, ast.Literal
        ):
            return conjunct.left
        if isinstance(conjunct.left, ast.Literal) and isinstance(
            conjunct.right, ast.ColumnRef
        ):
            return conjunct.right
        return None
    if isinstance(conjunct, ast.Between):
        if (
            isinstance(conjunct.operand, ast.ColumnRef)
            and isinstance(conjunct.low, ast.Literal)
            and isinstance(conjunct.high, ast.Literal)
        ):
            return conjunct.operand
        return None
    if isinstance(conjunct, ast.InList):
        if (
            not conjunct.negated
            and isinstance(conjunct.operand, ast.ColumnRef)
            and all(isinstance(item, ast.Literal) for item in conjunct.items)
        ):
            return conjunct.operand
        return None
    if isinstance(conjunct, ast.IsNull):
        if isinstance(conjunct.operand, ast.ColumnRef):
            return conjunct.operand
        return None
    return None


def _bounded(test):
    """Wrap a ``(lo, hi, value)`` bounds test with the shared guards:
    an all-NULL chunk can never satisfy a value predicate (NULL compares
    to nothing), and unknown bounds must keep the chunk."""

    def check(lo, hi, nulls, count):
        if nulls >= count:  # every slot NULL (or the chunk is empty)
            return False
        if lo is None or hi is None:  # bounds unknown: cannot prune
            return True
        return test(lo, hi)

    return check


def _prune_all(lo, hi, nulls, count):
    return False


def zone_check(conjunct: ast.Expression, column_type) -> "ZoneCheck | None":
    """Compile one WHERE conjunct into a zone-map prune check.

    ``column_type`` is the scan column's SQL type; value comparisons are
    only compiled for plain numeric columns (see :func:`_zone_value`).
    Returns None when the conjunct cannot prune safely.
    """
    from repro.fdbs.expr import _plain_numeric

    if isinstance(conjunct, ast.IsNull):
        # Type-free: the null count is exact regardless of column type.
        if conjunct.negated:
            return lambda lo, hi, nulls, count: nulls < count
        return lambda lo, hi, nulls, count: nulls > 0

    if not _plain_numeric(column_type):
        return None

    if isinstance(conjunct, ast.BinaryOp):
        op = conjunct.op.upper()
        if isinstance(conjunct.left, ast.ColumnRef):
            literal = conjunct.right.value  # type: ignore[union-attr]
        else:
            literal = conjunct.left.value  # type: ignore[union-attr]
            op = _FLIPPED[op]
        if literal is None:
            # ``col <op> NULL`` is never TRUE: no chunk can match.
            return _prune_all
        if not _zone_value(literal):
            return None
        if op == "=":
            return _bounded(lambda lo, hi: lo <= literal <= hi)
        if op == "<":
            return _bounded(lambda lo, hi: lo < literal)
        if op == "<=":
            return _bounded(lambda lo, hi: lo <= literal)
        if op == ">":
            return _bounded(lambda lo, hi: hi > literal)
        if op == ">=":
            return _bounded(lambda lo, hi: hi >= literal)
        if op == "<>":
            return _bounded(lambda lo, hi: not (lo == literal and hi == literal))
        return None

    if isinstance(conjunct, ast.Between):
        low = conjunct.low.value  # type: ignore[union-attr]
        high = conjunct.high.value  # type: ignore[union-attr]
        if low is None or high is None:
            return _prune_all
        if not (_zone_value(low) and _zone_value(high)):
            return None
        if conjunct.negated:
            # Prunable only when every value is inside [low, high].
            return _bounded(lambda lo, hi: lo < low or hi > high)
        return _bounded(lambda lo, hi: not (hi < low or lo > high))

    if isinstance(conjunct, ast.InList):
        values = [item.value for item in conjunct.items]  # type: ignore[union-attr]
        members = [v for v in values if v is not None]
        if not members:
            # ``col IN (NULL, ...)`` with no real members is never TRUE.
            return _prune_all
        if not all(_zone_value(v) for v in members):
            return None
        return _bounded(
            lambda lo, hi: any(lo <= member <= hi for member in members)
        )

    return None
