"""Volcano-style plan operators, with an optional batch protocol.

Every operator exposes ``schema`` (a list of
:class:`~repro.fdbs.expr.ColumnSlot`) and ``rows(ctx)`` yielding flat
tuples.  Plans are built by :mod:`repro.fdbs.planner` and executed by
the engine, which supplies the :class:`~repro.fdbs.expr.EvalContext`
and the table-function invoker.

Operators additionally expose ``batches(ctx)`` yielding *chunks* (lists)
of tuples.  The default implementation chunks ``rows(ctx)``, so every
operator is batch-capable; the hot relational operators (scan, filter,
project, hash join, aggregate, sort, distinct, union, limit) override it
with vectorized implementations that evaluate whole chunks per
Python-level call.  Row mode and batch mode produce identical rows — the
batch forms only change *how often Python dispatches*, never the
relational semantics, the lateral (left-to-right) evaluation order, or
the simulated cost accounting.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Iterable, Iterator, Protocol, Sequence

from repro.errors import ExecutionError
from repro.fdbs import ast
from repro.fdbs.catalog import TableFunction
from repro.fdbs.expr import (
    BatchFn,
    ColumnSlot,
    CompiledExpr,
    EvalContext,
    truthy,
)
from repro.fdbs.storage import Table

#: Default number of rows per chunk in batch execution.
BATCH_SIZE = 1024


class ColumnBatch:
    """One chunk of rows in the columnar execution mode.

    Holds either a row-major tuple list or a column-major list of value
    columns; the other representation is derived lazily and cached.
    Together with the storage :class:`~repro.fdbs.storage.ColumnChunk`
    and :class:`SelectionBatch` this forms the *column batch* protocol
    consumed by ``column_batches``: ``len``, iteration over row tuples,
    ``column(position)`` and ``rows_view()``.
    """

    __slots__ = ("count", "_rows", "_cols", "_cache")

    def __init__(
        self,
        count: int,
        rows: list[tuple] | None = None,
        cols: list[list] | None = None,
    ):
        self.count = count
        self._rows = rows
        self._cols = cols
        self._cache: dict[int, list] | None = None

    def column(self, position: int) -> list:
        """Values of one column across the batch (cached)."""
        if self._cols is not None:
            return self._cols[position]
        cache = self._cache
        if cache is None:
            cache = self._cache = {}
        column = cache.get(position)
        if column is None:
            column = [row[position] for row in self._rows]  # type: ignore[union-attr]
            cache[position] = column
        return column

    def rows_view(self) -> list[tuple]:
        """The batch's rows as tuples (materialised once for a
        column-major batch)."""
        rows = self._rows
        if rows is None:
            cols = self._cols
            rows = list(zip(*cols)) if cols else [()] * self.count
            self._rows = rows
        return rows

    def __len__(self) -> int:
        return self.count

    def __iter__(self):
        return iter(self.rows_view())


class SelectionBatch:
    """A filtered view over a parent column batch.

    Stores only the surviving row indices; columns are gathered lazily
    per column actually read downstream, so a selective filter followed
    by a narrow projection touches no other columns at all.
    """

    __slots__ = ("parent", "indices", "count", "_columns", "_rows")

    def __init__(self, parent, indices: list[int]):
        self.parent = parent
        self.indices = indices
        self.count = len(indices)
        self._columns: dict[int, list] = {}
        self._rows: list[tuple] | None = None

    def column(self, position: int) -> list:
        """The selected values of one parent column (cached)."""
        column = self._columns.get(position)
        if column is None:
            source = self.parent.column(position)
            column = [source[index] for index in self.indices]
            self._columns[position] = column
        return column

    def rows_view(self) -> list[tuple]:
        """The selected rows as tuples (cached)."""
        rows = self._rows
        if rows is None:
            source = self.parent.rows_view()
            rows = [source[index] for index in self.indices]
            self._rows = rows
        return rows

    def __len__(self) -> int:
        return self.count

    def __iter__(self):
        return iter(self.rows_view())


class FunctionInvoker(Protocol):
    """Invokes a catalog table function with evaluated argument values."""

    def __call__(
        self, function: TableFunction, args: list[object], ctx: EvalContext
    ) -> list[tuple]: ...


class Plan:
    """Base class of executable plan operators."""

    schema: list[ColumnSlot]

    #: Optimizer cardinality estimate (rows), set by the cost-based
    #: planner; None on syntactic plans.
    est_rows: int | None = None
    #: Observed output cardinality, set by EXPLAIN ANALYZE
    #: instrumentation; None otherwise.
    actual_rows: int | None = None

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:  # pragma: no cover
        """Yield the operator's result rows."""
        raise NotImplementedError

    def batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator[list[tuple]]:
        """Yield chunks of result rows (default: chunked ``rows``)."""
        chunk: list[tuple] = []
        append = chunk.append
        for row in self.rows(ctx):
            append(row)
            if len(chunk) >= size:
                yield chunk
                chunk = []
                append = chunk.append
        if chunk:
            yield chunk

    def column_batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator:
        """Yield column batches (default: wrapped row chunks).

        The columnar execution mode runs the same operator tree through
        this protocol; operators without a columnar form fall back to
        their ``batches`` output wrapped in :class:`ColumnBatch`, so any
        plan is columnar-capable and produces the exact rows of batch
        mode.
        """
        for chunk in self.batches(ctx, size):
            yield ColumnBatch(len(chunk), rows=chunk)

    def explain(self, indent: int = 0, mode: str | None = None) -> str:
        """Human-readable plan tree (EXPLAIN-style).

        ``mode`` (when given) prepends an ``Execution(mode=...)`` header
        so EXPLAIN output shows whether the plan runs row- or batch-wise.
        """
        pad = "  " * indent
        lines = []
        if mode is not None:
            lines.append(pad + f"Execution(mode={mode})")
        lines.append(pad + self._describe() + self._cardinality_suffix())
        for child in self._children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _cardinality_suffix(self) -> str:
        """`` [est=N, actual=M rows]`` annotation (empty when unknown)."""
        parts = []
        if self.est_rows is not None:
            parts.append(f"est={self.est_rows}")
        if self.actual_rows is not None:
            parts.append(f"actual={self.actual_rows}")
        if not parts:
            return ""
        return f" [{', '.join(parts)} rows]"

    def _describe(self) -> str:
        return type(self).__name__

    def _children(self) -> list["Plan"]:
        return []


class UnitPlan(Plan):
    """Produces exactly one empty row — the seed of a FROM-less SELECT
    and of the lateral fold over the FROM list."""

    def __init__(self) -> None:
        self.schema = []

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        yield ()

    def _describe(self) -> str:
        return "Unit"


class TableScanPlan(Plan):
    """Scan of a base table: full, or index-assisted.

    The planner may attach an *index probe* — an equality conjunct
    ``col = <constant>`` lifted from the WHERE clause — in which case
    the scan resolves through the table's hash index instead of reading
    every row (index selection, a small classic physical optimization).
    """

    def __init__(self, table: Table, schema: list[ColumnSlot], name: str):
        self._table = table
        self.schema = schema
        self._name = name
        self.index_probe: tuple[str, CompiledExpr] | None = None
        #: Zone-map prune checks attached by the planner in columnar
        #: mode: ``(column position, check, conjunct text)`` where
        #: ``check(lo, hi, nulls, count)`` returns False only when no
        #: row of a chunk with that zone entry can satisfy the conjunct.
        self.prune_checks: list[tuple[int, Callable, str]] = []
        #: Callback ``(chunks_scanned, chunks_pruned)`` feeding the
        #: database's columnar runtime counters (attached by the planner).
        self.columnar_note: Callable[[int, int], None] | None = None
        #: Chunk pruning outcome of the most recent execution (shown by
        #: EXPLAIN ANALYZE as ``pruned=N/M chunks``).
        self.last_chunks_total: int | None = None
        self.last_chunks_pruned: int | None = None

    def _version(self, ctx: EvalContext):
        """The TableVersion this scan reads: the statement's pinned
        snapshot when it covers the table, else the current version."""
        if ctx.snapshot is not None:
            pinned = ctx.snapshot.version_for(self._table)
            if pinned is not None:
                return pinned
        return self._table.current_version

    def _chunks(self, ctx: EvalContext) -> Iterator:
        """Column chunks of the pinned version, zone-map pruned.

        Pruning is a pure superset skip: a pruned chunk provably holds
        no row satisfying the attached conjunct, and the conjunct itself
        still runs in the filter above, so the surviving rows (in rid
        order) are exactly what the unpruned scan would feed through
        that filter.  Empty (all-tombstone) chunks are skipped without
        counting as scanned or pruned.

        Chunks are produced lazily and counted as they are examined, so
        when a LIMIT above terminates the scan early the counters stay
        consistent: ``chunks_scanned`` is exactly the chunks handed to
        the consumer, and EXPLAIN ANALYZE's ``pruned=N/M`` reports the
        chunks actually examined (``M - N`` of which were scanned) —
        never chunks the aborted scan would have read.
        """
        chunks = self._table.columnar_chunks(self._version(ctx))
        checks = self.prune_checks
        scanned = pruned = 0
        self.last_chunks_total = 0
        self.last_chunks_pruned = 0
        try:
            for chunk in chunks:
                count = chunk.count
                if count == 0:
                    continue
                keep = True
                for position, check, _text in checks:
                    lo, hi, nulls = chunk.zone(position)
                    if not check(lo, hi, nulls, count):
                        keep = False
                        break
                if keep:
                    scanned += 1
                    self.last_chunks_total = scanned + pruned
                    yield chunk
                else:
                    pruned += 1
                    self.last_chunks_total = scanned + pruned
                    self.last_chunks_pruned = pruned
        finally:
            # Runs on exhaustion *and* on early termination (generator
            # close), so the database counters see each chunk once.
            self.last_chunks_total = scanned + pruned
            self.last_chunks_pruned = pruned
            if self.columnar_note is not None:
                self.columnar_note(scanned, pruned)

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        version = self._version(ctx)
        if self.index_probe is not None:
            column, value_expr = self.index_probe
            value = value_expr((), ctx)
            if value is None:
                return  # col = NULL never matches
            yield from self._table.version_index_lookup(version, column, value)
            return
        if self.prune_checks:
            for chunk in self._chunks(ctx):
                yield from chunk.rows
            return
        for row in version.rows():
            yield row

    def batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator[list[tuple]]:
        """Yield chunks by slicing the materialised heap directly."""
        version = self._version(ctx)
        if self.index_probe is not None:
            column, value_expr = self.index_probe
            value = value_expr((), ctx)
            if value is None:
                return  # col = NULL never matches
            data = self._table.version_index_lookup(version, column, value)
        elif self.prune_checks:
            for chunk in self._chunks(ctx):
                yield chunk.rows
            return
        else:
            data = version.rows()
        for start in range(0, len(data), size):
            yield data[start : start + size]

    def column_batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator:
        """Yield the storage's column chunks directly (zone-map pruned)."""
        if self.index_probe is not None:
            yield from super().column_batches(ctx, size)
            return
        yield from self._chunks(ctx)

    def _describe(self) -> str:
        if self.index_probe is not None:
            return f"IndexLookup({self._name}.{self.index_probe[0]})"
        if self.prune_checks:
            zones = " AND ".join(text for _, _, text in self.prune_checks)
            described = f"TableScan({self._name}, zone: {zones})"
        else:
            described = f"TableScan({self._name})"
        if self.last_chunks_total is not None:
            described += (
                f" [pruned={self.last_chunks_pruned}"
                f"/{self.last_chunks_total} chunks]"
            )
        return described


class RemoteScanPlan(Plan):
    """Scan of a nickname: the subquery is shipped to the remote server
    through the federation layer.

    ``pushed_predicates`` holds predicate texts the planner pushed down
    (the paper's future-work 'query optimization' item); they travel in
    the remote statement's WHERE clause.
    """

    def __init__(
        self,
        fetcher,
        schema: list[ColumnSlot],
        name: str,
    ):
        self.fetcher = fetcher
        self.schema = schema
        self._name = name
        self.pushed_predicates: list[str] = []

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        yield from self.fetcher.fetch(ctx, self.pushed_predicates)

    def _describe(self) -> str:
        if self.pushed_predicates:
            pushed = " AND ".join(self.pushed_predicates)
            return f"RemoteScan({self._name}, pushed: {pushed})"
        return f"RemoteScan({self._name})"


class SyscatScanPlan(Plan):
    """Scan of a SYSCAT virtual table: rows are generated from the live
    catalog at execution time, so DDL is immediately visible."""

    def __init__(self, catalog, generator, schema: list[ColumnSlot], name: str):
        self._catalog = catalog
        self._generator = generator
        self.schema = schema
        self._name = name

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        yield from self._generator(self._catalog)

    def _describe(self) -> str:
        return f"SyscatScan({self._name})"


class CrossApplyPlan(Plan):
    """Lateral fold step: for every left row, produce the rows of the
    right side.  The right side is either *static* (a plan independent
    of the left row) or *lateral* (a table function whose arguments are
    evaluated against the current left row) — this is the executor
    embodiment of DB2's left-to-right FROM-clause processing."""

    def __init__(self, left: Plan, right: "RightSide"):
        self.left = left
        self.right = right
        self.schema = left.schema + right.schema

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        for left_row in self.left.rows(ctx):
            for right_row in self.right.rows_for(left_row, ctx):
                yield left_row + right_row

    def batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator[list[tuple]]:
        """Yield chunks.  The degenerate first fold step (Unit seed on
        the left, a static plan on the right) forwards the right side's
        batches unchanged; lateral folds keep row-at-a-time semantics
        (chunked), preserving the left-to-right invocation order that
        the cost accounting and fenced UDTF semantics depend on."""
        if isinstance(self.left, UnitPlan) and isinstance(self.right, StaticRightSide):
            yield from self.right.plan.batches(ctx, size)
            return
        yield from super().batches(ctx, size)

    def column_batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator:
        """Forward the degenerate first fold step columnar; lateral
        folds keep row-at-a-time semantics (wrapped chunks)."""
        if isinstance(self.left, UnitPlan) and isinstance(self.right, StaticRightSide):
            yield from self.right.plan.column_batches(ctx, size)
            return
        yield from super().column_batches(ctx, size)

    def _describe(self) -> str:
        return "CrossApply"

    def _children(self) -> list[Plan]:
        children: list[Plan] = [self.left]
        inner = getattr(self.right, "plan", None)
        if isinstance(inner, Plan):
            children.append(inner)
        return children


class RightSide:
    """Right input of a :class:`CrossApplyPlan`."""

    schema: list[ColumnSlot]

    def rows_for(self, left_row: tuple, ctx: EvalContext) -> Iterable[tuple]:
        """Rows of the right side for one left row."""
        raise NotImplementedError  # pragma: no cover


class StaticRightSide(RightSide):
    """A right side independent of the left row (plain cross join)."""

    def __init__(self, plan: Plan):
        self.plan = plan
        self.schema = plan.schema
        self._cache: list[tuple] | None = None

    def rows_for(self, left_row: tuple, ctx: EvalContext) -> Iterable[tuple]:
        """Rows of the right side for one left row."""
        if self._cache is None:
            self._cache = list(self.plan.rows(ctx))
        return self._cache


class TableFunctionRightSide(RightSide):
    """A lateral table-function call.

    ``arg_exprs`` are compiled against the layout of everything to the
    *left* of this FROM item (plus the statement's parameter scope) —
    exactly the paper's "execution order defined by input parameters".

    ``composition_cost``/``charge`` model the result-set composition of
    *independent* branches ("join with selection"): composing a branch
    that does not depend on the running row costs extra work, which is
    why the UDTF architecture loses the paper's parallel-vs-sequential
    comparison while the WfMS wins it.
    """

    def __init__(
        self,
        function: TableFunction,
        arg_exprs: list[CompiledExpr],
        schema: list[ColumnSlot],
        invoker: FunctionInvoker,
        alias: str,
        composition_cost: float = 0.0,
        charge: Callable[[float], None] | None = None,
    ):
        self.function = function
        self.arg_exprs = arg_exprs
        self.schema = schema
        self.invoker = invoker
        self.alias = alias
        self.composition_cost = composition_cost
        self.charge = charge
        # DETERMINISTIC-function optimization (extension, cf. the
        # paper's [10]): repeated invocations with equal arguments are
        # served from this cache for the lifetime of the plan — the
        # declaration's contract is that results never change per args.
        self._result_cache: dict[tuple, list[tuple]] = {}
        self.invocations = 0
        self.cache_hits = 0

    def rows_for(self, left_row: tuple, ctx: EvalContext) -> Iterable[tuple]:
        """Rows of the right side for one left row."""
        if self.composition_cost and self.charge is not None:
            self.charge(self.composition_cost)
        args = [expr(left_row, ctx) for expr in self.arg_exprs]
        if self.function.deterministic:
            try:
                key = tuple(args)
                cached = self._result_cache.get(key)
            except TypeError:  # unhashable argument value
                key = None
                cached = None
            if cached is not None:
                self.cache_hits += 1
                return cached
            self.invocations += 1
            rows = self.invoker(self.function, args, ctx)
            if key is not None:
                self._result_cache[key] = rows
            return rows
        self.invocations += 1
        return self.invoker(self.function, args, ctx)


class NestedLoopJoinPlan(Plan):
    """INNER / LEFT OUTER / CROSS join with an optional ON predicate."""

    def __init__(
        self,
        left: Plan,
        right: Plan,
        kind: str,
        predicate: CompiledExpr | None,
    ):
        if kind not in ("INNER", "LEFT OUTER", "CROSS"):
            raise ExecutionError(f"unsupported join kind {kind!r}")
        self.left = left
        self.right = right
        self.kind = kind
        self.predicate = predicate
        self.schema = left.schema + right.schema

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        right_rows = list(self.right.rows(ctx))
        null_right = (None,) * len(self.right.schema)
        for left_row in self.left.rows(ctx):
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if self.predicate is None or truthy(self.predicate(combined, ctx)):
                    matched = True
                    yield combined
            if not matched and self.kind == "LEFT OUTER":
                yield left_row + null_right

    def _describe(self) -> str:
        return f"NestedLoopJoin({self.kind}, join=nlj)"

    def _children(self) -> list[Plan]:
        return [self.left, self.right]


def _join_key_part(value: object) -> object:
    """Normalise one join-key value for hashing.

    Strings drop trailing blanks so CHAR-padded keys match exactly like
    the row-mode ``=`` comparison (see ``expr._align``); everything else
    hashes natively (Python guarantees ``hash(1) == hash(1.0)`` wherever
    ``1 == 1.0``).
    """
    return value.rstrip() if isinstance(value, str) else value


class HashJoinPlan(Plan):
    """INNER / LEFT OUTER equi-join through an in-memory hash table.

    The planner selects this operator (batch mode only) when the ON
    clause carries at least one hash-compatible equi-conjunct; remaining
    conjuncts become the ``residual`` predicate, evaluated against the
    combined row exactly as the nested-loop join would.  Output order
    matches the nested-loop join: left rows in input order, matching
    right rows in right-input order.
    """

    def __init__(
        self,
        left: Plan,
        right: Plan,
        kind: str,
        left_keys: list[CompiledExpr],
        right_keys: list[CompiledExpr],
        residual: CompiledExpr | None = None,
        key_names: list[str] | None = None,
    ):
        if kind not in ("INNER", "LEFT OUTER"):
            raise ExecutionError(f"unsupported hash-join kind {kind!r}")
        if not left_keys or len(left_keys) != len(right_keys):
            raise ExecutionError("hash join requires matching key lists")
        self.left = left
        self.right = right
        self.kind = kind
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.key_names = key_names or []
        self.schema = left.schema + right.schema
        #: Chunk-at-a-time closures for the left key columns (attached by
        #: the planner in batch mode; evaluated against left rows only).
        self.batch_left_keys: list[BatchFn] | None = None
        #: Column-batch closures for the left key columns (columnar mode).
        self.columnar_left_keys: list[BatchFn] | None = None

    def _build(self, ctx: EvalContext) -> dict[tuple, list[tuple]]:
        """Materialise the right side into key buckets (NULLs never match)."""
        table: dict[tuple, list[tuple]] = {}
        right_keys = self.right_keys
        for right_row in self.right.rows(ctx):
            values = [key(right_row, ctx) for key in right_keys]
            if any(value is None for value in values):
                continue
            key = tuple(_join_key_part(value) for value in values)
            bucket = table.get(key)
            if bucket is None:
                table[key] = [right_row]
            else:
                bucket.append(right_row)
        return table

    def _probe(
        self,
        left_row: tuple,
        key: tuple | None,
        table: dict[tuple, list[tuple]],
        null_right: tuple,
        ctx: EvalContext,
        out: list[tuple],
    ) -> None:
        """Emit join results for one left row into ``out``."""
        matched = False
        if key is not None:
            residual = self.residual
            for right_row in table.get(key, ()):
                combined = left_row + right_row
                if residual is None or truthy(residual(combined, ctx)):
                    matched = True
                    out.append(combined)
        if not matched and self.kind == "LEFT OUTER":
            out.append(left_row + null_right)

    def _left_key(self, left_row: tuple, ctx: EvalContext) -> tuple | None:
        values = [key(left_row, ctx) for key in self.left_keys]
        if any(value is None for value in values):
            return None
        return tuple(_join_key_part(value) for value in values)

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        table = self._build(ctx)
        null_right = (None,) * len(self.right.schema)
        for left_row in self.left.rows(ctx):
            out: list[tuple] = []
            self._probe(left_row, self._left_key(left_row, ctx), table, null_right, ctx, out)
            yield from out

    def batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator[list[tuple]]:
        """Yield chunks by probing the hash table with left chunks."""
        table = self._build(ctx)
        null_right = (None,) * len(self.right.schema)
        batch_keys = self.batch_left_keys
        for chunk in self.left.batches(ctx, size):
            out: list[tuple] = []
            if batch_keys is not None:
                columns = [fn(chunk, ctx) for fn in batch_keys]
                for index, left_row in enumerate(chunk):
                    values = [column[index] for column in columns]
                    if any(value is None for value in values):
                        key = None
                    else:
                        key = tuple(_join_key_part(value) for value in values)
                    self._probe(left_row, key, table, null_right, ctx, out)
            else:
                for left_row in chunk:
                    self._probe(
                        left_row, self._left_key(left_row, ctx), table, null_right, ctx, out
                    )
            if out:
                yield out

    def column_batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator:
        """Probe with left column batches; key columns are read straight
        from the batch, row tuples materialise only for emitted matches."""
        table = self._build(ctx)
        null_right = (None,) * len(self.right.schema)
        columnar_keys = self.columnar_left_keys
        for batch in self.left.column_batches(ctx, size):
            out: list[tuple] = []
            left_rows = batch.rows_view()
            if columnar_keys is not None:
                columns = [fn(batch, ctx) for fn in columnar_keys]
                for index, left_row in enumerate(left_rows):
                    values = [column[index] for column in columns]
                    if any(value is None for value in values):
                        key = None
                    else:
                        key = tuple(_join_key_part(value) for value in values)
                    self._probe(left_row, key, table, null_right, ctx, out)
            else:
                for left_row in left_rows:
                    self._probe(
                        left_row, self._left_key(left_row, ctx), table, null_right, ctx, out
                    )
            if out:
                yield ColumnBatch(len(out), rows=out)

    def _describe(self) -> str:
        keys = ", ".join(self.key_names) if self.key_names else f"{len(self.left_keys)} key(s)"
        suffix = ", residual" if self.residual is not None else ""
        return f"HashJoin({self.kind}, on {keys}{suffix}, join=hash)"

    def _children(self) -> list[Plan]:
        return [self.left, self.right]


class MergeJoinPlan(Plan):
    """Sort-merge INNER equi-join, chosen by the cost-based optimizer
    for comma joins whose inputs RUNSTATS saw in key order.

    The right side is materialised and checked for non-decreasing key
    order: a presorted input (insertion order, clustered key) skips the
    explicit sort the cost model priced in; otherwise a *stable* sort
    groups equal keys while preserving scan order within each group.
    The probe walks left rows in input order, locating each key's group
    with a forward-merging cursor while the left keys arrive in
    non-decreasing order and by bisection otherwise.  Output is
    therefore left-major with matches in right-scan order —
    bit-identical rows to the nested-loop and hash plans.  NULL keys
    never match; mutually unorderable key values degrade to hashed
    grouping (same rows, the sort saving is simply lost).
    """

    def __init__(
        self,
        left: Plan,
        right: Plan,
        left_key: CompiledExpr,
        right_key_index: int,
        key_name: str = "",
        left_key_index: int | None = None,
        normalise: bool = True,
        sorted_hint: bool = False,
    ):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key_index = right_key_index
        self.key_name = key_name
        #: Direct left-row position of the outer key (attached by the
        #: planner for bare column refs; enables the no-closure probe).
        self.left_key_index = left_key_index
        #: False for numeric keys, where ``_join_key_part`` is identity.
        self.normalise = normalise
        #: True when RUNSTATS saw the inner key column presorted (the
        #: cost model then charged no explicit sort).
        self.sorted_hint = sorted_hint
        self.schema = left.schema + right.schema
        self.sorts_applied = 0
        self.presorted_inputs = 0

    def _prepare(self, ctx: EvalContext):
        """Materialise the right side into ``(group_keys, group_rows,
        buckets)``: sorted distinct keys with their row groups, or a
        plain dict (``buckets``) when the keys defeat ordering."""
        index = self.right_key_index
        if self.normalise:
            pairs = [
                (_join_key_part(row[index]), row)
                for row in self.right.rows(ctx)
                if row[index] is not None
            ]
        else:
            pairs = [
                (row[index], row)
                for row in self.right.rows(ctx)
                if row[index] is not None
            ]
        keys = [pair[0] for pair in pairs]
        comparable = True
        try:
            presorted = all(a <= b for a, b in zip(keys, keys[1:]))
        except TypeError:
            comparable = False
            presorted = False
        if presorted:
            self.presorted_inputs += 1
        elif comparable:
            try:
                pairs.sort(key=_first_of_pair)  # stable: groups keep scan order
                self.sorts_applied += 1
            except TypeError:
                comparable = False
        if not comparable:
            buckets: dict[object, list[tuple]] = {}
            for key, row in pairs:
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [row]
                else:
                    bucket.append(row)
            return None, None, buckets
        group_keys: list = []
        group_rows: list[list[tuple]] = []
        for key, row in pairs:
            if group_keys and key == group_keys[-1]:
                group_rows[-1].append(row)
            else:
                group_keys.append(key)
                group_rows.append([row])
        return group_keys, group_rows, None

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows (row-protocol probe, so
        EXPLAIN ANALYZE instrumentation sees the left subtree)."""
        group_keys, group_rows, buckets = self._prepare(ctx)
        left_key = self.left_key
        if buckets is not None:
            for left_row in self.left.rows(ctx):
                value = left_key(left_row, ctx)
                if value is None:
                    continue
                for right_row in buckets.get(_join_key_part(value), ()):
                    yield left_row + right_row
            return
        n = len(group_keys)
        cursor = 0
        previous: object = None
        first = True
        lookup: dict | None = None
        normalise = self.normalise
        for left_row in self.left.rows(ctx):
            key = left_key(left_row, ctx)
            if key is None:
                continue
            if normalise:
                key = _join_key_part(key)
            try:
                if first or key >= previous:
                    while cursor < n and group_keys[cursor] < key:
                        cursor += 1
                else:  # left order regressed: bisect instead of rewind
                    cursor = bisect_left(group_keys, key)
                first = False
                previous = key
            except TypeError:
                if lookup is None:
                    lookup = dict(zip(group_keys, group_rows))
                for right_row in lookup.get(key, ()):
                    yield left_row + right_row
                continue
            if cursor < n and group_keys[cursor] == key:
                for right_row in group_rows[cursor]:
                    yield left_row + right_row

    def batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator[list[tuple]]:
        """Yield chunks by merging left chunks against the grouped right."""
        group_keys, group_rows, buckets = self._prepare(ctx)
        left_index = self.left_key_index
        left_key = self.left_key
        normalise = self.normalise
        if buckets is not None:
            empty: tuple = ()
            for chunk in self.left.batches(ctx, size):
                out: list[tuple] = []
                for left_row in chunk:
                    value = (
                        left_row[left_index]
                        if left_index is not None
                        else left_key(left_row, ctx)
                    )
                    if value is None:
                        continue
                    for right_row in buckets.get(_join_key_part(value), empty):
                        out.append(left_row + right_row)
                if out:
                    yield out
            return
        n = len(group_keys)
        cursor = 0
        previous: object = None
        first = True
        lookup: dict | None = None
        for chunk in self.left.batches(ctx, size):
            out = []
            append = out.append
            for left_row in chunk:
                key = (
                    left_row[left_index]
                    if left_index is not None
                    else left_key(left_row, ctx)
                )
                if key is None:
                    continue
                if normalise:
                    key = _join_key_part(key)
                try:
                    if first or key >= previous:
                        while cursor < n and group_keys[cursor] < key:
                            cursor += 1
                    else:  # left order regressed: bisect instead of rewind
                        cursor = bisect_left(group_keys, key)
                    first = False
                    previous = key
                except TypeError:
                    # A left key unorderable against the grouped keys can
                    # still match by equality — probe a lazy dict view.
                    if lookup is None:
                        lookup = dict(zip(group_keys, group_rows))
                    for right_row in lookup.get(key, ()):
                        append(left_row + right_row)
                    continue
                if cursor < n and group_keys[cursor] == key:
                    for right_row in group_rows[cursor]:
                        append(left_row + right_row)
            if out:
                yield out

    def _describe(self) -> str:
        order = "presorted" if self.sorted_hint else "sort"
        return (
            f"MergeJoin(INNER, on {self.key_name}, join=merge, input={order})"
        )

    def _children(self) -> list[Plan]:
        return [self.left, self.right]


def _first_of_pair(pair: tuple) -> object:
    """Sort key for (key, row) pairs — rows themselves never compare."""
    return pair[0]


class IndexNestedLoopJoinPlan(Plan):
    """INNER equi-join probing the inner table's hash index per outer key.

    Instead of building a transient hash table from a full inner scan,
    each distinct outer key probes :meth:`Table.version_index_lookup` on
    the inner join column — the index is built once per table version
    and shared across statements, so the cost model amortises the build
    away for repeatedly-joined tables.  Lookups return matches in rid
    (scan) order, making the output left-major with inner matches in
    scan order — bit-identical to the nested-loop / hash / merge plans.
    Numeric key columns only (CHAR keys would need padding-normalised
    index entries), and the planner never attaches index probes or zone
    checks to the inner scan: this operator replaces its access path.
    """

    def __init__(
        self,
        left: Plan,
        scan: TableScanPlan,
        left_key: CompiledExpr,
        column: str,
        key_name: str = "",
    ):
        self.left = left
        self.scan = scan
        self.left_key = left_key
        self.column = column
        self.key_name = key_name
        self.schema = left.schema + scan.schema
        self.index_probes = 0

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        table = self.scan._table
        version = self.scan._version(ctx)
        lookup = table.version_index_lookup
        column = self.column
        left_key = self.left_key
        cache: dict[object, list[tuple]] = {}
        for left_row in self.left.rows(ctx):
            value = left_key(left_row, ctx)
            if value is None:
                continue
            key = _join_key_part(value)
            matches = cache.get(key)
            if matches is None:
                matches = lookup(version, column, value)
                cache[key] = matches
                self.index_probes += 1
            for right_row in matches:
                yield left_row + right_row

    def _describe(self) -> str:
        return (
            f"IndexNestedLoopJoin({self.scan._name}.{self.column}, "
            f"on {self.key_name}, join=indexnlj)"
        )

    def _children(self) -> list[Plan]:
        return [self.left, self.scan]


#: Bind joins fall back to an unbound fetch beyond this many distinct
#: outer keys (an IN list that long would dwarf the transfer savings).
MAX_BIND_KEYS = 200


class RemoteBindJoinPlan(Plan):
    """Bind join into a remote nickname (parameterized semijoin pushdown).

    Chosen by the cost-based optimizer for an equi-conjunct
    ``outer.col = nickname.col``: the outer side is materialised first,
    its distinct join-key values are shipped as an ``IN`` (or ``=``)
    predicate in the remote statement's WHERE clause, and the narrowed
    remote result is hash-joined back.  Rows and their order are
    bit-identical to the syntactic plan (cross product + filter): output
    is outer-major with remote matches in remote-scan order, and the
    remote side filters during its own scan, preserving relative order.

    When the outer side produces more than ``max_keys`` distinct keys the
    fetch degrades gracefully to the unbound scan (same rows, no bind
    predicate); with zero non-NULL outer keys the fetch is skipped
    entirely — an inner equality cannot match.
    """

    def __init__(
        self,
        left: Plan,
        scan: RemoteScanPlan,
        left_key: CompiledExpr,
        bind_column: str,
        remote_key_index: int,
        max_keys: int = MAX_BIND_KEYS,
    ):
        self.left = left
        self.scan = scan
        self.left_key = left_key
        self.bind_column = bind_column
        self.remote_key_index = remote_key_index
        self.max_keys = max_keys
        self.schema = left.schema + scan.schema
        self.bound_fetches = 0
        self.unbound_fetches = 0

    def _bind_predicate(self, key_values: list[object]) -> str:
        column = ast.ColumnRef(None, self.bind_column)
        if len(key_values) == 1:
            return ast.BinaryOp("=", column, ast.Literal(key_values[0])).render()
        items: list[ast.Expression] = [ast.Literal(value) for value in key_values]
        return ast.InList(column, items).render()

    def _distinct_keys(self, left_rows: list[tuple], ctx: EvalContext) -> list[object]:
        """Distinct non-NULL outer key values in first-occurrence order."""
        key_values: list[object] = []
        seen: set = set()
        for left_row in left_rows:
            value = self.left_key(left_row, ctx)
            if value is None:
                continue
            normalised = _join_key_part(value)
            if normalised not in seen:
                seen.add(normalised)
                key_values.append(value)
        return key_values

    def _emit(
        self, left_rows: list[tuple], ctx: EvalContext, predicates: list[str]
    ) -> Iterator[tuple]:
        """Fetch the (possibly bound) remote side and hash-join it back:
        outer-major, remote matches in remote-scan order."""
        buckets: dict[object, list[tuple]] = {}
        key_index = self.remote_key_index
        for remote_row in self.scan.fetcher.fetch(ctx, predicates):
            value = remote_row[key_index]
            if value is None:
                continue
            bucket = buckets.setdefault(_join_key_part(value), [])
            bucket.append(remote_row)
        for left_row in left_rows:
            value = self.left_key(left_row, ctx)
            if value is None:
                continue
            for remote_row in buckets.get(_join_key_part(value), ()):
                yield left_row + remote_row

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        left_rows = list(self.left.rows(ctx))
        key_values = self._distinct_keys(left_rows, ctx)
        if not key_values:
            return  # inner equality over all-NULL outer keys: no matches
        predicates = list(self.scan.pushed_predicates)
        layer = getattr(self.scan.fetcher, "layer", None)
        if len(key_values) <= self.max_keys:
            predicates.append(self._bind_predicate(key_values))
            self.bound_fetches += 1
            if layer is not None:
                layer.bind_join_count += 1
        else:
            # Runtime guard: the optimizer's gate is estimate-based, so
            # the *actual* distinct keys can exceed it (stale RUNSTATS
            # after DML).  Ship-all instead of an oversized IN list —
            # the hash probe below enforces the equi-conjunct either way.
            self.unbound_fetches += 1
            if layer is not None:
                layer.bind_join_fallbacks += 1
        yield from self._emit(left_rows, ctx, predicates)

    def _describe(self) -> str:
        return f"BindJoin({self.scan._name}, bind: {self.bind_column})"

    def _children(self) -> list[Plan]:
        return [self.left, self.scan]


class AdaptiveRemoteJoinPlan(RemoteBindJoinPlan):
    """Ship-all remote join with a mid-query bind-join escape hatch.

    Emitted (only when the engine's adaptive blowup factor is set) where
    the cost model *rejected* a bind join — the estimated bound transfer
    did not beat shipping the whole remote side, or the estimated key
    count blew the IN-list cap.  Those estimates can be stale, so before
    paying the full transfer the operator ships one ``SELECT COUNT(*)``
    probe (a single roundtrip returning one row) against the same pushed
    predicates.  When the observed build side exceeds the estimate by
    the configured factor — and the actual distinct keys fit the cap —
    execution falls back to the bind join mid-query.  Both paths produce
    identical rows; only the transfer cost differs.
    """

    def __init__(
        self,
        left: Plan,
        scan: RemoteScanPlan,
        left_key: CompiledExpr,
        bind_column: str,
        remote_key_index: int,
        est_build: int,
        blowup_factor: float,
        max_keys: int = MAX_BIND_KEYS,
        note: Callable[[], None] | None = None,
    ):
        super().__init__(
            left, scan, left_key, bind_column, remote_key_index, max_keys
        )
        self.est_build = est_build
        self.blowup_factor = blowup_factor
        self.note = note
        self.midquery_fallbacks = 0
        #: Build-side cardinality the COUNT(*) probe observed last run.
        self.last_probed_build: int | None = None

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        left_rows = list(self.left.rows(ctx))
        key_values = self._distinct_keys(left_rows, ctx)
        if not key_values:
            return  # inner equality over all-NULL outer keys: no matches
        predicates = list(self.scan.pushed_predicates)
        actual_build = self.scan.fetcher.count(ctx, predicates)
        self.last_probed_build = actual_build
        if (
            actual_build > self.est_build * self.blowup_factor
            and len(key_values) <= self.max_keys
        ):
            predicates.append(self._bind_predicate(key_values))
            self.bound_fetches += 1
            self.midquery_fallbacks += 1
            layer = getattr(self.scan.fetcher, "layer", None)
            if layer is not None:
                layer.bind_join_count += 1
            if self.note is not None:
                self.note()
        else:
            self.unbound_fetches += 1
        yield from self._emit(left_rows, ctx, predicates)

    def _describe(self) -> str:
        return (
            f"AdaptiveJoin({self.scan._name}, bind: {self.bind_column}, "
            f"blowup>{self.blowup_factor:g}x)"
        )


class BatchFunctionInvoker(Protocol):
    """Invokes a table function once per argument tuple, amortizing
    fixed per-call overheads where the runtime supports it."""

    def __call__(
        self,
        function: TableFunction,
        args_list: list[list[object]],
        ctx: EvalContext,
    ) -> list[list[tuple]]: ...


class UdtfBindJoinPlan(Plan):
    """Bind join into a lateral DETERMINISTIC table function.

    The outer side is materialised, the argument tuples it produces are
    deduplicated in first-occurrence order, and the function is invoked
    once per *distinct* tuple through a batch invoker — the fenced
    runtime amortizes prepare, RMI channel and finish overheads across
    the whole batch, mirroring the paper's input-container parameter
    passing.  Requires a DETERMINISTIC function: invocation count per
    distinct argument tuple matches the per-statement cache of the
    syntactic plan, so rows are bit-identical.
    """

    def __init__(self, left: Plan, right: TableFunctionRightSide, batch_invoker):
        self.left = left
        self.right = right
        self.batch_invoker = batch_invoker
        self.schema = left.schema + right.schema
        self.batched_invocations = 0

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        left_rows = list(self.left.rows(ctx))
        arg_exprs = self.right.arg_exprs
        per_row_keys: list[tuple | None] = []
        distinct_args: list[list[object]] = []
        key_order: dict[tuple, int] = {}
        fallback: dict[int, list[object]] = {}
        for index, left_row in enumerate(left_rows):
            args = [expr(left_row, ctx) for expr in arg_exprs]
            try:
                key = tuple(args)
                hash(key)
            except TypeError:  # unhashable argument: invoke individually
                per_row_keys.append(None)
                fallback[index] = args
                continue
            if key not in key_order:
                key_order[key] = len(distinct_args)
                distinct_args.append(args)
            per_row_keys.append(key)
        results: list[list[tuple]] = []
        if distinct_args:
            results = self.batch_invoker(self.right.function, distinct_args, ctx)
            self.batched_invocations += 1
            self.right.invocations += len(distinct_args)
            self.right.cache_hits += sum(
                1 for key in per_row_keys if key is not None
            ) - len(distinct_args)
        for index, left_row in enumerate(left_rows):
            key = per_row_keys[index]
            if key is None:
                self.right.invocations += 1
                rows = self.right.invoker(self.right.function, fallback[index], ctx)
            else:
                rows = results[key_order[key]]
            for right_row in rows:
                yield left_row + right_row

    def _describe(self) -> str:
        return f"BindJoin(TABLE({self.right.function.name}) {self.right.alias})"

    def _children(self) -> list[Plan]:
        return [self.left]


class FilterPlan(Plan):
    """WHERE / HAVING filter."""

    def __init__(self, input_plan: Plan, predicate: CompiledExpr, label: str = "Filter"):
        self.input = input_plan
        self.predicate = predicate
        self.schema = input_plan.schema
        self._label = label
        #: Chunk-at-a-time predicate (attached by the planner in batch mode).
        self.batch_predicate: BatchFn | None = None
        #: Column-batch predicate (attached by the planner in columnar mode).
        self.columnar_predicate: BatchFn | None = None
        #: Rendered texts of the conjuncts this filter evaluates locally
        #: after predicate pushdown split some off (attached by the
        #: planner so EXPLAIN shows the residual set explicitly).
        self.residual_texts: list[str] | None = None

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        for row in self.input.rows(ctx):
            if truthy(self.predicate(row, ctx)):
                yield row

    def batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator[list[tuple]]:
        """Yield chunks filtered through the vectorized predicate."""
        batch_predicate = self.batch_predicate
        if batch_predicate is None:
            predicate = self.predicate
            for chunk in self.input.batches(ctx, size):
                out = [row for row in chunk if truthy(predicate(row, ctx))]
                if out:
                    yield out
            return
        for chunk in self.input.batches(ctx, size):
            mask = batch_predicate(chunk, ctx)
            out = [row for row, keep in zip(chunk, mask) if keep is True]
            if out:
                yield out

    def column_batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator:
        """Yield selection views over input batches — fully-passing
        batches flow through untouched, partial ones become a
        :class:`SelectionBatch` so no row tuples materialise here."""
        columnar_predicate = self.columnar_predicate
        if columnar_predicate is None:
            yield from super().column_batches(ctx, size)
            return
        for batch in self.input.column_batches(ctx, size):
            mask = columnar_predicate(batch, ctx)
            indices = [index for index, keep in enumerate(mask) if keep is True]
            if not indices:
                continue
            if len(indices) == len(batch):
                yield batch
            else:
                yield SelectionBatch(batch, indices)

    def _describe(self) -> str:
        if self.residual_texts:
            residual = " AND ".join(self.residual_texts)
            return f"{self._label} [residual: {residual}]"
        return self._label

    def _children(self) -> list[Plan]:
        return [self.input]


class ProjectPlan(Plan):
    """Computes the select list (plus hidden sort keys, if any)."""

    def __init__(
        self,
        input_plan: Plan,
        exprs: list[CompiledExpr],
        schema: list[ColumnSlot],
    ):
        self.input = input_plan
        self.exprs = exprs
        self.schema = schema
        #: Chunk-at-a-time column closures (attached by the planner in
        #: batch mode); one per select-list expression.
        self.batch_exprs: list[BatchFn] | None = None
        #: Column-batch closures (columnar mode); one per expression.
        self.columnar_exprs: list[BatchFn] | None = None

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        for row in self.input.rows(ctx):
            yield tuple(expr(row, ctx) for expr in self.exprs)

    def batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator[list[tuple]]:
        """Yield chunks projected column-wise."""
        batch_exprs = self.batch_exprs
        if batch_exprs is None:
            exprs = self.exprs
            for chunk in self.input.batches(ctx, size):
                yield [tuple(expr(row, ctx) for expr in exprs) for row in chunk]
            return
        for chunk in self.input.batches(ctx, size):
            if not batch_exprs:
                yield [()] * len(chunk)
                continue
            columns = [fn(chunk, ctx) for fn in batch_exprs]
            yield list(zip(*columns))

    def column_batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator:
        """Yield column-major output batches; row tuples are only zipped
        together if a downstream operator asks for ``rows_view``."""
        columnar_exprs = self.columnar_exprs
        if columnar_exprs is None:
            yield from super().column_batches(ctx, size)
            return
        for batch in self.input.column_batches(ctx, size):
            if not columnar_exprs:
                yield ColumnBatch(len(batch), cols=[])
                continue
            yield ColumnBatch(
                len(batch), cols=[fn(batch, ctx) for fn in columnar_exprs]
            )

    def _describe(self) -> str:
        return f"Project({', '.join(s.name for s in self.schema)})"

    def _children(self) -> list[Plan]:
        return [self.input]


class AggregateSpec:
    """One aggregate computation: function name and input expression."""

    def __init__(self, name: str, arg: CompiledExpr | None, distinct: bool = False):
        self.name = name.upper()
        self.arg = arg  # None means COUNT(*)
        self.distinct = distinct
        #: Chunk-at-a-time closure for ``arg`` (attached in batch mode).
        self.batch_arg: BatchFn | None = None
        #: Column-batch closure for ``arg`` (attached in columnar mode).
        self.columnar_arg: BatchFn | None = None

    def new_state(self) -> "_AggState":
        """Fresh running state for one group."""
        return _AggState(self)


class _AggState:
    """Running state of one aggregate within one group."""

    def __init__(self, spec: AggregateSpec):
        self.spec = spec
        self.count = 0
        self.total: object = None
        self.best: object = None
        self.seen: set | None = set() if spec.distinct else None

    def update(self, row: tuple, ctx: EvalContext) -> None:
        if self.spec.arg is None:  # COUNT(*)
            self.count += 1
            return
        self.update_value(self.spec.arg(row, ctx))

    def update_value(self, value: object) -> None:
        """Fold one already-evaluated argument value into the state."""
        if self.spec.arg is None:  # COUNT(*): every row counts
            self.count += 1
            return
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        name = self.spec.name
        if name in ("SUM", "AVG"):
            self.total = value if self.total is None else self.total + value
        elif name == "MIN":
            self.best = value if self.best is None or value < self.best else self.best
        elif name == "MAX":
            self.best = value if self.best is None or value > self.best else self.best

    def update_chunk(self, values: list | None, count: int) -> None:
        """Fold a whole chunk of argument values at once.

        ``values`` is None for COUNT(*) (``count`` rows, no argument).
        SUM/MIN/MAX over plain numeric chunks use the C-level builtins;
        anything they cannot fold (mixed or exotic operand types) falls
        back to the exact per-value path, keeping row-mode semantics.
        """
        if self.spec.arg is None:
            self.count += count
            return
        assert values is not None
        if self.seen is not None:  # DISTINCT must see every value in order
            for value in values:
                self.update_value(value)
            return
        live = [value for value in values if value is not None]
        if not live:
            return
        name = self.spec.name
        try:
            if name in ("SUM", "AVG"):
                folded = sum(live)
            elif name == "MIN":
                folded = min(live)
            elif name == "MAX":
                folded = max(live)
            else:  # COUNT(expr)
                self.count += len(live)
                return
        except TypeError:
            for value in live:
                self.update_value(value)
            return
        self.count += len(live)
        if name in ("SUM", "AVG"):
            self.total = folded if self.total is None else self.total + folded
        elif name == "MIN":
            self.best = folded if self.best is None or folded < self.best else self.best
        elif name == "MAX":
            self.best = folded if self.best is None or folded > self.best else self.best

    def result(self) -> object:
        name = self.spec.name
        if name == "COUNT":
            return self.count
        if name == "SUM":
            return self.total
        if name == "AVG":
            if self.count == 0:
                return None
            total = self.total
            if isinstance(total, int):
                # SQL: AVG over integers keeps integer semantics in DB2;
                # we return a float for usability and document it.
                return total / self.count
            return total / self.count  # type: ignore[operator]
        if name in ("MIN", "MAX"):
            return self.best
        raise ExecutionError(f"unknown aggregate {name}")  # pragma: no cover


class AggregatePlan(Plan):
    """Hash aggregation over optional group keys.

    Output rows are ``group_values + aggregate_results`` matching the
    synthetic post-aggregate layout the planner compiles select items
    against.
    """

    def __init__(
        self,
        input_plan: Plan,
        group_exprs: list[CompiledExpr],
        aggregates: list[AggregateSpec],
        schema: list[ColumnSlot],
    ):
        self.input = input_plan
        self.group_exprs = group_exprs
        self.aggregates = aggregates
        self.schema = schema
        #: Chunk-at-a-time closures for the group keys (batch mode).
        self.batch_group: list[BatchFn] | None = None
        #: Column-batch closures for the group keys (columnar mode).
        self.columnar_group: list[BatchFn] | None = None

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        groups: dict[tuple, list[_AggState]] = {}
        order: list[tuple] = []
        for row in self.input.rows(ctx):
            key = tuple(expr(row, ctx) for expr in self.group_exprs)
            states = groups.get(key)
            if states is None:
                states = [spec.new_state() for spec in self.aggregates]
                groups[key] = states
                order.append(key)
            for state in states:
                state.update(row, ctx)
        if not groups and not self.group_exprs:
            # Global aggregate over an empty input still yields one row.
            states = [spec.new_state() for spec in self.aggregates]
            yield tuple(state.result() for state in states)
            return
        for key in order:
            yield key + tuple(state.result() for state in groups[key])

    def _argument_columns(self, chunk: list[tuple], ctx: EvalContext) -> list[list | None]:
        """One evaluated value column per aggregate (None for COUNT(*))."""
        columns: list[list | None] = []
        for spec in self.aggregates:
            if spec.arg is None:
                columns.append(None)
            elif spec.batch_arg is not None:
                columns.append(spec.batch_arg(chunk, ctx))
            else:
                columns.append([spec.arg(row, ctx) for row in chunk])
        return columns

    def batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator[list[tuple]]:
        """Yield chunks of aggregated rows, folding input chunk-wise."""
        if not self.group_exprs:
            states = [spec.new_state() for spec in self.aggregates]
            for chunk in self.input.batches(ctx, size):
                columns = self._argument_columns(chunk, ctx)
                for state, column in zip(states, columns):
                    state.update_chunk(column, len(chunk))
            yield [tuple(state.result() for state in states)]
            return
        groups: dict[tuple, list[_AggState]] = {}
        order: list[tuple] = []
        batch_group = self.batch_group
        for chunk in self.input.batches(ctx, size):
            if batch_group is not None:
                key_columns = [fn(chunk, ctx) for fn in batch_group]
                keys = list(zip(*key_columns))
            else:
                keys = [
                    tuple(expr(row, ctx) for expr in self.group_exprs) for row in chunk
                ]
            columns = self._argument_columns(chunk, ctx)
            for index, key in enumerate(keys):
                states = groups.get(key)
                if states is None:
                    states = [spec.new_state() for spec in self.aggregates]
                    groups[key] = states
                    order.append(key)
                for state, column in zip(states, columns):
                    state.update_value(column[index] if column is not None else None)
        out = [key + tuple(state.result() for state in groups[key]) for key in order]
        for start in range(0, len(out), size):
            yield out[start : start + size]

    def _argument_columns_columnar(self, batch, ctx: EvalContext) -> list[list | None]:
        """Columnar twin of :meth:`_argument_columns`."""
        columns: list[list | None] = []
        for spec in self.aggregates:
            if spec.arg is None:
                columns.append(None)
            elif spec.columnar_arg is not None:
                columns.append(spec.columnar_arg(batch, ctx))
            else:
                arg = spec.arg
                columns.append([arg(row, ctx) for row in batch.rows_view()])
        return columns

    def column_batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator:
        """Fold input column batches; argument and group-key columns are
        read without materialising input row tuples."""
        if not self.group_exprs:
            states = [spec.new_state() for spec in self.aggregates]
            for batch in self.input.column_batches(ctx, size):
                columns = self._argument_columns_columnar(batch, ctx)
                for state, column in zip(states, columns):
                    state.update_chunk(column, len(batch))
            yield ColumnBatch(
                1, rows=[tuple(state.result() for state in states)]
            )
            return
        groups: dict[tuple, list[_AggState]] = {}
        order: list[tuple] = []
        columnar_group = self.columnar_group
        for batch in self.input.column_batches(ctx, size):
            if columnar_group is not None:
                key_columns = [fn(batch, ctx) for fn in columnar_group]
                keys = list(zip(*key_columns))
            else:
                keys = [
                    tuple(expr(row, ctx) for expr in self.group_exprs)
                    for row in batch.rows_view()
                ]
            columns = self._argument_columns_columnar(batch, ctx)
            for index, key in enumerate(keys):
                states = groups.get(key)
                if states is None:
                    states = [spec.new_state() for spec in self.aggregates]
                    groups[key] = states
                    order.append(key)
                for state, column in zip(states, columns):
                    state.update_value(column[index] if column is not None else None)
        out = [key + tuple(state.result() for state in groups[key]) for key in order]
        for start in range(0, len(out), size):
            chunk = out[start : start + size]
            yield ColumnBatch(len(chunk), rows=chunk)

    def _describe(self) -> str:
        return f"Aggregate(groups={len(self.group_exprs)}, aggs={len(self.aggregates)})"

    def _children(self) -> list[Plan]:
        return [self.input]


class SortPlan(Plan):
    """Sorts on key extractors over the input rows.

    Keys are either integer positions or callables ``(row, ctx) ->
    value`` (used for ORDER BY expressions compiled against the output
    schema).
    """

    def __init__(
        self,
        input_plan: Plan,
        keys: list[tuple[int | Callable[[tuple, EvalContext], object], bool]],
    ):
        self.input = input_plan
        self.keys = keys  # (position or extractor, ascending)
        self.schema = input_plan.schema

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        yield from self._sorted(list(self.input.rows(ctx)), ctx)

    def _sorted(self, materialised: list[tuple], ctx: EvalContext) -> list[tuple]:
        # Stable multi-key sort: apply keys right-to-left.
        for key, ascending in reversed(self.keys):
            if isinstance(key, int):
                extractor = lambda row, _pos=key: _SortKey(row[_pos])
            else:
                extractor = lambda row, _fn=key: _SortKey(_fn(row, ctx))
            materialised.sort(key=extractor, reverse=not ascending)
        return materialised

    def batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator[list[tuple]]:
        """Materialise input chunks, sort once, re-chunk the output."""
        materialised: list[tuple] = []
        for chunk in self.input.batches(ctx, size):
            materialised.extend(chunk)
        ordered = self._sorted(materialised, ctx)
        for start in range(0, len(ordered), size):
            yield ordered[start : start + size]

    def column_batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator:
        """Sorting genuinely needs row tuples: materialise, sort once,
        re-chunk."""
        materialised: list[tuple] = []
        for batch in self.input.column_batches(ctx, size):
            materialised.extend(batch.rows_view())
        ordered = self._sorted(materialised, ctx)
        for start in range(0, len(ordered), size):
            chunk = ordered[start : start + size]
            yield ColumnBatch(len(chunk), rows=chunk)

    def _describe(self) -> str:
        return "Sort"

    def _children(self) -> list[Plan]:
        return [self.input]


class _SortKey:
    """Ordering wrapper: NULLs sort last ascending, comparable values
    compare naturally."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None:
            return False
        if b is None:
            return True
        return a < b  # type: ignore[operator]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value


class CutPlan(Plan):
    """Trims hidden trailing sort-key columns after sorting."""

    def __init__(self, input_plan: Plan, width: int, schema: list[ColumnSlot]):
        self.input = input_plan
        self.width = width
        self.schema = schema

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        for row in self.input.rows(ctx):
            yield row[: self.width]

    def batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator[list[tuple]]:
        """Yield chunks with hidden sort-key columns trimmed."""
        width = self.width
        for chunk in self.input.batches(ctx, size):
            yield [row[:width] for row in chunk]

    def column_batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator:
        """Trim by keeping the leading columns — no per-row slicing."""
        width = self.width
        for batch in self.input.column_batches(ctx, size):
            yield ColumnBatch(
                len(batch), cols=[batch.column(index) for index in range(width)]
            )

    def _describe(self) -> str:
        return f"Cut({self.width})"

    def _children(self) -> list[Plan]:
        return [self.input]


class DistinctPlan(Plan):
    """Removes duplicate rows, preserving first occurrence."""

    def __init__(self, input_plan: Plan):
        self.input = input_plan
        self.schema = input_plan.schema

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        seen: set[tuple] = set()
        for row in self.input.rows(ctx):
            if row not in seen:
                seen.add(row)
                yield row

    def batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator[list[tuple]]:
        """Yield chunks with duplicates removed (first occurrence wins)."""
        seen: set[tuple] = set()
        add = seen.add
        for chunk in self.input.batches(ctx, size):
            out = []
            for row in chunk:
                if row not in seen:
                    add(row)
                    out.append(row)
            if out:
                yield out

    def column_batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator:
        """Dedup needs hashable row tuples; consume the input columnar
        and re-wrap the survivors."""
        seen: set[tuple] = set()
        add = seen.add
        for batch in self.input.column_batches(ctx, size):
            out = []
            for row in batch.rows_view():
                if row not in seen:
                    add(row)
                    out.append(row)
            if out:
                yield ColumnBatch(len(out), rows=out)

    def _describe(self) -> str:
        return "Distinct"

    def _children(self) -> list[Plan]:
        return [self.input]


class LimitPlan(Plan):
    """FETCH FIRST n ROWS ONLY."""

    def __init__(self, input_plan: Plan, limit: int):
        self.input = input_plan
        self.limit = limit
        self.schema = input_plan.schema

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        if self.limit <= 0:
            return
        produced = 0
        for row in self.input.rows(ctx):
            yield row
            produced += 1
            if produced >= self.limit:
                return

    def batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator[list[tuple]]:
        """Yield chunks until the row budget is spent."""
        remaining = self.limit
        if remaining <= 0:
            return
        for chunk in self.input.batches(ctx, size):
            if len(chunk) >= remaining:
                yield chunk[:remaining]
                return
            remaining -= len(chunk)
            yield chunk

    def column_batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator:
        """Yield input batches until the row budget is spent."""
        remaining = self.limit
        if remaining <= 0:
            return
        for batch in self.input.column_batches(ctx, size):
            if len(batch) >= remaining:
                rows = batch.rows_view()[:remaining]
                yield ColumnBatch(len(rows), rows=rows)
                return
            remaining -= len(batch)
            yield batch

    def _describe(self) -> str:
        return f"Limit({self.limit})"

    def _children(self) -> list[Plan]:
        return [self.input]


class UnionPlan(Plan):
    """UNION / UNION ALL of equally wide branches."""

    def __init__(self, branches: Sequence[Plan], all_: bool):
        if not branches:
            raise ExecutionError("UNION requires at least one branch")
        widths = {len(b.schema) for b in branches}
        if len(widths) != 1:
            raise ExecutionError("UNION branches must have the same column count")
        self.branches = list(branches)
        self.all = all_
        self.schema = self.branches[0].schema

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        if self.all:
            for branch in self.branches:
                yield from branch.rows(ctx)
            return
        seen: set[tuple] = set()
        for branch in self.branches:
            for row in branch.rows(ctx):
                if row not in seen:
                    seen.add(row)
                    yield row

    def batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator[list[tuple]]:
        """Yield each branch's chunks in turn (deduplicated unless ALL)."""
        if self.all:
            for branch in self.branches:
                yield from branch.batches(ctx, size)
            return
        seen: set[tuple] = set()
        add = seen.add
        for branch in self.branches:
            for chunk in branch.batches(ctx, size):
                out = []
                for row in chunk:
                    if row not in seen:
                        add(row)
                        out.append(row)
                if out:
                    yield out

    def column_batches(self, ctx: EvalContext, size: int = BATCH_SIZE) -> Iterator:
        """Yield each branch's column batches in turn (deduplicated
        through row tuples unless ALL)."""
        if self.all:
            for branch in self.branches:
                yield from branch.column_batches(ctx, size)
            return
        seen: set[tuple] = set()
        add = seen.add
        for branch in self.branches:
            for batch in branch.column_batches(ctx, size):
                out = []
                for row in batch.rows_view():
                    if row not in seen:
                        add(row)
                        out.append(row)
                if out:
                    yield ColumnBatch(len(out), rows=out)

    def _describe(self) -> str:
        return f"Union(all={self.all})"

    def _children(self) -> list[Plan]:
        return self.branches


class ValuesPlan(Plan):
    """A constant row source (used by INSERT ... VALUES planning)."""

    def __init__(self, rows_exprs: list[list[CompiledExpr]], schema: list[ColumnSlot]):
        self._rows_exprs = rows_exprs
        self.schema = schema

    def rows(self, ctx: EvalContext) -> Iterator[tuple]:
        """Yield the operator's result rows."""
        for row_exprs in self._rows_exprs:
            yield tuple(expr((), ctx) for expr in row_exprs)

    def _describe(self) -> str:
        return f"Values({len(self._rows_exprs)})"
